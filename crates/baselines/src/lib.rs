//! # xmodel-baselines — the comparison models of §VII
//!
//! Three widely-known analytic models the paper positions the X-model
//! against, implemented as independent predictors so the benchmark
//! harness can compare their predictions on the same workloads:
//!
//! * [`roofline`] — Williams et al.: static bottleneck analysis,
//!   `attainable = min(M, Z·R)`; no thread awareness;
//! * [`valley`] — Guz et al.: thread-count-aware performance with *all*
//!   `n` threads sharing the cache and a fixed memory latency (the two
//!   assumptions §VII contrasts with the X-model);
//! * [`mwp_cwp`] — Hong & Kim: warp-parallelism execution-time model with
//!   its three MWP/CWP regimes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mwp_cwp;
pub mod roofline;
pub mod valley;

pub use mwp_cwp::MwpCwp;
pub use roofline::Roofline;
pub use valley::ValleyModel;

/// Glob import of the baseline predictors.
pub mod prelude {
    pub use crate::mwp_cwp::MwpCwp;
    pub use crate::roofline::Roofline;
    pub use crate::valley::ValleyModel;
}

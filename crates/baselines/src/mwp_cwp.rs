//! The MWP-CWP model (Hong & Kim, ISCA 2009), in the simplified rendition
//! §VII compares against.
//!
//! Two warp-parallelism quantities govern a GPU kernel's execution time:
//!
//! * **MWP** (memory warp parallelism) — warps whose memory requests can
//!   overlap: `min(L/Δ, MWP_peak_bw, N)` with departure delay `Δ` and the
//!   bandwidth ceiling `MWP_peak_bw = R·L` (the MLP of §III-A1);
//! * **CWP** (computation warp parallelism) — warps whose computation fits
//!   under one memory period: `min((L + C)/C, N)` for `C` computation
//!   cycles per iteration.
//!
//! Three regimes for one iteration round of `N` warps:
//!
//! * `MWP ≥ CWP` (compute hides memory): `T = C·N + L`
//! * `MWP < CWP` (memory bound): `T = L·N/MWP + C`
//! * `N < MWP` (too few warps): `T = C·N + L`
//!
//! Throughput = `N·Z / T` operations per cycle. Unlike the X-model this
//! predicts a point, involves no cache, and offers no what-if structure —
//! which is the §VII point.

use serde::{Deserialize, Serialize};

/// MWP-CWP parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MwpCwp {
    /// Memory latency `L` (cycles).
    pub mem_latency: f64,
    /// Departure delay `Δ` between consecutive memory requests of
    /// different warps (1 for fully coalesced access).
    pub departure_delay: f64,
    /// Bandwidth-limited MWP ceiling (`R·L` in model units).
    pub mwp_peak_bw: f64,
    /// Computation cycles per iteration per warp (`Z/E` lane-adjusted,
    /// or simply `Z` for single-issue warps).
    pub comp_cycles: f64,
    /// Operations per iteration per warp (`Z`).
    pub ops_per_iter: f64,
    /// Resident warps `N`.
    pub warps: f64,
}

impl MwpCwp {
    /// Overlap capacity of the memory pipeline, before the warp-count cap:
    /// `min(L/Δ, MWP_peak_bw)`.
    pub fn mwp_capacity(&self) -> f64 {
        (self.mem_latency / self.departure_delay).min(self.mwp_peak_bw)
    }

    /// Memory warp parallelism.
    pub fn mwp(&self) -> f64 {
        self.mwp_capacity().min(self.warps)
    }

    /// Computation warp parallelism.
    pub fn cwp(&self) -> f64 {
        ((self.mem_latency + self.comp_cycles) / self.comp_cycles).min(self.warps)
    }

    /// Execution cycles for one iteration round of all `N` warps.
    pub fn round_cycles(&self) -> f64 {
        let (mwp, cwp) = (self.mwp(), self.cwp());
        let n = self.warps;
        if self.is_under_populated() || mwp >= cwp {
            // Compute-dominated (or under-populated): serial compute plus
            // one exposed memory period.
            self.comp_cycles * n + self.mem_latency
        } else {
            // Memory bound: memory periods pipelined MWP at a time.
            self.mem_latency * n / mwp + self.comp_cycles
        }
    }

    /// Predicted compute throughput in ops/cycle.
    pub fn throughput(&self) -> f64 {
        if self.warps <= 0.0 {
            return 0.0;
        }
        self.warps * self.ops_per_iter / self.round_cycles()
    }

    /// Too few warps to saturate either parallelism measure: `N` below
    /// both the memory-overlap capacity and the compute-overlap window.
    pub fn is_under_populated(&self) -> bool {
        let cwp_window = (self.mem_latency + self.comp_cycles) / self.comp_cycles;
        self.warps < self.mwp_capacity() && self.warps < cwp_window
    }

    /// Which regime the kernel falls into.
    pub fn regime(&self) -> &'static str {
        let (mwp, cwp) = (self.mwp(), self.cwp());
        if self.is_under_populated() {
            "under-populated"
        } else if mwp >= cwp {
            "compute-bound"
        } else {
            "memory-bound"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> MwpCwp {
        MwpCwp {
            mem_latency: 600.0,
            departure_delay: 1.0,
            mwp_peak_bw: 64.0,
            comp_cycles: 20.0,
            ops_per_iter: 20.0,
            warps: 48.0,
        }
    }

    #[test]
    fn mwp_takes_minimum() {
        let m = base();
        // L/delta = 600, bw cap = 64, N = 48 -> 48.
        assert_eq!(m.mwp(), 48.0);
        let few_bw = MwpCwp {
            mwp_peak_bw: 10.0,
            ..base()
        };
        assert_eq!(few_bw.mwp(), 10.0);
    }

    #[test]
    fn cwp_counts_overlapping_warps() {
        let m = base();
        // (600+20)/20 = 31, capped by N=48.
        assert_eq!(m.cwp(), 31.0);
    }

    #[test]
    fn compute_bound_regime() {
        // MWP (48) >= CWP (31): compute hides memory.
        let m = base();
        assert_eq!(m.regime(), "compute-bound");
        // T = 20*48 + 600 = 1560; throughput = 48*20/1560.
        assert!((m.throughput() - 960.0 / 1560.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_regime() {
        let m = MwpCwp {
            mwp_peak_bw: 8.0,
            ..base()
        };
        assert_eq!(m.regime(), "memory-bound");
        // T = 600*48/8 + 20 = 3620.
        assert!((m.throughput() - 960.0 / 3620.0).abs() < 1e-12);
    }

    #[test]
    fn under_populated_regime() {
        let m = MwpCwp {
            warps: 4.0,
            ..base()
        };
        assert_eq!(m.regime(), "under-populated");
        // T = 20*4 + 600 = 680.
        assert!((m.throughput() - 80.0 / 680.0).abs() < 1e-12);
    }

    #[test]
    fn more_warps_help_until_saturation() {
        let t = |n: f64| MwpCwp { warps: n, ..base() }.throughput();
        assert!(t(8.0) < t(16.0));
        assert!(t(16.0) < t(32.0));
    }

    #[test]
    fn zero_warps_zero_throughput() {
        assert_eq!(
            MwpCwp {
                warps: 0.0,
                ..base()
            }
            .throughput(),
            0.0
        );
    }
}

//! The Roofline model (Williams, Waterman, Patterson — CACM 2009).
//!
//! `attainable = min(peak_ops, intensity × peak_bandwidth)` over the
//! arithmetic intensity axis. §VII contrasts it with the X-model on three
//! counts: it is built for a *static* bottleneck picture (one curve, no
//! thread dimension), from bottleneck analysis rather than flow balance,
//! and with a single fused curve rather than separable CS/MS curves.

use serde::{Deserialize, Serialize};

/// A roofline: peak compute throughput and peak memory bandwidth in
/// mutually consistent units (we use warp-ops/cycle and requests/cycle,
/// with intensity `Z` in ops/request, matching `xmodel-core`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak compute throughput (`M`).
    pub peak_ops: f64,
    /// Peak memory bandwidth (`R`).
    pub peak_bw: f64,
}

impl Roofline {
    /// Create a roofline.
    pub fn new(peak_ops: f64, peak_bw: f64) -> Self {
        assert!(peak_ops > 0.0 && peak_bw > 0.0);
        Self { peak_ops, peak_bw }
    }

    /// Attainable compute throughput at arithmetic intensity `z`.
    pub fn attainable(&self, z: f64) -> f64 {
        (z * self.peak_bw).min(self.peak_ops)
    }

    /// The ridge point `M/R`: the intensity where the two ceilings meet
    /// (the machine DLP of §III-A4).
    pub fn ridge(&self) -> f64 {
        self.peak_ops / self.peak_bw
    }

    /// `true` when a workload of intensity `z` is memory bound.
    pub fn is_memory_bound(&self, z: f64) -> bool {
        z < self.ridge()
    }

    /// Sample the roofline curve over `[z_min, z_max]` (log-spaced) for
    /// plotting.
    pub fn sample(&self, z_min: f64, z_max: f64, count: usize) -> Vec<(f64, f64)> {
        assert!(z_min > 0.0 && z_max > z_min && count >= 2);
        let ratio = (z_max / z_min).powf(1.0 / (count - 1) as f64);
        (0..count)
            .map(|i| {
                let z = z_min * ratio.powi(i as i32);
                (z, self.attainable(z))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kepler() -> Roofline {
        Roofline::new(6.0, 0.107)
    }

    #[test]
    fn bandwidth_slope_then_flat() {
        let r = kepler();
        assert!((r.attainable(10.0) - 1.07).abs() < 1e-12);
        assert_eq!(r.attainable(1000.0), 6.0);
    }

    #[test]
    fn ridge_point() {
        let r = kepler();
        assert!((r.ridge() - 6.0 / 0.107).abs() < 1e-9);
        assert!(r.is_memory_bound(10.0));
        assert!(!r.is_memory_bound(100.0));
    }

    #[test]
    fn attainable_is_continuous_at_ridge() {
        let r = kepler();
        let ridge = r.ridge();
        assert!((r.attainable(ridge) - r.peak_ops).abs() < 1e-9);
    }

    #[test]
    fn sample_is_monotone_nondecreasing() {
        let s = kepler().sample(0.1, 1000.0, 64);
        assert_eq!(s.len(), 64);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn roofline_ignores_thread_count() {
        // The §VII critique: no n anywhere in the prediction. Trivially
        // true by construction — the API has no thread parameter.
        let r = kepler();
        assert_eq!(r.attainable(50.0), r.attainable(50.0));
    }
}

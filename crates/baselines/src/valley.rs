//! The Valley model (Guz et al., CAL 2009 / ICCD 2010).
//!
//! Performance of `n` threads sharing a cache, under the three assumptions
//! §VII contrasts with the X-model:
//!
//! 1. MS is the bottleneck (a CS bound is bolted on as a cap);
//! 2. *all* `n` resident threads share the cache (the X-model argues only
//!    the `k` MS threads do);
//! 3. memory latency is fixed (no `max{L, k/R}` stretching).
//!
//! Per-thread cycle budget per iteration: `Z` compute cycles plus
//! `(1 − h(n))·L` stall cycles; `n` threads overlap these, capped by the
//! lane count and memory bandwidth:
//!
//! ```text
//! perf(n) = min(M, R·Z/(1 − h(n)), n·Z / (Z + (1 − h(n))·L))   ops/cycle
//! ```
//!
//! (the bandwidth ceiling applies to *miss* traffic: each request to
//! memory carries `Z/(1 − h)` operations' worth of work)
//!
//! With locality strong enough, `h(n)` collapses as `n` grows and the
//! middle term dips — the eponymous *valley* between the cache-efficiency
//! zone and the multithreading zone.

use serde::{Deserialize, Serialize};

/// Valley-model parameters (same units as `xmodel-core`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValleyModel {
    /// Lane count `M` (ops/cycle cap).
    pub m: f64,
    /// Memory bandwidth `R` (requests/cycle cap).
    pub r: f64,
    /// Fixed memory latency `L` (cycles).
    pub l: f64,
    /// Compute intensity `Z` (ops per request).
    pub z: f64,
    /// Cache capacity `S$` (bytes).
    pub s_cache: f64,
    /// Jacob locality exponent `α`.
    pub alpha: f64,
    /// Jacob per-thread working-set scale `β` (bytes).
    pub beta: f64,
}

impl ValleyModel {
    /// Hit rate with *all* `n` threads sharing the cache (the assumption
    /// the X-model relaxes to `k` threads).
    pub fn hit_rate(&self, n: f64) -> f64 {
        if self.s_cache <= 0.0 {
            return 0.0;
        }
        if n <= 0.0 {
            return 1.0;
        }
        1.0 - (self.s_cache / (self.beta * n) + 1.0).powf(-(self.alpha - 1.0))
    }

    /// Predicted compute throughput (ops/cycle) at `n` threads.
    pub fn perf(&self, n: f64) -> f64 {
        if n <= 0.0 {
            return 0.0;
        }
        let h = self.hit_rate(n);
        let miss = 1.0 - h;
        let per_thread_period = self.z + miss * self.l;
        let mt = n * self.z / per_thread_period;
        let bw_cap = if miss > 1e-12 {
            self.r * self.z / miss
        } else {
            f64::INFINITY
        };
        mt.min(self.m).min(bw_cap)
    }

    /// Sample `perf` over `n ∈ [1, n_max]`.
    pub fn sample(&self, n_max: f64, count: usize) -> Vec<(f64, f64)> {
        assert!(count >= 2 && n_max >= 1.0);
        (0..count)
            .map(|i| {
                let n = 1.0 + (n_max - 1.0) * i as f64 / (count - 1) as f64;
                (n, self.perf(n))
            })
            .collect()
    }

    /// Locate the valley: the interior local minimum of `perf` over
    /// `[1, n_max]`, if any.
    pub fn valley(&self, n_max: f64) -> Option<(f64, f64)> {
        let samples = self.sample(n_max, 2048);
        for i in 1..samples.len() - 1 {
            if samples[i].1 < samples[i - 1].1 - 1e-12 && samples[i].1 <= samples[i + 1].1 {
                return Some(samples[i]);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strong locality, long latency: the classic valley shape.
    fn model() -> ValleyModel {
        ValleyModel {
            m: 6.0,
            r: 0.2,
            l: 600.0,
            z: 8.0,
            s_cache: 16.0 * 1024.0,
            alpha: 5.0,
            beta: 2048.0,
        }
    }

    #[test]
    fn perf_zero_at_zero_threads() {
        assert_eq!(model().perf(0.0), 0.0);
    }

    #[test]
    fn cache_zone_is_efficient() {
        // Few threads, everything hits: perf ≈ n (Z/(Z+0) = 1 per thread,
        // in ops/cycle terms n·1... here Z/(Z+~0)·n ≈ n).
        let m = model();
        let p2 = m.perf(2.0);
        assert!(p2 > 1.5, "p2 = {p2}");
    }

    #[test]
    fn valley_exists_for_strong_locality() {
        let m = model();
        let (n_v, p_v) = m.valley(64.0).expect("valley expected");
        // The valley sits past the cache-fit point (8 threads) and is
        // lower than the cache-zone performance.
        assert!(n_v > 8.0 && n_v < 60.0, "valley at {n_v}");
        assert!(p_v < m.perf(4.0), "valley {p_v} not below cache zone");
        // And the multithreading zone eventually climbs back out.
        assert!(m.perf(64.0) > p_v);
    }

    #[test]
    fn no_valley_without_locality() {
        let m = ValleyModel {
            alpha: 1.01,
            ..model()
        };
        assert!(m.valley(64.0).is_none());
    }

    #[test]
    fn bandwidth_cap_applies() {
        // No cache: every request goes off-chip, so perf caps at R·Z.
        let m = ValleyModel {
            s_cache: 0.0,
            ..model()
        };
        assert!((m.perf(1000.0) - 1.6).abs() < 1e-9);
    }

    #[test]
    fn lane_cap_applies() {
        let m = ValleyModel {
            r: 10.0,
            s_cache: 0.0,
            ..model()
        };
        assert_eq!(m.perf(1e6), 6.0);
    }

    #[test]
    fn shares_cache_among_all_threads() {
        // The §VII critique made concrete: the valley model's hit rate
        // depends on n directly.
        let m = model();
        assert!(m.hit_rate(4.0) > m.hit_rate(32.0));
    }
}

//! # xmodel-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), each
//! printing the regenerated rows/series to stdout and writing CSV data
//! plus an SVG rendering under `target/experiments/`. The `benches/`
//! directory holds Criterion micro-benchmarks of the reproduction itself
//! (solver, simulator, cache model, trace generation) including the
//! ablations DESIGN.md calls out.

#![forbid(unsafe_code)]

pub mod json;

/// Bench-snapshot format version, shared by `bench-report` (the
/// measure/compare harness) and `serve-load` (the daemon load
/// generator) so `scripts/bench_gate.sh` can gate either file; bump on
/// incompatible change.
pub const BENCH_SCHEMA: &str = "xmodel-bench/1";

use std::fmt::Write as _;
use std::path::PathBuf;

/// Experiment output directory (`target/experiments`), created on demand.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(dir.join("figs")).expect("create output dirs");
    dir
}

/// Write a CSV file under the experiment directory.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let mut text = String::new();
    let _ = writeln!(text, "{}", header.join(","));
    for row in rows {
        let _ = writeln!(text, "{}", row.join(","));
    }
    let path = out_dir().join(format!("{name}.csv"));
    std::fs::write(&path, text).expect("write csv");
    path
}

/// Write an SVG figure under `target/experiments/figs`.
pub fn save_svg(name: &str, svg: &str) -> PathBuf {
    let path = out_dir().join("figs").join(format!("{name}.svg"));
    std::fs::write(&path, svg).expect("write svg");
    path
}

/// Write a JSON report under the experiment directory.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> PathBuf {
    let text = json::to_json(value).expect("serialize report");
    let path = out_dir().join(format!("{name}.json"));
    std::fs::write(&path, text).expect("write json");
    path
}

/// Print an aligned table to stdout.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(s, "{:>w$}  ", c, w = widths.get(i).copied().unwrap_or(8));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format a float with `d` decimals, as a `String` cell.
pub fn cell(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_writes_and_is_readable() {
        let p = write_csv(
            "selftest",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let text = std::fs::read_to_string(p).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn svg_saved() {
        let p = save_svg("selftest", "<svg/>");
        assert!(p.exists());
    }

    #[test]
    fn cell_formats() {
        assert_eq!(cell(1.23456, 2), "1.23");
        assert_eq!(cell(10.0, 0), "10");
    }
}

/// Shared setup for the §VI case-study experiments (Figs. 12–18).
pub mod case_study {
    use xmodel::prelude::*;

    /// The case-study application.
    pub fn app() -> Workload {
        Workload::get(WorkloadId::Gesummv)
    }

    /// The case-study platform.
    pub fn gpu() -> GpuSpec {
        GpuSpec::fermi_gtx570()
    }

    /// Assembled analytic model with an `l1_kib` KiB L1.
    pub fn model(l1_kib: u64) -> xmodel::core::XModel {
        xmodel::profile::fitting::assemble_model(&gpu(), &app(), l1_kib * 1024)
    }

    /// Simulator configuration for the case study: Fermi SM share with an
    /// L1 of `l1_kib` KiB (0 disables), a 51 KiB L2 share, gesummv's 3×
    /// coalescing factor, and `bypass` fraction of warps skipping L1.
    pub fn sim_config(l1_kib: u64, bypass: f64) -> SimConfig {
        let base = xmodel::profile::sim_config_for(&gpu(), Precision::Single);
        let mut b = SimConfig::builder()
            .lanes(base.lanes)
            .issue_width(base.issue_width)
            .lsu(base.lsu_per_cycle)
            .dram(base.dram.latency, base.dram.bytes_per_cycle)
            .request_bytes(128.0 * app().coalesce)
            .l2(51 * 1024, 180, base.dram.bytes_per_cycle * 2.0);
        if l1_kib > 0 {
            b = b.l1(l1_kib * 1024, 28, 64).bypass(bypass);
        }
        b.build()
    }

    /// Simulator workload for gesummv at `warps` resident warps.
    pub fn sim_workload(warps: u32) -> SimWorkload {
        let a = app().kernel.analyze();
        SimWorkload {
            trace: app().trace,
            ops_per_request: a.intensity,
            ilp: a.ilp,
            warps,
        }
    }

    /// Measured MS throughput (useful requests/cycle) for a configuration.
    pub fn measure(l1_kib: u64, bypass: f64, warps: u32) -> f64 {
        xmodel::sim::simulate(
            &sim_config(l1_kib, bypass),
            &sim_workload(warps),
            30_000,
            80_000,
        )
        .ms_throughput()
    }
}

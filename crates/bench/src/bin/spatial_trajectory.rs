//! Extension experiment: watch the spatial state move.
//!
//! The paper's central object is the thread distribution (x, k); §III-D
//! argues its dynamics informally. Here both descriptions of those
//! dynamics run side by side from the same initial conditions:
//!
//! * the model's thread-migration ODE `dk/dt = g(n−k)/Z − f(k)`;
//! * the cycle-level simulator's measured k(t).
//!
//! Two launches — all warps starting in CS, all starting in MS — show the
//! transient, the convergence, and (in the bistable configuration)
//! hysteresis: the two launches end at different steady states.

use xmodel::core::dynamics::{simulate as ode, SimulateOptions};
use xmodel::prelude::*;
use xmodel::sim::Sm;
use xmodel::viz::chart::{Chart, Series};
use xmodel::workloads::TraceSpec;
use xmodel_bench::{cell, print_table, save_svg, write_csv};

fn main() {
    println!("Spatial-state trajectories: model ODE vs cycle-level simulator\n");

    // A memory-bound configuration with a clean transient.
    let machine = MachineParams::new(6.0, 0.1, 600.0);
    let workload = WorkloadParams::new(20.0, 1.0, 48.0);
    let model = XModel::new(machine, workload);
    let k_star = model.solve().operating_point().unwrap().k;

    let cfg = SimConfig::builder()
        .lanes(6.0)
        .issue_width(8)
        .lsu(4)
        .dram(540, 0.1 * 128.0)
        .build();
    let wl = SimWorkload {
        trace: TraceSpec::Stream {
            region_lines: 1 << 22,
        },
        ops_per_request: 20.0,
        ilp: 1.0,
        warps: 48,
    };

    let horizon = 6_000u64;
    let mut chart = Chart::new(
        "k(t): model ODE vs simulator (n = 48)",
        "cycles",
        "warps in MS (k)",
    );
    let mut rows = Vec::new();
    for (i, (label, k0_frac)) in [("from CS (k0=0)", 0.0), ("from MS (k0=n)", 1.0)]
        .into_iter()
        .enumerate()
    {
        // Model trajectory.
        let opts = SimulateOptions {
            dt: 1.0,
            max_steps: horizon as usize,
            tol: 0.0, // run the full horizon
            record_every: 50,
        };
        let traj = ode(&model, k0_frac * 48.0, opts);
        chart = chart.with(Series::line(
            format!("model {label}"),
            traj.samples.clone(),
            i * 2,
        ));

        // Simulator trajectory.
        let mut sm = Sm::with_initial_ms_fraction(&cfg, &wl, 5, k0_frac);
        sm.trajectory_interval = 50;
        sm.run(0, horizon);
        let sim_pts: Vec<(f64, f64)> = sm
            .stats()
            .trajectory
            .iter()
            .map(|&(t, k)| (t as f64, k as f64))
            .collect();
        chart =
            chart.with(Series::line(format!("sim {label}"), sim_pts.clone(), i * 2 + 1).dashed());

        let model_end = traj.samples.last().unwrap().1;
        let sim_end = sim_pts.last().map(|&(_, k)| k).unwrap_or(0.0);
        rows.push(vec![
            label.to_string(),
            cell(model_end, 1),
            cell(sim_end, 1),
            cell(k_star, 1),
        ]);
        let mut csv = Vec::new();
        for (j, &(t, k)) in traj.samples.iter().enumerate() {
            let sim_k = sim_pts.get(j).map(|&(_, k)| k).unwrap_or(f64::NAN);
            csv.push(vec![cell(t, 0), cell(k, 2), cell(sim_k, 2)]);
        }
        write_csv(
            &format!("spatial_trajectory_{}", if i == 0 { "cs" } else { "ms" }),
            &["t", "model_k", "sim_k"],
            &csv,
        );
    }
    print_table(&["launch", "model k(end)", "sim k(end)", "model k*"], &rows);
    println!("\nBoth descriptions converge to the same equilibrium from both sides.");
    let path = save_svg("spatial_trajectory", &chart.to_svg(640.0, 400.0));
    println!("wrote {}", path.display());
}

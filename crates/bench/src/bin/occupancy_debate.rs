//! The introduction's motivating confusion, settled by the model: is
//! maximizing occupancy good for performance?
//!
//! The intro cites practitioners chasing 100% occupancy, then papers
//! showing (a) high occupancy can thrash the cache [1] and (b) with
//! enough ILP, *lower* occupancy can win [2]. Both phenomena fall out of
//! one X-model sweep:
//!
//! * cache-sensitive kernel: throughput vs n rises to the cache peak and
//!   then falls — maximum occupancy is the *worst* productive point;
//! * streaming kernel with tunable ILP: E = 2 reaches peak CS throughput
//!   at half the occupancy E = 1 needs (Volkov's observation).

use xmodel::prelude::*;
use xmodel::viz::chart::{Chart, Series};
use xmodel::viz::grid::PanelGrid;
use xmodel_bench::{cell, print_table, save_svg, write_csv};

fn main() {
    println!("The occupancy debate, resolved in one model (intro, refs [1] and [2])\n");

    // (a) Kayiran et al. [1]: cache thrashing under full occupancy.
    let machine = MachineParams::new(6.0, 0.02, 600.0);
    let cache = CacheParams::try_new(16.0 * 1024.0, 30.0, 5.0, 2048.0).unwrap();
    let mut cache_rows = Vec::new();
    let mut cache_curve = Vec::new();
    for n in (4..=48).step_by(4) {
        let model = XModel::with_cache(machine, WorkloadParams::new(40.0, 2.0, n as f64), cache);
        let ms = model.solve().operating_point().unwrap().ms_throughput;
        cache_curve.push((n as f64, ms));
        cache_rows.push(vec![
            format!("{:.0}%", n as f64 / 48.0 * 100.0),
            n.to_string(),
            cell(ms, 4),
        ]);
    }
    println!("(a) cache-sensitive kernel (the 'neither more nor less' case):");
    print_table(&["occupancy", "warps", "MS thr"], &cache_rows);
    let best = cache_curve
        .iter()
        .cloned()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    let full = cache_curve.last().unwrap();
    println!(
        "\nbest occupancy: {:.0}% ({} warps) — full occupancy loses {:.0}% of it\n",
        best.0 / 48.0 * 100.0,
        best.0,
        (1.0 - full.1 / best.1) * 100.0
    );

    // (b) Volkov [2]: better performance at lower occupancy with ILP.
    let kepler = GpuSpec::kepler_k40().machine_params(Precision::Single);
    let mut ilp_rows = Vec::new();
    let mut curves: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for e in [1.0, 2.0, 4.0] {
        let mut pts = Vec::new();
        let mut n_at_peak = f64::NAN;
        for n in 1..=64 {
            let model = XModel::new(kepler, WorkloadParams::new(300.0, e, n as f64));
            let cs = model.solve().operating_point().unwrap().cs_throughput;
            pts.push((n as f64, cs));
            if n_at_peak.is_nan() && cs >= 0.95 * kepler.m {
                n_at_peak = n as f64;
            }
        }
        ilp_rows.push(vec![
            format!("E = {e}"),
            format!("{n_at_peak}"),
            format!("{:.0}%", n_at_peak / 64.0 * 100.0),
        ]);
        curves.push((format!("E = {e}"), pts));
    }
    println!("(b) compute kernel on Kepler: occupancy needed for 95% of peak CS:");
    print_table(&["ILP", "warps needed", "occupancy"], &ilp_rows);
    println!("\nWith E = 4 a quarter of the occupancy reaches peak — exactly");
    println!("Volkov's 'better performance at lower occupancy'.");

    let panel_a = {
        let mut c = Chart::new(
            "(a) cache-sensitive: throughput vs occupancy",
            "warps",
            "MS throughput",
        );
        c = c.with(Series::line("MS thr", cache_curve, 0));
        c
    };
    let mut panel_b = Chart::new("(b) ILP lets low occupancy win", "warps", "CS throughput");
    for (i, (label, pts)) in curves.into_iter().enumerate() {
        panel_b = panel_b.with(Series::line(label, pts, i));
    }
    let svg = PanelGrid::new("The occupancy debate in the X-model", 2)
        .with(panel_a)
        .with(panel_b)
        .to_svg();
    let path = save_svg("occupancy_debate", &svg);
    write_csv(
        "occupancy_debate",
        &["occupancy", "warps", "ms"],
        &cache_rows,
    );
    println!("\nwrote {}", path.display());
}

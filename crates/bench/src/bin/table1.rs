//! Table I: the model's parameter glossary, instantiated with the values
//! of the §VI case-study configuration so every symbol has a concrete
//! number next to it.

use xmodel::prelude::Threads;
use xmodel_bench::{cell, print_table, write_csv};

fn main() {
    let model = xmodel_bench::case_study::model(16);
    let op = model.solve().operating_point().expect("operating point");
    let feats = model.ms_features(model.workload.n.max(64.0));

    let value = |symbol: &str| -> String {
        match symbol {
            "n" => cell(model.workload.n, 0),
            "k" => cell(op.k, 2),
            "x" => cell(op.x, 2),
            "f(k)" => format!("{} req/cyc at k", cell(op.ms_throughput, 4)),
            "g(x)" => format!("{} req/cyc demand", cell(op.ms_throughput, 4)),
            "Z" => cell(model.workload.z, 2),
            "E" => cell(model.workload.e, 2),
            "R" => cell(model.machine.r, 4),
            "M" => cell(model.machine.m, 1),
            "pi" => cell(model.pi(), 2),
            "delta" => cell(model.delta(), 1),
            "L" => cell(model.machine.l, 0),
            "h" => model
                .cache
                .map(|c| cell(c.hit_rate(Threads(op.k)), 3))
                .unwrap_or_else(|| "-".into()),
            "psi" => feats
                .psi()
                .map(|p| cell(p, 1))
                .unwrap_or_else(|| "-".into()),
            _ => "-".into(),
        }
    };

    let rows: Vec<Vec<String>> = xmodel::core::params::TABLE_I
        .iter()
        .map(|e| {
            vec![
                e.symbol.to_string(),
                e.description.to_string(),
                value(e.symbol),
            ]
        })
        .collect();
    println!("Table I — major parameters (values: gesummv on GTX570, 16 KiB L1)\n");
    print_table(&["symbol", "description", "case-study value"], &rows);
    write_csv("table1", &["symbol", "description", "value"], &rows);
}

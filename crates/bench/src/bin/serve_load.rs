//! `serve-load` — deterministic load generator for `xmodel serve`.
//!
//! Fires a fixed, seed-reproducible mix of good / malformed /
//! deadline-doomed requests at a running daemon from a pool of client
//! threads, then reports throughput (req/s) and latency quantiles
//! (p50/p95/p99 of 2xx responses) and optionally writes them as an
//! `xmodel-bench/1` snapshot so `scripts/bench_gate.sh` can gate them
//! exactly like the micro-bench numbers.
//!
//! ```text
//! serve-load --addr HOST:PORT [--requests N] [--concurrency C]
//!            [--mix G:M:D] [--seed S] [--deadline-ms MS]
//!            [--fault-spec SPEC] [--label L] [--out FILE]
//! serve-load --addr HOST:PORT --get PATH
//! serve-load --addr HOST:PORT --post PATH [--body JSON]
//! ```
//!
//! The `--mix G:M:D` weights interleave request classes round-robin
//! (Good solve, Malformed body, Deadline-doomed solve with a 1 ms
//! budget); every class assignment and parameter jitter is a pure
//! function of `(--seed, request index)`. Client-side chaos comes from
//! the shared fault grammar: `--fault-spec serve-slow-client=P` dribbles
//! request bytes, `serve-torn-body=P` declares more body than it sends.
//!
//! One-shot `--get`/`--post` mode prints the response body to stdout and
//! exits 0 on a 2xx status, 1 otherwise — it exists so `scripts/ci.sh`
//! can scrape `/metrics` and trigger `/quitck` without assuming `curl`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use xmodel::sim::{FaultInjector, FaultSpec};

/// Socket timeout for generated clients; a server that stops answering
/// shows up as timeout errors, not a hung generator.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RequestKind {
    Good,
    Malformed,
    DeadlineDoomed,
}

#[derive(Debug, Default, Clone)]
struct Tally {
    ok: u64,
    shed_429: u64,
    deadline_504: u64,
    client_error_4xx: u64,
    other: u64,
    transport_errors: u64,
    /// Latencies of 2xx responses, microseconds.
    latencies_us: Vec<f64>,
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return std::process::ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: serve-load --addr HOST:PORT [--requests N] [--concurrency C]\n\
         \u{20}                 [--mix G:M:D] [--seed S] [--deadline-ms MS]\n\
         \u{20}                 [--fault-spec SPEC] [--label L] [--out FILE]\n\
         \u{20}      serve-load --addr HOST:PORT --get PATH\n\
         \u{20}      serve-load --addr HOST:PORT --post PATH [--body JSON]\n\
         \n\
         Deterministic load generator for `xmodel serve`; writes req/s and\n\
         p50/p95/p99 as an xmodel-bench snapshot for bench_gate.sh. The\n\
         one-shot --get/--post mode prints the response body and exits 0\n\
         on 2xx (a curl substitute for CI scripts)."
    );
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn run(args: &[String]) -> Result<std::process::ExitCode, String> {
    let addr = flag_value(args, "--addr").ok_or("--addr HOST:PORT required")?;

    if let Some(path) = flag_value(args, "--get") {
        return one_shot(&addr, "GET", &path, "");
    }
    if let Some(path) = flag_value(args, "--post") {
        let body = flag_value(args, "--body").unwrap_or_default();
        return one_shot(&addr, "POST", &path, &body);
    }

    let requests: u64 = parse_or(args, "--requests", 100)?;
    let concurrency: u64 = parse_or(args, "--concurrency", 8)?.max(1);
    let seed: u64 = parse_or(args, "--seed", 42)?;
    let doomed_deadline_ms: u64 = parse_or(args, "--deadline-ms", 1)?;
    let mix = parse_mix(&flag_value(args, "--mix").unwrap_or_else(|| "1:0:0".to_string()))?;
    let spec = match flag_value(args, "--fault-spec") {
        Some(text) => FaultSpec::parse(&text).map_err(|e| format!("--fault-spec: {e}"))?,
        None => FaultSpec::default(),
    };
    let label = flag_value(args, "--label").unwrap_or_else(|| "serve".to_string());

    let started = Instant::now();
    let mut tallies: Vec<Tally> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..concurrency {
            let addr = addr.clone();
            handles.push(scope.spawn(move || {
                // Per-worker injector: decisions are a pure function of
                // (spec seed, worker, per-worker request order).
                let mut chaos = FaultInjector::new(&FaultSpec {
                    seed: spec.seed ^ splitmix64(seed.wrapping_add(worker)),
                    ..spec
                });
                let mut tally = Tally::default();
                let mut index = worker;
                while index < requests {
                    let kind = kind_for(index, mix);
                    fire(
                        &addr,
                        index,
                        seed,
                        kind,
                        doomed_deadline_ms,
                        &mut chaos,
                        &mut tally,
                    );
                    index += concurrency;
                }
                tally
            }));
        }
        for handle in handles {
            if let Ok(tally) = handle.join() {
                tallies.push(tally);
            }
        }
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut total = Tally::default();
    for t in &tallies {
        total.ok += t.ok;
        total.shed_429 += t.shed_429;
        total.deadline_504 += t.deadline_504;
        total.client_error_4xx += t.client_error_4xx;
        total.other += t.other;
        total.transport_errors += t.transport_errors;
        total.latencies_us.extend_from_slice(&t.latencies_us);
    }
    total
        .latencies_us
        .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let responses =
        total.ok + total.shed_429 + total.deadline_504 + total.client_error_4xx + total.other;
    let rps = if wall_s > 0.0 {
        responses as f64 / wall_s
    } else {
        0.0
    };
    let p50 = quantile(&total.latencies_us, 0.50);
    let p95 = quantile(&total.latencies_us, 0.95);
    let p99 = quantile(&total.latencies_us, 0.99);

    println!("serve-load: {requests} requests x{concurrency} in {wall_s:.2} s = {rps:.1} req/s");
    println!(
        "  2xx {}  429 {}  504 {}  4xx {}  other {}  transport-errors {}",
        total.ok,
        total.shed_429,
        total.deadline_504,
        total.client_error_4xx,
        total.other,
        total.transport_errors
    );
    println!("  admitted latency: p50 {p50:.0} us  p95 {p95:.0} us  p99 {p99:.0} us");

    if let Some(out) = flag_value(args, "--out") {
        write_snapshot(&out, &label, wall_s, rps, p50, p95, p99, &total)?;
        println!("wrote {out}");
    }
    Ok(std::process::ExitCode::SUCCESS)
}

fn parse_or(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    match flag_value(args, name) {
        Some(v) => v.parse().map_err(|e| format!("{name}: {e}")),
        None => Ok(default),
    }
}

/// `G:M:D` weights for good / malformed / deadline-doomed requests.
fn parse_mix(text: &str) -> Result<(u64, u64, u64), String> {
    let parts: Vec<&str> = text.split(':').collect();
    let [g, m, d] = parts.as_slice() else {
        return Err(format!("--mix: expected G:M:D, got {text:?}"));
    };
    let parse = |v: &str| v.parse::<u64>().map_err(|e| format!("--mix: {e}"));
    let mix = (parse(g)?, parse(m)?, parse(d)?);
    if mix.0 + mix.1 + mix.2 == 0 {
        return Err("--mix: at least one weight must be positive".to_string());
    }
    Ok(mix)
}

/// Round-robin class assignment: request `i` takes the class owning
/// slot `i mod (G+M+D)`. Pure in the index, so every run with the same
/// flags issues the same sequence.
fn kind_for(index: u64, (g, m, d): (u64, u64, u64)) -> RequestKind {
    let slot = index % (g + m + d);
    if slot < g {
        RequestKind::Good
    } else if slot < g + m {
        RequestKind::Malformed
    } else {
        let _ = d;
        RequestKind::DeadlineDoomed
    }
}

/// SplitMix64: the deterministic jitter source for request parameters.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Issue one request and record the outcome. Transport failures (shed
/// connections the server reset, timeouts) are counted, not fatal.
fn fire(
    addr: &str,
    index: u64,
    seed: u64,
    kind: RequestKind,
    doomed_deadline_ms: u64,
    chaos: &mut FaultInjector,
    tally: &mut Tally,
) {
    // Jitter n across requests so the sharded cache sees both reuse
    // (same supply curve) and fresh demand curves.
    let n = 16 + (splitmix64(seed ^ index) % 48);
    let (path, body) = match kind {
        RequestKind::Good => (
            "/solve",
            format!("{{\"gpu\":\"fermi\",\"z\":20,\"n\":{n},\"l1_kib\":16}}"),
        ),
        RequestKind::Malformed => ("/solve", "{\"gpu\":\"fermi\",\"z\":20,".to_string()),
        RequestKind::DeadlineDoomed => (
            "/solve",
            format!(
                "{{\"gpu\":\"fermi\",\"z\":20,\"n\":{n},\"l1_kib\":16,\
                 \"samples\":65536,\"deadline_ms\":{doomed_deadline_ms}}}"
            ),
        ),
    };
    let torn = chaos.serve_torn_body();
    let slow = chaos.serve_slow_client();
    // A torn body declares the full length but sends half: the server
    // must answer with a typed 400, not wait forever.
    let declared = body.len();
    let sent: &str = if torn { &body[..declared / 2] } else { &body };
    let head = format!("POST {path} HTTP/1.1\r\nHost: load\r\nContent-Length: {declared}\r\n\r\n");

    let started = Instant::now();
    let outcome = (|| -> std::io::Result<u16> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
        stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
        stream.write_all(head.as_bytes())?;
        if slow {
            // Slow client: dribble the body in small chunks with pauses,
            // exercising the server's bounded-read timeout.
            for chunk in sent.as_bytes().chunks(8) {
                stream.write_all(chunk)?;
                stream.flush()?;
                std::thread::sleep(Duration::from_millis(20));
            }
        } else {
            stream.write_all(sent.as_bytes())?;
        }
        if torn {
            stream.shutdown(std::net::Shutdown::Write)?;
        }
        let mut text = String::new();
        stream.read_to_string(&mut text)?;
        text.split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))
    })();

    match outcome {
        Ok(status) if (200..300).contains(&status) => {
            tally.ok += 1;
            tally
                .latencies_us
                .push(started.elapsed().as_micros() as f64);
        }
        Ok(429) => tally.shed_429 += 1,
        Ok(504) => tally.deadline_504 += 1,
        Ok(status) if (400..500).contains(&status) => tally.client_error_4xx += 1,
        Ok(_) => tally.other += 1,
        Err(_) => tally.transport_errors += 1,
    }
}

/// Nearest-rank quantile over an ascending slice (0 when empty).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[derive(serde::Serialize)]
struct ServeBench {
    name: String,
    ns_per_iter: f64,
    iters: u64,
}

#[derive(serde::Serialize)]
struct ServeSnapshot {
    schema: &'static str,
    label: String,
    version: String,
    os: String,
    arch: String,
    smoke: bool,
    wall_s: f64,
    serve_rps: f64,
    serve_p50_us: f64,
    serve_p95_us: f64,
    serve_p99_us: f64,
    responses_ok: u64,
    responses_shed: u64,
    responses_deadline: u64,
    responses_4xx: u64,
    transport_errors: u64,
    benches: Vec<ServeBench>,
}

/// Write the run as an `xmodel-bench/1` snapshot. The quantiles also
/// appear as `serve/request_p*` bench entries (latency in ns) so the
/// generic `bench-report --compare` path gates them with no special
/// cases; the `serve_*` top-level fields are the human-facing numbers
/// `bench_gate.sh` surfaces.
#[allow(clippy::too_many_arguments)]
fn write_snapshot(
    out: &str,
    label: &str,
    wall_s: f64,
    rps: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    total: &Tally,
) -> Result<(), String> {
    let iters = total.ok.max(1);
    let bench = |name: &str, us: f64| ServeBench {
        name: name.to_string(),
        // ns_per_iter must be finite and positive for compare mode.
        ns_per_iter: (us * 1000.0).max(1.0),
        iters,
    };
    let snapshot = ServeSnapshot {
        schema: xmodel_bench::BENCH_SCHEMA,
        label: label.to_string(),
        version: xmodel_obs::manifest::describe_version(),
        os: std::env::consts::OS.to_string(),
        arch: std::env::consts::ARCH.to_string(),
        smoke: false,
        wall_s,
        serve_rps: rps,
        serve_p50_us: p50,
        serve_p95_us: p95,
        serve_p99_us: p99,
        responses_ok: total.ok,
        responses_shed: total.shed_429,
        responses_deadline: total.deadline_504,
        responses_4xx: total.client_error_4xx,
        transport_errors: total.transport_errors,
        benches: vec![
            bench("serve/request_p50", p50),
            bench("serve/request_p95", p95),
            bench("serve/request_p99", p99),
        ],
    };
    let json = xmodel_bench::json::to_json(&snapshot).map_err(|e| e.to_string())?;
    std::fs::write(out, format!("{json}\n")).map_err(|e| format!("{out}: {e}"))
}

/// One request, response body to stdout, exit 0 on 2xx.
fn one_shot(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<std::process::ExitCode, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(CLIENT_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: load\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| e.to_string())?;
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("no status line in response: {text:?}"))?;
    let payload = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    print!("{payload}");
    if (200..300).contains(&status) {
        Ok(std::process::ExitCode::SUCCESS)
    } else {
        eprintln!("serve-load: {method} {path} -> {status}");
        Ok(std::process::ExitCode::from(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_assignment_is_deterministic_and_weighted() {
        let mix = parse_mix("6:1:1").unwrap();
        let kinds: Vec<RequestKind> = (0..80).map(|i| kind_for(i, mix)).collect();
        assert_eq!(kinds, (0..80).map(|i| kind_for(i, mix)).collect::<Vec<_>>());
        let good = kinds.iter().filter(|k| **k == RequestKind::Good).count();
        let bad = kinds
            .iter()
            .filter(|k| **k == RequestKind::Malformed)
            .count();
        let doomed = kinds
            .iter()
            .filter(|k| **k == RequestKind::DeadlineDoomed)
            .count();
        assert_eq!((good, bad, doomed), (60, 10, 10));
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile(&v, 0.50), 50.0);
        assert_eq!(quantile(&v, 0.95), 95.0);
        assert_eq!(quantile(&v, 0.99), 99.0);
        assert_eq!(quantile(&[], 0.99), 0.0);
    }

    #[test]
    fn mix_rejects_nonsense() {
        assert!(parse_mix("1:2").is_err());
        assert!(parse_mix("0:0:0").is_err());
        assert!(parse_mix("a:b:c").is_err());
    }
}

//! Ablation: the paper's per-SM bandwidth partition vs true chip-level
//! contention. The X-model (and §IV's profiling) gives every SM a static
//! `1/N` share of chip bandwidth. The multi-SM simulator lets N SMs
//! contend for one DRAM channel, so we can measure when the partition
//! assumption holds and by how much it errs.

use xmodel::prelude::*;
use xmodel::sim::chip::ChipSim;
use xmodel::workloads::TraceSpec;
use xmodel_bench::{cell, print_table, write_csv};

/// Per-SM share of chip bandwidth, bytes/cycle (kept low enough that a
/// 48-warp SM could consume several shares if the others let it).
const SHARE_BPC: f64 = 6.0;

fn cfg() -> SimConfig {
    SimConfig::builder()
        .lanes(6.0)
        .issue_width(8)
        .lsu(2)
        .dram(540, SHARE_BPC)
        .build()
}

fn stream(warps: u32, z: f64) -> SimWorkload {
    SimWorkload {
        trace: TraceSpec::Stream {
            region_lines: 1 << 22,
        },
        ops_per_request: z,
        ilp: 1.0,
        warps,
    }
}

fn main() {
    println!("Chip-level contention vs the per-SM static partition\n");
    let n_sms = 4;
    let chip_bw = SHARE_BPC * n_sms as f64;

    // The partition prediction: a solo SM given exactly 1/N of the chip
    // bandwidth (this is precisely how the model's per-SM R is derived).
    let solo = xmodel::sim::simulate(&cfg(), &stream(48, 2.0), 20_000, 60_000).ms_throughput();
    println!(
        "static-partition prediction (solo SM at 1/{} bandwidth): {} req/cyc\n",
        n_sms,
        cell(solo, 4)
    );

    // Homogeneous: all SMs memory-bound. Partition should hold.
    let nodes: Vec<_> = (0..n_sms).map(|_| (cfg(), stream(48, 2.0))).collect();
    let stats = ChipSim::new(&nodes, chip_bw, 42).run(20_000, 60_000);
    println!("homogeneous chip ({} memory-bound SMs):", n_sms);
    let mut rows = Vec::new();
    for (i, s) in stats.iter().enumerate() {
        rows.push(vec![
            format!("SM{i}"),
            cell(s.ms_throughput(), 4),
            cell(solo, 4),
            format!("{:+.1}%", 100.0 * (s.ms_throughput() / solo - 1.0)),
        ]);
    }
    print_table(&["sm", "measured", "partition pred.", "error"], &rows);
    write_csv(
        "chip_partition_homogeneous",
        &["sm", "measured", "solo", "err"],
        &rows,
    );

    // Heterogeneous: one hungry SM among compute-bound neighbours.
    println!("\nheterogeneous chip (1 memory-hungry + 3 compute-bound SMs):");
    let mut nodes = vec![(cfg(), stream(48, 2.0))];
    for _ in 1..n_sms {
        nodes.push((cfg(), stream(48, 400.0)));
    }
    let stats = ChipSim::new(&nodes, chip_bw, 42).run(20_000, 60_000);
    let mut rows = Vec::new();
    for (i, s) in stats.iter().enumerate() {
        rows.push(vec![
            format!("SM{i}{}", if i == 0 { " (hungry)" } else { "" }),
            cell(s.ms_throughput(), 4),
            cell(s.cs_throughput(), 3),
            format!("{:+.0}%", 100.0 * (s.ms_throughput() / solo - 1.0)),
        ]);
    }
    print_table(&["sm", "MS thr", "CS thr", "vs partition pred."], &rows);
    write_csv(
        "chip_partition_heterogeneous",
        &["sm", "ms", "cs", "vs_share"],
        &rows,
    );

    println!("\nConclusion: with symmetric workloads the static 1/N partition the");
    println!("paper assumes holds within a few percent; with asymmetric mixes an");
    println!("SM can draw several times its share, so per-SM models of mixed");
    println!("workloads should re-profile R under co-location.");
}

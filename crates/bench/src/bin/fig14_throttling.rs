//! Fig. 14: optimization 1 — thread throttling (--n). The intersection
//! climbs the descending slope of f until g(x) passes through the cache
//! peak ψ; throttling further degrades again.

use xmodel::core::xgraph::XGraph;
use xmodel::prelude::*;
use xmodel::render;
use xmodel::viz::grid::PanelGrid;
use xmodel_bench::case_study;
use xmodel_bench::{cell, print_table, save_svg, write_csv};

fn main() {
    let model = case_study::model(16);
    let what_if = WhatIf::new(model);
    let units = case_study::gpu().units(Precision::Single);
    let n_star = what_if.optimal_throttle().expect("cache peak exists");

    println!("Fig. 14 — thread throttling (--n)\n");
    println!(
        "optimal throttle n* = ψ + x* = {:.1} warps (of {})",
        n_star, model.workload.n
    );
    println!(
        "throttle bound: min(f(ψ), M/Z) = {} GB/s per SM\n",
        cell(units.ms_to_gbs(what_if.throttle_bound()), 2)
    );

    let mut rows = Vec::new();
    for n in [48.0, 40.0, 32.0, 24.0, n_star, 12.0, 8.0, 4.0, 2.0] {
        let eff = what_if
            .evaluate(Optimization::ThreadThrottle { n })
            .expect("equilibrium");
        let sim = case_study::measure(16, 0.0, n.round().max(1.0) as u32);
        rows.push(vec![
            cell(n, 1),
            cell(units.ms_to_gbs(eff.ms_after), 3),
            cell(eff.ms_speedup(), 2),
            cell(units.ms_to_gbs(sim), 3),
        ]);
    }
    print_table(
        &["n (warps)", "model MS GB/s", "model speedup", "sim MS GB/s"],
        &rows,
    );
    println!("\nPrinciple 2: the intersection climbs while Z is unchanged, so CS and");
    println!("MS improve together; beyond ψ the curve falls again (last rows).");
    write_csv(
        "fig14_throttling",
        &["n", "model_gbs", "model_speedup", "sim_gbs"],
        &rows,
    );

    let before = XGraph::build(&model, 512);
    let after = XGraph::build(
        &Optimization::ThreadThrottle { n: n_star }.apply(&model),
        512,
    );
    let grid = PanelGrid::new("Fig. 14 — thread throttling", 2)
        .with(render::xgraph_chart(&before, Some(&units)))
        .with(render::xgraph_chart(&after, Some(&units)));
    let path = save_svg("fig14_throttling", &grid.to_svg());
    println!("wrote {}", path.display());
}

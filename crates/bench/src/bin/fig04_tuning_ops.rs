//! Fig. 4: the six operating knobs of the X-model — R, L, M, Z, E, n —
//! each drawn as a family of three curves (low/base/high) in MS space.

use xmodel::core::tuning::{sweep, Knob, TuningOp};
use xmodel::prelude::*;
use xmodel::viz::chart::{Chart, Series};
use xmodel::viz::grid::PanelGrid;
use xmodel_bench::{cell, save_svg, write_csv};

fn base_model() -> XModel {
    XModel::new(
        MachineParams::new(4.0, 0.1, 500.0),
        WorkloadParams::new(20.0, 1.0, 48.0),
    )
}

type Panel = (&'static str, fn(f64) -> TuningOp, [f64; 3], bool);

fn main() {
    let base = base_model();
    let panels: Vec<Panel> = vec![
        (
            "(A) memory bandwidth R",
            |v| TuningOp::Machine(Knob::MemBandwidth(v)),
            [0.05, 0.1, 0.2],
            true,
        ),
        (
            "(B) memory latency L",
            |v| TuningOp::Machine(Knob::MemLatency(v)),
            [250.0, 500.0, 1000.0],
            true,
        ),
        (
            "(C) compute lanes M",
            |v| TuningOp::Machine(Knob::Lanes(v)),
            [2.0, 4.0, 8.0],
            false,
        ),
        (
            "(D) compute intensity Z",
            |v| TuningOp::Machine(Knob::Intensity(v)),
            [10.0, 20.0, 40.0],
            false,
        ),
        (
            "(E) ILP degree E",
            |v| TuningOp::Machine(Knob::Ilp(v)),
            [1.0, 2.0, 4.0],
            false,
        ),
        (
            "(F) machine threads n",
            |v| TuningOp::Machine(Knob::Threads(v)),
            [24.0, 48.0, 96.0],
            false,
        ),
    ];

    let mut grid = PanelGrid::new("Fig. 4 — operating the X-model", 3);
    let mut rows = Vec::new();
    for (title, make, values, vary_f) in panels {
        let mut chart = Chart::new(title, "threads", "MS throughput");
        for (i, model) in sweep(&base, make, &values).iter().enumerate() {
            let series_pts = if vary_f {
                model.sample_fk(96.0, 97)
            } else {
                (0..97)
                    .map(|j| {
                        let x = 96.0 * j as f64 / 96.0;
                        (x, model.g_hat(x))
                    })
                    .collect()
            };
            chart = chart.with(Series::line(
                format!(
                    "{} = {}",
                    title.split(' ').next_back().unwrap_or("v"),
                    values[i]
                ),
                series_pts,
                i,
            ));
            let op = model.solve().operating_point().unwrap();
            rows.push(vec![
                title.to_string(),
                cell(values[i], 2),
                cell(op.ms_throughput, 5),
                cell(op.cs_throughput, 4),
                cell(op.k, 2),
            ]);
        }
        // The unchanged opposite curve for context.
        if vary_f {
            let ghat: Vec<(f64, f64)> = (0..97)
                .map(|j| {
                    let x = 96.0 * j as f64 / 96.0;
                    (x, base.g_hat(x))
                })
                .collect();
            chart = chart.with(Series::line("g/Z (fixed)", ghat, 7).dashed());
        } else {
            chart = chart.with(Series::line("f (fixed)", base.sample_fk(96.0, 97), 7).dashed());
        }
        grid = grid.with(chart);
    }
    let path = save_svg("fig04_tuning_ops", &grid.to_svg());
    write_csv(
        "fig04_tuning_ops",
        &["knob", "value", "ms", "cs", "k"],
        &rows,
    );
    println!("Fig. 4 regenerated: {} knob settings evaluated", rows.len());
    for r in &rows {
        println!(
            "  {:<26} = {:>7}: MS {:>8} CS {:>7} k {:>6}",
            r[0], r[1], r[2], r[3], r[4]
        );
    }
    println!("wrote {}", path.display());
}

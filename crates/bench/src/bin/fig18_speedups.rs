//! Fig. 18: validation of the model-suggested tunings on the simulated
//! GTX570 — normalized speedups for larger cache, thread throttling and
//! cache bypassing under both L1 sizes, plus the L1-disabled reference.

use xmodel::prelude::*;
use xmodel::viz::chart::{Chart, Series};
use xmodel_bench::case_study;
use xmodel_bench::{cell, print_table, save_svg, write_csv};

const SWEEP: [u32; 9] = [2, 3, 4, 6, 8, 12, 16, 24, 32];

fn best_throttle(l1_kib: u64) -> (u32, f64) {
    let mut best = (48u32, case_study::measure(l1_kib, 0.0, 48));
    for &n in &SWEEP {
        let t = case_study::measure(l1_kib, 0.0, n);
        if t > best.1 {
            best = (n, t);
        }
    }
    best
}

fn best_bypass(l1_kib: u64) -> (u32, f64) {
    let mut best = (48u32, case_study::measure(l1_kib, 0.0, 48));
    for &j in &SWEEP {
        let t = case_study::measure(l1_kib, 1.0 - j as f64 / 48.0, 48);
        if t > best.1 {
            best = (j, t);
        }
    }
    best
}

fn main() {
    println!("Fig. 18 — gesummv optimization results on the simulated GTX570\n");
    let units = case_study::gpu().units(Precision::Single);

    let base = case_study::measure(16, 0.0, 48);
    let (tn16, t16) = best_throttle(16);
    let (bj16, b16) = best_bypass(16);
    let c48 = case_study::measure(48, 0.0, 48);
    let (tn48, t48) = best_throttle(48);
    let (bj48, b48) = best_bypass(48);
    let off = case_study::measure(0, 0.0, 48);

    let paper = [1.0, 1.08, 1.22, 1.07, 1.26, 1.36, 1.0];
    let configs = [
        ("16KB L1".to_string(), base),
        (format!("16KB throttled (n={tn16})"), t16),
        (format!("16KB bypassing (j={bj16})"), b16),
        ("48KB L1".to_string(), c48),
        (format!("48KB throttled (n={tn48})"), t48),
        (format!("48KB bypassing (j={bj48})"), b48),
        ("L1 disabled".to_string(), off),
    ];

    let mut rows = Vec::new();
    for (i, (name, thr)) in configs.iter().enumerate() {
        rows.push(vec![
            name.clone(),
            cell(units.ms_to_gbs(*thr), 3),
            format!("{:.2}x", thr / base),
            format!("{:.2}x", paper[i]),
        ]);
    }
    print_table(&["config", "GB/s per SM", "speedup", "paper"], &rows);
    write_csv(
        "fig18_speedups",
        &["config", "gbs", "speedup", "paper"],
        &rows,
    );

    println!("\nShape check: larger cache alone is modest; throttling and");
    println!("bypassing both help, more so with 48 KiB; disabling L1 is a wash.");
    println!("(Our substrate lets throttling reach the full analytic cache");
    println!("peak, which silicon's MSHR/miss-queue contention prevented —");
    println!("see EXPERIMENTS.md for the factor-level comparison.)");

    let bars = Series::bars(
        "speedup vs 16KB L1",
        configs
            .iter()
            .enumerate()
            .map(|(i, (_, t))| (i as f64 + 1.0, t / base))
            .collect(),
        0,
    );
    let chart = Chart::new(
        "Fig. 18 — gesummv optimization results (bars 1..7 in table order)",
        "configuration",
        "normalized speedup",
    )
    .with(bars);
    let path = save_svg("fig18_speedups", &chart.to_svg(640.0, 360.0));
    println!("wrote {}", path.display());
}

//! Fig. 8: the three cache-tuning operations — (A) workload locality
//! (α, β), (B) cache capacity S$, (C) cache access latency L$ — each as a
//! three-curve family of Eq. (5).

use xmodel::core::cache::CachedMsCurve;
use xmodel::prelude::*;
use xmodel::viz::chart::{Chart, Series};
use xmodel::viz::grid::PanelGrid;
use xmodel_bench::{cell, save_svg, write_csv};

fn main() {
    let machine = MachineParams::new(6.0, 0.1, 600.0);
    let base = CacheParams::try_new(16.0 * 1024.0, 30.0, 5.0, 2048.0).unwrap();
    let sample = |cache: CacheParams| -> Vec<(f64, f64)> {
        let c = CachedMsCurve::new(&machine, cache);
        (0..=256)
            .map(|i| {
                let k = 128.0 * i as f64 / 256.0;
                (k, c.f(Threads(k)).get())
            })
            .collect()
    };

    let mut rows = Vec::new();
    let mut record = |panel: &str, label: &str, cache: CacheParams| {
        let c = CachedMsCurve::new(&machine, cache);
        let f = c.features(Threads(128.0));
        rows.push(vec![
            panel.to_string(),
            label.to_string(),
            f.peak.map(|p| cell(p.k, 1)).unwrap_or("-".into()),
            f.peak.map(|p| cell(p.value, 4)).unwrap_or("-".into()),
            f.valley.map(|v| cell(v.value, 4)).unwrap_or("-".into()),
        ]);
    };

    // (A) locality
    let ci = base.with_locality(1.05, 2048.0);
    let mcs = base.with_locality(3.0, 2048.0);
    let hcs = base.with_locality(6.0, 2048.0);
    record("A", "cache insensitive", ci);
    record("A", "moderately sensitive", mcs);
    record("A", "highly sensitive", hcs);
    let panel_a = Chart::new("(A) locality α", "MS threads (k)", "MS throughput")
        .with(Series::line("CI (α=1.05)", sample(ci), 0))
        .with(Series::line("MCS (α=3)", sample(mcs), 1))
        .with(Series::line("HCS (α=6)", sample(hcs), 2));

    // (B) capacity
    let none = base.with_capacity(0.0);
    let small = base.with_capacity(16.0 * 1024.0);
    let large = base.with_capacity(48.0 * 1024.0);
    record("B", "no cache", none);
    record("B", "16 KiB", small);
    record("B", "48 KiB", large);
    let panel_b = Chart::new("(B) capacity S$", "MS threads (k)", "MS throughput")
        .with(Series::line("no cache", sample(none), 0))
        .with(Series::line("16 KiB", sample(small), 1))
        .with(Series::line("48 KiB", sample(large), 2));

    // (C) latency
    let offchip = base.with_latency(600.0);
    let slow = base.with_latency(90.0);
    let fast = base.with_latency(15.0);
    record("C", "off-chip speed", offchip);
    record("C", "slow cache", slow);
    record("C", "fast cache", fast);
    let panel_c = Chart::new("(C) cache latency L$", "MS threads (k)", "MS throughput")
        .with(Series::line("L$=600 (off-chip)", sample(offchip), 0))
        .with(Series::line("L$=90 (slow)", sample(slow), 1))
        .with(Series::line("L$=15 (fast)", sample(fast), 2));

    let grid = PanelGrid::new("Fig. 8 — tuning the cache-integrated f(k)", 3)
        .with(panel_a)
        .with(panel_b)
        .with(panel_c);
    let path = save_svg("fig08_cache_tuning", &grid.to_svg());
    xmodel_bench::print_table(&["panel", "curve", "ψ", "peak f", "valley f"], &rows);
    write_csv(
        "fig08_cache_tuning",
        &["panel", "curve", "psi", "peak", "valley"],
        &rows,
    );
    println!("\nwrote {}", path.display());
}

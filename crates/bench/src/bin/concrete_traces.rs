//! Ablation: synthetic trace generators vs the real algorithms.
//!
//! The 12-workload suite approximates each kernel's access pattern with a
//! statistical generator (gather, shared vector, private working set …).
//! Here three of the underlying algorithms are *actually executed* — CSR
//! SpMV, level-synchronous BFS, a 5-point stencil — their address streams
//! recorded, and both versions run through the same cached simulator. If
//! the synthetic approximation is good, throughput and hit rates agree.

use xmodel::prelude::*;
use xmodel::profile::calibrate::{calibrate_private_ws, curve_rms, synthetic_hit_curve};
use xmodel::sim::Sm;
use xmodel::workloads::concrete;
use xmodel_bench::{cell, print_table, write_csv};

fn cached_cfg() -> SimConfig {
    SimConfig::builder()
        .lanes(6.0)
        .issue_width(8)
        .lsu(2)
        .dram(540, 13.7)
        .l1(16 * 1024, 28, 32)
        .build()
}

fn run_synthetic(w: &Workload, warps: u32) -> (f64, f64) {
    let a = w.kernel.analyze();
    let stats = xmodel::sim::simulate(
        &cached_cfg(),
        &SimWorkload {
            trace: w.trace,
            ops_per_request: a.intensity,
            ilp: a.ilp,
            warps,
        },
        15_000,
        50_000,
    );
    (stats.ms_throughput(), stats.hit_rate())
}

fn run_recorded(w: &Workload, traces: &concrete::RecordedTraces, warps: u32) -> (f64, f64) {
    let a = w.kernel.analyze();
    let mut sm = Sm::with_streams(&cached_cfg(), traces.streams(warps), a.intensity, a.ilp, 42);
    sm.run(15_000, 50_000);
    (sm.stats().ms_throughput(), sm.stats().hit_rate())
}

fn main() {
    println!("Synthetic trace generators vs recorded algorithm traces\n");
    let warps = 32;

    let cases: Vec<(&str, Workload, concrete::RecordedTraces)> = vec![
        (
            "spmv",
            Workload::get(WorkloadId::Spmv),
            concrete::spmv_csr(16_384, 8, warps, 7),
        ),
        (
            "bfs",
            Workload::get(WorkloadId::Bfs),
            concrete::bfs_frontier(40_000, 8, warps, 7),
        ),
        (
            "stencil",
            Workload::get(WorkloadId::Stencil),
            concrete::stencil5(1024, 256, warps),
        ),
    ];

    let mut rows = Vec::new();
    for (name, w, traces) in &cases {
        let (ms_syn, h_syn) = run_synthetic(w, warps);
        let (ms_rec, h_rec) = run_recorded(w, traces, warps);
        let gap = (ms_syn - ms_rec).abs() / ms_rec.max(1e-12);
        rows.push(vec![
            name.to_string(),
            cell(ms_syn, 4),
            cell(ms_rec, 4),
            format!("{:.0}%", gap * 100.0),
            format!("{:.2}", h_syn),
            format!("{:.2}", h_rec),
            traces.total_accesses().to_string(),
        ]);
    }
    print_table(
        &[
            "app",
            "synthetic MS",
            "recorded MS",
            "gap",
            "syn hit",
            "rec hit",
            "trace len",
        ],
        &rows,
    );
    write_csv(
        "concrete_traces",
        &[
            "app", "syn_ms", "rec_ms", "gap", "syn_hit", "rec_hit", "len",
        ],
        &rows,
    );
    println!("\nWhere hit rates diverge, the synthetic generator's locality knob");
    println!("(skew / vector_prob / ws_lines) is what needs recalibration — the");
    println!("rest of the pipeline is unchanged between the two runs.");

    // Close the loop: calibrate a synthetic generator against the recorded
    // spmv trace and re-run the simulator with it.
    println!("\n== calibration (spmv) ==");
    let (_, w, traces) = &cases[0];
    let cal = calibrate_private_ws(traces, 16 * 1024, 8_000);
    println!(
        "fitted spec: {:?}  (hit-curve rms {:.3})",
        cal.spec, cal.rms
    );
    let default_rms = curve_rms(
        &cal.target_curve,
        &synthetic_hit_curve(&w.trace, 16 * 1024, 8_000),
    );
    let (ms_rec, _) = run_recorded(w, traces, warps);
    let mut wcal = w.clone();
    wcal.trace = cal.spec;
    let (ms_cal, _) = run_synthetic(&wcal, warps);
    let (ms_def, _) = run_synthetic(w, warps);
    println!(
        "hit-curve rms: default {:.3} -> calibrated {:.3}",
        default_rms, cal.rms
    );
    println!(
        "simulated MS thr: recorded {}  default-synthetic {}  calibrated-synthetic {}",
        cell(ms_rec, 4),
        cell(ms_def, 4),
        cell(ms_cal, 4)
    );
    let gap = |a: f64| (a - ms_rec).abs() / ms_rec;
    println!(
        "gap to recorded: default {:.0}% -> calibrated {:.0}%",
        gap(ms_def) * 100.0,
        gap(ms_cal) * 100.0
    );
}

//! Table II: the experiment platforms, with the δ(SP)/δ(DP) saturation
//! columns *re-measured* by running the Stream microbenchmark on the
//! simulator — the same procedure the paper used on silicon.

use xmodel::prelude::*;
use xmodel_bench::{cell, print_table, write_csv};

fn main() {
    println!("Table II — experiment platforms (measured on the simulator)\n");
    let mut rows = Vec::new();
    for gpu in GpuSpec::all() {
        let mut deltas = Vec::new();
        for precision in [Precision::Single, Precision::Double] {
            let cfg = xmodel::profile::sim_config_for(&gpu, precision);
            let profile = xmodel::profile::stream::profile_stream(&cfg, gpu.max_warps as u32, 4);
            let units = gpu.units(precision);
            let sustained = units.ms_to_gbs(profile.r) * gpu.sm_count as f64;
            deltas.push((profile.delta, sustained, gpu.delta(precision)));
        }
        let (sp, dp) = (&deltas[0], &deltas[1]);
        rows.push(vec![
            gpu.name.to_string(),
            format!("{:?}", gpu.generation),
            format!("{}x{}", gpu.sm_count, gpu.sp_per_sm),
            gpu.lds_per_sm.to_string(),
            format!("{} MHz", gpu.freq_mhz),
            format!("{} GB/s", gpu.mem_bw_gbs),
            gpu.max_warps.to_string(),
            gpu.schedulers.to_string(),
            gpu.dispatch.to_string(),
            format!("{}/{}", cell(sp.0, 0), cell(sp.1, 0)),
            format!("{}/{}", cell(sp.2 .0, 0), cell(sp.2 .1, 0)),
            format!("{}/{}", cell(dp.0, 0), cell(dp.1, 0)),
            format!("{}/{}", cell(dp.2 .0, 0), cell(dp.2 .1, 0)),
        ]);
    }
    print_table(
        &[
            "GPU",
            "arch",
            "SMxSP",
            "LDS",
            "freq",
            "mem BW",
            "warps",
            "schr",
            "disp",
            "δ(SP) meas",
            "δ(SP) paper",
            "δ(DP) meas",
            "δ(DP) paper",
        ],
        &rows,
    );
    write_csv(
        "table2",
        &[
            "gpu",
            "arch",
            "sm_sp",
            "lds",
            "freq",
            "bw",
            "warps",
            "schr",
            "disp",
            "dsp_meas",
            "dsp_paper",
            "ddp_meas",
            "ddp_paper",
        ],
        &rows,
    );
    println!("\nδ columns are `warps / sustained GB/s` at MS saturation.");
}

//! Fig. 16: optimization 3 — increasing compute intensity (++Z).
//! Principle 3: CS throughput rises markedly while the MS intersection
//! barely moves (algorithm-level change required).

use xmodel::core::xgraph::XGraph;
use xmodel::prelude::*;
use xmodel::render;
use xmodel::viz::grid::PanelGrid;
use xmodel_bench::case_study;
use xmodel_bench::{cell, print_table, save_svg, write_csv};

fn main() {
    let model = case_study::model(16);
    let what_if = WhatIf::new(model);
    let units = case_study::gpu().units(Precision::Single);

    println!("Fig. 16 — increasing compute intensity (++Z)\n");
    let mut rows = Vec::new();
    for mult in [1.0, 1.5, 2.0, 3.0, 4.0] {
        let z = model.workload.z * mult;
        let eff = what_if
            .evaluate(Optimization::IncreaseIntensity { z })
            .unwrap();
        rows.push(vec![
            cell(z, 2),
            cell(units.ms_to_gbs(eff.ms_after), 3),
            cell(eff.ms_speedup(), 3),
            cell(units.cs_to_gflops(eff.cs_after), 2),
            cell(eff.cs_speedup(), 2),
        ]);
    }
    print_table(
        &["Z", "MS GB/s", "MS speedup", "CS GF/s", "CS speedup"],
        &rows,
    );
    println!("\nMS throughput improvement is very limited while CS throughput");
    println!("scales with Z — exactly the Fig. 16 narrative (Principle 3).");
    write_csv(
        "fig16_intensity",
        &["z", "ms_gbs", "ms_speedup", "cs_gflops", "cs_speedup"],
        &rows,
    );

    let before = XGraph::build(&model, 512);
    let after = XGraph::build(
        &Optimization::IncreaseIntensity {
            z: model.workload.z * 2.0,
        }
        .apply(&model),
        512,
    );
    let grid = PanelGrid::new("Fig. 16 — increasing Z", 2)
        .with(render::xgraph_chart(&before, Some(&units)))
        .with(render::xgraph_chart(&after, Some(&units)));
    let path = save_svg("fig16_intensity", &grid.to_svg());
    println!("wrote {}", path.display());
}

//! Fig. 5: capacity bound / machine balance — both subsystems at their
//! best simultaneously, with (right) and without (left) idle threads.

use xmodel::core::xgraph::XGraph;
use xmodel::prelude::*;
use xmodel::render;
use xmodel::viz::grid::PanelGrid;
use xmodel_bench::{cell, print_table, save_svg};

fn main() {
    // Balanced workload: Z = M/R so both plateaus meet.
    let machine = MachineParams::new(4.0, 0.1, 500.0);
    let z = machine.m / machine.r; // 40
    let tlp = machine.m / 1.0 + machine.delta().get(); // pi + delta = 54

    println!("Fig. 5 — machine balance at Z = M/R = {z}\n");
    let mut rows = Vec::new();
    let mut grid = PanelGrid::new("Fig. 5 — capacity bound / machine balance", 2);
    for (label, n) in [
        ("exact balance (n = pi + delta)", tlp),
        ("surplus threads", tlp + 40.0),
    ] {
        let model = XModel::new(machine, WorkloadParams::new(z, 1.0, n));
        let rep = model.balance();
        rows.push(vec![
            label.to_string(),
            cell(n, 0),
            format!("{:?}", rep.bound),
            cell(rep.cs_utilization, 3),
            cell(rep.ms_utilization, 3),
            cell(rep.idle_threads, 1),
        ]);
        let graph = XGraph::build(&model, 256);
        grid = grid.with(render::xgraph_chart(&graph, None));
    }
    print_table(
        &[
            "scenario",
            "n",
            "bound",
            "CS util",
            "MS util",
            "idle threads",
        ],
        &rows,
    );
    let path = save_svg("fig05_machine_balance", &grid.to_svg());
    println!("\nThe machine TLP (minimum n for balance) is pi + delta = {tlp}.");
    println!("wrote {}", path.display());
}

//! Ablation: how much does the paper's three-parameter application
//! abstraction `(Z, E, n)` lose against executing the actual instruction
//! stream? The IR-driven simulator honours dual-issue groups, the
//! shared-memory path and `BAR` barriers; the parametric simulator *is*
//! the model's abstraction. Their agreement bounds the abstraction error
//! separately from the model-vs-machine error of Fig. 11.

use xmodel::prelude::*;
use xmodel::sim::exec::simulate_ir;
use xmodel_bench::{cell, print_table, write_csv};

fn main() {
    let gpu = GpuSpec::kepler_k40();
    println!(
        "IR-driven vs parametric simulation, {} (no L1, per-SM share)\n",
        gpu.name
    );

    let mut rows = Vec::new();
    let mut errs = Vec::new();
    for w in Workload::suite() {
        let precision = xmodel::profile::fitting::workload_precision(&w);
        let mut cfg = xmodel::profile::sim_config_for(&gpu, precision);
        cfg.request_bytes = 128.0 * w.coalesce;
        let a = w.kernel.analyze();
        let occ = Occupancy::compute(&w.kernel, &xmodel::profile::fitting::arch_limits(&gpu, 0));
        let n = occ.warps.min(gpu.max_warps as u32);

        let par = xmodel::sim::simulate(
            &cfg,
            &SimWorkload {
                trace: w.trace,
                ops_per_request: a.intensity,
                ilp: a.ilp,
                warps: n,
            },
            15_000,
            50_000,
        );
        let ir = simulate_ir(&cfg, &w.kernel, w.trace, n, 15_000, 50_000);

        let err = if par.cs_throughput() > 0.0 {
            (ir.cs_throughput() - par.cs_throughput()).abs() / par.cs_throughput()
        } else {
            0.0
        };
        errs.push(err);
        let has_bar = w.kernel.dynamic_count(|o| o == xmodel::isa::Opcode::BAR) > 0.0;
        let has_smem = w
            .kernel
            .dynamic_count(|o| o.is_mem() && !o.is_offchip_mem())
            > 0.0;
        rows.push(vec![
            w.name.to_string(),
            n.to_string(),
            cell(par.cs_throughput(), 3),
            cell(ir.cs_throughput(), 3),
            format!("{:.1}%", err * 100.0),
            if has_bar { "yes" } else { "" }.to_string(),
            if has_smem { "yes" } else { "" }.to_string(),
        ]);
    }
    print_table(
        &["app", "n", "parametric CS", "IR CS", "gap", "BAR", "smem"],
        &rows,
    );
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    let max = errs.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nmean abstraction gap {:.1}%, worst {:.1}% — the kernels with",
        mean * 100.0,
        max * 100.0
    );
    println!("barriers/shared memory lose the most information in (Z, E, n),");
    println!("which is where the Fig. 11 prediction error concentrates too.");
    write_csv(
        "ir_vs_parametric",
        &["app", "n", "par_cs", "ir_cs", "gap", "bar", "smem"],
        &rows,
    );
}

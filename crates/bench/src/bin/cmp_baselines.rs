//! §VII extension experiment: the X-model against the three baseline
//! analytic models (Roofline, Valley, MWP-CWP) on the 12-workload suite,
//! all judged against the cycle-level simulator.

use xmodel::prelude::*;
use xmodel::profile::fitting::{assemble_model, workload_precision};
use xmodel::profile::validate::validate_one;
use xmodel_bench::{cell, print_table, write_csv};

fn accuracy(pred: f64, meas: f64) -> f64 {
    if meas <= 0.0 {
        return 0.0;
    }
    (1.0 - (pred - meas).abs() / meas).max(0.0)
}

fn main() {
    let gpu = GpuSpec::kepler_k40();
    println!(
        "X-model vs baselines on {} (CS throughput, warp-ops/cycle)\n",
        gpu.name
    );

    let mut rows = Vec::new();
    let mut sums = [0.0f64; 4];
    for w in Workload::suite() {
        let v = validate_one(&gpu, &w).expect("validation failed"); // X-model + simulator
        let model = assemble_model(&gpu, &w, 0);
        let machine = model.machine;
        let a = w.kernel.analyze();
        let _ = workload_precision(&w);

        // Roofline: intensity-only bound (no thread awareness).
        let roofline = Roofline::new(machine.m, machine.r).attainable(a.intensity);
        // Valley model: all n threads share the (absent) cache -> no cache
        // term here; thread-aware but fixed latency.
        let valley = ValleyModel {
            m: machine.m,
            r: machine.r,
            l: machine.l,
            z: a.intensity,
            s_cache: 0.0,
            alpha: 2.0,
            beta: 1024.0,
        }
        .perf(model.workload.n);
        // MWP-CWP.
        let mwp = MwpCwp {
            mem_latency: machine.l,
            departure_delay: 1.0,
            mwp_peak_bw: machine.r * machine.l,
            comp_cycles: a.intensity / a.ilp,
            ops_per_iter: a.intensity,
            warps: model.workload.n,
        }
        .throughput();

        let accs = [
            v.accuracy(),
            accuracy(roofline, v.measured_cs),
            accuracy(valley, v.measured_cs),
            accuracy(mwp, v.measured_cs),
        ];
        for (s, a) in sums.iter_mut().zip(accs) {
            *s += a;
        }
        rows.push(vec![
            w.name.to_string(),
            cell(v.measured_cs, 3),
            cell(v.predicted_cs, 3),
            cell(roofline, 3),
            cell(valley, 3),
            cell(mwp, 3),
            format!(
                "{:.0}/{:.0}/{:.0}/{:.0}",
                accs[0] * 100.0,
                accs[1] * 100.0,
                accs[2] * 100.0,
                accs[3] * 100.0
            ),
        ]);
    }
    print_table(
        &[
            "app",
            "measured",
            "X-model",
            "roofline",
            "valley",
            "MWP-CWP",
            "acc% X/R/V/M",
        ],
        &rows,
    );
    let n = rows.len() as f64;
    println!(
        "\nmean accuracy: X-model {:.1}%, roofline {:.1}%, valley {:.1}%, MWP-CWP {:.1}%",
        sums[0] / n * 100.0,
        sums[1] / n * 100.0,
        sums[2] / n * 100.0,
        sums[3] / n * 100.0
    );
    println!("\nRoofline ignores n (overpredicts occupancy-limited kernels);");
    println!("the valley model fixes latency; MWP-CWP lacks what-if structure.");
    write_csv(
        "cmp_baselines",
        &[
            "app", "measured", "xmodel", "roofline", "valley", "mwpcwp", "accs",
        ],
        &rows,
    );
}

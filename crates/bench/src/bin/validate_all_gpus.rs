//! Extension of the §V validation: the paper validates on Kepler only;
//! §IV claims the methodology transfers to any platform once the three
//! machine parameters are profiled. Here the full 12-workload validation
//! runs on all three Table II GPUs.

use xmodel::prelude::*;
use xmodel_bench::{print_table, write_csv, write_json};

fn main() {
    println!("Cross-architecture validation (the §IV generality claim)\n");
    // The three platforms validate independently: fan them out through
    // the sweep engine (results come back in GPU order regardless of
    // the worker count).
    let gpus = GpuSpec::all();
    let validated =
        xmodel::core::sweep::run(xmodel::core::sweep::default_jobs(), &gpus, |_, gpu| {
            validate_suite(gpu).expect("validation failed")
        });
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for (gpu, rep) in gpus.iter().zip(validated) {
        let worst = rep
            .worst()
            .map(|w| format!("{} ({:.0}%)", w.name, w.accuracy() * 100.0))
            .unwrap_or_default();
        rows.push(vec![
            gpu.name.to_string(),
            format!("{:?}", gpu.generation),
            format!("{:.1}%", rep.mean_accuracy() * 100.0),
            worst,
        ]);
        reports.push((gpu.name.to_string(), rep));
    }
    print_table(&["GPU", "arch", "mean accuracy", "hardest app"], &rows);
    write_csv("validate_all_gpus", &["gpu", "arch", "acc", "worst"], &rows);
    write_json("validate_all_gpus", &reports);
    println!("\nPer-app details: `cargo run -p xmodel-cli -- validate --gpu <name>`");
    println!("(the paper reports 84.1% on Kepler silicon; see EXPERIMENTS.md");
    println!("for why the substrate numbers run higher).");
}

//! Fig. 3: the transit figure — the cross-roofline whose intersection is
//! the equilibrium between MS service demand and supply, i.e. the spatial
//! machine state (k threads in MS, x in CS).

use xmodel::core::xgraph::XGraph;
use xmodel::prelude::*;
use xmodel::render;
use xmodel_bench::{cell, print_table, save_svg, write_csv};

fn main() {
    let machine = MachineParams::new(4.0, 0.1, 500.0);
    println!("Fig. 3 — flow balance f(k) = g(x) with x + k = n\n");

    // Equilibria across a thread sweep: closed form vs numeric solver.
    let mut rows = Vec::new();
    for n in [8.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0, 200.0] {
        let transit = TransitModel::new(machine, OpsPerRequest(20.0), Threads(n));
        let closed = transit.equilibrium().unwrap();
        let numeric = transit.to_xmodel().solve().operating_point().unwrap();
        rows.push(vec![
            cell(n, 0),
            cell(closed.k, 2),
            cell(numeric.k, 2),
            cell(closed.x, 2),
            cell(closed.ms_throughput, 4),
            cell(closed.cs_throughput, 3),
        ]);
    }
    print_table(
        &["n", "k (closed)", "k (numeric)", "x", "MS thr", "CS thr"],
        &rows,
    );
    write_csv(
        "fig03_transit_figure",
        &["n", "k_closed", "k_numeric", "x", "ms", "cs"],
        &rows,
    );

    let model = TransitModel::new(machine, OpsPerRequest(20.0), Threads(48.0)).to_xmodel();
    let graph = XGraph::build(&model, 256);
    let path = save_svg(
        "fig03_transit_figure",
        &render::xgraph_chart(&graph, None).to_svg(560.0, 360.0),
    );
    println!("\n{}", render::xgraph_ascii(&graph, 70, 14));
    println!("wrote {}", path.display());
}

//! Fig. 17: optimization 4 — reducing the ILP degree (--E), the paper's
//! novel observation: under cache thrashing, a *lower* E moves the
//! intersection up the descending slope of f, raising both CS and MS
//! throughput.

use xmodel::core::xgraph::XGraph;
use xmodel::prelude::*;
use xmodel::render;
use xmodel::viz::grid::PanelGrid;
use xmodel_bench::case_study;
use xmodel_bench::{cell, print_table, save_svg, write_csv};

fn main() {
    // Figs. 14-17 in the paper are schematic X-graphs: the mechanism is
    // visible when the demand slope E/Z is comparable to the descending
    // f slope. We use the same thrashing configuration the §VI analysis
    // derives (demand plateau above the cache peak), with gesummv's twin
    // FMA chains (E = 2).
    let model = XModel::with_cache(
        MachineParams::new(6.0, 0.02, 600.0),
        WorkloadParams::new(40.0, 2.0, 20.0),
        CacheParams::try_new(16.0 * 1024.0, 30.0, 5.0, 2048.0).unwrap(),
    );
    let what_if = WhatIf::new(model);
    assert!(
        what_if.is_thrashing(),
        "fixture must be in the Fig. 12 state"
    );
    let units = case_study::gpu().units(Precision::Single);

    println!("Fig. 17 — reducing ILP (--E) under thrashing\n");
    println!(
        "baseline E = {} (twin FMA chains of gesummv)\n",
        cell(model.workload.e, 2)
    );
    let mut rows = Vec::new();
    for mult in [1.0, 0.75, 0.5, 0.375, 0.25] {
        let e = model.workload.e * mult;
        let eff = what_if.evaluate(Optimization::ReduceIlp { e }).unwrap();
        rows.push(vec![
            cell(e, 2),
            cell(units.ms_to_gbs(eff.ms_after), 3),
            cell(eff.ms_speedup(), 3),
            cell(eff.cs_speedup(), 3),
        ]);
    }
    print_table(&["E", "MS GB/s", "MS speedup", "CS speedup"], &rows);
    println!("\nWith a lower E the same demand needs more CS threads (larger x),");
    println!("so fewer sit in MS (smaller k) — the intersection climbs the");
    println!("descending f. Principle 2 then gives both CS and MS gains.");
    println!("The paper leaves exploiting this as future work; the model");
    println!("quantifies the opportunity above.");
    write_csv(
        "fig17_reduce_ilp",
        &["e", "ms_gbs", "ms_speedup", "cs_speedup"],
        &rows,
    );

    let before = XGraph::build(&model, 512);
    let after = XGraph::build(
        &Optimization::ReduceIlp {
            e: model.workload.e * 0.5,
        }
        .apply(&model),
        512,
    );
    let grid = PanelGrid::new("Fig. 17 — reducing E", 2)
        .with(render::xgraph_chart(&before, Some(&units)))
        .with(render::xgraph_chart(&after, Some(&units)));
    let path = save_svg("fig17_reduce_ilp", &grid.to_svg());
    println!("wrote {}", path.display());
}

//! The §VII visual comparison: the classic log-log Roofline next to the
//! X-model's verdicts. The roofline places each workload by arithmetic
//! intensity alone; the X-model's operating points show where thread
//! count and the spatial state move a kernel away from the static bound.

use xmodel::prelude::*;
use xmodel::profile::fitting::assemble_model;
use xmodel::viz::chart::{Chart, Marker, Series};
use xmodel_bench::{cell, print_table, save_svg, write_csv};

fn main() {
    let gpu = GpuSpec::kepler_k40();
    let machine = gpu.machine_params(Precision::Single);
    let roof = Roofline::new(machine.m, machine.r);

    println!("Roofline vs X-model operating points on {}\n", gpu.name);

    let mut chart = Chart::new(
        "Roofline (log-log) with X-model operating points",
        "arithmetic intensity Z (ops/request)",
        "CS throughput (warp-ops/cycle)",
    )
    .log_log()
    .with(Series::line("roofline", roof.sample(1.0, 1000.0, 128), 0))
    .with_marker(Marker {
        label: "ridge M/R".into(),
        x: roof.ridge(),
        y: Some(roof.peak_ops),
    });

    let mut attainable_pts = Vec::new();
    let mut actual_pts = Vec::new();
    let mut rows = Vec::new();
    for w in Workload::suite() {
        let a = w.kernel.analyze();
        if a.uses_fp64 {
            continue; // the SP roofline; hpccg lives on the DP one
        }
        let model = assemble_model(&gpu, &w, 0);
        let op = model.solve().operating_point().unwrap();
        let bound = roof.attainable(model.workload.z);
        attainable_pts.push((model.workload.z, bound));
        actual_pts.push((model.workload.z, op.cs_throughput));
        rows.push(vec![
            w.name.to_string(),
            cell(model.workload.z, 1),
            cell(bound, 3),
            cell(op.cs_throughput, 3),
            format!("{:.0}%", op.cs_throughput / bound * 100.0),
        ]);
    }
    chart = chart
        .with(Series::scatter("roofline bound", attainable_pts, 1))
        .with(Series::scatter("X-model operating point", actual_pts, 2));

    print_table(
        &["app", "Z", "roofline bound", "X-model point", "achieved"],
        &rows,
    );
    write_csv(
        "roofline_figure",
        &["app", "z", "bound", "xmodel", "frac"],
        &rows,
    );
    println!("\nEvery workload sits on or below its roofline; the gap is the");
    println!("thread/occupancy dimension the roofline cannot see (nw, lud),");
    println!("which is exactly the §VII critique.");
    let path = save_svg("roofline_figure", &chart.to_svg(640.0, 420.0));
    println!("wrote {}", path.display());
}

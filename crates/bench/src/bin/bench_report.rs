//! `bench-report` — the continuous-benchmark harness.
//!
//! Two modes:
//!
//! * **Measure** (default): run the workspace's performance-critical
//!   paths — solver solve, the Eq. (5) cache-supply sweep, simulator
//!   measurement intervals, trace profiling, and an end-to-end §V
//!   validation — with the same calibrate-then-measure loop the
//!   criterion-compat harness uses, and write a schema-versioned
//!   `BENCH_<label>.json` snapshot. The committed `BENCH_seed.json` at
//!   the repo root seeds the PR-over-PR trajectory.
//! * **Compare** (`--compare BASE NEW`): diff two snapshots bench by
//!   bench and exit non-zero when any bench regressed beyond the
//!   relative threshold. `scripts/bench_gate.sh` wraps this mode.
//!
//! ```text
//! bench-report [--label L] [--out PATH] [--smoke]
//! bench-report --compare BASE NEW [--threshold 0.25]
//! ```
//!
//! Exit codes in compare mode: 0 = within threshold, 1 = regression,
//! 2 = unreadable/incompatible snapshot (schema errors stay fatal even
//! when a CI wrapper downgrades regressions to warnings).

use serde::Serialize;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use xmodel::prelude::*;
use xmodel::workloads::TraceSpec;
use xmodel_obs::json::{self as obs_json, JsonValue};

/// Snapshot format version; bump on incompatible change.
const SCHEMA: &str = xmodel_bench::BENCH_SCHEMA;

/// Default relative regression threshold for compare mode.
const DEFAULT_THRESHOLD: f64 = 0.25;

#[derive(Debug, Clone, Serialize)]
struct BenchResult {
    /// Bench name, `group/name` style (matches the criterion benches).
    name: String,
    /// Best-pass mean time per iteration, nanoseconds.
    ns_per_iter: f64,
    /// Iterations per measurement pass.
    iters: u64,
}

#[derive(Debug, Clone, Serialize)]
struct BenchSnapshot {
    schema: &'static str,
    label: String,
    version: String,
    os: String,
    arch: String,
    smoke: bool,
    wall_s: f64,
    benches: Vec<BenchResult>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    let result = if args.iter().any(|a| a == "--compare") {
        cmd_compare(&args)
    } else {
        cmd_measure(&args).map(|()| ExitCode::SUCCESS)
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: bench-report [--label L] [--out PATH] [--smoke]\n\
         \u{20}      bench-report --compare BASE NEW [--threshold {DEFAULT_THRESHOLD}]\n\
         \n\
         Measure the solver/simulator/cache hot paths and write a\n\
         schema-versioned BENCH_<label>.json snapshot, or compare two\n\
         snapshots (exit 1 on regression beyond the threshold, exit 2 on\n\
         schema/load errors)."
    );
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

// ---------------------------------------------------------------------
// Measure mode
// ---------------------------------------------------------------------

/// Calibrate-then-measure, mirroring the criterion-compat harness: find
/// an iteration count filling the window, then take the best of
/// `passes` timed passes (min is the stable statistic for gating).
fn time_bench<O>(window: Duration, passes: usize, mut routine: impl FnMut() -> O) -> (f64, u64) {
    let mut n: u64 = 1;
    let calibrate_target = window / 10;
    loop {
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        let elapsed = start.elapsed();
        if elapsed >= calibrate_target || n >= 1 << 30 {
            let per_iter = elapsed.as_nanos() as f64 / n as f64;
            n = ((window.as_nanos() as f64 / per_iter.max(1.0)) as u64).clamp(1, 1 << 30);
            break;
        }
        n = n.saturating_mul(4);
    }
    let mut best = f64::INFINITY;
    for _ in 0..passes.max(1) {
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        best = best.min(start.elapsed().as_nanos() as f64 / n as f64);
    }
    (best, n)
}

fn kepler_model() -> XModel {
    let gpu = GpuSpec::kepler_k40();
    XModel::new(
        gpu.machine_params(Precision::Single),
        WorkloadParams::new(20.0, 1.2, 64.0),
    )
}

fn cached_model() -> XModel {
    let gpu = GpuSpec::kepler_k40();
    XModel::with_cache(
        gpu.machine_params(Precision::Single),
        WorkloadParams::new(20.0, 1.2, 64.0),
        CacheParams::try_new(16.0 * 1024.0, 30.0, 3.0, 2048.0).unwrap(),
    )
}

fn sim_setup(l1: bool) -> (SimConfig, SimWorkload) {
    let mut builder = SimConfig::builder().lanes(6.0).dram(540, 13.7);
    if l1 {
        builder = builder.l1(16 * 1024, 28, 32);
    }
    let cfg = builder.build();
    let wl = SimWorkload {
        trace: TraceSpec::PrivateWorkingSet {
            ws_lines: 32,
            stream_prob: 0.1,
            reuse_skew: 1.0,
        },
        ops_per_request: 10.0,
        ilp: 1.0,
        warps: 32,
    };
    (cfg, wl)
}

/// A synthetic span trace exercising the profile fold path.
fn synthetic_trace_lines() -> Vec<String> {
    let mut lines = Vec::new();
    for i in 0..400 {
        lines.push(format!(
            r#"{{"kind":"span","t_us":{i},"name":"leaf","dur_us":{},"parent":"mid"}}"#,
            10 + i % 7
        ));
        if i % 4 == 0 {
            lines.push(format!(
                r#"{{"kind":"span","t_us":{i},"name":"mid","dur_us":{},"parent":"root"}}"#,
                50 + i % 13
            ));
        }
    }
    lines.push(r#"{"kind":"span","t_us":9999,"name":"root","dur_us":9000.0}"#.to_string());
    lines
}

fn cmd_measure(args: &[String]) -> Result<(), String> {
    let smoke = args.iter().any(|a| a == "--smoke");
    let label = flag_value(args, "--label").unwrap_or_else(|| "local".to_string());
    let out_path = flag_value(args, "--out").unwrap_or_else(|| format!("BENCH_{label}.json"));
    // Smoke mode shrinks the measurement window, never the work per
    // iteration — ns/iter stays comparable across smoke and full runs.
    let (window, passes) = if smoke {
        (Duration::from_millis(20), 1)
    } else {
        (Duration::from_millis(200), 3)
    };
    let sim_cycles = 10_000u64;
    let started = Instant::now();
    let mut benches = Vec::new();
    let mut run = |name: &str, result: (f64, u64)| {
        let (ns_per_iter, iters) = result;
        println!(
            "bench: {name:<28} {:>12.1} ns/iter  (x{iters})",
            ns_per_iter
        );
        benches.push(BenchResult {
            name: name.to_string(),
            ns_per_iter,
            iters,
        });
    };

    // Solver: the g(x)/f(k) intersection machinery (paper §III).
    let model = kepler_model();
    run("solver/solve", time_bench(window, passes, || model.solve()));
    let cached = cached_model();
    run(
        "solver/solve_cached",
        time_bench(window, passes, || cached.solve()),
    );

    // Fast path: the same cached model answered from a warm SolveCache
    // (table built once outside the timer, as a sweep would hold it).
    let mut solve_cache = SolveCache::new();
    std::hint::black_box(solve_cache.solve(&cached));
    run(
        "solver/solve_fast",
        time_bench(window, passes, || solve_cache.solve(&cached)),
    );

    // 1024-point n-sweep through the parallel sweep engine, sharing one
    // tabulated supply curve across all points.
    let sweep_table = xmodel::core::fastpath::CurveTable::build(&cached, 1024.0);
    let sweep_ns: Vec<f64> = (1..=1024).map(|i| i as f64).collect();
    run(
        "solver/sweep_1k",
        time_bench(window, passes, || {
            xmodel::core::sweep::run(xmodel::core::sweep::default_jobs(), &sweep_ns, |_, &n| {
                let mut m = cached;
                m.workload.n = n;
                xmodel::core::fastpath::solve_fast(
                    &m,
                    &sweep_table,
                    xmodel::core::solver::DEFAULT_SAMPLES,
                )
                .operating_point()
            })
        }),
    );

    // Lane-batched dense scan: the [f64; 8] kernel evaluation path
    // (bit-identical to solver/solve, so the delta is pure lane win).
    run(
        "solver/solve_batch",
        time_bench(window, passes, || {
            xmodel::core::batch::solve_batch(&model, xmodel::core::solver::DEFAULT_SAMPLES)
        }),
    );

    // The same 1024-point sweep with warm-started cells: each solve
    // seeds the next through the chunk-local WarmSeed chain.
    let warm_models: Vec<XModel> = sweep_ns
        .iter()
        .map(|&n| {
            let mut m = cached;
            m.workload.n = n;
            m
        })
        .collect();
    run(
        "solver/sweep_1k_warm",
        time_bench(window, passes, || {
            xmodel::core::sweep::solve_warm(
                xmodel::core::sweep::default_jobs(),
                &warm_models,
                &sweep_table,
                xmodel::core::solver::DEFAULT_SAMPLES,
            )
        }),
    );

    // Eq. (5) cache supply: f(k) sweep over the thread range.
    run(
        "cache/fk_sweep_eq5",
        time_bench(window, passes, || cached.sample_fk(64.0, 256)),
    );

    // Simulator measurement interval.
    let (cfg, wl) = sim_setup(false);
    run(
        "sim/measure",
        time_bench(window, passes, || {
            xmodel::sim::simulate(&cfg, &wl, 0, sim_cycles)
        }),
    );
    let (cfg_l1, wl_l1) = sim_setup(true);
    run(
        "sim/measure_l1",
        time_bench(window, passes, || {
            xmodel::sim::simulate(&cfg_l1, &wl_l1, 0, sim_cycles)
        }),
    );

    // Trace consumption: fold a span stream into a call-tree profile.
    let lines = synthetic_trace_lines();
    run(
        "obs/profile_fold",
        time_bench(window, passes, || {
            xmodel_obs::profile::SpanProfile::from_lines(lines.iter().map(String::as_str))
        }),
    );

    // End-to-end: model assembly + prediction + simulator measurement
    // for one §V app (the full validate_one pipeline).
    let gpu = GpuSpec::kepler_k40();
    let gesummv = Workload::by_name("gesummv").ok_or("gesummv missing from suite")?;
    run(
        "e2e/validate_gesummv",
        time_bench(window, 1, || {
            xmodel::profile::validate::validate_one(&gpu, &gesummv).expect("validation failed")
        }),
    );

    let snapshot = BenchSnapshot {
        schema: SCHEMA,
        label,
        version: xmodel_obs::manifest::describe_version(),
        os: std::env::consts::OS.to_string(),
        arch: std::env::consts::ARCH.to_string(),
        smoke,
        wall_s: started.elapsed().as_secs_f64(),
        benches,
    };
    let json = xmodel_bench::json::to_json(&snapshot).map_err(|e| e.to_string())?;
    std::fs::write(&out_path, format!("{json}\n")).map_err(|e| format!("{out_path}: {e}"))?;
    println!("wrote {out_path} ({:.1} s)", snapshot.wall_s);
    Ok(())
}

// ---------------------------------------------------------------------
// Compare mode
// ---------------------------------------------------------------------

struct LoadedSnapshot {
    label: String,
    smoke: bool,
    benches: Vec<(String, f64)>,
}

fn load_snapshot(path: &str) -> Result<LoadedSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let value = obs_json::parse(text.trim()).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let schema = value
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{path}: missing schema field"))?;
    if schema != SCHEMA {
        return Err(format!(
            "{path}: incompatible schema {schema:?} (expected {SCHEMA:?})"
        ));
    }
    let benches = match value.get("benches") {
        Some(JsonValue::Array(items)) => items
            .iter()
            .map(|item| {
                let name = item
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("{path}: bench entry missing name"))?;
                let ns = item
                    .get("ns_per_iter")
                    .and_then(JsonValue::as_f64)
                    .filter(|v| v.is_finite() && *v > 0.0)
                    .ok_or_else(|| format!("{path}: bench {name:?} has no valid ns_per_iter"))?;
                Ok((name.to_string(), ns))
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err(format!("{path}: missing benches array")),
    };
    Ok(LoadedSnapshot {
        label: value
            .get("label")
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_string(),
        smoke: value.get("smoke") == Some(&JsonValue::Bool(true)),
        benches,
    })
}

fn cmd_compare(args: &[String]) -> Result<ExitCode, String> {
    let i = args.iter().position(|a| a == "--compare").unwrap_or(0);
    let base_path = args
        .get(i + 1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("--compare requires BASE and NEW snapshot paths")?;
    let new_path = args
        .get(i + 2)
        .filter(|a| !a.starts_with("--"))
        .ok_or("--compare requires BASE and NEW snapshot paths")?;
    let threshold = match flag_value(args, "--threshold") {
        Some(v) => v
            .parse::<f64>()
            .ok()
            .filter(|t| *t >= 0.0)
            .ok_or_else(|| format!("--threshold: invalid value {v:?}"))?,
        None => DEFAULT_THRESHOLD,
    };
    let base = load_snapshot(base_path)?;
    let new = load_snapshot(new_path)?;
    if base.smoke != new.smoke {
        eprintln!(
            "note: comparing smoke={} against smoke={} snapshots; timings are noisier",
            base.smoke, new.smoke
        );
    }
    println!(
        "bench gate: {} -> {} (threshold {:+.0}%)",
        base.label,
        new.label,
        threshold * 100.0
    );
    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "bench", "base ns/iter", "new ns/iter", "delta"
    );

    let mut regressions = 0usize;
    let mut matched = 0usize;
    for (name, base_ns) in &base.benches {
        let Some((_, new_ns)) = new.benches.iter().find(|(n, _)| n == name) else {
            eprintln!("warning: bench {name:?} missing from {new_path}");
            continue;
        };
        matched += 1;
        let delta = (new_ns - base_ns) / base_ns;
        let verdict = if delta > threshold {
            regressions += 1;
            "  REGRESSED"
        } else if delta < -threshold {
            "  improved"
        } else {
            ""
        };
        println!(
            "{name:<28} {base_ns:>14.1} {new_ns:>14.1} {delta:>+8.1}%{verdict}",
            delta = delta * 100.0
        );
    }
    for (name, _) in &new.benches {
        if !base.benches.iter().any(|(n, _)| n == name) {
            println!("{name:<28} {:>14} (new bench, no baseline)", "-");
        }
    }
    if matched == 0 {
        return Err("no benches in common between the two snapshots".to_string());
    }
    if regressions > 0 {
        eprintln!(
            "bench gate: {regressions} bench(es) regressed beyond {:.0}%",
            threshold * 100.0
        );
        return Ok(ExitCode::FAILURE);
    }
    println!("bench gate: OK ({matched} benches within threshold)");
    Ok(ExitCode::SUCCESS)
}

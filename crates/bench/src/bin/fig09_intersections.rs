//! Fig. 9: complete X-graphs with cache effects — (A) a stable single
//! intersection, (B) the bistable triple σ′/σ/σ″ with the unstable middle,
//! (C) severe performance degradation as n grows.

use xmodel::core::dynamics;
use xmodel::core::xgraph::XGraph;
use xmodel::prelude::*;
use xmodel::render;
use xmodel::viz::grid::PanelGrid;
use xmodel_bench::{cell, print_table, save_svg, write_csv};

fn machine() -> MachineParams {
    MachineParams::new(6.0, 0.02, 600.0)
}

fn cache() -> CacheParams {
    CacheParams::try_new(16.0 * 1024.0, 30.0, 5.0, 2048.0).unwrap()
}

fn main() {
    // (A) stable: demand low enough to cross f only on its rising edge.
    let stable = XModel::with_cache(machine(), WorkloadParams::new(200.0, 0.25, 40.0), cache());
    // (B) unstable: the bistable configuration.
    let bistable = XModel::with_cache(machine(), WorkloadParams::new(66.0, 0.25, 60.0), cache());

    println!("Fig. 9 — stable and unstable intersections\n");
    let mut rows = Vec::new();
    for (name, model) in [("(A) stable", &stable), ("(B) bistable", &bistable)] {
        for p in model.solve().points() {
            rows.push(vec![
                name.to_string(),
                cell(p.k, 2),
                cell(p.ms_throughput, 4),
                format!("{:?}", p.stability),
            ]);
        }
    }
    print_table(&["scenario", "k", "MS thr", "stability"], &rows);

    // The perturbation argument of §III-D1, executed.
    let eq = bistable.solve();
    let sigma = eq.unstable().next().expect("unstable point");
    let down = dynamics::converge_from(&bistable, sigma.k - 1.0);
    let up = dynamics::converge_from(&bistable, sigma.k + 1.0);
    println!(
        "\nperturbing σ (k = {:.2}): one thread fewer settles at σ' (k = {:.2}), one more at σ'' (k = {:.2})",
        sigma.k, down, up
    );

    // (C) severe degradation when increasing n.
    println!("\n(C) degradation sweep — adding threads moves σ' and σ'' apart:");
    let mut sweep_rows = Vec::new();
    for n in [30.0, 40.0, 50.0, 60.0, 80.0, 120.0, 200.0] {
        let m = XModel::with_cache(machine(), WorkloadParams::new(66.0, 0.25, n), cache());
        let eq = m.solve();
        let best = eq.operating_point().map(|p| p.ms_throughput).unwrap_or(0.0);
        let worst = eq.worst_stable().map(|p| p.ms_throughput).unwrap_or(0.0);
        sweep_rows.push(vec![
            cell(n, 0),
            cell(best, 4),
            cell(worst, 4),
            cell(eq.degradation(), 4),
            eq.is_bistable().to_string(),
        ]);
    }
    print_table(
        &["n", "σ' MS thr", "σ'' MS thr", "drop", "bistable"],
        &sweep_rows,
    );
    let max_drop = bistable.machine.m / bistable.workload.z - bistable.machine.r;
    println!(
        "\nmaximum possible drop M/Z − R = {} (attained as n → ∞)",
        cell(max_drop, 4)
    );
    write_csv(
        "fig09_degradation",
        &["n", "best", "worst", "drop", "bistable"],
        &sweep_rows,
    );

    let grid = PanelGrid::new("Fig. 9 — intersections with cache effects", 2)
        .with(render::xgraph_chart(&XGraph::build(&stable, 512), None))
        .with(render::xgraph_chart(&XGraph::build(&bistable, 512), None));
    let path = save_svg("fig09_intersections", &grid.to_svg());
    println!("wrote {}", path.display());
}

//! Fig. 13: gesummv with the L1 enlarged to 48 KiB — the cache peak rises
//! markedly but the operating point barely moves (thrashing persists), the
//! paper's "usage 1" insight.

use xmodel::core::xgraph::XGraph;
use xmodel::prelude::*;
use xmodel::profile::bypass::bypass_trace_points;
use xmodel::render;
use xmodel::viz::chart::Series;
use xmodel_bench::case_study;
use xmodel_bench::{cell, save_svg, write_csv};

fn main() {
    let units = case_study::gpu().units(Precision::Single);
    let m16 = case_study::model(16);
    let m48 = case_study::model(48);
    let op16 = m16.solve().operating_point().unwrap();
    let op48 = m48.solve().operating_point().unwrap();

    println!("Fig. 13 — gesummv on GTX570, 48 KiB L1\n");
    println!(
        "operating point: 16 KiB {} GB/s -> 48 KiB {} GB/s per SM ({:+.1}%)",
        cell(units.ms_to_gbs(op16.ms_throughput), 2),
        cell(units.ms_to_gbs(op48.ms_throughput), 2),
        100.0 * (op48.ms_throughput / op16.ms_throughput - 1.0)
    );
    let p16 = m16.ms_features(64.0).peak;
    let p48 = m48.ms_features(64.0).peak;
    if let (Some(a), Some(b)) = (p16, p48) {
        println!(
            "cache peak: 16 KiB {} GB/s at ψ = {:.1} -> 48 KiB {} GB/s at ψ = {:.1}",
            cell(units.ms_to_gbs(a.value), 2),
            a.k,
            cell(units.ms_to_gbs(b.value), 2),
            b.k
        );
        println!("(much higher peak, same thrashing endpoint: larger cache alone");
        println!(" does not resolve contention — but reveals achievable headroom)");
    }
    println!("still thrashing? {}", WhatIf::new(m48).is_thrashing());

    // Simulator measurement of the same comparison.
    let s16 = case_study::measure(16, 0.0, 48);
    let s48 = case_study::measure(48, 0.0, 48);
    println!(
        "\nsimulator: 16 KiB {} GB/s -> 48 KiB {} GB/s per SM ({:+.1}%; paper: +7%)",
        cell(units.ms_to_gbs(s16), 2),
        cell(units.ms_to_gbs(s48), 2),
        100.0 * (s48 / s16 - 1.0)
    );

    let cfg = case_study::sim_config(48, 0.0);
    let wl = case_study::sim_workload(48);
    let pts = bypass_trace_points(&cfg, &wl, 4);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|&(j, t)| vec![j.to_string(), cell(t, 5), cell(units.ms_to_gbs(t), 3)])
        .collect();
    write_csv(
        "fig13_trace_points",
        &["cached_warps", "req_per_cycle", "gbs"],
        &rows,
    );

    let graph = XGraph::build(&m48, 512);
    let mut chart = render::xgraph_chart(&graph, Some(&units));
    chart.title = "Fig. 13 — gesummv, 48 KiB L1".into();
    chart = chart.with(Series::scatter(
        "profiled trace-points",
        pts.iter()
            .map(|&(j, t)| (j as f64, units.ms_to_gbs(t)))
            .collect(),
        3,
    ));
    let path = save_svg("fig13_gesummv_48k", &chart.to_svg(640.0, 400.0));
    println!("wrote {}", path.display());
}

//! Fig. 10: architectural X-graphs for the three GPU generations under
//! single and double precision — f(k) profiled on the simulator via the
//! Stream sweep, g(x) families for E = 1..8.

use xmodel::prelude::*;
use xmodel::profile::stream::profile_stream;
use xmodel::viz::chart::{Chart, Marker, Series};
use xmodel::viz::grid::PanelGrid;
use xmodel_bench::{cell, save_svg, write_csv};

fn main() {
    let mut grid = PanelGrid::new("Fig. 10 — architectural X-graphs", 3);
    let mut rows = Vec::new();
    for precision in [Precision::Single, Precision::Double] {
        for gpu in GpuSpec::all() {
            let units = gpu.units(precision);
            let cfg = xmodel::profile::sim_config_for(&gpu, precision);
            let max_warps = gpu.max_warps as u32;
            let fk = profile_stream(&cfg, max_warps, 4);

            let mut chart = Chart::new(
                format!("{} — {:?}", gpu.name, precision),
                "Warps",
                "f(k): MS GB/s per SM",
            )
            .right_axis("g(x): CS GF/s per SM")
            .with(Series::line(
                "f(k)",
                fk.curve
                    .iter()
                    .map(|&(w, t)| (w as f64, units.ms_to_gbs(t)))
                    .collect(),
                0,
            ))
            .with_marker(Marker {
                label: "δ".into(),
                x: fk.delta,
                y: None,
            });

            let m = gpu.machine_params(precision).m;
            for e in 1..=8u32 {
                let gx: Vec<(f64, f64)> = (0..=max_warps)
                    .map(|w| {
                        let g = (e as f64 * w as f64).min(m);
                        (w as f64, units.cs_to_gflops(g))
                    })
                    .collect();
                chart = chart
                    .with(Series::line(format!("g(x), E={e}"), gx, e as usize).on_right_axis());
            }
            chart = chart.with_marker(Marker {
                label: "π(E=1)".into(),
                x: m,
                y: None,
            });
            grid = grid.with(chart);

            rows.push(vec![
                gpu.name.to_string(),
                format!("{precision:?}"),
                cell(units.ms_to_gbs(fk.r) * gpu.sm_count as f64, 0),
                cell(fk.delta, 0),
                cell(units.cs_to_gflops(m) * gpu.sm_count as f64, 0),
            ]);
        }
    }
    xmodel_bench::print_table(
        &["GPU", "prec", "sustained GB/s", "δ warps", "peak GF/s"],
        &rows,
    );
    write_csv(
        "fig10_arch",
        &["gpu", "prec", "gbs", "delta", "gflops"],
        &rows,
    );
    let path = save_svg("fig10_arch_xgraphs", &grid.to_svg());
    println!("\nwrote {}", path.display());
}

//! Extension experiment: the what-if *landscape*. Instead of moving one
//! knob at a time (Figs. 14–17), sweep two at once — thread count `n`
//! against compute intensity `Z` — and map the operating-point throughput
//! over the whole design space. The ridge/cliff structure makes the
//! §III-D phenomena visible at a glance: the cache-efficiency ridge at
//! low n, the thrashing cliff, and the bandwidth plateau.

use xmodel::core::exectime::{predict, Phase};
use xmodel::prelude::*;
use xmodel::viz::heatmap::Heatmap;
use xmodel_bench::{cell, save_svg};

fn main() {
    let machine = MachineParams::new(6.0, 0.02, 600.0);
    let cache = CacheParams::try_new(16.0 * 1024.0, 30.0, 5.0, 2048.0).unwrap();

    let ns: Vec<f64> = (1..=60).map(|i| i as f64).collect();
    let zs: Vec<f64> = (1..=40).map(|i| i as f64 * 4.0).collect();

    // Every grid cell shares one supply curve — (n, Z) only move the
    // demand side — so tabulate `f(k)` once and fan the 2400 solves out
    // through the deterministic sweep engine. `solve_fast` is
    // bit-identical to `solve()`, so the maps are unchanged.
    let table = xmodel::core::fastpath::CurveTable::build(
        &XModel::with_cache(machine, WorkloadParams::new(4.0, 2.0, 1.0), cache),
        64.0,
    );
    let cells: Vec<(f64, f64)> = zs
        .iter()
        .flat_map(|&z| ns.iter().map(move |&n| (n, z)))
        .collect();
    let solved =
        xmodel::core::sweep::run(xmodel::core::sweep::default_jobs(), &cells, |_, &(n, z)| {
            let m = XModel::with_cache(machine, WorkloadParams::new(z, 2.0, n), cache);
            xmodel::core::fastpath::solve_fast(&m, &table, xmodel::core::solver::DEFAULT_SAMPLES)
                .operating_point()
                .map(|p| (p.ms_throughput, p.cs_throughput))
        });
    let ms_map = Heatmap {
        title: "MS throughput over (n, Z)".to_string(),
        x_label: "threads n".to_string(),
        y_label: "compute intensity Z".to_string(),
        xs: ns.clone(),
        ys: zs.clone(),
        values: solved
            .iter()
            .map(|o| o.map(|(ms, _)| ms).unwrap_or(0.0))
            .collect(),
    };
    let cs_map = Heatmap {
        title: "CS throughput over (n, Z)".to_string(),
        x_label: "threads n".to_string(),
        y_label: "compute intensity Z".to_string(),
        xs: ns.clone(),
        ys: zs.clone(),
        values: solved
            .iter()
            .map(|o| o.map(|(_, cs)| cs).unwrap_or(0.0))
            .collect(),
    };

    println!("Design-space sweep over (n, Z), E = 2, 16 KiB cache\n");
    println!("{}", ms_map.to_ascii());
    let (n_star, z_star, v) = ms_map.argmax();
    println!(
        "best MS throughput {} req/cyc at n = {}, Z = {}",
        cell(v, 4),
        n_star,
        z_star
    );
    let (cn, cz, cv) = cs_map.argmax();
    println!(
        "best CS throughput {} ops/cyc at n = {}, Z = {}",
        cell(cv, 3),
        cn,
        cz
    );

    // Execution-time view of the same space for a fixed amount of work.
    let time_map = Heatmap::evaluate(
        "speed (1/cycles) for 100k requests over (n, Z)",
        "threads n",
        "compute intensity Z",
        ns,
        zs,
        |n, z| {
            let pred = predict(
                machine,
                Some(cache),
                &[Phase::new(WorkloadParams::new(z, 2.0, n), 100_000.0)],
            );
            1.0 / pred.cycles()
        },
    );

    let p1 = save_svg("design_space_ms", &ms_map.to_svg(640.0, 420.0));
    let p2 = save_svg("design_space_cs", &cs_map.to_svg(640.0, 420.0));
    let p3 = save_svg("design_space_time", &time_map.to_svg(640.0, 420.0));
    println!(
        "\nwrote {}\nwrote {}\nwrote {}",
        p1.display(),
        p2.display(),
        p3.display()
    );
}

//! Fig. 12: the gesummv X-graph on GTX570 with the default 16 KiB L1 —
//! analytic curves plus the isolated f(k) trace-points profiled through
//! the bypassing technique of [13] (here: on the simulator).

use xmodel::core::xgraph::XGraph;
use xmodel::prelude::*;
use xmodel::profile::bypass::bypass_trace_points;
use xmodel::render;
use xmodel::viz::chart::Series;
use xmodel_bench::case_study;
use xmodel_bench::{cell, save_svg, write_csv};

fn main() {
    let model = case_study::model(16);
    let units = case_study::gpu().units(Precision::Single);
    let op = model.solve().operating_point().expect("operating point");

    println!("Fig. 12 — gesummv on GTX570, 16 KiB L1, 48 warps\n");
    println!(
        "model operating point: k = {:.1}, MS = {} GB/s per SM",
        op.k,
        cell(units.ms_to_gbs(op.ms_throughput), 2)
    );
    println!(
        "thrashing: {} (intersection on the descending slope of f)",
        WhatIf::new(model).is_thrashing()
    );
    if let Some(peak) = model.ms_features(64.0).peak {
        println!(
            "cache peak ψ = {:.1} warps at {} GB/s per SM",
            peak.k,
            cell(units.ms_to_gbs(peak.value), 2)
        );
    }

    // Profiled trace-points via bypassing (the yellow dots of Fig. 12).
    let cfg = case_study::sim_config(16, 0.0);
    let wl = case_study::sim_workload(48);
    let pts = bypass_trace_points(&cfg, &wl, 4);
    println!("\nbypass-profiled f(k) trace-points:");
    let mut rows = Vec::new();
    for &(j, thr) in &pts {
        println!(
            "  {:>2} cached warps: {} GB/s per SM",
            j,
            cell(units.ms_to_gbs(thr), 2)
        );
        rows.push(vec![
            j.to_string(),
            cell(thr, 5),
            cell(units.ms_to_gbs(thr), 3),
        ]);
    }
    write_csv(
        "fig12_trace_points",
        &["cached_warps", "req_per_cycle", "gbs"],
        &rows,
    );

    let graph = XGraph::build(&model, 512);
    let mut chart = render::xgraph_chart(&graph, Some(&units));
    chart.title = "Fig. 12 — gesummv, 16 KiB L1".into();
    chart = chart.with(Series::scatter(
        "profiled trace-points",
        pts.iter()
            .map(|&(j, t)| (j as f64, units.ms_to_gbs(t)))
            .collect(),
        3,
    ));
    let path = save_svg("fig12_gesummv_16k", &chart.to_svg(640.0, 400.0));
    println!("\nwrote {}", path.display());
}

//! Fig. 7: the cache-integrated MS throughput f(k) of Eq. (5) with its
//! characteristic features — cache peak ψ, cache valley, memory plateau —
//! located automatically.

use xmodel::core::cache::CachedMsCurve;
use xmodel::prelude::*;
use xmodel::viz::chart::{Chart, Marker, Series};
use xmodel_bench::{cell, save_svg, write_csv};

fn main() {
    let machine = MachineParams::new(6.0, 0.1, 600.0);
    let cache = CacheParams::try_new(16.0 * 1024.0, 30.0, 5.0, 2048.0).unwrap();
    let curve = CachedMsCurve::new(&machine, cache);

    let pts: Vec<(f64, f64)> = (0..=512)
        .map(|i| {
            let k = 256.0 * i as f64 / 512.0;
            (k, curve.f(Threads(k)).get())
        })
        .collect();
    let feats = curve.features(Threads(256.0));
    let peak = feats.peak.expect("peak");
    let valley = feats.valley.expect("valley");

    println!("Fig. 7 — cache-integrated f(k), Eq. (5)\n");
    println!(
        "cache peak   ψ  = {:>7} threads, f = {}",
        cell(peak.k, 2),
        cell(peak.value, 4)
    );
    println!(
        "cache valley    = {:>7} threads, f = {}",
        cell(valley.k, 2),
        cell(valley.value, 4)
    );
    println!("valley depth    = {:.1}%", 100.0 * feats.valley_depth());
    println!("memory plateau  = {} (= R)", cell(feats.plateau, 4));
    match feats.delta {
        Some(d) => println!("MS transition δ = {} threads", cell(d, 1)),
        None => println!("MS transition δ lies beyond the scanned range (slow cache decay)"),
    }

    let mut chart = Chart::new(
        "Fig. 7 — f(k) with shared cache",
        "MS threads (k)",
        "MS throughput",
    )
    .with(Series::line("f(k), Eq. (5)", pts.clone(), 0))
    .with(
        Series::line(
            "memory bound R",
            vec![(0.0, machine.r), (256.0, machine.r)],
            6,
        )
        .dashed(),
    )
    .with_marker(Marker {
        label: "ψ (cache peak)".into(),
        x: peak.k,
        y: Some(peak.value),
    })
    .with_marker(Marker {
        label: "cache valley".into(),
        x: valley.k,
        y: Some(valley.value),
    });
    if let Some(d) = feats.delta {
        chart = chart.with_marker(Marker {
            label: "δ".into(),
            x: d,
            y: None,
        });
    }
    let path = save_svg("fig07_cache_fk", &chart.to_svg(640.0, 380.0));

    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|&(k, f)| vec![cell(k, 2), cell(f, 6)])
        .collect();
    write_csv("fig07_cache_fk", &["k", "f"], &rows);
    println!("\nwrote {}", path.display());
}

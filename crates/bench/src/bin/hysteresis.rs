//! Extension experiment: hysteresis in the bistable region (§III-D).
//!
//! In the bistable region the branch the machine occupies depends on its
//! history. Sweeping the compute intensity `Z` (optimizing the kernel,
//! then de-optimizing it) with each step warm-started from the previous
//! equilibrium traces a loop: coming from low Z the machine sits on the
//! thrashing branch σ″ and stays there deep into the bistable window;
//! coming from high Z it rides the good branch σ′ until that branch
//! disappears. No static model (roofline, valley) can express this.

use xmodel::core::dynamics;
use xmodel::prelude::*;
use xmodel::viz::chart::{Chart, Series};
use xmodel_bench::{cell, print_table, save_svg, write_csv};

fn model_at(z: f64) -> XModel {
    XModel::with_cache(
        MachineParams::new(6.0, 0.02, 600.0),
        WorkloadParams::new(z, 0.25, 60.0),
        CacheParams::try_new(16.0 * 1024.0, 30.0, 5.0, 2048.0).unwrap(),
    )
}

fn main() {
    println!("Hysteresis sweep of compute intensity Z through the bistable window\n");
    let zs: Vec<f64> = (40..=150).step_by(2).map(|z| z as f64).collect();

    // Up-sweep (Z rising: progressively optimizing the kernel),
    // warm-starting each step from the previous spatial state.
    let mut k: f64 = 60.0; // kernels launch by loading: start in MS
    let mut up = Vec::new();
    for &z in &zs {
        let m = model_at(z);
        k = dynamics::converge_from(&m, k);
        up.push((z, m.fk(k), k));
    }
    // Down-sweep (de-optimizing again).
    let mut down = Vec::new();
    for &z in zs.iter().rev() {
        let m = model_at(z);
        k = dynamics::converge_from(&m, k);
        down.push((z, m.fk(k), k));
    }
    down.reverse();

    let mut rows = Vec::new();
    let mut loop_width = 0usize;
    for (u, d) in up.iter().zip(&down) {
        let split = (u.1 - d.1).abs() > 1e-4;
        if split {
            loop_width += 1;
        }
        rows.push(vec![
            cell(u.0, 0),
            cell(u.1, 4),
            cell(u.2, 1),
            cell(d.1, 4),
            cell(d.2, 1),
            if split { "<-- hysteresis" } else { "" }.to_string(),
        ]);
    }
    print_table(
        &["Z", "up MS thr", "up k", "down MS thr", "down k", ""],
        &rows,
    );
    println!(
        "\n{} of {} sweep points sit on different branches depending on",
        loop_width,
        zs.len()
    );
    println!("history — the same kernel at the same Z runs at two different");
    println!("speeds depending on where it came from. A concrete protocol a");
    println!("hardware measurement could reproduce (§III-D made testable).");
    write_csv(
        "hysteresis",
        &["z", "up", "up_k", "down", "down_k", "split"],
        &rows,
    );

    let chart = Chart::new(
        "Hysteresis loop: MS throughput vs Z (warm-started sweeps)",
        "compute intensity Z",
        "MS throughput (req/cycle)",
    )
    .with(Series::line(
        "Z rising (from thrashing sigma'')",
        up.iter().map(|&(z, f, _)| (z, f)).collect(),
        0,
    ))
    .with(Series::line(
        "Z falling (from healthy sigma')",
        down.iter().map(|&(z, f, _)| (z, f)).collect(),
        1,
    ));
    let path = save_svg("hysteresis", &chart.to_svg(640.0, 400.0));
    println!("wrote {}", path.display());
}

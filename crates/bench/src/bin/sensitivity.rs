//! Extension experiment: per-workload knob elasticities — which of the
//! model's parameters buys the most throughput for each §V application.
//! This is the Fig. 4/8 what-if workflow compressed to one ranked number
//! per knob, and it doubles as an automatic bound classifier: an `R`
//! elasticity of ~1 *is* "memory bound", an `M` elasticity of ~1 *is*
//! "compute bound", `n` ≈ 1 is "thread bound", negative `n` means
//! throttling helps.

use xmodel::core::sensitivity::analyze;
use xmodel::prelude::*;
use xmodel::profile::fitting::assemble_model;
use xmodel_bench::{cell, print_table, write_csv, write_json};

fn main() {
    let gpu = GpuSpec::kepler_k40();
    println!(
        "MS-throughput elasticities on {} (1% of knob -> x% of throughput)\n",
        gpu.name
    );

    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for w in Workload::suite() {
        let model = assemble_model(&gpu, &w, 0);
        let rep = analyze(&model);
        let get = |p: &str| {
            rep.get(p)
                .map(|e| cell(e.ms_elasticity, 2))
                .unwrap_or_else(|| "-".into())
        };
        rows.push(vec![
            w.name.to_string(),
            get("R"),
            get("L"),
            get("M"),
            get("Z"),
            get("E"),
            get("n"),
            rep.dominant().map(|d| d.param.clone()).unwrap_or_default(),
        ]);
        reports.push((w.name.to_string(), rep));
    }
    print_table(&["app", "R", "L", "M", "Z", "E", "n", "dominant"], &rows);
    write_csv(
        "sensitivity",
        &["app", "R", "L", "M", "Z", "E", "n", "dominant"],
        &rows,
    );
    write_json("sensitivity", &reports);

    println!("\nReading the table:");
    println!("- R ~ 1, others ~ 0: saturated on bandwidth (most of the suite);");
    println!("- n ~ 1 with L < 0: thread bound — more occupancy or lower latency;");
    println!("- M ~ 1 on the CS side: compute bound (leukocyte).");

    // And one thrashing case where the cache knobs dominate.
    println!("\ngesummv on GTX570 with 16 KiB L1 (the §VI thrashing state):");
    let fermi = GpuSpec::fermi_gtx570();
    let model = assemble_model(&fermi, &Workload::get(WorkloadId::Gesummv), 16 * 1024);
    let rep = analyze(&model);
    let mut rows = Vec::new();
    for e in &rep.entries {
        rows.push(vec![
            e.param.clone(),
            cell(e.ms_elasticity, 3),
            cell(e.cs_elasticity, 3),
        ]);
    }
    print_table(&["knob", "MS elasticity", "CS elasticity"], &rows);
    println!("\nNegative n elasticity = thread throttling helps; positive S$/alpha");
    println!("= capacity and locality fixes help — the §VI menu, derived, ranked.");
}

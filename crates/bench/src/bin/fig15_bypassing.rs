//! Fig. 15: optimization 2 — cache bypassing (++R). Keeping only a few
//! warps cache-eligible raises the effective memory-side bandwidth; the
//! model expresses it as lifting R toward the cache-peak level.

use xmodel::core::xgraph::XGraph;
use xmodel::prelude::*;
use xmodel::render;
use xmodel::viz::grid::PanelGrid;
use xmodel_bench::case_study;
use xmodel_bench::{cell, print_table, save_svg, write_csv};

fn main() {
    let model = case_study::model(16);
    let what_if = WhatIf::new(model);
    let units = case_study::gpu().units(Precision::Single);
    let peak = model.ms_features(64.0).peak.expect("cache peak");

    println!("Fig. 15 — cache bypassing (++R)\n");
    println!(
        "base R = {} req/cyc; cache peak f(ψ) = {} req/cyc — the best bypass",
        cell(model.machine.r, 4),
        cell(peak.value, 4)
    );
    println!("raises effective R to the peak level (then gains saturate).\n");

    // Model: sweep effective R up to and past the peak level.
    let mut rows = Vec::new();
    for mult in [1.0, 1.25, 1.5, 2.0, peak.value / model.machine.r, 4.0] {
        let r = model.machine.r * mult;
        let eff = what_if.evaluate(Optimization::CacheBypass { r }).unwrap();
        rows.push(vec![
            cell(mult, 2),
            cell(units.ms_to_gbs(eff.ms_after), 3),
            cell(eff.ms_speedup(), 2),
        ]);
    }
    print_table(&["R multiplier", "model MS GB/s", "model speedup"], &rows);
    write_csv("fig15_bypass_model", &["mult", "gbs", "speedup"], &rows);

    // Simulator: sweep the number of cache-eligible warps.
    println!("\nsimulator sweep (j warps keep using the L1, rest bypass):");
    let mut sim_rows = Vec::new();
    for j in [48u32, 32, 16, 8, 4, 2] {
        let frac = 1.0 - j as f64 / 48.0;
        let thr = case_study::measure(16, frac, 48);
        sim_rows.push(vec![j.to_string(), cell(units.ms_to_gbs(thr), 3)]);
    }
    print_table(&["cached warps", "sim MS GB/s"], &sim_rows);
    write_csv("fig15_bypass_sim", &["cached_warps", "gbs"], &sim_rows);

    let best_r = peak.value;
    let before = XGraph::build(&model, 512);
    let after = XGraph::build(&Optimization::CacheBypass { r: best_r }.apply(&model), 512);
    let grid = PanelGrid::new("Fig. 15 — cache bypassing", 2)
        .with(render::xgraph_chart(&before, Some(&units)))
        .with(render::xgraph_chart(&after, Some(&units)));
    let path = save_svg("fig15_bypassing", &grid.to_svg());
    println!("\nwrote {}", path.display());
}

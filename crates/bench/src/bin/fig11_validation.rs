//! Fig. 11: §V validation on the Kepler platform — predicted vs measured
//! computation/memory throughput for the 12-workload suite, plus the
//! per-application X-graph panels with the measured point overlaid.

use xmodel::core::xgraph::XGraph;
use xmodel::prelude::*;
use xmodel::profile::fitting::assemble_model;
use xmodel::profile::validate::{validate_one, ValidationReport};
use xmodel::render;
use xmodel::viz::chart::Series;
use xmodel::viz::grid::PanelGrid;
use xmodel_bench::{cell, print_table, save_svg, write_csv};

fn main() {
    let gpu = GpuSpec::kepler_k40();
    println!("Fig. 11 — validation on {} \n", gpu.name);

    let mut grid = PanelGrid::new("Fig. 11 — validation on Kepler", 4);
    let mut rows = Vec::new();
    let mut accs = Vec::new();
    let mut report = ValidationReport { apps: Vec::new() };
    for w in Workload::suite() {
        let v = validate_one(&gpu, &w).expect("validation failed");
        accs.push(v.accuracy());
        report.apps.push(v.clone());
        rows.push(vec![
            w.name.to_string(),
            cell(v.n, 0),
            cell(v.predicted_cs, 3),
            cell(v.measured_cs, 3),
            cell(v.predicted_ms, 4),
            cell(v.measured_ms, 4),
            cell(v.predicted_k, 1),
            cell(v.measured_k, 1),
            format!("{:.1}%", v.accuracy() * 100.0),
        ]);

        // Panel: the app's X-graph with the measured point as a star.
        let model = assemble_model(&gpu, &w, 0);
        let graph = XGraph::build(&model, 256);
        let mut chart = render::xgraph_chart(&graph, None);
        chart.title = format!(
            "{} (PCT {:.2}, RCT {:.2})",
            w.name, v.predicted_cs, v.measured_cs
        );
        chart = chart.with(Series::scatter(
            "measured",
            vec![(v.measured_k, v.measured_ms)],
            7,
        ));
        grid = grid.with(chart);
    }
    print_table(
        &[
            "app", "n", "PCT", "RCT", "pred MS", "meas MS", "pred k", "meas k", "acc",
        ],
        &rows,
    );
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    println!(
        "\nmean prediction accuracy: {:.1}%  (paper: 84.1% on real silicon)",
        mean * 100.0
    );
    println!("(PCT/RCT in warp-ops per cycle per SM)");
    write_csv(
        "fig11_validation",
        &["app", "n", "pct", "rct", "pms", "mms", "pk", "mk", "acc"],
        &rows,
    );
    let jpath = xmodel_bench::write_json("fig11_validation", &report);
    let path = save_svg("fig11_validation", &grid.to_svg());
    println!("wrote {}", jpath.display());
    println!("wrote {}", path.display());
}

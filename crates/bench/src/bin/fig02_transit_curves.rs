//! Fig. 2: the two subsystem curves of the transit model — MS supply
//! `f(k)` (panel A) and CS demand `g(x)/Z` (panel B, axis reversed in the
//! combined figure).

use xmodel::prelude::*;
use xmodel::viz::chart::{Chart, Marker, Series};
use xmodel::viz::grid::PanelGrid;
use xmodel_bench::{cell, save_svg, write_csv};

fn main() {
    let machine = MachineParams::new(4.0, 0.1, 500.0);
    let model = TransitModel::new(machine, OpsPerRequest(20.0), Threads(48.0)).to_xmodel();

    let fk = model.sample_fk(80.0, 161);
    let ghat: Vec<(f64, f64)> = (0..161)
        .map(|i| {
            let x = 80.0 * i as f64 / 160.0;
            (x, model.g_hat(x))
        })
        .collect();

    let panel_a = Chart::new("(A) MS supply f(k)", "MS threads (k)", "MS throughput")
        .with(Series::line("f(k) = min(k/L, R)", fk.clone(), 0))
        .with_marker(Marker {
            label: "δ".into(),
            x: machine.delta().get(),
            y: None,
        });
    let panel_b = Chart::new("(B) CS demand g(x)/Z", "CS threads (x)", "MS throughput")
        .with(Series::line("g(x)/Z = min(Ex, M)/Z", ghat.clone(), 1))
        .with_marker(Marker {
            label: "π".into(),
            x: model.pi(),
            y: None,
        });
    let svg = PanelGrid::new("Fig. 2 — supply and demand throughput", 2)
        .with(panel_a)
        .with(panel_b)
        .to_svg();
    let path = save_svg("fig02_transit_curves", &svg);

    let rows: Vec<Vec<String>> = fk
        .iter()
        .zip(&ghat)
        .map(|(&(k, f), &(x, g))| vec![cell(k, 1), cell(f, 5), cell(x, 1), cell(g, 5)])
        .collect();
    write_csv("fig02_transit_curves", &["k", "f_k", "x", "ghat_x"], &rows);

    println!(
        "Fig. 2 regenerated: delta = {} threads, pi = {} threads",
        machine.delta(),
        model.pi()
    );
    println!(
        "supply plateau R = {}, demand plateau M/Z = {}",
        machine.r,
        machine.m / 20.0
    );
    println!("wrote {}", path.display());
}

//! A minimal JSON *writer* backend for `serde::Serialize`.
//!
//! The allowed dependency set includes `serde` but not `serde_json`; the
//! experiment harness only needs the encoding half, so this module
//! implements a compact, allocation-friendly `Serializer` sufficient for
//! the report types in this workspace (structs, enums, sequences, maps,
//! numbers, strings, options).

use serde::ser::{self, Serialize};
use std::fmt;

/// Serialize any `Serialize` value to a compact JSON string.
pub fn to_json<T: Serialize>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    value.serialize(&mut JsonSer { out: &mut out })?;
    Ok(out)
}

/// Error raised during serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

struct JsonSer<'a> {
    out: &'a mut String,
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest round-trippable representation Rust gives us.
        out.push_str(&format!("{v}"));
        // Ensure valid JSON number (Rust prints integral floats bare).
    } else {
        // JSON has no NaN/inf; encode as null like serde_json's lossy mode.
        out.push_str("null");
    }
}

/// Compound serializer writing elements separated by commas.
struct Compound<'a, 'b> {
    ser: &'b mut JsonSer<'a>,
    first: bool,
    close: char,
}

impl<'a, 'b> Compound<'a, 'b> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }

    fn end_inner(self) {
        self.ser.out.push(self.close);
    }
}

macro_rules! forward_int {
    ($($m:ident: $t:ty),*) => {$(
        fn $m(self, v: $t) -> Result<(), JsonError> {
            self.out.push_str(&v.to_string());
            Ok(())
        }
    )*};
}

impl<'a, 'b> ser::Serializer for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Compound<'a, 'b>;
    type SerializeTuple = Compound<'a, 'b>;
    type SerializeTupleStruct = Compound<'a, 'b>;
    type SerializeTupleVariant = Compound<'a, 'b>;
    type SerializeMap = Compound<'a, 'b>;
    type SerializeStruct = Compound<'a, 'b>;
    type SerializeStructVariant = Compound<'a, 'b>;

    forward_int!(
        serialize_i8: i8, serialize_i16: i16, serialize_i32: i32, serialize_i64: i64,
        serialize_u8: u8, serialize_u16: u16, serialize_u32: u32, serialize_u64: u64
    );

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        write_f64(self.out, v as f64);
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        write_f64(self.out, v);
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        escape_into(self.out, &v.to_string());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        escape_into(self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), JsonError> {
        use serde::ser::SerializeSeq;
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for b in v {
            seq.serialize_element(b)?;
        }
        seq.end()
    }

    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        escape_into(self.out, variant);
        Ok(())
    }

    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, JsonError> {
        self.out.push('[');
        Ok(Compound {
            ser: self,
            first: true,
            close: ']',
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, JsonError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, JsonError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, JsonError> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            ser: self,
            first: true,
            close: ']',
        })
        // The closing '}' is added in end() via close handling below —
        // see SerializeTupleVariant::end.
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, JsonError> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            close: '}',
        })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, JsonError> {
        self.serialize_map(Some(len))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, JsonError> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            ser: self,
            first: true,
            close: '}',
        })
    }
}

impl ser::SerializeSeq for Compound<'_, '_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.sep();
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), JsonError> {
        self.end_inner();
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_, '_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_, '_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_, '_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(']');
        self.ser.out.push('}');
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_, '_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), JsonError> {
        self.sep();
        // Keys must be strings: serialize through a key-checking shim.
        let mut key_out = String::new();
        key.serialize(&mut JsonSer { out: &mut key_out })?;
        if key_out.starts_with('"') {
            self.ser.out.push_str(&key_out);
        } else {
            // Numeric keys become strings.
            escape_into(self.ser.out, &key_out);
        }
        Ok(())
    }

    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), JsonError> {
        self.end_inner();
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_, '_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.sep();
        escape_into(self.ser.out, key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), JsonError> {
        self.end_inner();
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_, '_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push('}');
        self.ser.out.push('}');
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    struct Point {
        x: f64,
        y: f64,
        label: String,
    }

    #[derive(Serialize)]
    enum Shape {
        Unit,
        Newtype(f64),
        Tuple(i32, i32),
        Struct { w: u32 },
    }

    #[test]
    fn scalars() {
        assert_eq!(to_json(&42i32).unwrap(), "42");
        assert_eq!(to_json(&true).unwrap(), "true");
        assert_eq!(to_json(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_json(&"hi").unwrap(), "\"hi\"");
        assert_eq!(to_json(&Option::<i32>::None).unwrap(), "null");
        assert_eq!(to_json(&Some(7)).unwrap(), "7");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_json(&f64::NAN).unwrap(), "null");
        assert_eq!(to_json(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(to_json(&"a\"b\\c\nd").unwrap(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(to_json(&'\u{1}').unwrap(), "\"\\u0001\"");
    }

    #[test]
    fn structs_and_vecs() {
        let p = Point {
            x: 1.0,
            y: -0.5,
            label: "σ'".into(),
        };
        assert_eq!(
            to_json(&p).unwrap(),
            "{\"x\":1,\"y\":-0.5,\"label\":\"σ'\"}"
        );
        assert_eq!(to_json(&vec![1, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_json(&(1, "a")).unwrap(), "[1,\"a\"]");
    }

    #[test]
    fn enums() {
        assert_eq!(to_json(&Shape::Unit).unwrap(), "\"Unit\"");
        assert_eq!(to_json(&Shape::Newtype(2.0)).unwrap(), "{\"Newtype\":2}");
        assert_eq!(to_json(&Shape::Tuple(1, 2)).unwrap(), "{\"Tuple\":[1,2]}");
        assert_eq!(
            to_json(&Shape::Struct { w: 9 }).unwrap(),
            "{\"Struct\":{\"w\":9}}"
        );
    }

    #[test]
    fn maps_with_non_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(1u32, "one");
        m.insert(2u32, "two");
        assert_eq!(to_json(&m).unwrap(), "{\"1\":\"one\",\"2\":\"two\"}");
    }

    #[test]
    fn real_report_types_serialize() {
        use xmodel::prelude::*;
        let model = XModel::new(
            MachineParams::new(6.0, 0.1, 600.0),
            WorkloadParams::new(20.0, 1.0, 48.0),
        );
        let eq = model.solve();
        let json = to_json(&eq).unwrap();
        assert!(json.contains("\"ms_throughput\""));
        assert!(json.contains("\"Stable\""));
        let rep = model.parallelism();
        assert!(to_json(&rep).unwrap().contains("machine_mlp"));
    }
}

//! Cost of the `xmodel-obs` instrumentation layer.
//!
//! The contract is that disabled tracing is ~free: one relaxed atomic
//! load per would-be event, no clock reads, no allocation. These benches
//! pin that down from three angles: the raw disabled-path primitives,
//! the same primitives with a live sink, and the instrumented simulator
//! loop (which should run at the same cycles/second either way).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xmodel::prelude::*;
use xmodel::workloads::TraceSpec;

const CYCLES: u64 = 20_000;

fn wl() -> SimWorkload {
    SimWorkload {
        trace: TraceSpec::PrivateWorkingSet {
            ws_lines: 32,
            stream_prob: 0.1,
            reuse_skew: 1.0,
        },
        ops_per_request: 10.0,
        ilp: 1.0,
        warps: 32,
    }
}

fn cfg() -> SimConfig {
    SimConfig::builder()
        .lanes(6.0)
        .dram(540, 13.7)
        .l1(16 * 1024, 28, 32)
        .build()
}

/// Disabled-path primitives: what every instrumented call site pays
/// when no sink is installed.
fn bench_disabled_primitives(c: &mut Criterion) {
    assert!(!xmodel_obs::enabled());
    let mut g = c.benchmark_group("obs/disabled");
    g.bench_function("event", |b| {
        b.iter(|| xmodel_obs::event!("bench.tick", i = black_box(7u64)))
    });
    g.bench_function("span", |b| {
        b.iter(|| {
            let _s = xmodel_obs::span!("bench.span");
        })
    });
    g.bench_function("counter", |b| {
        b.iter(|| xmodel_obs::metrics::counter_add("bench.n", black_box(1)))
    });
    g.finish();
}

/// Live-path primitives against an in-memory sink, for scale.
fn bench_enabled_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/enabled");
    let sink = xmodel_obs::MemSink::new();
    xmodel_obs::install(Box::new(sink));
    g.bench_function("event", |b| {
        b.iter(|| xmodel_obs::event!("bench.tick", i = black_box(7u64)))
    });
    g.bench_function("span", |b| {
        b.iter(|| {
            let _s = xmodel_obs::span!("bench.span");
        })
    });
    xmodel_obs::finish(None);
    g.finish();
}

/// The instrumented simulator with tracing off: this is the number that
/// must not regress relative to the pre-instrumentation simulator bench.
fn bench_sim_tracing_off(c: &mut Criterion) {
    assert!(!xmodel_obs::enabled());
    let mut g = c.benchmark_group("obs/sim");
    g.throughput(Throughput::Elements(CYCLES));
    let (cfg, wl) = (cfg(), wl());
    g.bench_function("tracing-off", |b| {
        b.iter(|| black_box(xmodel::sim::simulate(&cfg, &wl, 0, CYCLES)))
    });
    let sink = xmodel_obs::MemSink::new();
    xmodel_obs::install(Box::new(sink));
    g.bench_function("tracing-on", |b| {
        b.iter(|| black_box(xmodel::sim::simulate(&cfg, &wl, 0, CYCLES)))
    });
    xmodel_obs::finish(None);
    g.finish();
}

/// The multi-SM chip simulator with its per-interval probe layer,
/// tracing off vs on. Probes sample warp-state occupancy and DRAM
/// queue depths at snapshot boundaries; with no sink installed the
/// probe cursor is never touched, so the tracing-off number is the
/// cost of the bare simulation.
fn bench_chip_probes_gated(c: &mut Criterion) {
    assert!(!xmodel_obs::enabled());
    let mut g = c.benchmark_group("obs/chip-probes");
    g.throughput(Throughput::Elements(CYCLES));
    let (cfg, wl) = (cfg(), wl());
    g.bench_function("tracing-off", |b| {
        b.iter(|| black_box(xmodel::sim::simulate_chip(&cfg, &wl, 2, 60.0, 0, CYCLES)))
    });
    let sink = xmodel_obs::MemSink::new();
    xmodel_obs::install(Box::new(sink));
    g.bench_function("tracing-on", |b| {
        b.iter(|| black_box(xmodel::sim::simulate_chip(&cfg, &wl, 2, 60.0, 0, CYCLES)))
    });
    xmodel_obs::finish(None);
    g.finish();
}

/// The instrumented parallel sweep engine, tracing off vs on. The new
/// per-worker tallies and fastpath counters are gated on the sink, so
/// the tracing-off number must track the pre-instrumentation engine.
fn bench_sweep_tracing_gated(c: &mut Criterion) {
    assert!(!xmodel_obs::enabled());
    let gpu = GpuSpec::kepler_k40();
    let model = XModel::with_cache(
        gpu.machine_params(Precision::Single),
        WorkloadParams::new(20.0, 1.2, 64.0),
        CacheParams::try_new(16.0 * 1024.0, 30.0, 3.0, 2048.0).expect("valid cache params"),
    );
    let table = CurveTable::build(&model, 256.0);
    let ns: Vec<f64> = (1..=256).map(|i| i as f64).collect();
    let sweep = |jobs: usize| {
        xmodel::core::sweep::run(jobs, &ns, |_, &n| {
            let mut m = model;
            m.workload.n = n;
            xmodel::core::fastpath::solve_fast(&m, &table, xmodel::core::solver::DEFAULT_SAMPLES)
                .operating_point()
        })
    };

    let mut g = c.benchmark_group("obs/sweep");
    g.throughput(Throughput::Elements(ns.len() as u64));
    g.bench_function("tracing-off", |b| b.iter(|| black_box(sweep(4))));
    let sink = xmodel_obs::MemSink::new();
    xmodel_obs::install(Box::new(sink));
    g.bench_function("tracing-on", |b| b.iter(|| black_box(sweep(4))));
    xmodel_obs::finish(None);
    g.finish();
}

criterion_group!(
    benches,
    bench_disabled_primitives,
    bench_enabled_primitives,
    bench_sim_tracing_off,
    bench_chip_probes_gated,
    bench_sweep_tracing_gated
);
criterion_main!(benches);

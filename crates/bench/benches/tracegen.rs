//! Criterion benches for the trace generators and the static analyser.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xmodel::prelude::*;
use xmodel::workloads::TraceSpec;

const ACCESSES: usize = 10_000;

fn bench_generators(c: &mut Criterion) {
    let specs: Vec<(&str, TraceSpec)> = vec![
        (
            "stream",
            TraceSpec::Stream {
                region_lines: 1 << 20,
            },
        ),
        (
            "private_ws",
            TraceSpec::PrivateWorkingSet {
                ws_lines: 40,
                stream_prob: 0.05,
                reuse_skew: 1.5,
            },
        ),
        (
            "shared_vector",
            TraceSpec::SharedVector {
                vector_lines: 64,
                region_lines: 1 << 20,
                vector_prob: 0.4,
            },
        ),
        (
            "gather",
            TraceSpec::Gather {
                footprint_lines: 1 << 18,
                skew: 0.6,
            },
        ),
    ];
    let mut g = c.benchmark_group("trace/generate");
    g.throughput(Throughput::Elements(ACCESSES as u64));
    for (name, spec) in specs {
        g.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, s| {
            b.iter(|| {
                let mut gen = s.instantiate(3, 42);
                let mut acc = 0u64;
                for _ in 0..ACCESSES {
                    acc ^= gen.next_addr();
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_static_analysis(c: &mut Criterion) {
    let suite = Workload::suite();
    c.bench_function("isa/analyze_suite", |b| {
        b.iter(|| {
            suite
                .iter()
                .map(|w| black_box(w.kernel.analyze()).intensity)
                .sum::<f64>()
        })
    });
    let k = Workload::get(WorkloadId::Gesummv).kernel;
    c.bench_function("isa/occupancy", |b| {
        b.iter(|| black_box(Occupancy::compute(&k, &ArchLimits::kepler())))
    });
    let text = xmodel::isa::disasm::disassemble(&k);
    c.bench_function("isa/parse_listing", |b| {
        b.iter(|| black_box(xmodel::isa::disasm::parse(&text).unwrap()))
    });
}

criterion_group!(benches, bench_generators, bench_static_analysis);
criterion_main!(benches);

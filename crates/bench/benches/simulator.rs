//! Criterion benches for the cycle-level simulator: cycles/second across
//! configurations, plus the cache-fidelity ablation (L1 on/off, L2 stage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xmodel::prelude::*;
use xmodel::workloads::TraceSpec;

const CYCLES: u64 = 20_000;

fn wl(warps: u32) -> SimWorkload {
    SimWorkload {
        trace: TraceSpec::PrivateWorkingSet {
            ws_lines: 32,
            stream_prob: 0.1,
            reuse_skew: 1.0,
        },
        ops_per_request: 10.0,
        ilp: 1.0,
        warps,
    }
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/cycles");
    g.throughput(Throughput::Elements(CYCLES));
    for warps in [8u32, 32, 64] {
        let cfg = SimConfig::builder()
            .lanes(6.0)
            .dram(540, 13.7)
            .l1(16 * 1024, 28, 32)
            .build();
        g.bench_with_input(BenchmarkId::new("warps", warps), &warps, |b, &n| {
            b.iter(|| black_box(xmodel::sim::simulate(&cfg, &wl(n), 0, CYCLES)))
        });
    }
    g.finish();
}

/// Ablation: the memory-hierarchy stages' simulation cost.
fn bench_hierarchy_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/hierarchy");
    g.throughput(Throughput::Elements(CYCLES));
    let base = SimConfig::builder().lanes(6.0).dram(540, 13.7);
    let configs = [
        ("dram_only", base.clone().build()),
        ("l1", base.clone().l1(16 * 1024, 28, 32).build()),
        (
            "l1_l2",
            base.clone()
                .l1(16 * 1024, 28, 32)
                .l2(96 * 1024, 150, 40.0)
                .build(),
        ),
    ];
    for (name, cfg) in configs {
        g.bench_function(name, |b| {
            b.iter(|| black_box(xmodel::sim::simulate(&cfg, &wl(32), 0, CYCLES)))
        });
    }
    g.finish();
}

/// Chip-level scaling: cost of N SMs sharing one channel.
fn bench_chip_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/chip");
    g.throughput(Throughput::Elements(CYCLES));
    for sms in [1usize, 4, 8] {
        let cfg = SimConfig::builder().lanes(6.0).dram(540, 13.7).build();
        g.bench_with_input(BenchmarkId::new("sms", sms), &sms, |b, &n| {
            b.iter(|| {
                black_box(xmodel::sim::chip::simulate_chip(
                    &cfg,
                    &wl(16),
                    n,
                    13.7 * n as f64,
                    0,
                    CYCLES,
                ))
            })
        });
    }
    g.finish();
}

/// IR-driven vs parametric simulation cost (the fidelity ablation's
/// price tag).
fn bench_ir_mode(c: &mut Criterion) {
    use xmodel::workloads::microbench::{stream_kernel, stream_trace};
    let cfg = SimConfig::builder().lanes(6.0).dram(540, 13.7).build();
    let kernel = stream_kernel(false);
    let a = kernel.analyze();
    let mut g = c.benchmark_group("sim/mode");
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("parametric", |b| {
        b.iter(|| {
            black_box(xmodel::sim::simulate(
                &cfg,
                &SimWorkload {
                    trace: stream_trace(),
                    ops_per_request: a.intensity,
                    ilp: a.ilp,
                    warps: 32,
                },
                0,
                CYCLES,
            ))
        })
    });
    g.bench_function("ir_driven", |b| {
        b.iter(|| {
            black_box(xmodel::sim::exec::simulate_ir(
                &cfg,
                &kernel,
                stream_trace(),
                32,
                0,
                CYCLES,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sim_throughput,
    bench_hierarchy_ablation,
    bench_chip_scaling,
    bench_ir_mode
);
criterion_main!(benches);

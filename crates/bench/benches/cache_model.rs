//! Criterion benches for the analytic cache machinery: Eq. (5)
//! evaluation, feature extraction, locality fitting.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xmodel::core::cache::{CacheParams, CachedMsCurve};
use xmodel::core::params::MachineParams;
use xmodel::core::units::Threads;
use xmodel::workloads::locality::{fit_jacob, jacob_hit_rate};

fn curve() -> CachedMsCurve {
    CachedMsCurve::new(
        &MachineParams::new(6.0, 0.1, 600.0),
        CacheParams::try_new(16.0 * 1024.0, 30.0, 5.0, 2048.0).unwrap(),
    )
}

fn bench_eq5(c: &mut Criterion) {
    let cu = curve();
    c.bench_function("cache/eq5_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=256 {
                acc += cu.f(Threads(black_box(i as f64 * 0.5))).get();
            }
            acc
        })
    });
    c.bench_function("cache/features_scan", |b| {
        b.iter(|| black_box(cu.features(Threads(256.0))))
    });
}

fn bench_multilevel(c: &mut Criterion) {
    use xmodel::core::multilevel::{L2Params, TwoLevelMsCurve};
    let curve = TwoLevelMsCurve::new(
        &MachineParams::new(6.0, 0.02, 900.0),
        CacheParams::try_new(16.0 * 1024.0, 28.0, 5.0, 2048.0).unwrap(),
        L2Params::new(96.0 * 1024.0, 180.0, 0.06),
    );
    c.bench_function("cache/two_level_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=256 {
                acc += curve.f(black_box(i as f64 * 0.5));
            }
            acc
        })
    });
    let single = CachedMsCurve::new(
        &MachineParams::new(6.0, 0.02, 900.0),
        CacheParams::try_new(16.0 * 1024.0, 28.0, 5.0, 2048.0).unwrap(),
    );
    c.bench_function("cache/mshr_capped_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=256 {
                acc += single
                    .f_mshr(Threads(black_box(i as f64 * 0.5)), 32.0)
                    .get();
            }
            acc
        })
    });
}

fn bench_fitting(c: &mut Criterion) {
    // Synthetic samples so the bench measures the fitter, not the trace.
    let samples: Vec<(f64, f64)> = (1..=48)
        .map(|k| (k as f64, jacob_hit_rate(16384.0, k as f64, 3.0, 2048.0)))
        .collect();
    c.bench_function("cache/fit_jacob_grid", |b| {
        b.iter(|| black_box(fit_jacob(&samples, 16384.0)))
    });
}

criterion_group!(benches, bench_eq5, bench_multilevel, bench_fitting);
criterion_main!(benches);

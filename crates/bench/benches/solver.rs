//! Criterion benches for the flow-balance solver, including the
//! scan-resolution ablation DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmodel::prelude::*;

fn cached_model() -> XModel {
    XModel::with_cache(
        MachineParams::new(6.0, 0.02, 600.0),
        WorkloadParams::new(66.0, 0.25, 60.0),
        CacheParams::try_new(16.0 * 1024.0, 30.0, 5.0, 2048.0).unwrap(),
    )
}

fn basic_model() -> XModel {
    XModel::new(
        MachineParams::new(6.0, 0.107, 598.0),
        WorkloadParams::new(20.0, 1.0, 64.0),
    )
}

fn bench_solve(c: &mut Criterion) {
    let basic = basic_model();
    let cached = cached_model();
    c.bench_function("solve/basic_roofline", |b| {
        b.iter(|| black_box(basic.solve()).operating_point())
    });
    c.bench_function("solve/cached_bistable", |b| {
        b.iter(|| black_box(cached.solve()).operating_point())
    });
    c.bench_function("solve/batch_lanes", |b| {
        b.iter(|| {
            black_box(xmodel::core::batch::solve_batch(
                &cached,
                xmodel::core::solver::DEFAULT_SAMPLES,
            ))
            .operating_point()
        })
    });
}

/// Warm-started n-sweep against the cold per-cell fast path, sharing one
/// tabulated supply curve (the bench-report `solver/sweep_1k_warm` gate
/// entry is the continuously-tracked twin of this).
fn bench_warm_sweep(c: &mut Criterion) {
    let cached = cached_model();
    let table = xmodel::core::fastpath::CurveTable::build(&cached, 256.0);
    let models: Vec<XModel> = (1..=256)
        .map(|i| {
            let mut m = cached;
            m.workload.n = i as f64;
            m
        })
        .collect();
    let samples = xmodel::core::solver::DEFAULT_SAMPLES;
    c.bench_function("sweep/256_cold", |b| {
        b.iter(|| {
            for m in &models {
                black_box(xmodel::core::fastpath::solve_fast(m, &table, samples));
            }
        })
    });
    c.bench_function("sweep/256_warm", |b| {
        b.iter(|| black_box(xmodel::core::sweep::solve_warm(1, &models, &table, samples)))
    });
}

/// Ablation: dense-scan resolution vs cost. Accuracy for the same sweep is
/// checked by the resolution test in xmodel-core; here is the time side.
fn bench_resolution_ablation(c: &mut Criterion) {
    let cached = cached_model();
    let mut g = c.benchmark_group("solve/resolution");
    for samples in [128usize, 512, 2048, 8192] {
        g.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &s| {
            b.iter(|| black_box(cached.solve_with(s)))
        });
    }
    g.finish();
}

fn bench_derived_analyses(c: &mut Criterion) {
    let cached = cached_model();
    c.bench_function("analysis/ms_features", |b| {
        b.iter(|| black_box(cached.ms_features(256.0)))
    });
    c.bench_function("analysis/balance", |b| {
        b.iter(|| black_box(cached.balance()))
    });
    c.bench_function("analysis/dynamics_converge", |b| {
        b.iter(|| black_box(xmodel::core::dynamics::converge_from(&cached, 0.0)))
    });
}

criterion_group!(
    benches,
    bench_solve,
    bench_warm_sweep,
    bench_resolution_ablation,
    bench_derived_analyses
);
criterion_main!(benches);

//! Criterion benches for figure assembly and rendering end to end — the
//! interactive what-if loop the paper's tool implies must be fast.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xmodel::core::xgraph::XGraph;
use xmodel::prelude::*;
use xmodel::render;

fn model() -> XModel {
    XModel::with_cache(
        MachineParams::new(6.0, 0.02, 600.0),
        WorkloadParams::new(66.0, 0.25, 60.0),
        CacheParams::try_new(16.0 * 1024.0, 30.0, 5.0, 2048.0).unwrap(),
    )
}

fn bench_xgraph(c: &mut Criterion) {
    let m = model();
    c.bench_function("figure/xgraph_build", |b| {
        b.iter(|| black_box(XGraph::build(&m, 512)))
    });
    let graph = XGraph::build(&m, 512);
    c.bench_function("figure/render_svg", |b| {
        b.iter(|| black_box(render::xgraph_chart(&graph, None).to_svg(560.0, 360.0)))
    });
    c.bench_function("figure/render_ascii", |b| {
        b.iter(|| black_box(render::xgraph_ascii(&graph, 72, 16)))
    });
}

fn bench_whatif_loop(c: &mut Criterion) {
    let m = model();
    let w = WhatIf::new(m);
    c.bench_function("figure/whatif_roundtrip", |b| {
        b.iter(|| {
            let n_star = w.optimal_throttle().unwrap_or(60.0);
            black_box(w.evaluate(Optimization::ThreadThrottle { n: n_star }))
        })
    });
}

criterion_group!(benches, bench_xgraph, bench_whatif_loop);
criterion_main!(benches);

//! Regression-gate contract tests for the `bench-report` binary:
//! measure mode writes a schema-versioned snapshot, and compare mode's
//! exit codes distinguish "within threshold" (0), "regressed" (1), and
//! "broken snapshot" (2).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bench_report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench-report"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn bench-report")
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_str()
        .unwrap()
        .to_string()
}

fn temp_out(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xmodel-bench-{}-{name}", std::process::id()))
}

#[test]
fn compare_within_threshold_exits_zero() {
    let out = bench_report(&[
        "--compare",
        &fixture("bench_base.json"),
        &fixture("bench_ok.json"),
        "--threshold",
        "0.25",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("bench gate: OK"), "{stdout}");
}

#[test]
fn compare_with_synthetic_regression_exits_one() {
    let out = bench_report(&[
        "--compare",
        &fixture("bench_base.json"),
        &fixture("bench_regressed.json"),
        "--threshold",
        "0.25",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "{stdout}{stderr}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("solver/solve"), "{stdout}");
    assert!(stderr.contains("regressed beyond"), "{stderr}");
}

#[test]
fn regression_tolerated_under_looser_threshold() {
    // solver/solve is +160% in the fixture; a 2.0 (=200%) threshold passes.
    let out = bench_report(&[
        "--compare",
        &fixture("bench_base.json"),
        &fixture("bench_regressed.json"),
        "--threshold",
        "2.0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn incompatible_schema_exits_two() {
    let out = bench_report(&[
        "--compare",
        &fixture("bench_base.json"),
        &fixture("bench_bad_schema.json"),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("incompatible schema"), "{stderr}");
}

#[test]
fn missing_snapshot_exits_two() {
    let out = bench_report(&[
        "--compare",
        &fixture("bench_base.json"),
        "/nonexistent.json",
    ]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn smoke_measure_writes_comparable_snapshot() {
    let out_path = temp_out("smoke.json");
    let out = bench_report(&[
        "--smoke",
        "--label",
        "test",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&out_path).expect("snapshot written");
    assert!(text.contains("\"schema\":\"xmodel-bench/1\""), "{text}");
    assert!(text.contains("solver/solve"), "{text}");
    assert!(text.contains("e2e/validate_gesummv"), "{text}");

    // A fresh snapshot must be comparable against itself (exit 0).
    let cmp = bench_report(&[
        "--compare",
        out_path.to_str().unwrap(),
        out_path.to_str().unwrap(),
    ]);
    assert!(
        cmp.status.success(),
        "{}",
        String::from_utf8_lossy(&cmp.stdout)
    );
    std::fs::remove_file(&out_path).ok();
}

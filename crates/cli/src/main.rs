//! `xmodel` — command-line front end for the X-model reproduction.
//!
//! ```text
//! xmodel list                         available GPUs and workloads
//! xmodel glossary                     Table I parameter glossary
//! xmodel draw [opts]                  draw an X-graph for explicit params
//! xmodel workload <name> [opts]       analyze a suite workload on a GPU
//! xmodel validate [--gpu <gpu>]       run the §V validation suite
//! xmodel whatif [opts]                evaluate the §VI optimizations
//! xmodel serve [opts]                 overload-safe solve/what-if daemon
//! ```
//!
//! Every command accepts a global `--trace FILE` flag (or the
//! `XMODEL_TRACE` environment variable) that streams structured JSONL
//! events — solver spans, per-interval simulator snapshots, a final run
//! manifest — to `FILE`; `xmodel trace-report FILE` summarizes one and
//! `xmodel profile FILE` folds it into a call-tree profile with a
//! flamegraph-compatible folded-stack output. A second global flag,
//! `--metrics-addr HOST:PORT` (or `XMODEL_METRICS_ADDR`), serves the
//! live metrics registry as Prometheus text format while a run is in
//! flight. Flags win over their environment variables.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::process::ExitCode;
use std::sync::OnceLock;
use xmodel::core::degrade::DegradeForce;
use xmodel::core::xgraph::XGraph;
use xmodel::prelude::*;
use xmodel::render;
use xmodel::sim::{FaultSpec, SolverFault, Watchdog};
use xmodel_obs::manifest::RunManifest;

/// The exit-code contract (asserted by `scripts/ci.sh`):
///
/// * `0` — success; a *degraded* result is still exit 0 but prints a
///   `warning:` line on stderr with the provenance.
/// * `1` — a well-formed invocation hit a typed model/simulation error,
///   or an analysis command found what it was asked to look for
///   (`trace-diff`: significant differences — mirroring `bench-report
///   --compare`'s regression exit).
/// * `2` — usage error: unknown command/flag/value (usage text follows).
#[derive(Debug)]
enum CliError {
    /// Bad invocation; exits 2 and prints usage.
    Usage(String),
    /// Typed model or simulation error; exits 1.
    Model(String),
    /// An analysis found reportable differences; exits 1 with the
    /// message on stderr but no `error:` prefix and no usage text.
    Findings(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl CliError {
    fn model(err: impl std::fmt::Display) -> Self {
        CliError::Model(err.to_string())
    }
}

/// The fault spec parsed from `--fault-spec` / `XMODEL_FAULT_SPEC`;
/// defaults to no faults.
static FAULT_SPEC: OnceLock<FaultSpec> = OnceLock::new();

fn fault_spec() -> FaultSpec {
    FAULT_SPEC.get().copied().unwrap_or_default()
}

/// Solver-fault forcing for the degradation ladder, from the fault spec.
fn solver_force() -> DegradeForce {
    match fault_spec().solver {
        SolverFault::None => DegradeForce::None,
        SolverFault::NoBracket => DegradeForce::SkipExact,
        SolverFault::NoGrid => DegradeForce::SkipGrid,
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = init_faults(&mut args) {
        eprintln!("error: {e}");
        usage();
        return ExitCode::from(2);
    }
    let tracing = match init_tracing(&mut args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    if let Err(e) = init_metrics(&mut args) {
        eprintln!("error: {e}");
        usage();
        return ExitCode::from(2);
    }
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            usage();
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "list" => cmd_list(),
        "glossary" => cmd_glossary(),
        "draw" => cmd_draw(parse_flags(rest)),
        "workload" => cmd_workload(rest),
        "validate" => cmd_validate(parse_flags(rest)),
        "whatif" => cmd_whatif(parse_flags(rest)),
        "serve" => cmd_serve(parse_flags(rest)),
        "sim" => cmd_sim(parse_flags(rest)),
        "sweep" => cmd_sweep(parse_flags(rest)),
        "trace-report" => cmd_trace_report(rest),
        "sim-report" => cmd_sim_report(rest),
        "residuals" => cmd_residuals(rest),
        "profile" => cmd_profile(rest),
        "trace-diff" => cmd_trace_diff(rest),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    };
    if tracing {
        let manifest = RunManifest::collect(cmd, manifest_params(rest), None);
        xmodel_obs::finish(Some(&manifest));
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Model(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
        Err(CliError::Findings(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(1)
        }
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::from(2)
        }
    }
}

/// Strip a global `--fault-spec SPEC` flag (falling back to the
/// `XMODEL_FAULT_SPEC` environment variable) and install the parsed
/// [`FaultSpec`] for the rest of the run. A malformed spec is a usage
/// error.
fn init_faults(args: &mut Vec<String>) -> Result<(), String> {
    let text = if let Some(i) = args.iter().position(|a| a == "--fault-spec") {
        if i + 1 >= args.len() {
            return Err("--fault-spec requires a spec string".to_string());
        }
        let spec = args.remove(i + 1);
        args.remove(i);
        Some(spec)
    } else {
        std::env::var("XMODEL_FAULT_SPEC").ok()
    };
    if let Some(text) = text {
        let spec = FaultSpec::parse(&text).map_err(|e| format!("--fault-spec: {e}"))?;
        let _ = FAULT_SPEC.set(spec);
    }
    Ok(())
}

/// Strip a global `--trace FILE` flag from `args` and install the JSONL
/// sink; fall back to the `XMODEL_TRACE` environment variable. When the
/// fault spec perturbs the sink, the JSONL writer is wrapped in a
/// [`xmodel_obs::FaultySink`] injecting torn writes and write errors.
/// Returns whether tracing is live (a run manifest is then owed at exit).
fn init_tracing(args: &mut Vec<String>) -> Result<bool, String> {
    let path: Option<std::path::PathBuf> = if let Some(i) = args.iter().position(|a| a == "--trace")
    {
        if i + 1 >= args.len() {
            return Err("--trace requires a file path".to_string());
        }
        let p = args.remove(i + 1);
        args.remove(i);
        Some(p.into())
    } else {
        std::env::var_os("XMODEL_TRACE").map(Into::into)
    };
    let Some(path) = path else { return Ok(false) };
    let sink = xmodel_obs::JsonlSink::create(&path)
        .map_err(|e| format!("--trace {}: {e}", path.display()))?;
    let spec = fault_spec();
    if spec.perturbs_sink() {
        xmodel_obs::install(Box::new(xmodel_obs::FaultySink::new(
            Box::new(sink),
            spec.sink_tear_prob,
            spec.sink_error_prob,
            spec.seed,
        )));
    } else {
        xmodel_obs::install(Box::new(sink));
    }
    Ok(true)
}

/// Strip a global `--metrics-addr HOST:PORT` flag and start the live
/// Prometheus exporter; fall back to the `XMODEL_METRICS_ADDR`
/// environment variable (the flag wins when both are present). With
/// neither, the exporter thread is never spawned. The bound address is
/// reported on stderr so `--metrics-addr 127.0.0.1:0` is scrapable.
fn init_metrics(args: &mut Vec<String>) -> Result<(), String> {
    if let Some(i) = args.iter().position(|a| a == "--metrics-addr") {
        if i + 1 >= args.len() {
            return Err("--metrics-addr requires HOST:PORT".to_string());
        }
        let addr = args.remove(i + 1);
        args.remove(i);
        let server =
            xmodel_obs::serve_metrics(&addr).map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
        eprintln!("metrics: serving http://{}/metrics", server.addr());
        return Ok(());
    }
    if let Some(server) = xmodel_obs::init_metrics_from_env() {
        eprintln!("metrics: serving http://{}/metrics", server.addr());
    }
    Ok(())
}

/// Flags (plus any leading positional argument) of the traced command,
/// recorded verbatim in the run manifest.
fn manifest_params(rest: &[String]) -> BTreeMap<String, String> {
    let mut params: BTreeMap<String, String> = parse_flags(rest).into_iter().collect();
    if let Some(first) = rest.first() {
        if !first.starts_with("--") {
            params.insert("arg".to_string(), first.clone());
        }
    }
    params
}

fn usage() {
    eprintln!(
        "usage: xmodel <command>\n\
         \n\
         commands:\n\
           list                               GPUs and workloads\n\
           glossary                           Table I parameters\n\
           draw --m M --r R --l L --z Z --e E --n N [--l1 KIB --alpha A --beta B] [--svg FILE]\n\
           draw --gpu GPU [--dp] --z Z --e E --n N [--l1 KIB ...]\n\
           workload NAME [--gpu GPU] [--l1 KIB] [--svg FILE]\n\
           validate [--gpu GPU]\n\
           whatif [--gpu GPU] [--workload NAME] [--l1 KIB]\n\
           serve [--addr H:P] [--workers N] [--queue N] [--timeout MS]\n\
                 [--drain-timeout MS] [--grid-watermark F] [--baseline-watermark F]\n\
                 [--shards N] [--samples S] [--io-timeout MS]\n\
                 (solve/sweep/whatif daemon; drain with POST /quitck)\n\
           sim --workload NAME [--gpu GPU] [--warps N] [--l1 KIB] [--ir]\n\
           sweep --n-max N (--gpu GPU [--dp] | --m M --r R --l L) --z Z [--e E]\n\
                 [--l1 KIB --alpha A --beta B] [--points P] [--samples S]\n\
                 [--jobs J] [--warm] [--out FILE]\n\
                 (--warm seeds each cell from the last; output is byte-identical)\n\
           trace-report FILE [--timeline] [--svg FILE] [--profile]\n\
           sim-report FILE [--json] [--svg FILE] [--heatmap FILE]\n\
           residuals FILE [--preset GPU] [--workload NAME] [--l1 KIB]\n\
                 [--rel FRAC] [--json]        (exit 1 when residuals exceed --rel)\n\
           profile FILE [--folded FILE] [--top N]\n\
           trace-diff BASE NEW [--json] [--folded FILE] [--top N]\n\
                 [--min-us US] [--rel FRAC]   (exit 1 when differences found)\n\
         \n\
         global flags:\n\
           --trace FILE          stream JSONL trace events to FILE\n\
           --metrics-addr H:P    serve live Prometheus metrics on HOST:PORT\n\
           --fault-spec SPEC     inject deterministic faults (chaos testing), e.g.\n\
                                 seed=7,spike=0.01x8,drop=0.001,dup=0.001,\n\
                                 throttle=1000:0.2:0.25,sink-tear=0.01,sink-error=0.01,\n\
                                 solver=no-bracket|no-grid,serve-slow-client=0.1,\n\
                                 serve-torn-body=0.1,serve-stall=40\n\
         \n\
         environment:\n\
           XMODEL_TRACE          trace file, when --trace is absent\n\
           XMODEL_METRICS_ADDR   metrics HOST:PORT, when --metrics-addr is absent\n\
           XMODEL_FAULT_SPEC     fault spec, when --fault-spec is absent\n\
           XMODEL_JOBS           sweep worker threads, when --jobs is absent\n\
         \n\
         exit codes:\n\
           0  success (degraded results add a `warning:` line on stderr)\n\
           1  typed model/simulation error, or trace-diff differences found\n\
           2  usage error\n"
    );
}

fn cmd_trace_report(args: &[String]) -> Result<(), CliError> {
    let file = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| "trace-report: trace file required".to_string())?;
    let flags = parse_flags(&args[1..]);
    let path = std::path::Path::new(file);
    let report =
        xmodel_obs::report::TraceReport::from_path(path).map_err(|e| format!("{file}: {e}"))?;
    print!("{}", report.render());
    if flags.contains_key("timeline") || flags.contains_key("svg") {
        let tl = xmodel::viz::Timeline::from_path(path).map_err(|e| format!("{file}: {e}"))?;
        println!("\n{}", tl.render_ascii(72, 16));
        if let Some(svg) = flags.get("svg") {
            if !tl.is_empty() {
                std::fs::write(svg, tl.to_chart().to_svg(640.0, 400.0))
                    .map_err(|e| e.to_string())?;
                println!("wrote {svg}");
            }
        }
    }
    if flags.contains_key("profile") {
        let profile = xmodel_obs::profile::SpanProfile::from_path(path)
            .map_err(|e| format!("{file}: {e}"))?;
        println!("\n{}", profile.render().trim_end());
    }
    Ok(())
}

/// `xmodel sim-report TRACE` — occupancy/stall/DRAM digest of a
/// simulator trace recorded with `xmodel sim ... --trace FILE`. Renders
/// the `xmodel-simtrace/1` summary (warp-state shares, measured k/x,
/// probe-delta throughputs, DRAM depth quantiles) plus the occupancy
/// timeline; `--json` emits the summary as one JSON line, `--svg` /
/// `--heatmap` write the occupancy chart / state heatmap as SVG.
fn cmd_sim_report(args: &[String]) -> Result<(), CliError> {
    let file = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| "sim-report: trace file required".to_string())?;
    let flags = parse_flags(&args[1..]);
    let path = std::path::Path::new(file);
    let trace = xmodel_obs::simtrace::SimTrace::from_path(path)
        .map_err(|e| CliError::Model(format!("{file}: {e}")))?;
    let summary = trace.summary();
    let occ = xmodel::viz::OccupancyTimeline::from_trace(&trace);
    if flags.contains_key("json") {
        println!("{}", summary.to_json());
    } else {
        print!("{}", summary.render());
        if !occ.is_empty() {
            println!("\n{}", occ.render_ascii(72, 16));
        }
    }
    // Keep stdout machine-parseable under --json: notices go to stderr.
    let notice = |msg: String| {
        if flags.contains_key("json") {
            eprintln!("{msg}");
        } else {
            println!("{msg}");
        }
    };
    if let Some(svg) = flags.get("svg") {
        if occ.is_empty() {
            notice(format!("skipping {svg}: no probe frames to chart"));
        } else {
            std::fs::write(svg, occ.to_chart().to_svg(640.0, 400.0))
                .map_err(|e| format!("{svg}: {e}"))?;
            notice(format!("wrote {svg}"));
        }
    }
    if let Some(hm_path) = flags.get("heatmap") {
        match occ.to_heatmap() {
            Some(hm) => {
                std::fs::write(hm_path, hm.to_svg(640.0, 300.0))
                    .map_err(|e| format!("{hm_path}: {e}"))?;
                notice(format!("wrote {hm_path}"));
            }
            None => notice(format!("skipping {hm_path}: no probe frames to chart")),
        }
    }
    Ok(())
}

/// `xmodel residuals TRACE` — align a recorded simtrace against the
/// analytic model's predicted operating point and rank the per-variable
/// residuals (`xmodel-residual/1`). The preset/workload/L1 default to
/// what the trace's run manifest recorded, so a bare
/// `xmodel residuals TRACE` validates the trace against the very
/// configuration that produced it; `--preset` compares against a
/// different Table II machine. Exits 1 (`Findings`) when any gated
/// observable's relative residual exceeds `--rel`.
fn cmd_residuals(args: &[String]) -> Result<(), CliError> {
    let file = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| "residuals: trace file required".to_string())?;
    let flags = parse_flags(&args[1..]);
    let path = std::path::Path::new(file);
    let trace = xmodel_obs::simtrace::SimTrace::from_path(path)
        .map_err(|e| CliError::Model(format!("{file}: {e}")))?;
    if trace.is_empty() {
        return Err(CliError::Model(format!(
            "{file}: no sim.probe frames — record one with `xmodel sim ... --trace FILE`"
        )));
    }
    let manifest_param = |key: &str| trace.params.get(key).cloned();
    let gpu_name = flags
        .get("preset")
        .or_else(|| flags.get("gpu"))
        .cloned()
        .or_else(|| manifest_param("gpu"))
        .unwrap_or_else(|| "kepler".to_string());
    let gpu = gpu_by_name(&gpu_name)?;
    let wl_name = flags
        .get("workload")
        .cloned()
        .or_else(|| manifest_param("workload"))
        .unwrap_or_else(|| "gesummv".to_string());
    let w = workload_by_name(&wl_name)?;
    let l1 = match flags.get("l1").cloned().or_else(|| manifest_param("l1")) {
        Some(v) => v.parse::<f64>().map_err(|e| format!("--l1: {e}"))?,
        None => 0.0,
    }
    .max(0.0) as u64;
    let rel = get_f64(&flags, "rel")?.unwrap_or(xmodel_obs::residual::DEFAULT_REL_TOL);
    if rel < 0.0 {
        return Err(CliError::Usage("--rel must be non-negative".to_string()));
    }

    let _span = xmodel_obs::span!(xmodel_obs::names::span::RESIDUAL_COMPARE);
    let mut model = xmodel::profile::fitting::assemble_model(&gpu, &w, l1 * 1024);
    // The traced run's resident-warp count is the n the model must
    // predict for; the header records it exactly.
    if let Some(n) = trace.warps() {
        model.workload.n = f64::from(n);
    }
    let resolved = model
        .resolve_operating_point_with(xmodel::core::solver::DEFAULT_SAMPLES, solver_force())
        .map_err(CliError::model)?;
    if resolved.degradation.is_degraded() {
        eprintln!(
            "warning: operating point degraded to `{}` (residual {:.3e})",
            resolved.degradation, resolved.residual
        );
    }
    let p = &resolved.point;
    let pred = xmodel_obs::residual::ModelPrediction {
        k: p.k,
        x: p.x,
        ms_throughput: p.ms_throughput,
        cs_throughput: p.cs_throughput,
        latency: if p.ms_throughput > 0.0 {
            p.k / p.ms_throughput
        } else {
            f64::INFINITY
        },
    };
    let report = xmodel_obs::residual::ResidualReport::between(&trace, &pred);
    let exceeded = report.exceeding(rel).len();
    xmodel_obs::metrics::counter_add(
        xmodel_obs::names::metric::RESIDUAL_VARIABLES,
        report.series.len() as u64,
    );
    xmodel_obs::metrics::counter_add(
        xmodel_obs::names::metric::RESIDUAL_EXCEEDANCES,
        exceeded as u64,
    );
    if flags.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        println!(
            "{} on {} (L1 {} KiB, n = {:.0}, {} frame(s))",
            w.name, gpu.name, l1, model.workload.n, report.frames
        );
        print!("{}", report.render(rel));
    }
    if exceeded > 0 {
        return Err(CliError::Findings(format!(
            "residuals: {exceeded} gated observable(s) exceed rel {:.0}% \
             against the {} prediction",
            rel * 100.0,
            gpu.name
        )));
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), CliError> {
    let file = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| "profile: trace file required".to_string())?;
    let flags = parse_flags(&args[1..]);
    let path = std::path::Path::new(file);
    let profile =
        xmodel_obs::profile::SpanProfile::from_path(path).map_err(|e| format!("{file}: {e}"))?;
    print!("{}", profile.render());
    if !profile.is_empty() {
        let top = match flags.get("top") {
            Some(v) => v.parse::<usize>().map_err(|e| format!("--top: {e}"))?,
            None => 10,
        };
        println!("\nhot spans (self time):");
        print!(
            "{}",
            xmodel::viz::flame::self_time_bars(&profile.hotspots(), 40, top)
        );
    }
    if let Some(folded) = flags.get("folded") {
        std::fs::write(folded, profile.to_folded()).map_err(|e| format!("{folded}: {e}"))?;
        println!("wrote {folded}");
    }
    Ok(())
}

/// `xmodel trace-diff BASE NEW` — regression attribution between two
/// trace runs. Renders the aligned per-span delta table (or `--json`
/// one JSON line, or `--folded FILE` a signed differential folded
/// stack) and exits 1 when any delta clears the significance
/// thresholds, so scripts can gate on "did anything move?".
fn cmd_trace_diff(args: &[String]) -> Result<(), CliError> {
    let (base_file, new_file) = match args {
        [base, new, ..] if !base.starts_with("--") && !new.starts_with("--") => (base, new),
        _ => {
            return Err(CliError::Usage(
                "trace-diff: base and new trace files required".to_string(),
            ))
        }
    };
    let flags = parse_flags(&args[2..]);
    let top = match flags.get("top") {
        Some(v) => v.parse::<usize>().map_err(|e| format!("--top: {e}"))?,
        None => 20,
    };
    let min_us = get_f64(&flags, "min-us")?.unwrap_or(xmodel_obs::diff::DEFAULT_MIN_US);
    let rel = get_f64(&flags, "rel")?.unwrap_or(xmodel_obs::diff::DEFAULT_REL);
    if min_us < 0.0 || rel < 0.0 {
        return Err(CliError::Usage(
            "--min-us and --rel must be non-negative".to_string(),
        ));
    }

    let read = |file: &str| {
        xmodel_obs::profile::SpanProfile::from_path(std::path::Path::new(file))
            .map_err(|e| CliError::Model(format!("{file}: {e}")))
    };
    let diff = xmodel_obs::diff::TraceDiff::between(&read(base_file)?, &read(new_file)?);

    if flags.contains_key("json") {
        println!("{}", diff.to_json());
    } else {
        print!("{}", diff.render(top, min_us, rel));
        let bars: Vec<(String, f64)> = diff
            .deltas
            .iter()
            .map(|d| (d.name.clone(), d.self_delta_us))
            .collect();
        if bars.iter().any(|(_, v)| *v != 0.0) {
            println!("\nself-time deltas (− faster | slower +):");
            print!("{}", xmodel::viz::flame::delta_bars(&bars, 24, top));
        }
    }
    if let Some(folded) = flags.get("folded") {
        std::fs::write(folded, diff.to_folded()).map_err(|e| format!("{folded}: {e}"))?;
        // Keep stdout pure JSON under --json so the output stays
        // machine-parseable; the notice is advisory either way.
        if flags.contains_key("json") {
            eprintln!("wrote {folded}");
        } else {
            println!("wrote {folded}");
        }
    }

    let significant = diff.significant(min_us, rel).len();
    if significant > 0 {
        return Err(CliError::Findings(format!(
            "trace-diff: {significant} significant difference(s) \
             (thresholds: {min_us} µs and {:.0}% of base self time)",
            rel * 100.0
        )));
    }
    Ok(())
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let val = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            map.insert(key.to_string(), val);
        }
    }
    map
}

fn get_f64(flags: &HashMap<String, String>, key: &str) -> Result<Option<f64>, String> {
    match flags.get(key) {
        Some(v) => v
            .parse::<f64>()
            .map(Some)
            .map_err(|e| format!("--{key}: {e}")),
        None => Ok(None),
    }
}

fn gpu_by_name(name: &str) -> Result<GpuSpec, String> {
    match name.to_ascii_lowercase().as_str() {
        "fermi" | "gtx570" => Ok(GpuSpec::fermi_gtx570()),
        "kepler" | "k40" => Ok(GpuSpec::kepler_k40()),
        "maxwell" | "gtx750ti" => Ok(GpuSpec::maxwell_gtx750ti()),
        other => Err(format!("unknown GPU `{other}` (fermi, kepler, maxwell)")),
    }
}

fn workload_by_name(name: &str) -> Result<Workload, String> {
    Workload::by_name(name).ok_or_else(|| format!("unknown workload `{name}` (try `xmodel list`)"))
}

fn cmd_list() -> Result<(), CliError> {
    println!("GPUs (Table II):");
    for g in GpuSpec::all() {
        println!(
            "  {:<10} {:?}, {} SMs x {} SPs, {} GB/s, {} warps/SM",
            g.name, g.generation, g.sm_count, g.sp_per_sm, g.mem_bw_gbs, g.max_warps
        );
    }
    println!("\nworkloads (the 12-app validation suite):");
    for w in Workload::suite() {
        let a = w.kernel.analyze();
        println!(
            "  {:<10} [{}] E={:.2} Z={:.1}  {}",
            w.name, w.origin, a.ilp, a.intensity, w.description
        );
    }
    Ok(())
}

fn cmd_glossary() -> Result<(), CliError> {
    for e in xmodel::core::params::TABLE_I {
        println!("  {:<6} {}", e.symbol, e.description);
    }
    Ok(())
}

fn build_model(flags: &HashMap<String, String>) -> Result<(XModel, Option<UnitContext>), CliError> {
    let (machine, units) = if let Some(gpu) = flags.get("gpu") {
        let spec = gpu_by_name(gpu)?;
        let precision = if flags.contains_key("dp") {
            Precision::Double
        } else {
            Precision::Single
        };
        (spec.machine_params(precision), Some(spec.units(precision)))
    } else {
        let m = get_f64(flags, "m")?.ok_or_else(|| "--m or --gpu required".to_string())?;
        let r = get_f64(flags, "r")?.ok_or_else(|| "--r required".to_string())?;
        let l = get_f64(flags, "l")?.ok_or_else(|| "--l required".to_string())?;
        (
            MachineParams::try_new(m, r, l).map_err(CliError::model)?,
            None,
        )
    };
    let z = get_f64(flags, "z")?.ok_or_else(|| "--z required".to_string())?;
    let e = get_f64(flags, "e")?.unwrap_or(1.0);
    let n = get_f64(flags, "n")?.ok_or_else(|| "--n required".to_string())?;
    let workload = WorkloadParams::try_new(z, e, n).map_err(CliError::model)?;

    let model = match get_f64(flags, "l1")? {
        Some(kib) if kib > 0.0 => {
            let alpha = get_f64(flags, "alpha")?.unwrap_or(3.0);
            let beta = get_f64(flags, "beta")?.unwrap_or(2048.0);
            let l1_lat = get_f64(flags, "l1-latency")?.unwrap_or(30.0);
            XModel::with_cache(
                machine,
                workload,
                CacheParams::try_new(kib * 1024.0, l1_lat, alpha, beta).map_err(CliError::model)?,
            )
        }
        _ => XModel::new(machine, workload),
    };
    Ok((model, units))
}

fn report(
    model: &XModel,
    units: Option<&UnitContext>,
    svg: Option<&String>,
) -> Result<(), CliError> {
    // Resolve through the degradation ladder first: a model whose curves
    // defeat exact bracketing (or a forced `--fault-spec solver=...`)
    // still reports, with the provenance on stderr; only a model that
    // defeats every rung is a hard error (exit 1).
    let resolved = model
        .resolve_operating_point_with(xmodel::core::solver::DEFAULT_SAMPLES, solver_force())
        .map_err(CliError::model)?;
    if resolved.degradation.is_degraded() {
        eprintln!(
            "warning: operating point degraded to `{}` (residual {:.3e}, schema {})",
            resolved.degradation,
            resolved.residual,
            xmodel::core::degrade::DEGRADE_SCHEMA
        );
        println!(
            "operating point ({}): k = {:.2}, x = {:.2}, MS {:.4} req/cyc, CS {:.4} ops/cyc",
            resolved.degradation,
            resolved.point.k,
            resolved.point.x,
            resolved.point.ms_throughput,
            resolved.point.cs_throughput
        );
    }
    // The shared report card from xmodel-core, then the terminal X-graph.
    print!("{}", xmodel::core::report::render(model, units));
    let graph = XGraph::build(model, 384);
    println!("\n{}", render::xgraph_ascii(&graph, 72, 16));
    if let Some(path) = svg {
        let svg_text = render::xgraph_chart(&graph, units).to_svg(640.0, 400.0);
        std::fs::write(path, svg_text).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_draw(flags: HashMap<String, String>) -> Result<(), CliError> {
    let (model, units) = build_model(&flags)?;
    report(&model, units.as_ref(), flags.get("svg"))
}

fn cmd_workload(args: &[String]) -> Result<(), CliError> {
    let name = args
        .first()
        .ok_or_else(|| "workload name required".to_string())?;
    let flags = parse_flags(&args[1..]);
    let w = workload_by_name(name)?;
    let gpu = gpu_by_name(flags.get("gpu").map(String::as_str).unwrap_or("kepler"))?;
    let l1 = get_f64(&flags, "l1")?.unwrap_or(0.0) as u64;
    let model = xmodel::profile::fitting::assemble_model(&gpu, &w, l1 * 1024);
    let a = w.kernel.analyze();
    println!("{} on {} (L1 {} KiB)", w.name, gpu.name, l1);
    println!("  {}", w.description);
    println!(
        "  extracted: E={:.2} Z={:.2} n={} coalesce={}",
        a.ilp, a.intensity, model.workload.n, w.coalesce
    );
    let precision = xmodel::profile::fitting::workload_precision(&w);
    report(&model, Some(&gpu.units(precision)), flags.get("svg"))
}

fn cmd_validate(flags: HashMap<String, String>) -> Result<(), CliError> {
    let gpu = gpu_by_name(flags.get("gpu").map(String::as_str).unwrap_or("kepler"))?;
    println!("validating on {} ...", gpu.name);
    let rep = validate_suite(&gpu).map_err(CliError::model)?;
    println!("{:<11} {:>8} {:>8} {:>7}", "app", "PCT", "RCT", "acc");
    for a in &rep.apps {
        println!(
            "{:<11} {:>8.3} {:>8.3} {:>6.1}%",
            a.name,
            a.predicted_cs,
            a.measured_cs,
            a.accuracy() * 100.0
        );
    }
    println!("mean accuracy: {:.1}%", rep.mean_accuracy() * 100.0);
    Ok(())
}

fn cmd_sim(flags: HashMap<String, String>) -> Result<(), CliError> {
    let gpu = gpu_by_name(flags.get("gpu").map(String::as_str).unwrap_or("kepler"))?;
    let w = workload_by_name(
        flags
            .get("workload")
            .map(String::as_str)
            .unwrap_or("gesummv"),
    )?;
    let precision = xmodel::profile::fitting::workload_precision(&w);
    let mut cfg = xmodel::profile::sim_config_for(&gpu, precision);
    cfg.request_bytes = 128.0 * w.coalesce;
    if let Some(kib) = get_f64(&flags, "l1")? {
        if kib > 0.0 {
            cfg.l1 = Some(xmodel::sim::CacheConfig {
                capacity_bytes: (kib * 1024.0) as u64,
                line_bytes: 128,
                ways: 8,
                hit_latency: 28,
                mshrs: 64,
            });
        }
    }
    let a = w.kernel.analyze();
    let occ = Occupancy::compute(&w.kernel, &xmodel::profile::fitting::arch_limits(&gpu, 0));
    let warps = get_f64(&flags, "warps")?
        .map(|v| v as u32)
        .unwrap_or_else(|| occ.warps.min(gpu.max_warps as u32));

    let ir_mode = flags.contains_key("ir");
    let spec = fault_spec();
    // A hang (e.g. `--fault-spec drop=1` losing every completion) becomes
    // a typed Watchdog error and exit 1, never a silently-zero result.
    // The threshold must sit well inside the 50k-cycle measure phase or
    // it can never trip; healthy runs complete requests every few hundred
    // cycles, so 25k idle cycles is unambiguous.
    let watchdog = Watchdog {
        stall_cycles: 25_000,
        ..Watchdog::default()
    };
    let (stats, faults) = if ir_mode {
        let mut sm = xmodel::sim::IrSm::new(&cfg, &w.kernel, w.trace, warps, 42);
        if spec.perturbs_memory() {
            sm.set_faults(&spec);
        }
        let stats = sm
            .run_watched(15_000, 50_000, &watchdog)
            .map_err(CliError::model)?
            .clone();
        (stats, sm.fault_counters())
    } else {
        let mut sm = xmodel::sim::Sm::with_faults(
            &cfg,
            &SimWorkload {
                trace: w.trace,
                ops_per_request: a.intensity,
                ilp: a.ilp,
                warps,
            },
            42,
            &spec,
        );
        let stats = sm
            .run_watched(15_000, 50_000, &watchdog)
            .map_err(CliError::model)?
            .clone();
        (stats, sm.fault_counters())
    };
    if let Some(f) = faults {
        eprintln!(
            "warning: injected memory faults: {} spikes, {} drops, {} dups, {} throttled \
             ({} recovered, {} spurious wakes absorbed)",
            f.spikes, f.drops, f.dups, f.throttled, stats.lost_recovered, stats.spurious_wakes
        );
    }
    let units = gpu.units(precision);
    println!(
        "{} on {} ({} warps, {} mode{})",
        w.name,
        gpu.name,
        warps,
        if ir_mode { "IR" } else { "parametric" },
        if cfg.l1.is_some() { ", L1 on" } else { "" }
    );
    println!(
        "  MS {:.4} req/cyc ({:.2} GB/s per SM)   CS {:.4} ops/cyc ({:.2} GF/s per SM)",
        stats.ms_throughput(),
        units.ms_to_gbs(stats.ms_throughput()),
        stats.cs_throughput(),
        units.cs_to_gflops(stats.cs_throughput())
    );
    println!(
        "  spatial state: avg k = {:.1}, avg x = {:.1}, mode k = {}",
        stats.avg_k(),
        stats.avg_x(),
        stats.mode_k()
    );
    if cfg.l1.is_some() {
        println!(
            "  L1: hit rate {:.2} ({} hits / {} misses / {} merges, {} MSHR stalls)",
            stats.hit_rate(),
            stats.l1_hits,
            stats.l1_misses,
            stats.l1_merges,
            stats.mshr_stalls
        );
    }
    Ok(())
}

/// Render a finite f64 as a JSON number, a non-finite one as `null`.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn cmd_sweep(flags: HashMap<String, String>) -> Result<(), CliError> {
    let n_max = get_f64(&flags, "n-max")?.ok_or_else(|| "--n-max required".to_string())?;
    if !n_max.is_finite() || n_max <= 0.0 {
        return Err(CliError::Usage("--n-max must be positive".to_string()));
    }
    let points = match flags.get("points") {
        Some(v) => v.parse::<usize>().map_err(|e| format!("--points: {e}"))?,
        None => 256,
    };
    if points == 0 {
        return Err(CliError::Usage("--points must be at least 1".to_string()));
    }
    let samples = match flags.get("samples") {
        Some(v) => v.parse::<usize>().map_err(|e| format!("--samples: {e}"))?,
        None => xmodel::core::solver::DEFAULT_SAMPLES,
    };
    if samples < 2 {
        return Err(CliError::Usage("--samples must be at least 2".to_string()));
    }
    // Flag beats XMODEL_JOBS beats the detected core count.
    let jobs = match flags.get("jobs") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|e| format!("--jobs: {e}"))?
            .max(1),
        None => xmodel::core::sweep::default_jobs(),
    };

    // Reuse the draw/validate model builder with `n = n_max`; each grid
    // point then overrides the thread count (the one workload knob the
    // tabulated supply curve does not depend on).
    let mut mflags = flags.clone();
    mflags.insert("n".to_string(), format!("{n_max}"));
    let (base, _units) = build_model(&mflags)?;

    let table = xmodel::core::fastpath::CurveTable::build(&base, n_max);
    let ns: Vec<f64> = (1..=points)
        .map(|i| n_max * i as f64 / points as f64)
        .collect();
    // `--warm` carries each cell's verified roots into the next as a
    // seed. The warm path is bit-identical to the cold one (pinned by
    // the core parity suites and CI's warm-vs-cold `cmp`), so the JSON
    // bytes do not depend on the flag — only the solve cost does.
    let rows: Vec<(f64, usize, Option<xmodel::core::solver::Intersection>)> =
        if flags.contains_key("warm") {
            let models: Vec<xmodel::core::XModel> = ns
                .iter()
                .map(|&n| {
                    let mut m = base;
                    m.workload.n = n;
                    m
                })
                .collect();
            let (eqs, _stats) = xmodel::core::sweep::solve_warm(jobs, &models, &table, samples);
            ns.iter()
                .zip(eqs)
                .map(|(&n, eq)| (n, eq.points().len(), eq.operating_point()))
                .collect()
        } else {
            xmodel::core::sweep::run(jobs, &ns, |_, &n| {
                let mut m = base;
                m.workload.n = n;
                let eq = xmodel::core::fastpath::solve_fast(&m, &table, samples);
                (n, eq.points().len(), eq.operating_point())
            })
        };

    // Deterministic hand-rolled JSON: results are collected in index
    // order and `jobs` is deliberately *not* recorded, so the bytes are
    // identical for any worker count (asserted by scripts/ci.sh).
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"xmodel-sweep/1\",\n");
    out.push_str(&format!(
        "  \"machine\": {{\"m\": {}, \"r\": {}, \"l\": {}}},\n",
        jnum(base.machine.m),
        jnum(base.machine.r),
        jnum(base.machine.l)
    ));
    out.push_str(&format!(
        "  \"workload\": {{\"z\": {}, \"e\": {}, \"n_max\": {}}},\n",
        jnum(base.workload.z),
        jnum(base.workload.e),
        jnum(n_max)
    ));
    match base.cache {
        Some(c) => out.push_str(&format!(
            "  \"cache\": {{\"s_bytes\": {}, \"l_cache\": {}, \"alpha\": {}, \"beta\": {}}},\n",
            jnum(c.s_cache),
            jnum(c.l_cache),
            jnum(c.alpha),
            jnum(c.beta)
        )),
        None => out.push_str("  \"cache\": null,\n"),
    }
    out.push_str(&format!(
        "  \"points\": {points},\n  \"samples\": {samples},\n  \"rows\": [\n"
    ));
    for (i, (n, roots, op)) in rows.iter().enumerate() {
        let body = match op {
            Some(p) => {
                let stab = match p.stability {
                    Stability::Stable => "stable",
                    Stability::Unstable => "unstable",
                    Stability::Marginal => "marginal",
                };
                format!(
                    "\"k\": {}, \"x\": {}, \"ms\": {}, \"cs\": {}, \"stability\": \"{stab}\"",
                    jnum(p.k),
                    jnum(p.x),
                    jnum(p.ms_throughput),
                    jnum(p.cs_throughput)
                )
            }
            None => "\"k\": null, \"x\": null, \"ms\": null, \"cs\": null, \"stability\": null"
                .to_string(),
        };
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"n\": {}, \"roots\": {roots}, {body}}}{sep}\n",
            jnum(*n)
        ));
    }
    out.push_str("  ]\n}\n");

    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, out).map_err(|e| format!("--out {path}: {e}"))?;
            println!("wrote {path} ({points} points, {jobs} jobs)");
        }
        None => print!("{out}"),
    }
    Ok(())
}

fn cmd_whatif(flags: HashMap<String, String>) -> Result<(), CliError> {
    let gpu = gpu_by_name(flags.get("gpu").map(String::as_str).unwrap_or("fermi"))?;
    let w = workload_by_name(
        flags
            .get("workload")
            .map(String::as_str)
            .unwrap_or("gesummv"),
    )?;
    let l1 = get_f64(&flags, "l1")?.unwrap_or(16.0) as u64;
    let model = xmodel::profile::fitting::assemble_model(&gpu, &w, l1 * 1024);
    let what_if = WhatIf::new(model);
    println!(
        "{} on {} with {} KiB L1: thrashing = {}",
        w.name,
        gpu.name,
        l1,
        what_if.is_thrashing()
    );
    let n_star = what_if.optimal_throttle();
    let mut candidates = vec![
        (
            "bypass (R x3)".to_string(),
            Optimization::CacheBypass {
                r: model.machine.r * 3.0,
            },
        ),
        (
            "intensity (Z x2)".to_string(),
            Optimization::IncreaseIntensity {
                z: model.workload.z * 2.0,
            },
        ),
        (
            "reduce ILP (E /2)".to_string(),
            Optimization::ReduceIlp {
                e: model.workload.e * 0.5,
            },
        ),
        (
            "enlarge cache (x3)".to_string(),
            Optimization::EnlargeCache {
                s_cache: l1 as f64 * 1024.0 * 3.0,
            },
        ),
    ];
    if let Some(n) = n_star {
        candidates.insert(
            0,
            (
                format!("throttle (n={n:.1})"),
                Optimization::ThreadThrottle { n },
            ),
        );
    }
    for (name, opt) in candidates {
        match what_if.evaluate(opt) {
            Some(eff) => println!(
                "  {:<20} MS {:>5.2}x  CS {:>5.2}x",
                name,
                eff.ms_speedup(),
                eff.cs_speedup()
            ),
            None => println!("  {name:<20} (no equilibrium)"),
        }
    }
    Ok(())
}

/// Parse an optional unsigned-integer flag.
fn get_u64(flags: &HashMap<String, String>, key: &str) -> Result<Option<u64>, String> {
    match flags.get(key) {
        Some(v) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|e| format!("--{key}: {e}")),
        None => Ok(None),
    }
}

/// `xmodel serve`: boot the overload-safe daemon (`core::serve`) and
/// block until it drains (`POST /quitck`). The listen address is
/// printed to stdout (and flushed) before blocking so scripts can bind
/// port 0 and scrape the resolved port. Worker stalls from the global
/// fault spec (`serve-stall=MS`) are wired through for chaos testing.
fn cmd_serve(flags: HashMap<String, String>) -> Result<(), CliError> {
    use xmodel::core::serve::{ServeConfig, Server};
    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| defaults.addr.clone()),
        workers: get_u64(&flags, "workers")?.map_or(defaults.workers, |v| v.max(1) as usize),
        queue_capacity: get_u64(&flags, "queue")?
            .map_or(defaults.queue_capacity, |v| v.max(1) as usize),
        default_deadline_ms: get_u64(&flags, "timeout")?
            .map_or(defaults.default_deadline_ms, |v| v.max(1)),
        drain_deadline_ms: get_u64(&flags, "drain-timeout")?
            .map_or(defaults.drain_deadline_ms, |v| v.max(1)),
        grid_watermark: get_f64(&flags, "grid-watermark")?.unwrap_or(defaults.grid_watermark),
        baseline_watermark: get_f64(&flags, "baseline-watermark")?
            .unwrap_or(defaults.baseline_watermark),
        stall_ms: fault_spec().serve_stall_ms,
        cache_shards: get_u64(&flags, "shards")?
            .map_or(defaults.cache_shards, |v| v.max(1) as usize),
        io_timeout_ms: get_u64(&flags, "io-timeout")?.map_or(defaults.io_timeout_ms, |v| v.max(1)),
        samples: get_u64(&flags, "samples")?
            .map_or(defaults.samples, |v| v.clamp(64, 65_536) as usize),
    };
    // The serve.* counters/gauges/histograms are silently dropped when
    // no sink is installed; a daemon must always be scrapeable.
    if !xmodel_obs::enabled() {
        xmodel_obs::install(Box::new(xmodel_obs::NullSink));
    }
    let server = Server::start(cfg).map_err(|e| CliError::Model(format!("serve: {e}")))?;
    println!("serve: listening on http://{}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let report = server.wait();
    println!(
        "serve: drained — served {} shed {} deadline-exceeded {} malformed {} forced-degrade {}",
        report.served,
        report.shed,
        report.deadline_exceeded,
        report.malformed,
        report.forced_degrade
    );
    if !report.clean_drain {
        return Err(CliError::Model(
            "serve: drain deadline exceeded; in-flight work abandoned".to_string(),
        ));
    }
    Ok(())
}

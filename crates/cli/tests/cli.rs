//! End-to-end tests of the `xmodel` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xmodel"))
        .args(args)
        .output()
        .expect("spawn xmodel");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (ok, _, err) = run(&[]);
    assert!(!ok);
    assert!(err.contains("usage: xmodel"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn list_shows_gpus_and_workloads() {
    let (ok, out, _) = run(&["list"]);
    assert!(ok);
    assert!(out.contains("GTX570"));
    assert!(out.contains("Tesla K40"));
    assert!(out.contains("gesummv"));
    assert!(out.contains("leukocyte"));
}

#[test]
fn glossary_lists_table1() {
    let (ok, out, _) = run(&["glossary"]);
    assert!(ok);
    assert!(out.contains("Compute intensity"));
    assert!(out.contains("psi"));
}

#[test]
fn draw_with_explicit_params() {
    let (ok, out, _) = run(&[
        "draw", "--m", "4", "--r", "0.1", "--l", "500", "--z", "20", "--n", "48",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("state:"));
    assert!(out.contains("X-graph"));
    assert!(out.contains("bound:"));
    assert!(out.contains("advice:"));
}

#[test]
fn draw_with_gpu_preset_and_units() {
    let (ok, out, _) = run(&[
        "draw", "--gpu", "kepler", "--z", "20", "--e", "1.2", "--n", "64",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("GB/s"));
    assert!(out.contains("GF/s"));
}

#[test]
fn draw_missing_params_fails() {
    let (ok, _, err) = run(&["draw", "--gpu", "kepler"]);
    assert!(!ok);
    assert!(err.contains("--z required"));
}

#[test]
fn draw_bad_gpu_fails() {
    let (ok, _, err) = run(&["draw", "--gpu", "voodoo2", "--z", "1", "--n", "1"]);
    assert!(!ok);
    assert!(err.contains("unknown GPU"));
}

#[test]
fn draw_writes_svg() {
    let dir = std::env::temp_dir().join("xmodel_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.svg");
    let path_str = path.to_str().unwrap();
    let (ok, out, _) = run(&[
        "draw", "--m", "4", "--r", "0.1", "--l", "500", "--z", "20", "--n", "48", "--svg", path_str,
    ]);
    assert!(ok, "{out}");
    let svg = std::fs::read_to_string(&path).unwrap();
    assert!(svg.contains("<svg"));
    std::fs::remove_file(path).ok();
}

#[test]
fn draw_with_cache_reports_cached_curve() {
    let (ok, out, _) = run(&[
        "draw", "--m", "6", "--r", "0.02", "--l", "600", "--z", "66", "--e", "0.25", "--n", "60",
        "--l1", "16", "--alpha", "5", "--beta", "2048",
    ]);
    assert!(ok, "{out}");
    // The bistable configuration shows several intersections.
    assert!(out.matches("state:").count() >= 3, "{out}");
    assert!(out.contains("UNSTABLE"));
    assert!(out.contains("bistable"));
}

#[test]
fn workload_command_analyzes_suite_member() {
    let (ok, out, _) = run(&["workload", "spmv", "--gpu", "kepler"]);
    assert!(ok, "{out}");
    assert!(out.contains("spmv on Tesla K40"));
    assert!(out.contains("extracted: E="));
}

#[test]
fn workload_unknown_name_fails() {
    let (ok, _, err) = run(&["workload", "doom"]);
    assert!(!ok);
    assert!(err.contains("unknown workload"));
}

#[test]
fn sim_runs_parametric_and_ir() {
    let (ok, out, _) = run(&["sim", "--workload", "spmv", "--warps", "16"]);
    assert!(ok, "{out}");
    assert!(out.contains("parametric"));
    assert!(out.contains("spatial state"));
    let (ok, out, _) = run(&["sim", "--workload", "spmv", "--warps", "16", "--ir"]);
    assert!(ok, "{out}");
    assert!(out.contains("IR"));
}

#[test]
fn sim_with_l1_reports_hit_rate() {
    let (ok, out, _) = run(&[
        "sim",
        "--workload",
        "gesummv",
        "--gpu",
        "fermi",
        "--l1",
        "16",
        "--warps",
        "24",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("hit rate"));
}

#[test]
fn whatif_runs_case_study() {
    let (ok, out, _) = run(&[
        "whatif",
        "--gpu",
        "fermi",
        "--workload",
        "gesummv",
        "--l1",
        "16",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("thrashing"));
    assert!(out.contains("bypass"));
}

//! End-to-end tests of the `xmodel` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xmodel"))
        .args(args)
        .output()
        .expect("spawn xmodel");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (ok, _, err) = run(&[]);
    assert!(!ok);
    assert!(err.contains("usage: xmodel"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn list_shows_gpus_and_workloads() {
    let (ok, out, _) = run(&["list"]);
    assert!(ok);
    assert!(out.contains("GTX570"));
    assert!(out.contains("Tesla K40"));
    assert!(out.contains("gesummv"));
    assert!(out.contains("leukocyte"));
}

#[test]
fn glossary_lists_table1() {
    let (ok, out, _) = run(&["glossary"]);
    assert!(ok);
    assert!(out.contains("Compute intensity"));
    assert!(out.contains("psi"));
}

#[test]
fn draw_with_explicit_params() {
    let (ok, out, _) = run(&[
        "draw", "--m", "4", "--r", "0.1", "--l", "500", "--z", "20", "--n", "48",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("state:"));
    assert!(out.contains("X-graph"));
    assert!(out.contains("bound:"));
    assert!(out.contains("advice:"));
}

#[test]
fn draw_with_gpu_preset_and_units() {
    let (ok, out, _) = run(&[
        "draw", "--gpu", "kepler", "--z", "20", "--e", "1.2", "--n", "64",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("GB/s"));
    assert!(out.contains("GF/s"));
}

#[test]
fn draw_missing_params_fails() {
    let (ok, _, err) = run(&["draw", "--gpu", "kepler"]);
    assert!(!ok);
    assert!(err.contains("--z required"));
}

#[test]
fn draw_bad_gpu_fails() {
    let (ok, _, err) = run(&["draw", "--gpu", "voodoo2", "--z", "1", "--n", "1"]);
    assert!(!ok);
    assert!(err.contains("unknown GPU"));
}

#[test]
fn draw_writes_svg() {
    let dir = std::env::temp_dir().join("xmodel_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.svg");
    let path_str = path.to_str().unwrap();
    let (ok, out, _) = run(&[
        "draw", "--m", "4", "--r", "0.1", "--l", "500", "--z", "20", "--n", "48", "--svg", path_str,
    ]);
    assert!(ok, "{out}");
    let svg = std::fs::read_to_string(&path).unwrap();
    assert!(svg.contains("<svg"));
    std::fs::remove_file(path).ok();
}

#[test]
fn draw_with_cache_reports_cached_curve() {
    let (ok, out, _) = run(&[
        "draw", "--m", "6", "--r", "0.02", "--l", "600", "--z", "66", "--e", "0.25", "--n", "60",
        "--l1", "16", "--alpha", "5", "--beta", "2048",
    ]);
    assert!(ok, "{out}");
    // The bistable configuration shows several intersections.
    assert!(out.matches("state:").count() >= 3, "{out}");
    assert!(out.contains("UNSTABLE"));
    assert!(out.contains("bistable"));
}

#[test]
fn workload_command_analyzes_suite_member() {
    let (ok, out, _) = run(&["workload", "spmv", "--gpu", "kepler"]);
    assert!(ok, "{out}");
    assert!(out.contains("spmv on Tesla K40"));
    assert!(out.contains("extracted: E="));
}

#[test]
fn workload_unknown_name_fails() {
    let (ok, _, err) = run(&["workload", "doom"]);
    assert!(!ok);
    assert!(err.contains("unknown workload"));
}

#[test]
fn sim_runs_parametric_and_ir() {
    let (ok, out, _) = run(&["sim", "--workload", "spmv", "--warps", "16"]);
    assert!(ok, "{out}");
    assert!(out.contains("parametric"));
    assert!(out.contains("spatial state"));
    let (ok, out, _) = run(&["sim", "--workload", "spmv", "--warps", "16", "--ir"]);
    assert!(ok, "{out}");
    assert!(out.contains("IR"));
}

#[test]
fn sim_with_l1_reports_hit_rate() {
    let (ok, out, _) = run(&[
        "sim",
        "--workload",
        "gesummv",
        "--gpu",
        "fermi",
        "--l1",
        "16",
        "--warps",
        "24",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("hit rate"));
}

#[test]
fn whatif_runs_case_study() {
    let (ok, out, _) = run(&[
        "whatif",
        "--gpu",
        "fermi",
        "--workload",
        "gesummv",
        "--l1",
        "16",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("thrashing"));
    assert!(out.contains("bypass"));
}

/// Like [`run`], but with extra environment variables set.
fn run_env(args: &[&str], envs: &[(&str, &str)]) -> (bool, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xmodel"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn xmodel");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xmodel_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

#[test]
fn help_documents_observability_env_vars() {
    let (ok, _, err) = run(&["--help"]);
    assert!(ok);
    assert!(err.contains("XMODEL_TRACE"), "{err}");
    assert!(err.contains("XMODEL_METRICS_ADDR"), "{err}");
    assert!(err.contains("--metrics-addr"), "{err}");
    assert!(err.contains("profile FILE"), "{err}");
}

#[test]
fn trace_flag_wins_over_env_var() {
    let flag_trace = temp_path("flag.jsonl");
    let env_trace = temp_path("env.jsonl");
    let (ok, _, _) = run_env(
        &["list", "--trace", flag_trace.to_str().unwrap()],
        &[("XMODEL_TRACE", env_trace.to_str().unwrap())],
    );
    assert!(ok);
    assert!(flag_trace.exists(), "--trace path must be used");
    assert!(!env_trace.exists(), "env path must be ignored when flagged");
    std::fs::remove_file(&flag_trace).ok();
}

#[test]
fn trace_env_var_used_when_flag_absent() {
    let env_trace = temp_path("env-only.jsonl");
    let (ok, _, _) = run_env(&["list"], &[("XMODEL_TRACE", env_trace.to_str().unwrap())]);
    assert!(ok);
    let text = std::fs::read_to_string(&env_trace).expect("env trace written");
    assert!(text.contains("\"kind\":\"run_manifest\""));
    std::fs::remove_file(&env_trace).ok();
}

#[test]
fn metrics_addr_flag_wins_over_env_var() {
    // The env var is unbindable garbage; the flag is valid. Success plus
    // a serving line proves the flag took precedence.
    let (ok, _, err) = run_env(
        &["list", "--metrics-addr", "127.0.0.1:0"],
        &[("XMODEL_METRICS_ADDR", "not-an-address")],
    );
    assert!(ok, "{err}");
    assert!(err.contains("metrics: serving http://127.0.0.1:"), "{err}");
}

#[test]
fn metrics_exporter_absent_without_flag_or_env() {
    let (ok, _, err) = run(&["list"]);
    assert!(ok);
    assert!(!err.contains("metrics:"), "{err}");
}

#[test]
fn metrics_addr_invalid_fails() {
    let (ok, _, err) = run(&["list", "--metrics-addr", "not-an-address"]);
    assert!(!ok);
    assert!(err.contains("--metrics-addr"), "{err}");
}

#[test]
fn profile_command_renders_call_tree_and_folded_stacks() {
    let trace = temp_path("profile.jsonl");
    let folded = temp_path("profile.folded");
    let (ok, _, _) = run(&[
        "validate",
        "--gpu",
        "kepler",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(ok);

    let (ok, out, _) = run(&[
        "profile",
        trace.to_str().unwrap(),
        "--folded",
        folded.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    // Call-tree table with self/total/percentile columns.
    assert!(out.contains("total ms"), "{out}");
    assert!(out.contains("self ms"), "{out}");
    assert!(out.contains("p95"), "{out}");
    assert!(out.contains("sim.measure"), "{out}");
    assert!(out.contains("hot spans"), "{out}");

    // Folded-stack file: `frame;frame value` lines, flamegraph.pl-style.
    let text = std::fs::read_to_string(&folded).expect("folded file written");
    assert!(!text.is_empty());
    for line in text.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("stack + count");
        assert!(!stack.is_empty());
        assert!(value.parse::<u64>().is_ok(), "bad folded line: {line}");
    }
    assert!(
        text.lines().any(|l| l.starts_with("sim.run;")),
        "nested stacks present:\n{text}"
    );
    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&folded).ok();
}

#[test]
fn trace_report_profile_flag_appends_profile() {
    let trace = temp_path("tr-profile.jsonl");
    let (ok, _, _) = run(&[
        "sim",
        "--workload",
        "spmv",
        "--warps",
        "8",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(ok);
    let (ok, out, _) = run(&["trace-report", trace.to_str().unwrap(), "--profile"]);
    assert!(ok, "{out}");
    assert!(out.contains("events:"), "{out}");
    assert!(out.contains("self ms"), "{out}");
    std::fs::remove_file(&trace).ok();
}

#[test]
fn profile_and_trace_report_survive_malformed_traces() {
    let empty = temp_path("empty.jsonl");
    std::fs::write(&empty, "").unwrap();
    let (ok, out, _) = run(&["profile", empty.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("warning"), "{out}");
    let (ok, out, _) = run(&["trace-report", empty.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("warning: trace is empty"), "{out}");

    let torn = temp_path("torn.jsonl");
    std::fs::write(
        &torn,
        "{\"kind\":\"span\",\"t_us\":1,\"name\":\"a\",\"dur_us\":5}\n{\"kind\":\"sp",
    )
    .unwrap();
    let (ok, out, _) = run(&["profile", torn.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("malformed"), "{out}");
    assert!(out.contains('a'), "{out}");
    let (ok, out, _) = run(&["trace-report", torn.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("1 malformed"), "{out}");
    std::fs::remove_file(&empty).ok();
    std::fs::remove_file(&torn).ok();
}

#[test]
fn sweep_emits_schema_and_rows() {
    let (ok, out, _) = run(&[
        "sweep", "--gpu", "kepler", "--z", "24", "--e", "1.2", "--n-max", "64", "--points", "8",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("\"schema\": \"xmodel-sweep/1\""), "{out}");
    assert!(out.matches("\"n\": ").count() >= 8, "{out}");
    assert!(out.contains("\"stability\": \"stable\""), "{out}");
}

#[test]
fn sweep_requires_n_max() {
    let (ok, _, err) = run(&["sweep", "--gpu", "kepler", "--z", "24"]);
    assert!(!ok);
    assert!(err.contains("--n-max"), "{err}");
}

#[test]
fn sweep_output_is_byte_identical_for_any_jobs() {
    let args = [
        "sweep", "--gpu", "fermi", "--z", "16", "--l1", "16", "--n-max", "48", "--points", "64",
    ];
    let with_jobs = |j: &str| {
        let (ok, out, err) = run(&[&args[..], &["--jobs", j]].concat());
        assert!(ok, "{err}");
        out
    };
    let one = with_jobs("1");
    assert_eq!(one, with_jobs("4"), "--jobs must not change the bytes");
    // XMODEL_JOBS is the fallback when the flag is absent.
    let (ok, out, err) = run_env(&args, &[("XMODEL_JOBS", "3")]);
    assert!(ok, "{err}");
    assert_eq!(one, out, "XMODEL_JOBS must not change the bytes");
}

#[test]
fn sweep_writes_out_file() {
    let path = temp_path("sweep.json");
    let (ok, out, err) = run(&[
        "sweep",
        "--gpu",
        "maxwell",
        "--z",
        "30",
        "--n-max",
        "32",
        "--points",
        "4",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("wrote "), "{out}");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"xmodel-sweep/1\""));
    std::fs::remove_file(&path).ok();
}

fn span_line(name: &str, parent: Option<&str>, dur_us: u64) -> String {
    match parent {
        Some(p) => format!(
            r#"{{"kind":"span","t_us":1,"name":"{name}","dur_us":{dur_us},"parent":"{p}"}}"#
        ),
        None => format!(r#"{{"kind":"span","t_us":1,"name":"{name}","dur_us":{dur_us}}}"#),
    }
}

fn write_trace(name: &str, spans: &[(&str, Option<&str>, u64)]) -> std::path::PathBuf {
    let path = temp_path(name);
    let body: String = spans
        .iter()
        .map(|(n, p, d)| span_line(n, *p, *d) + "\n")
        .collect();
    std::fs::write(&path, body).unwrap();
    path
}

#[test]
fn trace_diff_of_identical_traces_reports_no_differences() {
    let trace = temp_path("td-self.jsonl");
    let (ok, _, _) = run(&[
        "validate",
        "--gpu",
        "kepler",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(ok);
    let (ok, out, err) = run(&[
        "trace-diff",
        trace.to_str().unwrap(),
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "self-diff must exit 0: {err}");
    assert!(out.contains("Δself ms"), "{out}");
    assert!(
        !out.contains('!'),
        "no significant rows in a self-diff:\n{out}"
    );
    assert!(err.is_empty(), "{err}");
    std::fs::remove_file(&trace).ok();
}

#[test]
fn trace_diff_ranks_injected_slow_span_first_and_exits_one() {
    let base = write_trace(
        "td-base.jsonl",
        &[
            ("root", None, 30_000),
            ("mid", Some("root"), 10_000),
            ("leaf", Some("mid"), 4_000),
        ],
    );
    let new = write_trace(
        "td-new.jsonl",
        &[
            ("root", None, 50_000),
            ("mid", Some("root"), 30_000),
            ("leaf", Some("mid"), 4_000),
        ],
    );
    let folded = temp_path("td.folded");
    let (ok, out, err) = run(&[
        "trace-diff",
        base.to_str().unwrap(),
        new.to_str().unwrap(),
        "--folded",
        folded.to_str().unwrap(),
    ]);
    assert!(!ok, "differences must exit non-zero");
    assert!(err.contains("significant difference(s)"), "{err}");
    assert!(
        !err.contains("error:"),
        "findings are not a typed error: {err}"
    );
    // `mid` gained 20 ms of self time (root only gained 20 ms total,
    // which is all inherited) — it must be the top culprit row.
    let first_row = out
        .lines()
        .find(|l| l.starts_with('!') || l.starts_with('·'))
        .expect("a data row");
    assert!(first_row.contains("mid"), "top culprit:\n{out}");
    assert!(
        first_row.starts_with('!'),
        "top culprit is significant:\n{out}"
    );
    assert!(out.contains("self-time deltas"), "{out}");

    let text = std::fs::read_to_string(&folded).unwrap();
    assert!(text.contains("root;mid +20000"), "folded deltas:\n{text}");
    for path in [&base, &new, &folded] {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn trace_diff_json_carries_schema_and_statuses() {
    let base = write_trace(
        "td-json-a.jsonl",
        &[("root", None, 10_000), ("old", Some("root"), 5_000)],
    );
    let new = write_trace(
        "td-json-b.jsonl",
        &[("root", None, 10_000), ("fresh", Some("root"), 5_000)],
    );
    let (ok, out, _) = run(&[
        "trace-diff",
        base.to_str().unwrap(),
        new.to_str().unwrap(),
        "--json",
    ]);
    assert!(!ok, "new/vanished spans are differences");
    assert!(out.contains("\"schema\":\"xmodel-trace-diff/1\""), "{out}");
    assert!(out.contains("\"vanished\""), "{out}");
    assert!(out.contains("\"new\""), "{out}");
    for path in [&base, &new] {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn trace_diff_thresholds_silence_small_shifts() {
    let base = write_trace("td-th-a.jsonl", &[("root", None, 100_000)]);
    let new = write_trace("td-th-b.jsonl", &[("root", None, 101_000)]);
    // +1 ms on 100 ms is above the absolute floor but below 5% relative;
    // raising --min-us above it silences it too.
    let (ok, _, err) = run(&["trace-diff", base.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(ok, "1% shift is noise under default thresholds: {err}");
    let (ok, _, err) = run(&[
        "trace-diff",
        base.to_str().unwrap(),
        new.to_str().unwrap(),
        "--rel",
        "0.005",
    ]);
    assert!(!ok, "lowering --rel must surface the shift");
    assert!(err.contains("1 significant"), "{err}");
    for path in [&base, &new] {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn trace_diff_usage_and_io_errors() {
    let (ok, _, err) = run(&["trace-diff"]);
    assert!(!ok);
    assert!(err.contains("usage"), "{err}");
    let (ok, _, err) = run(&["trace-diff", "a.jsonl", "b.jsonl", "--rel", "-1"]);
    assert!(!ok);
    assert!(err.contains("--rel"), "{err}");
    let missing = temp_path("td-missing.jsonl");
    let (ok, _, err) = run(&[
        "trace-diff",
        missing.to_str().unwrap(),
        missing.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(
        err.contains("error:"),
        "unreadable trace is a typed error: {err}"
    );
}

#[test]
fn sweep_output_is_byte_identical_with_tracing_enabled() {
    // The sweep worker tallies must stay a side channel: enabling the
    // trace sink (which turns on every gated counter/gauge) must not
    // perturb the result bytes, at any worker count.
    let t1 = temp_path("sweep-traced-1.jsonl");
    let t4 = temp_path("sweep-traced-4.jsonl");
    let base = [
        "sweep", "--gpu", "fermi", "--z", "16", "--l1", "16", "--n-max", "48", "--points", "64",
    ];
    let traced = |jobs: &str, trace: &std::path::Path| {
        let (ok, out, err) = run(&[
            &base[..],
            &["--jobs", jobs, "--trace", trace.to_str().unwrap()],
        ]
        .concat());
        assert!(ok, "{err}");
        out
    };
    let one = traced("1", &t1);
    assert_eq!(
        one,
        traced("4", &t4),
        "tracing instrumentation must not change sweep bytes"
    );
    // And a traced run matches an untraced one.
    let (ok, plain, err) = run(&[&base[..], &["--jobs", "4"]].concat());
    assert!(ok, "{err}");
    assert_eq!(one, plain, "trace sink must not change sweep bytes");
    std::fs::remove_file(&t1).ok();
    std::fs::remove_file(&t4).ok();
}

#[test]
fn serve_boots_answers_and_drains_clean() {
    use std::io::{BufRead, BufReader, Read, Write};

    let mut child = Command::new(env!("CARGO_BIN_EXE_xmodel"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue",
            "8",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn xmodel serve");
    let mut lines = BufReader::new(child.stdout.take().expect("child stdout")).lines();
    let banner = lines
        .next()
        .expect("listening banner")
        .expect("read banner");
    let addr = banner
        .split("http://")
        .nth(1)
        .expect("address in banner")
        .trim()
        .to_string();

    let request = |raw: &str| -> String {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .expect("timeout");
        stream.write_all(raw.as_bytes()).expect("write");
        let mut text = String::new();
        stream.read_to_string(&mut text).expect("read");
        text
    };
    let post = |path: &str, body: &str| -> String {
        request(&format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ))
    };

    // A good solve answers 200 with exact-rung provenance.
    let solve = post(
        "/solve",
        "{\"gpu\":\"fermi\",\"z\":20,\"n\":48,\"l1_kib\":16}",
    );
    assert!(solve.starts_with("HTTP/1.1 200"), "{solve:?}");
    assert!(solve.contains("\"degradation\":\"exact\""), "{solve:?}");

    // Garbage is a typed 400, not a crash.
    let bad = post("/solve", "{not json");
    assert!(bad.starts_with("HTTP/1.1 400"), "{bad:?}");

    // Health endpoints respond.
    let health = request("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(health.starts_with("HTTP/1.1 200"), "{health:?}");

    // Drain via /quitck: the process must exit 0 on its own.
    let drain = post("/quitck", "");
    assert!(drain.starts_with("HTTP/1.1 200"), "{drain:?}");
    let status = child.wait().expect("wait for drained server");
    assert!(status.success(), "drained server must exit 0: {status:?}");
}

//! # xmodel — the X-model, batteries included
//!
//! Facade crate re-exporting the full reproduction of *"X: A Comprehensive
//! Analytic Model for Parallel Machines"* (Li et al., IPPS 2016):
//!
//! | crate | re-export | contents |
//! |---|---|---|
//! | `xmodel-core` | [`core`] | the analytic model itself |
//! | `xmodel-isa` | [`isa`] | kernel IR, static analysis, occupancy |
//! | `xmodel-workloads` | [`workloads`] | the 12 §V benchmarks + traces |
//! | `xmodel-sim` | [`sim`] | cycle-level SM simulator |
//! | `xmodel-profile` | [`profile`] | profiling + §V validation harness |
//! | `xmodel-baselines` | [`baselines`] | Roofline, Valley, MWP-CWP |
//! | `xmodel-viz` | [`viz`] | SVG/ASCII plotting |
//!
//! plus [`render`], the adapter that turns an assembled
//! [`core::xgraph::XGraph`] into a publishable chart.
//!
//! ```
//! use xmodel::prelude::*;
//!
//! // Draw the X-graph of a Kepler-like SM running a memory-bound kernel.
//! let model = XModel::new(
//!     MachineParams::new(6.0, 0.107, 598.0),
//!     WorkloadParams::new(10.0, 1.2, 64.0),
//! );
//! let graph = XGraph::build(&model, 256);
//! let svg = xmodel::render::xgraph_chart(&graph, None).to_svg(480.0, 320.0);
//! assert!(svg.contains("f(k)"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use xmodel_baselines as baselines;
pub use xmodel_core as core;
pub use xmodel_isa as isa;
pub use xmodel_obs as obs;
pub use xmodel_profile as profile;
pub use xmodel_sim as sim;
pub use xmodel_viz as viz;
pub use xmodel_workloads as workloads;

pub mod render;

/// One-stop import for the typical user.
pub mod prelude {
    pub use crate::render;
    pub use xmodel_baselines::prelude::*;
    pub use xmodel_core::prelude::*;
    pub use xmodel_isa::prelude::*;
    pub use xmodel_profile::prelude::*;
    pub use xmodel_sim::prelude::*;
    pub use xmodel_viz::prelude::*;
    pub use xmodel_workloads::prelude::*;
}

//! Rendering adapters: [`XGraph`] → charts.

use xmodel_core::stability::Stability;
use xmodel_core::units::UnitContext;
use xmodel_core::xgraph::XGraph;
use xmodel_viz::ascii::AsciiChart;
use xmodel_viz::chart::{Chart, Marker, Series};

/// Build the canonical X-graph chart: `f(k)` and the reversed demand
/// curve `ĝ(n−k)` over the shared thread axis, with σ/π/ψ annotations.
///
/// With a [`UnitContext`], the y axis is converted to GB/s and a right
/// axis in GF/s is added (the Fig. 10 dual-axis layout); without one the
/// chart stays in model units (requests/cycle).
pub fn xgraph_chart(graph: &XGraph, units: Option<&UnitContext>) -> Chart {
    let scale = |v: f64| units.map(|u| u.ms_to_gbs(v)).unwrap_or(v);
    let y_label = if units.is_some() {
        "MS Throughput (GB/s per SM)"
    } else {
        "MS Throughput (requests/cycle)"
    };

    let fk: Vec<(f64, f64)> = graph.fk.iter().map(|&(k, v)| (k, scale(v))).collect();
    let ghat: Vec<(f64, f64)> = graph.ghat.iter().map(|&(k, v)| (k, scale(v))).collect();

    let mut chart = Chart::new("X-graph", "Threads in the machine (k)", y_label)
        .with(Series::line("f(k)", fk, 0))
        .with(Series::line("g(n\u{2212}k)/Z", ghat, 1).dashed());

    if let Some(u) = units {
        // The right axis reports the same demand curve in CS space.
        let g_cs: Vec<(f64, f64)> = graph
            .ghat
            .iter()
            .map(|&(k, v)| (k, u.cs_to_gflops(v * graph.z)))
            .collect();
        chart = chart
            .right_axis("CS Throughput (GF/s per SM)")
            .with(Series::line("g(x)", g_cs, 2).on_right_axis());
    }

    // Intersection annotations: sigma' for the first stable point, sigma
    // for unstable, sigma'' for the later stable one.
    let mut stable_seen = 0;
    for p in &graph.intersections {
        let label = match p.stability {
            Stability::Stable | Stability::Marginal => {
                stable_seen += 1;
                if stable_seen == 1 {
                    "σ'"
                } else {
                    "σ''"
                }
            }
            Stability::Unstable => "σ",
        };
        chart = chart.with_marker(Marker {
            label: label.to_string(),
            x: p.k,
            y: Some(scale(p.ms_throughput)),
        });
    }
    if let Some(pk) = graph.pi_k {
        chart = chart.with_marker(Marker {
            label: "π".to_string(),
            x: pk,
            y: None,
        });
    }
    if let Some(peak) = graph.features.peak {
        chart = chart.with_marker(Marker {
            label: "ψ".to_string(),
            x: peak.k,
            y: None,
        });
    }
    chart
}

/// Render an X-graph as a quick terminal plot.
pub fn xgraph_ascii(graph: &XGraph, width: usize, height: usize) -> String {
    let mut c = AsciiChart::new(
        format!(
            "X-graph  (n = {}, Z = {}; * = f(k), o = g(n-k)/Z)",
            graph.n, graph.z
        ),
        width,
        height,
    );
    c.add(&graph.fk);
    c.add(&graph.ghat);
    c.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmodel_core::cache::CacheParams;
    use xmodel_core::params::{MachineParams, WorkloadParams};
    use xmodel_core::XModel;

    fn bistable_graph() -> XGraph {
        let model = XModel::with_cache(
            MachineParams::new(6.0, 0.02, 600.0),
            WorkloadParams::new(66.0, 0.25, 60.0),
            CacheParams::try_new(16.0 * 1024.0, 30.0, 5.0, 2048.0).unwrap(),
        );
        XGraph::build(&model, 256)
    }

    #[test]
    fn chart_has_both_curves_and_sigmas() {
        let chart = xgraph_chart(&bistable_graph(), None);
        assert_eq!(chart.series.len(), 2);
        let labels: Vec<&str> = chart.markers.iter().map(|m| m.label.as_str()).collect();
        assert!(labels.contains(&"σ'"));
        assert!(labels.contains(&"σ"));
        assert!(labels.contains(&"σ''"));
        assert!(labels.contains(&"π"));
        assert!(labels.contains(&"ψ"));
    }

    #[test]
    fn unit_scaling_adds_right_axis() {
        let u = UnitContext::new(0.876, 128.0, 2.0, 15);
        let chart = xgraph_chart(&bistable_graph(), Some(&u));
        assert_eq!(chart.series.len(), 3);
        assert!(chart.series[2].right_axis);
        assert!(chart.y_label.contains("GB/s"));
        // Scaled values differ from model units.
        let raw = xgraph_chart(&bistable_graph(), None);
        assert!(chart.series[0].points[10].1 > raw.series[0].points[10].1);
    }

    #[test]
    fn svg_end_to_end() {
        let svg = xgraph_chart(&bistable_graph(), None).to_svg(480.0, 320.0);
        assert!(svg.contains("f(k)"));
        assert!(svg.contains("σ"));
    }

    #[test]
    fn ascii_end_to_end() {
        let s = xgraph_ascii(&bistable_graph(), 60, 14);
        assert!(s.contains('*'));
        assert!(s.contains('o'));
    }
}

//! Property tests of simulator invariants.

use proptest::prelude::*;
use xmodel_sim::prelude::*;
use xmodel_workloads::TraceSpec;

fn any_trace() -> impl Strategy<Value = TraceSpec> {
    prop_oneof![
        (8u64..4096).prop_map(|r| TraceSpec::Stream { region_lines: r }),
        (1u64..64, 8u64..2048).prop_map(|(s, r)| TraceSpec::Strided {
            stride_lines: s,
            region_lines: r,
        }),
        (1u64..128, 0.0f64..0.9, 0.0f64..2.5).prop_map(|(w, p, k)| {
            TraceSpec::PrivateWorkingSet {
                ws_lines: w,
                stream_prob: p,
                reuse_skew: k,
            }
        }),
        (1u64..128, 16u64..4096, 0.0f64..1.0).prop_map(|(v, r, p)| TraceSpec::SharedVector {
            vector_lines: v,
            region_lines: r,
            vector_prob: p,
        }),
        (16u64..65536, 0.0f64..2.0).prop_map(|(f, s)| TraceSpec::Gather {
            footprint_lines: f,
            skew: s,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation and bounds hold for any trace/config combination.
    #[test]
    fn parametric_sim_invariants(
        trace in any_trace(),
        warps in 1u32..24,
        z in 1.0f64..64.0,
        lanes in 1.0f64..8.0,
        with_l1 in any::<bool>(),
    ) {
        let mut b = SimConfig::builder()
            .lanes(lanes)
            .issue_width(4)
            .lsu(2)
            .dram(300, 12.0);
        if with_l1 {
            b = b.l1(8 * 1024, 20, 16);
        }
        let cfg = b.build();
        let wl = SimWorkload {
            trace,
            ops_per_request: z,
            ilp: 1.0,
            warps,
        };
        let s = xmodel_sim::simulate(&cfg, &wl, 1_000, 4_000);
        prop_assert!((s.avg_k() + s.avg_x() - warps as f64).abs() < 1e-9);
        prop_assert!(s.cs_throughput() <= lanes + 1e-9);
        prop_assert!(s.ms_throughput() >= 0.0);
        prop_assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
        // Histogram sums to measured cycles.
        let hist_total: u64 = s.k_histogram.iter().sum();
        prop_assert_eq!(hist_total, s.cycles);
        // Requests imply bytes.
        prop_assert_eq!(s.bytes_delivered, s.requests_completed * 128);
    }

    /// Determinism: identical seeds give identical stats for every trace.
    #[test]
    fn sim_is_deterministic(trace in any_trace(), warps in 1u32..16, seed in 0u64..64) {
        let cfg = SimConfig::builder().lanes(4.0).dram(300, 12.0).build();
        let wl = SimWorkload {
            trace,
            ops_per_request: 8.0,
            ilp: 1.0,
            warps,
        };
        let a = xmodel_sim::simulate_with_seed(&cfg, &wl, 500, 2_000, seed);
        let b = xmodel_sim::simulate_with_seed(&cfg, &wl, 500, 2_000, seed);
        prop_assert_eq!(a, b);
    }

    /// The IR-driven mode honours the same invariants.
    #[test]
    fn ir_sim_invariants(trace in any_trace(), warps in 1u32..12) {
        let cfg = SimConfig::builder()
            .lanes(6.0)
            .issue_width(4)
            .lsu(2)
            .dram(300, 12.0)
            .build();
        let kernel = xmodel_workloads::microbench::stream_kernel(false);
        let s = xmodel_sim::exec::simulate_ir(&cfg, &kernel, trace, warps, 1_000, 4_000);
        prop_assert!((s.avg_k() + s.avg_x() - warps as f64).abs() < 1e-9);
        prop_assert!(s.cs_throughput() <= 6.0 + 1e-9);
        prop_assert!(s.ms_throughput() >= 0.0);
    }

    /// More DRAM bandwidth never hurts a memory-bound stream.
    #[test]
    fn bandwidth_monotonicity(bw in 2.0f64..32.0) {
        let wl = SimWorkload {
            trace: TraceSpec::Stream { region_lines: 1 << 20 },
            ops_per_request: 2.0,
            ilp: 1.0,
            warps: 24,
        };
        let lo = SimConfig::builder().lanes(4.0).dram(300, bw).build();
        let hi = SimConfig::builder().lanes(4.0).dram(300, bw * 1.5).build();
        let a = xmodel_sim::simulate(&lo, &wl, 3_000, 10_000);
        let b = xmodel_sim::simulate(&hi, &wl, 3_000, 10_000);
        prop_assert!(b.ms_throughput() >= a.ms_throughput() * 0.98,
            "bw {} -> {}: thr {} -> {}", bw, bw * 1.5, a.ms_throughput(), b.ms_throughput());
    }
}

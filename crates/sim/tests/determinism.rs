//! Tracing must be an observer, not a participant: running the
//! simulator with a live `xmodel-obs` sink attached has to produce
//! byte-identical statistics to an untraced run with the same
//! configuration. The instrumentation only *reads* simulator state
//! (MSHR occupancy, DRAM backlog, hit rate) at sampling boundaries —
//! this test is the regression gate for that invariant.
//!
//! The obs sink is process-global, so all scenarios live in one `#[test]`
//! to keep install/finish ordering deterministic.

use xmodel_obs::simtrace::SimTrace;
use xmodel_obs::MemSink;
use xmodel_sim::{
    simulate, simulate_chip, CacheConfig, FaultSpec, SimConfig, SimStats, SimWorkload, Sm,
};
use xmodel_workloads::TraceSpec;

fn config() -> SimConfig {
    let mut cfg = SimConfig::builder().lanes(6.0).dram(540, 13.7).build();
    cfg.l1 = Some(CacheConfig {
        capacity_bytes: 16 * 1024,
        line_bytes: 128,
        ways: 8,
        hit_latency: 28,
        mshrs: 32,
    });
    cfg
}

fn workload() -> SimWorkload {
    SimWorkload {
        trace: TraceSpec::PrivateWorkingSet {
            ws_lines: 32,
            stream_prob: 0.1,
            reuse_skew: 1.0,
        },
        ops_per_request: 10.0,
        ilp: 2.0,
        warps: 32,
    }
}

fn run() -> SimStats {
    simulate(&config(), &workload(), 2_000, 12_000)
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // Baseline: tracing disabled (the default state).
    assert!(!xmodel_obs::enabled());
    let untraced = run();

    // Same config under a live in-memory sink.
    let sink = MemSink::new();
    xmodel_obs::install(Box::new(sink.clone()));
    let traced = run();
    xmodel_obs::finish(None);

    // The trace must have been live (snapshots actually emitted) ...
    let lines = sink.lines();
    let snapshots = lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"sim.snapshot\""))
        .count();
    assert!(snapshots > 0, "traced run emitted no snapshots");

    // ... and invisible to the simulation.
    assert_eq!(untraced, traced, "tracing changed the simulation");

    // A third run after the sink is torn down still agrees.
    assert!(!xmodel_obs::enabled());
    assert_eq!(untraced, run(), "state leaked across a traced run");

    // --- Chip: multi-SM byte-identity, probes on vs off ---------------
    let chip_run = || simulate_chip(&config(), &workload(), 2, 60.0, 2_000, 12_000);
    let chip_untraced = chip_run();

    let sink = MemSink::new();
    xmodel_obs::install(Box::new(sink.clone()));
    let chip_traced = chip_run();
    xmodel_obs::finish(None);
    assert_eq!(
        chip_untraced, chip_traced,
        "tracing changed the chip simulation"
    );

    // The traced chip run labelled its probe frames per SM.
    let lines = sink.lines();
    let trace = SimTrace::from_lines(lines.iter().map(String::as_str));
    assert!(!trace.is_empty(), "chip run emitted no sim.probe frames");
    assert_eq!(trace.sms(), vec![0, 1], "expected one frame stream per SM");

    // --- Simtrace content determinism under fault injection -----------
    // Two traced runs with the same seeds must produce identical probe
    // frames (SimTrace parsing drops the wall-clock t_us field, so this
    // compares simulation content, not recording time).
    let spec = FaultSpec::parse("seed=9,spike=0.2x4,throttle=500:0.5:0.5").unwrap();
    let faulted_frames = || {
        let sink = MemSink::new();
        xmodel_obs::install(Box::new(sink.clone()));
        let mut sm = Sm::with_faults(&config(), &workload(), 7, &spec);
        sm.run(2_000, 12_000);
        xmodel_obs::finish(None);
        let lines = sink.lines();
        SimTrace::from_lines(lines.iter().map(String::as_str)).frames
    };
    let first = faulted_frames();
    let second = faulted_frames();
    assert!(!first.is_empty(), "faulted run emitted no sim.probe frames");
    assert_eq!(first, second, "simtrace content is not deterministic");
}

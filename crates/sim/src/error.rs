//! Typed simulator errors.
//!
//! Mirrors the shape of `xmodel_core::ModelError` (this crate does not
//! depend on `core`, so it carries its own enum): invalid configuration is
//! rejected up front with the offending parameter named, fault-spec parse
//! failures identify the bad token, and the run watchdog converts hangs
//! into a typed error instead of letting a simulation spin forever.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// Everything that can go wrong while configuring or running the
/// simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimError {
    /// A configuration value violates its documented constraint.
    InvalidParameter {
        /// Parameter name (builder field).
        name: &'static str,
        /// The offending value (NaN when not representable as f64).
        value: f64,
        /// Human-readable constraint, e.g. `"finite and > 0"`.
        constraint: &'static str,
    },
    /// A `--fault-spec` token did not parse.
    BadFaultSpec {
        /// The token that failed.
        token: String,
        /// What the parser expected there.
        expected: &'static str,
    },
    /// The run watchdog tripped: the simulation exceeded its budget or
    /// stopped making forward progress (a hang under fault injection).
    Watchdog {
        /// Why the watchdog fired.
        reason: &'static str,
        /// Cycles simulated when it fired.
        cycles: u64,
        /// Warp requests completed when it fired.
        requests_completed: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(
                f,
                "invalid simulator parameter {name} = {value}: must be {constraint}"
            ),
            SimError::BadFaultSpec { token, expected } => {
                write!(f, "bad fault spec token {token:?}: expected {expected}")
            }
            SimError::Watchdog {
                reason,
                cycles,
                requests_completed,
            } => write!(
                f,
                "simulation watchdog tripped ({reason}) after {cycles} cycles, \
                 {requests_completed} requests completed"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Budgets that bound a watched simulator run (see `Sm::run_watched`).
///
/// `max_cycles` caps total simulated cycles, `max_wall` caps host wall
/// clock, and `stall_cycles` bounds how long the measured phase may go
/// without completing a single warp request before the run is declared
/// hung. Any limit set to its `None`/`u64::MAX` sentinel is disabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Watchdog {
    /// Abort once this many cycles have been simulated.
    pub max_cycles: u64,
    /// Abort once this much host wall-clock time has elapsed.
    pub max_wall: Option<Duration>,
    /// Abort if no request completes for this many measured cycles.
    pub stall_cycles: u64,
}

impl Default for Watchdog {
    fn default() -> Self {
        Self {
            max_cycles: u64::MAX,
            max_wall: None,
            stall_cycles: u64::MAX,
        }
    }
}

impl Watchdog {
    /// A watchdog bounding only the cycle count.
    pub fn cycles(max_cycles: u64) -> Self {
        Self {
            max_cycles,
            ..Self::default()
        }
    }

    /// Check the budgets; `stalled_for` is the number of measured cycles
    /// since the last completed request.
    pub(crate) fn check(
        &self,
        cycles: u64,
        requests_completed: u64,
        stalled_for: u64,
        started: Instant,
    ) -> Result<(), SimError> {
        if cycles >= self.max_cycles {
            return Err(SimError::Watchdog {
                reason: "cycle budget exhausted",
                cycles,
                requests_completed,
            });
        }
        if stalled_for >= self.stall_cycles {
            return Err(SimError::Watchdog {
                reason: "no forward progress",
                cycles,
                requests_completed,
            });
        }
        if let Some(limit) = self.max_wall {
            if started.elapsed() >= limit {
                return Err(SimError::Watchdog {
                    reason: "wall-clock budget exhausted",
                    cycles,
                    requests_completed,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter() {
        let e = SimError::InvalidParameter {
            name: "lanes",
            value: f64::NAN,
            constraint: "finite and > 0",
        };
        let text = e.to_string();
        assert!(text.contains("lanes"), "{text}");
        assert!(text.contains("finite and > 0"), "{text}");
    }

    #[test]
    fn watchdog_trips_on_cycle_budget() {
        let w = Watchdog::cycles(100);
        let t = Instant::now();
        assert!(w.check(99, 0, 0, t).is_ok());
        let err = w.check(100, 3, 0, t).unwrap_err();
        assert!(matches!(
            err,
            SimError::Watchdog {
                cycles: 100,
                requests_completed: 3,
                ..
            }
        ));
    }

    #[test]
    fn watchdog_trips_on_stall() {
        let w = Watchdog {
            stall_cycles: 50,
            ..Watchdog::default()
        };
        let t = Instant::now();
        assert!(w.check(1_000, 10, 49, t).is_ok());
        let err = w.check(1_001, 10, 50, t).unwrap_err();
        let SimError::Watchdog { reason, .. } = err else {
            panic!("wrong variant")
        };
        assert_eq!(reason, "no forward progress");
    }

    #[test]
    fn watchdog_trips_on_wall_clock() {
        let w = Watchdog {
            max_wall: Some(Duration::from_secs(0)),
            ..Watchdog::default()
        };
        let err = w.check(1, 0, 0, Instant::now()).unwrap_err();
        let SimError::Watchdog { reason, .. } = err else {
            panic!("wrong variant")
        };
        assert_eq!(reason, "wall-clock budget exhausted");
    }

    #[test]
    fn displays_are_distinct_and_descriptive() {
        let cases = [
            SimError::InvalidParameter {
                name: "bypass_fraction",
                value: 1.5,
                constraint: "within [0, 1]",
            },
            SimError::BadFaultSpec {
                token: "spike=oops".into(),
                expected: "spike=<prob>x<factor>",
            },
            SimError::Watchdog {
                reason: "cycle budget exhausted",
                cycles: 42,
                requests_completed: 7,
            },
        ];
        let texts: Vec<String> = cases.iter().map(|e| e.to_string()).collect();
        let mut unique = texts.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), texts.len());
        assert!(texts[1].contains("spike=oops"));
        assert!(texts[2].contains("42 cycles"));
    }
}

//! IR-driven simulation: execute a `xmodel-isa` kernel directly.
//!
//! The parametric [`crate::Sm`] abstracts a kernel to `(Z, E)` — exactly
//! the abstraction the analytic model makes. This module is the ablation
//! of that abstraction: warps fetch the *actual instruction stream*,
//! issue it in its dual-issue groups, stall on global memory, take a
//! fixed-latency shared-memory path for `LDS`/`STS`, and synchronize at
//! `BAR` barriers with the other warps of their thread block — behaviour
//! the scalar `(Z, E)` pair cannot express (visible in the `nw`/`lud`
//! workloads). Comparing the two modes quantifies what the paper's
//! three-parameter application abstraction loses.

use crate::cache::{Access, L1Cache, SimpleCache};
use crate::config::SimConfig;
use crate::dram::Dram;
use crate::stats::SimStats;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use xmodel_isa::{Kernel, MemSpace, OpClass, Opcode};
use xmodel_workloads::{AddressStream, TraceSpec};

/// Cycles an `LDS`/`STS` access keeps a warp waiting.
const SMEM_LATENCY: u64 = 24;

#[derive(Debug, Clone, Copy, PartialEq)]
enum WarpState {
    /// Executing instructions.
    Running,
    /// Waiting for a memory return (global or shared path).
    Waiting,
    /// Parked at a barrier until the block arrives.
    AtBarrier,
    /// Memory request rejected (MSHRs full); retry.
    Stalled,
}

struct WarpCtx {
    state: WarpState,
    /// Current block index.
    block: usize,
    /// Instruction index within the block.
    pc: usize,
    /// Remaining iterations of the current block.
    trips_left: u64,
    stream: Box<dyn AddressStream>,
    rng: SmallRng,
    pending_addr: u64,
    /// Thread-block this warp belongs to (for barriers).
    cta: usize,
}

/// An SM executing kernel IR.
///
/// ## Example
///
/// ```
/// use xmodel_sim::prelude::*;
/// use xmodel_workloads::microbench::{stream_kernel, stream_trace};
///
/// let cfg = SimConfig::builder().lanes(6.0).dram(540, 13.7).build();
/// let stats = simulate_ir(&cfg, &stream_kernel(false), stream_trace(), 32, 5_000, 20_000);
/// assert!(stats.ms_throughput() > 0.0);
/// ```
pub struct IrSm {
    cfg: SimConfig,
    kernel: Kernel,
    warps: Vec<WarpCtx>,
    warps_per_cta: usize,
    l1: Option<L1Cache>,
    l2: Option<(SimpleCache, Dram)>,
    dram: Dram,
    /// `(cycle, warp, is_global_request)` returns.
    return_queue: BinaryHeap<Reverse<(u64, u32, bool)>>,
    cycle: u64,
    rr: usize,
    measuring: bool,
    stats: SimStats,
    drain_buf: Vec<u64>,
    /// Construction seed, recorded in the simtrace probe header.
    seed: u64,
    /// Kernel compute intensity `z` extracted once at construction for
    /// the probe header (may be infinite for compute-only kernels).
    kernel_z: f64,
    /// Kernel ILP width `e`, likewise extracted once.
    kernel_e: f64,
    /// Simtrace probe cursor — tracing-only side state; never read by
    /// the simulation path.
    probe: crate::probe::ProbeCursor,
}

const TAG_DIRECT: u64 = 1 << 63;

impl IrSm {
    /// Build an IR-driven SM running `warps` copies of `kernel`, with
    /// global addresses drawn from `trace`.
    pub fn new(cfg: &SimConfig, kernel: &Kernel, trace: TraceSpec, warps: u32, seed: u64) -> Self {
        assert!(warps >= 1);
        assert!(!kernel.blocks.is_empty());
        let analysis = kernel.analyze();
        let warps_per_cta = kernel.warps_per_block().max(1) as usize;
        let ctxs = (0..warps)
            .map(|w| {
                let mut rng =
                    SmallRng::seed_from_u64(seed ^ (w as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
                let trips = trip_count(kernel.blocks.first().map_or(0.0, |b| b.weight), &mut rng);
                WarpCtx {
                    state: WarpState::Running,
                    block: 0,
                    pc: 0,
                    trips_left: trips,
                    stream: trace.instantiate(w, seed),
                    rng,
                    pending_addr: 0,
                    cta: w as usize / warps_per_cta,
                }
            })
            .collect();
        Self {
            cfg: *cfg,
            kernel: kernel.clone(),
            warps: ctxs,
            warps_per_cta,
            l1: cfg.l1.map(L1Cache::new),
            l2: cfg.l2.map(|l2| {
                (
                    SimpleCache::new(l2.capacity_bytes, 128),
                    Dram::new(crate::config::DramConfig {
                        latency: l2.latency,
                        bytes_per_cycle: l2.bytes_per_cycle,
                    }),
                )
            }),
            dram: Dram::new(cfg.dram),
            return_queue: BinaryHeap::new(),
            cycle: 0,
            rr: 0,
            measuring: false,
            stats: SimStats::new(warps),
            drain_buf: Vec::new(),
            seed,
            kernel_z: analysis.intensity,
            kernel_e: analysis.ilp,
            probe: crate::probe::ProbeCursor::default(),
        }
    }

    fn bypasses(&self, warp: u32) -> bool {
        self.l1.is_none()
            || (warp as f64) >= (1.0 - self.cfg.bypass_fraction) * self.warps.len() as f64
    }

    fn submit_mem(&mut self, now: u64, addr: u64, tag: u64) {
        let bytes = self.cfg.request_bytes.round().max(1.0) as u64;
        if let Some((cache, channel)) = self.l2.as_mut() {
            if cache.probe_insert(addr) {
                channel.submit(now, bytes, tag);
                return;
            }
        }
        self.dram.submit(now, bytes, tag);
    }

    /// Advance the warp's control flow past its current instruction.
    fn advance(&mut self, wi: usize) {
        let w = &mut self.warps[wi];
        w.pc += 1;
        let block_len = self.kernel.blocks[w.block].insts.len();
        if w.pc < block_len {
            return;
        }
        w.pc = 0;
        if w.trips_left > 1 {
            w.trips_left -= 1;
            return;
        }
        // Next block (skipping zero-trip blocks), wrapping to restart the
        // kernel for steady-state measurement.
        loop {
            w.block = (w.block + 1) % self.kernel.blocks.len();
            let trips = trip_count(self.kernel.blocks[w.block].weight, &mut w.rng);
            if trips > 0 && !self.kernel.blocks[w.block].insts.is_empty() {
                w.trips_left = trips;
                break;
            }
        }
    }

    fn wake(&mut self, warp: u32, is_global: bool) {
        let wi = warp as usize;
        if self.warps[wi].state != WarpState::Waiting {
            // Duplicate or stale completion (possible only under fault
            // injection): absorb it rather than corrupting the warp.
            self.stats.spurious_wakes += 1;
            return;
        }
        self.warps[wi].state = WarpState::Running;
        if is_global && self.measuring {
            self.stats.requests_completed += 1;
            self.stats.bytes_delivered += self.cfg.request_bytes.round().max(1.0) as u64;
        }
        self.advance(wi);
    }

    fn release_barrier_if_ready(&mut self, cta: usize) {
        let members: Vec<usize> = (0..self.warps.len())
            .filter(|&i| self.warps[i].cta == cta)
            .collect();
        if members
            .iter()
            .all(|&i| self.warps[i].state == WarpState::AtBarrier)
        {
            for i in members {
                self.warps[i].state = WarpState::Running;
                self.advance(i);
            }
        }
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        let now = self.cycle;

        // 1. Memory completions (DRAM + L2 channel + smem/hit returns).
        self.drain_buf.clear();
        let mut buf = std::mem::take(&mut self.drain_buf);
        self.dram.drain_completions(now, &mut buf);
        if let Some((_, channel)) = self.l2.as_mut() {
            channel.drain_completions(now, &mut buf);
        }
        for tag in buf.drain(..) {
            if tag & TAG_DIRECT != 0 {
                self.wake((tag & !TAG_DIRECT) as u32, true);
            } else {
                match self
                    .l1
                    .as_mut()
                    .and_then(|l1| l1.try_complete_fill(tag as usize))
                {
                    Some(waiters) => {
                        for w in waiters {
                            self.wake(w, true);
                        }
                    }
                    None => self.stats.spurious_wakes += 1,
                }
            }
        }
        self.drain_buf = buf;
        while let Some(&Reverse((t, w, is_global))) = self.return_queue.peek() {
            if t > now {
                break;
            }
            self.return_queue.pop();
            self.wake(w, is_global);
        }

        // 2. Retry stalled memory requests through the LSU.
        let n = self.warps.len();
        let mut lsu_used = 0u32;
        for wi in 0..n {
            if self.warps[wi].state == WarpState::Stalled && lsu_used < self.cfg.lsu_per_cycle {
                lsu_used += 1;
                self.issue_memory(wi, now);
            }
        }

        // 3. Scheduler: pick up to issue_width running warps, each issuing
        // one dual-issue group; lane credit caps total ops.
        let mut credit = self.cfg.lanes;
        let mut selected = 0u32;
        let mut retired = 0.0f64;
        let mut barriers_hit: Vec<usize> = Vec::new();
        for off in 0..n {
            if credit <= 1e-12 || selected >= self.cfg.issue_width {
                break;
            }
            let wi = (self.rr + off) % n;
            if self.warps[wi].state != WarpState::Running {
                continue;
            }
            selected += 1;

            // Issue one group: current inst plus trailing dual-issue pairs.
            loop {
                let (block, pc) = (self.warps[wi].block, self.warps[wi].pc);
                let inst = self.kernel.blocks[block].insts[pc];
                match inst.opcode.class() {
                    OpClass::Memory(MemSpace::Global) => {
                        if lsu_used >= self.cfg.lsu_per_cycle {
                            // LSU port busy: warp retries next cycle.
                            break;
                        }
                        lsu_used += 1;
                        retired += 1.0;
                        credit -= 1.0;
                        self.warps[wi].pending_addr = self.warps[wi].stream.next_addr();
                        self.issue_memory(wi, now);
                        // pc stays on the load; it advances at wake-up.
                        break;
                    }
                    OpClass::Memory(_) => {
                        // Shared/constant/local path: fixed short latency,
                        // no request accounting; pc advances at return.
                        retired += 1.0;
                        credit -= 1.0;
                        self.warps[wi].state = WarpState::Waiting;
                        self.return_queue
                            .push(Reverse((now + SMEM_LATENCY, wi as u32, false)));
                        break;
                    }
                    OpClass::Control if inst.opcode == Opcode::BAR => {
                        self.warps[wi].state = WarpState::AtBarrier;
                        barriers_hit.push(self.warps[wi].cta);
                        // pc advances when the barrier releases.
                        break;
                    }
                    _ => {
                        retired += 1.0;
                        credit -= 1.0;
                        self.advance(wi);
                    }
                }
                // Continue the group only while the next inst pairs with
                // its predecessor (pc == 0 means we wrapped into a new
                // block or iteration: a fresh group).
                let (block, pc) = (self.warps[wi].block, self.warps[wi].pc);
                let next = self.kernel.blocks[block].insts[pc];
                if !next.dual_issue || credit <= 1e-12 || pc == 0 {
                    break;
                }
            }
        }
        self.rr = (self.rr + 1) % n;

        for cta in barriers_hit {
            self.release_barrier_if_ready(cta);
        }

        // 4. Accounting.
        if self.measuring {
            self.stats.cycles += 1;
            self.stats.ops_retired += retired;
            let (mut computing, mut queued, mut waiting, mut stalled) = (0u32, 0u32, 0u32, 0u32);
            for w in &self.warps {
                match w.state {
                    WarpState::Running => computing += 1,
                    WarpState::AtBarrier => queued += 1,
                    WarpState::Waiting => waiting += 1,
                    WarpState::Stalled => stalled += 1,
                }
            }
            let k = (waiting + stalled) as usize;
            self.stats.sum_k += k as f64;
            self.stats.sum_x += (n - k) as f64;
            self.stats.k_histogram[k] += 1;
            // Trace snapshot (read-only; see `Sm::step_with`).
            if xmodel_obs::enabled() && now % crate::sm::SNAPSHOT_INTERVAL == 0 {
                xmodel_obs::event!(
                    "sim.snapshot",
                    cycle = now,
                    k = k,
                    x = n - k,
                    mshrs_busy = self.l1.as_ref().map_or(0, L1Cache::mshrs_busy),
                    dram_inflight = self.dram.in_flight(),
                    dram_backlog = self.dram.channel_free().saturating_sub(now),
                    hit_rate = self.stats.hit_rate(),
                );
                self.probe.emit(
                    &crate::probe::HeaderCtx {
                        sm: 0,
                        interval: crate::sm::SNAPSHOT_INTERVAL,
                        warps: n as u32,
                        seed: self.seed,
                        z: self.kernel_z,
                        e: self.kernel_e,
                    },
                    &crate::probe::StateSample {
                        cycle: now,
                        computing,
                        queued,
                        waiting,
                        stalled,
                        k: k as u32,
                        dram_inflight: self.dram.in_flight(),
                        dram_backlog: self.dram.channel_free().saturating_sub(now),
                    },
                    &self.stats,
                );
            }
        }
        self.cycle += 1;
    }

    /// Issue the pending global request of warp `wi` into the hierarchy.
    fn issue_memory(&mut self, wi: usize, now: u64) {
        let addr = self.warps[wi].pending_addr;
        if self.bypasses(wi as u32) {
            self.submit_mem(now, addr, TAG_DIRECT | wi as u64);
            self.warps[wi].state = WarpState::Waiting;
            return;
        }
        // xlint: allow(no-panic-in-lib, state-machine invariant: Cached access is only emitted when an L1 is configured)
        let l1 = self.l1.as_mut().expect("cached warp without L1");
        match l1.access(addr, wi as u32) {
            Access::Hit => {
                let lat = self.cfg.l1.map(|c| c.hit_latency).unwrap_or(1);
                self.return_queue
                    .push(Reverse((now + lat, wi as u32, true)));
                self.warps[wi].state = WarpState::Waiting;
                if self.measuring {
                    self.stats.l1_hits += 1;
                }
            }
            Access::MissAllocated { mshr } => {
                self.submit_mem(now, addr, mshr as u64);
                self.warps[wi].state = WarpState::Waiting;
                if self.measuring {
                    self.stats.l1_misses += 1;
                }
            }
            Access::MissMerged { .. } => {
                self.warps[wi].state = WarpState::Waiting;
                if self.measuring {
                    self.stats.l1_merges += 1;
                }
            }
            Access::MshrFull => {
                self.warps[wi].state = WarpState::Stalled;
                if self.measuring {
                    self.stats.mshr_stalls += 1;
                }
            }
        }
    }

    /// Install a fault injector on the DRAM channel. Latency spikes,
    /// bandwidth throttling and duplicated completions are tolerated
    /// (duplicates are absorbed by the wake guard); dropped completions
    /// permanently park the affected warps — pair with
    /// [`IrSm::run_watched`] so such a hang surfaces as a typed error.
    pub fn set_faults(&mut self, spec: &crate::fault::FaultSpec) {
        if spec.perturbs_memory() {
            self.dram.set_faults(crate::fault::FaultInjector::new(spec));
        }
    }

    /// Faults injected so far, if [`IrSm::set_faults`] was called.
    pub fn fault_counters(&self) -> Option<crate::fault::FaultCounters> {
        self.dram.fault_counters()
    }

    /// Run `warmup` unmeasured cycles then `measure` measured ones.
    // xlint: determinism-root
    pub fn run(&mut self, warmup: u64, measure: u64) -> &SimStats {
        let _span = xmodel_obs::span!(xmodel_obs::names::span::SIM_RUN_IR);
        self.measuring = false;
        {
            let _warm = xmodel_obs::span!(xmodel_obs::names::span::SIM_WARMUP);
            for _ in 0..warmup {
                self.step();
            }
        }
        self.measuring = true;
        {
            let _meas = xmodel_obs::span!(xmodel_obs::names::span::SIM_MEASURE);
            for _ in 0..measure {
                self.step();
            }
        }
        &self.stats
    }

    /// [`IrSm::run`] under a [`crate::Watchdog`] (see `Sm::run_watched`):
    /// budget overruns and fault-induced hangs become typed errors.
    // xlint: determinism-root
    pub fn run_watched(
        &mut self,
        warmup: u64,
        measure: u64,
        watchdog: &crate::Watchdog,
    ) -> Result<&SimStats, crate::SimError> {
        let _span = xmodel_obs::span!(xmodel_obs::names::span::SIM_RUN_IR);
        // xlint: allow(nondeterminism-in-result-path, watchdog wall-clock budget; overruns abort with a typed error and never alter stats)
        let started = std::time::Instant::now();
        let total = warmup + measure;
        let mut last_completed = self.stats.requests_completed;
        let mut last_progress = 0u64;
        self.measuring = false;
        for i in 0..total {
            if i == warmup {
                self.measuring = true;
                last_progress = i;
            }
            self.step();
            if i % 512 == 0 {
                if self.stats.requests_completed != last_completed {
                    last_completed = self.stats.requests_completed;
                    last_progress = i;
                }
                let stalled = if self.measuring { i - last_progress } else { 0 };
                watchdog.check(i + 1, self.stats.requests_completed, stalled, started)?;
            }
        }
        Ok(&self.stats)
    }

    /// Stats so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Warps per thread block (barrier scope).
    pub fn warps_per_cta(&self) -> usize {
        self.warps_per_cta
    }
}

/// Randomized rounding of a fractional trip count (mean-preserving).
fn trip_count(weight: f64, rng: &mut SmallRng) -> u64 {
    if weight <= 0.0 {
        return 0;
    }
    let base = weight.floor();
    let frac = weight - base;
    base as u64 + u64::from(rng.random::<f64>() < frac)
}

/// Convenience: run a kernel IR on a configuration.
pub fn simulate_ir(
    cfg: &SimConfig,
    kernel: &Kernel,
    trace: TraceSpec,
    warps: u32,
    warmup: u64,
    measure: u64,
) -> SimStats {
    let mut sm = IrSm::new(cfg, kernel, trace, warps, 42);
    sm.run(warmup, measure);
    sm.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sm::simulate;
    use crate::SimWorkload;
    use xmodel_workloads::microbench::{peak_ops_kernel, stream_kernel, stream_trace};
    use xmodel_workloads::Workload;

    fn cfg() -> SimConfig {
        SimConfig::builder()
            .lanes(6.0)
            .issue_width(8)
            .lsu(2)
            .dram(540, 13.7)
            .build()
    }

    #[test]
    fn deterministic() {
        let k = stream_kernel(false);
        let a = simulate_ir(&cfg(), &k, stream_trace(), 16, 5_000, 20_000);
        let b = simulate_ir(&cfg(), &k, stream_trace(), 16, 5_000, 20_000);
        assert_eq!(a, b);
    }

    #[test]
    fn pure_compute_ir_saturates_lanes() {
        let k = peak_ops_kernel(2.0);
        let s = simulate_ir(&cfg(), &k, stream_trace(), 16, 2_000, 10_000);
        assert!(
            (s.cs_throughput() - 6.0).abs() < 0.2,
            "cs = {}",
            s.cs_throughput()
        );
        assert_eq!(s.requests_completed, 0);
    }

    #[test]
    fn single_warp_dual_issue_rate() {
        let k = peak_ops_kernel(2.0);
        let s = simulate_ir(&cfg(), &k, stream_trace(), 1, 2_000, 10_000);
        // One warp with fully-paired FMAs retires ~2 ops/cycle (minus the
        // group-boundary solo instructions).
        assert!(
            s.cs_throughput() > 1.7 && s.cs_throughput() <= 2.0 + 1e-9,
            "cs = {}",
            s.cs_throughput()
        );
    }

    #[test]
    fn ir_stream_matches_parametric_sim() {
        // The core ablation: executing the stream kernel's IR should give
        // the same throughput as the (Z, E) abstraction of it.
        let kernel = stream_kernel(false);
        let a = kernel.analyze();
        let ir = simulate_ir(&cfg(), &kernel, stream_trace(), 48, 20_000, 60_000);
        let par = simulate(
            &cfg(),
            &SimWorkload {
                trace: stream_trace(),
                ops_per_request: a.intensity,
                ilp: a.ilp,
                warps: 48,
            },
            20_000,
            60_000,
        );
        let rel = (ir.ms_throughput() - par.ms_throughput()).abs() / par.ms_throughput();
        assert!(
            rel < 0.15,
            "IR {} vs parametric {}",
            ir.ms_throughput(),
            par.ms_throughput()
        );
    }

    #[test]
    fn every_suite_kernel_executes() {
        for w in Workload::suite() {
            let s = simulate_ir(&cfg(), &w.kernel, w.trace, 16, 5_000, 15_000);
            assert!(s.cs_throughput() > 0.0, "{} retired nothing", w.name);
            assert!(s.requests_completed > 0, "{} made no requests", w.name);
        }
    }

    #[test]
    fn barriers_keep_blocks_in_lockstep() {
        use xmodel_isa::Opcode::*;
        // Two warps per block; each iteration does one load + barrier.
        let k = xmodel_isa::Kernel::builder("bar", 64)
            .block(1000.0, |b| b.inst(LDG).inst(IADD).inst(BAR))
            .build();
        let trace = TraceSpec::Gather {
            footprint_lines: 1 << 16,
            skew: 0.0,
        };
        let s = simulate_ir(&cfg(), &k, trace, 8, 5_000, 30_000);
        assert!(s.requests_completed > 0);
        // A barrier-free variant must be at least as fast.
        let free = xmodel_isa::Kernel::builder("nobar", 64)
            .block(1000.0, |b| b.inst(LDG).inst(IADD).inst(IADD))
            .build();
        let sf = simulate_ir(&cfg(), &free, trace, 8, 5_000, 30_000);
        assert!(
            sf.ms_throughput() >= s.ms_throughput() * 0.99,
            "barrier {} vs free {}",
            s.ms_throughput(),
            sf.ms_throughput()
        );
    }

    #[test]
    fn smem_ops_take_the_short_path() {
        use xmodel_isa::Opcode::*;
        // Shared-memory-heavy kernel: no DRAM traffic from LDS/STS.
        let k = xmodel_isa::Kernel::builder("smem", 64)
            .block(1000.0, |b| b.inst(LDS).inst(FFMA).inst(STS).inst(IADD))
            .build();
        let s = simulate_ir(&cfg(), &k, stream_trace(), 8, 2_000, 10_000);
        assert_eq!(s.requests_completed, 0, "smem must not touch DRAM");
        assert!(s.cs_throughput() > 0.0);
    }

    #[test]
    fn zero_weight_blocks_are_skipped() {
        use xmodel_isa::Opcode::*;
        let k = xmodel_isa::Kernel::builder("zw", 32)
            .block(0.0, |b| b.inst(BAR).inst(BAR))
            .block(10.0, |b| b.inst(FFMA).inst(IADD))
            .build();
        let s = simulate_ir(&cfg(), &k, stream_trace(), 4, 1_000, 5_000);
        assert!(s.cs_throughput() > 0.0);
    }
}

//! Deterministic, seed-configurable fault injection.
//!
//! A [`FaultSpec`] describes which faults to inject and how often; it is
//! parsed from the CLI `--fault-spec` flag (or the `XMODEL_FAULT_SPEC`
//! environment variable) and can perturb
//!
//! * the **DRAM channel** — latency spikes, dropped or duplicated
//!   completions, periodic bandwidth-throttling windows;
//! * the **obs sinks** — torn JSONL lines and write errors (the spec
//!   carries the probabilities; `xmodel_obs::fault` applies them);
//! * the **solver** — forcing the degradation ladder in
//!   `xmodel_core` to skip its exact and/or grid-scan rungs so the
//!   fallback paths are exercisable on demand.
//!
//! All randomness flows from a single `seed` through [`SmallRng`], so a
//! given spec reproduces the same fault sequence on every run — the chaos
//! suite (`tests/fault_matrix.rs`) asserts this bit-for-bit.
//!
//! # Spec grammar
//!
//! Comma-separated `key=value` tokens, all optional:
//!
//! ```text
//! seed=7,spike=0.05x8,drop=0.01,dup=0.02,throttle=2000:0.3:0.25,
//! sink-tear=0.1,sink-error=0.05,solver=no-bracket
//! ```
//!
//! | token | meaning |
//! |---|---|
//! | `seed=N` | RNG seed for all probabilistic faults |
//! | `spike=PxF` | with probability `P`, multiply a request's DRAM latency by `F` |
//! | `drop=P` | with probability `P`, lose a DRAM completion |
//! | `dup=P` | with probability `P`, deliver a DRAM completion twice |
//! | `throttle=C:D:F` | every `C` cycles, throttle bandwidth to `F`× for the first `D` fraction |
//! | `sink-tear=P` | with probability `P`, truncate an emitted JSONL line |
//! | `sink-error=P` | with probability `P`, fail an emitted JSONL line |
//! | `solver=no-bracket` | force the solver off its exact rung (grid scan) |
//! | `solver=no-grid` | force the solver to the baseline-estimate rung |
//! | `serve-slow-client=P` | with probability `P`, a load-generator connection dribbles its request slowly |
//! | `serve-torn-body=P` | with probability `P`, a load-generator connection tears its body mid-send |
//! | `serve-stall=MS` | `xmodel serve` workers stall `MS` ms per request (queue-pressure injection) |

use crate::error::SimError;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which rung of the core degradation ladder a spec disables (the solver
/// itself lives in `xmodel_core`; the CLI translates this into the core
/// crate's forcing enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SolverFault {
    /// No solver fault: the exact solve runs normally.
    #[default]
    None,
    /// Pretend bracketing failed: start the ladder at the grid scan.
    NoBracket,
    /// Pretend bracketing and the grid scan both failed: go straight to
    /// the roofline/Little's-law baseline estimate.
    NoGrid,
}

/// A parsed fault-injection specification. All probabilities are per
/// event (request or emitted line) in `[0, 1]`; the default spec injects
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed for every probabilistic fault decision.
    pub seed: u64,
    /// Probability a DRAM request suffers a latency spike.
    pub spike_prob: f64,
    /// Latency multiplier applied to spiked requests.
    pub spike_factor: f64,
    /// Probability a DRAM completion is lost.
    pub drop_prob: f64,
    /// Probability a DRAM completion is delivered twice.
    pub dup_prob: f64,
    /// Cycle period of the bandwidth-throttle window (0 disables).
    pub throttle_period: u64,
    /// Fraction of each period spent throttled, in `[0, 1]`.
    pub throttle_duty: f64,
    /// Bandwidth multiplier while throttled, in `(0, 1]`.
    pub throttle_factor: f64,
    /// Probability an emitted trace line is torn (truncated mid-record).
    pub sink_tear_prob: f64,
    /// Probability an emitted trace line fails to write entirely.
    pub sink_error_prob: f64,
    /// Solver-ladder forcing.
    pub solver: SolverFault,
    /// Probability a generated client connection dribbles its request
    /// byte-by-byte (`xmodel serve` slow-client chaos).
    pub serve_slow_client_prob: f64,
    /// Probability a generated client connection tears its request body
    /// mid-send (declares more bytes than it writes).
    pub serve_torn_body_prob: f64,
    /// Per-request worker stall in milliseconds for `xmodel serve`
    /// (0 disables); drives queue growth without needing real load.
    pub serve_stall_ms: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            seed: 0xFA17,
            spike_prob: 0.0,
            spike_factor: 1.0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            throttle_period: 0,
            throttle_duty: 0.0,
            throttle_factor: 1.0,
            sink_tear_prob: 0.0,
            sink_error_prob: 0.0,
            solver: SolverFault::None,
            serve_slow_client_prob: 0.0,
            serve_torn_body_prob: 0.0,
            serve_stall_ms: 0,
        }
    }
}

fn parse_prob(key: &'static str, text: &str, token: &str) -> Result<f64, SimError> {
    let p: f64 = text.parse().map_err(|_| SimError::BadFaultSpec {
        token: token.to_string(),
        expected: "a probability in [0, 1]",
    })?;
    if !(0.0..=1.0).contains(&p) {
        return Err(SimError::InvalidParameter {
            name: key,
            value: p,
            constraint: "within [0, 1]",
        });
    }
    Ok(p)
}

impl FaultSpec {
    /// Parse the comma-separated spec grammar (see the module docs).
    /// The empty string parses to the all-off default.
    pub fn parse(text: &str) -> Result<Self, SimError> {
        let mut spec = FaultSpec::default();
        for token in text.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let Some((key, value)) = token.split_once('=') else {
                return Err(SimError::BadFaultSpec {
                    token: token.to_string(),
                    expected: "key=value",
                });
            };
            match key {
                "seed" => {
                    spec.seed = value.parse().map_err(|_| SimError::BadFaultSpec {
                        token: token.to_string(),
                        expected: "seed=<u64>",
                    })?;
                }
                "spike" => {
                    let Some((p, f)) = value.split_once('x') else {
                        return Err(SimError::BadFaultSpec {
                            token: token.to_string(),
                            expected: "spike=<prob>x<factor>",
                        });
                    };
                    spec.spike_prob = parse_prob("spike", p, token)?;
                    spec.spike_factor = f.parse().map_err(|_| SimError::BadFaultSpec {
                        token: token.to_string(),
                        expected: "spike=<prob>x<factor>",
                    })?;
                    if !spec.spike_factor.is_finite() || spec.spike_factor < 1.0 {
                        return Err(SimError::InvalidParameter {
                            name: "spike_factor",
                            value: spec.spike_factor,
                            constraint: "finite and >= 1",
                        });
                    }
                }
                "drop" => spec.drop_prob = parse_prob("drop", value, token)?,
                "dup" => spec.dup_prob = parse_prob("dup", value, token)?,
                "throttle" => {
                    let parts: Vec<&str> = value.split(':').collect();
                    let [period, duty, factor] = parts.as_slice() else {
                        return Err(SimError::BadFaultSpec {
                            token: token.to_string(),
                            expected: "throttle=<period>:<duty>:<factor>",
                        });
                    };
                    spec.throttle_period = period.parse().map_err(|_| SimError::BadFaultSpec {
                        token: token.to_string(),
                        expected: "throttle=<period>:<duty>:<factor>",
                    })?;
                    spec.throttle_duty = parse_prob("throttle_duty", duty, token)?;
                    spec.throttle_factor = factor.parse().map_err(|_| SimError::BadFaultSpec {
                        token: token.to_string(),
                        expected: "throttle=<period>:<duty>:<factor>",
                    })?;
                    if !spec.throttle_factor.is_finite()
                        || spec.throttle_factor <= 0.0
                        || spec.throttle_factor > 1.0
                    {
                        return Err(SimError::InvalidParameter {
                            name: "throttle_factor",
                            value: spec.throttle_factor,
                            constraint: "within (0, 1]",
                        });
                    }
                }
                "sink-tear" => spec.sink_tear_prob = parse_prob("sink-tear", value, token)?,
                "sink-error" => spec.sink_error_prob = parse_prob("sink-error", value, token)?,
                "solver" => {
                    spec.solver = match value {
                        "no-bracket" => SolverFault::NoBracket,
                        "no-grid" => SolverFault::NoGrid,
                        _ => {
                            return Err(SimError::BadFaultSpec {
                                token: token.to_string(),
                                expected: "solver=no-bracket|no-grid",
                            })
                        }
                    };
                }
                "serve-slow-client" => {
                    spec.serve_slow_client_prob = parse_prob("serve-slow-client", value, token)?;
                }
                "serve-torn-body" => {
                    spec.serve_torn_body_prob = parse_prob("serve-torn-body", value, token)?;
                }
                "serve-stall" => {
                    spec.serve_stall_ms = value.parse().map_err(|_| SimError::BadFaultSpec {
                        token: token.to_string(),
                        expected: "serve-stall=<milliseconds>",
                    })?;
                }
                _ => {
                    return Err(SimError::BadFaultSpec {
                        token: token.to_string(),
                        expected: "one of seed/spike/drop/dup/throttle/sink-tear/sink-error/\
                                   solver/serve-slow-client/serve-torn-body/serve-stall",
                    });
                }
            }
        }
        Ok(spec)
    }

    /// True if any memory-system fault is enabled (the simulator only
    /// pays for recovery bookkeeping when this holds).
    pub fn perturbs_memory(&self) -> bool {
        self.spike_prob > 0.0
            || self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || (self.throttle_period > 0 && self.throttle_duty > 0.0 && self.throttle_factor < 1.0)
    }

    /// True if any obs-sink fault is enabled.
    pub fn perturbs_sink(&self) -> bool {
        self.sink_tear_prob > 0.0 || self.sink_error_prob > 0.0
    }

    /// True if any `xmodel serve` fault is enabled (client-side chaos
    /// from the load generator or server-side worker stalls).
    pub fn perturbs_serve(&self) -> bool {
        self.serve_slow_client_prob > 0.0
            || self.serve_torn_body_prob > 0.0
            || self.serve_stall_ms > 0
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        if self.spike_prob > 0.0 {
            write!(f, ",spike={}x{}", self.spike_prob, self.spike_factor)?;
        }
        if self.drop_prob > 0.0 {
            write!(f, ",drop={}", self.drop_prob)?;
        }
        if self.dup_prob > 0.0 {
            write!(f, ",dup={}", self.dup_prob)?;
        }
        if self.throttle_period > 0 {
            write!(
                f,
                ",throttle={}:{}:{}",
                self.throttle_period, self.throttle_duty, self.throttle_factor
            )?;
        }
        if self.sink_tear_prob > 0.0 {
            write!(f, ",sink-tear={}", self.sink_tear_prob)?;
        }
        if self.sink_error_prob > 0.0 {
            write!(f, ",sink-error={}", self.sink_error_prob)?;
        }
        match self.solver {
            SolverFault::None => {}
            SolverFault::NoBracket => write!(f, ",solver=no-bracket")?,
            SolverFault::NoGrid => write!(f, ",solver=no-grid")?,
        }
        if self.serve_slow_client_prob > 0.0 {
            write!(f, ",serve-slow-client={}", self.serve_slow_client_prob)?;
        }
        if self.serve_torn_body_prob > 0.0 {
            write!(f, ",serve-torn-body={}", self.serve_torn_body_prob)?;
        }
        if self.serve_stall_ms > 0 {
            write!(f, ",serve-stall={}", self.serve_stall_ms)?;
        }
        Ok(())
    }
}

/// Counts of faults actually injected by a [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultCounters {
    /// DRAM requests whose latency was spiked.
    pub spikes: u64,
    /// DRAM completions dropped.
    pub drops: u64,
    /// DRAM completions duplicated.
    pub dups: u64,
    /// DRAM requests accepted inside a throttle window.
    pub throttled: u64,
}

impl FaultCounters {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.spikes + self.drops + self.dups + self.throttled
    }
}

/// The stateful injector: one per faulted DRAM channel. Decisions are
/// drawn from a private [`SmallRng`] seeded from the spec, so the fault
/// sequence is a pure function of `(spec, request order)`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
    rng: SmallRng,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Build from a spec.
    pub fn new(spec: &FaultSpec) -> Self {
        Self {
            spec: *spec,
            rng: SmallRng::seed_from_u64(spec.seed),
            counters: FaultCounters::default(),
        }
    }

    /// Bandwidth multiplier for a request accepted at `now`, if the
    /// throttle window is active (pure in `now`; uses no randomness).
    pub fn throttle(&mut self, now: u64) -> Option<f64> {
        if self.spec.throttle_period == 0 || self.spec.throttle_factor >= 1.0 {
            return None;
        }
        let phase = (now % self.spec.throttle_period) as f64;
        if phase < self.spec.throttle_duty * self.spec.throttle_period as f64 {
            self.counters.throttled += 1;
            Some(self.spec.throttle_factor)
        } else {
            None
        }
    }

    /// Latency multiplier if this request spikes.
    pub fn spike(&mut self) -> Option<f64> {
        if self.spec.spike_prob > 0.0 && self.rng.random::<f64>() < self.spec.spike_prob {
            self.counters.spikes += 1;
            Some(self.spec.spike_factor)
        } else {
            None
        }
    }

    /// Should this completion be lost?
    pub fn drop_completion(&mut self) -> bool {
        if self.spec.drop_prob > 0.0 && self.rng.random::<f64>() < self.spec.drop_prob {
            self.counters.drops += 1;
            true
        } else {
            false
        }
    }

    /// Should this generated serve connection dribble its request
    /// slowly (slow-client chaos)?
    pub fn serve_slow_client(&mut self) -> bool {
        self.spec.serve_slow_client_prob > 0.0
            && self.rng.random::<f64>() < self.spec.serve_slow_client_prob
    }

    /// Should this generated serve connection tear its body mid-send?
    pub fn serve_torn_body(&mut self) -> bool {
        self.spec.serve_torn_body_prob > 0.0
            && self.rng.random::<f64>() < self.spec.serve_torn_body_prob
    }

    /// Should this completion be delivered twice?
    pub fn duplicate_completion(&mut self) -> bool {
        if self.spec.dup_prob > 0.0 && self.rng.random::<f64>() < self.spec.dup_prob {
            self.counters.dups += 1;
            true
        } else {
            false
        }
    }

    /// Faults injected so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// The spec this injector was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_default() {
        let spec = FaultSpec::parse("").unwrap();
        assert_eq!(spec, FaultSpec::default());
        assert!(!spec.perturbs_memory());
        assert!(!spec.perturbs_sink());
    }

    #[test]
    fn full_spec_round_trips_through_display() {
        let text = "seed=9,spike=0.05x8,drop=0.01,dup=0.02,throttle=2000:0.3:0.25,\
                    sink-tear=0.1,sink-error=0.05,solver=no-bracket";
        let spec = FaultSpec::parse(text).unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.spike_prob, 0.05);
        assert_eq!(spec.spike_factor, 8.0);
        assert_eq!(spec.throttle_period, 2000);
        assert_eq!(spec.solver, SolverFault::NoBracket);
        assert!(spec.perturbs_memory());
        assert!(spec.perturbs_sink());
        let again = FaultSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(again, spec);
    }

    #[test]
    fn rejects_malformed_tokens() {
        for bad in [
            "nonsense",
            "spike=0.5",
            "spike=2x4",
            "spike=0.1x0.5",
            "drop=1.5",
            "throttle=100:0.5",
            "throttle=100:0.5:0",
            "solver=maybe",
            "frobnicate=1",
            "serve-slow-client=1.5",
            "serve-torn-body=-0.1",
            "serve-stall=fast",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn serve_family_round_trips_and_is_deterministic() {
        let text = "seed=7,serve-slow-client=0.25,serve-torn-body=0.1,serve-stall=40";
        let spec = FaultSpec::parse(text).unwrap();
        assert_eq!(spec.serve_slow_client_prob, 0.25);
        assert_eq!(spec.serve_torn_body_prob, 0.1);
        assert_eq!(spec.serve_stall_ms, 40);
        assert!(spec.perturbs_serve());
        assert!(!spec.perturbs_memory() && !spec.perturbs_sink());
        let again = FaultSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(again, spec);

        let draw = |spec: &FaultSpec| {
            let mut inj = FaultInjector::new(spec);
            (0..200)
                .map(|_| (inj.serve_slow_client(), inj.serve_torn_body()))
                .collect::<Vec<_>>()
        };
        let a = draw(&spec);
        assert_eq!(a, draw(&spec));
        let slow = a.iter().filter(|(s, _)| *s).count();
        assert!(slow > 20 && slow < 100, "slow-client draws: {slow}");
    }

    #[test]
    fn injector_is_deterministic() {
        let spec = FaultSpec::parse("seed=3,spike=0.2x4,drop=0.1,dup=0.1").unwrap();
        let run = |spec: &FaultSpec| {
            let mut inj = FaultInjector::new(spec);
            let mut log = Vec::new();
            for i in 0..1_000u64 {
                log.push((
                    inj.spike().is_some(),
                    inj.drop_completion(),
                    inj.duplicate_completion(),
                    inj.throttle(i).is_some(),
                ));
            }
            (log, inj.counters())
        };
        let (log_a, ctr_a) = run(&spec);
        let (log_b, ctr_b) = run(&spec);
        assert_eq!(log_a, log_b);
        assert_eq!(ctr_a, ctr_b);
        assert!(ctr_a.spikes > 100 && ctr_a.spikes < 300, "{ctr_a:?}");
    }

    #[test]
    fn throttle_window_is_periodic() {
        let spec = FaultSpec::parse("throttle=100:0.25:0.5").unwrap();
        let mut inj = FaultInjector::new(&spec);
        assert_eq!(inj.throttle(0), Some(0.5));
        assert_eq!(inj.throttle(24), Some(0.5));
        assert_eq!(inj.throttle(25), None);
        assert_eq!(inj.throttle(99), None);
        assert_eq!(inj.throttle(100), Some(0.5));
        assert_eq!(inj.counters().throttled, 3);
    }
}

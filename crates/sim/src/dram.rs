//! DRAM model: fixed service latency plus a bandwidth token bucket.
//!
//! A request accepted at cycle `t` completes at
//! `max(t, channel_free) + latency`, and the channel-free pointer advances
//! by `bytes / bytes_per_cycle`. This reproduces the two regimes of the
//! model's `L_m = max{L, k/R}` (Eq. 4): latency-bound while the channel is
//! underutilized, bandwidth-bound (queueing) once it saturates.

use crate::config::DramConfig;
use crate::fault::{FaultCounters, FaultInjector};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Opaque tag the caller attaches to each request (MSHR index, warp id…).
pub type Tag = u64;

/// The DRAM channel.
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Next cycle at which the channel can accept a new transfer, in
    /// fixed-point 1/256 cycles to honour fractional bytes/cycle rates.
    channel_free_fp: u64,
    /// Pending completions: (complete_cycle, tag).
    pending: BinaryHeap<Reverse<(u64, Tag)>>,
    /// Total requests accepted.
    accepted: u64,
    /// Total bytes transferred.
    bytes: u64,
    /// Optional fault injector perturbing latency, bandwidth and
    /// completion delivery (see [`crate::fault`]).
    faults: Option<FaultInjector>,
}

const FP: u64 = 256;

impl Dram {
    /// Build from a configuration.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.bytes_per_cycle > 0.0);
        Self {
            cfg,
            channel_free_fp: 0,
            pending: BinaryHeap::new(),
            accepted: 0,
            bytes: 0,
            faults: None,
        }
    }

    /// Install a fault injector; subsequent submissions may spike, drop,
    /// duplicate or throttle (deterministically, per the injector's seed).
    pub fn set_faults(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Faults injected so far, if an injector is installed.
    pub fn fault_counters(&self) -> Option<FaultCounters> {
        self.faults.as_ref().map(FaultInjector::counters)
    }

    /// Submit a request of `bytes` at cycle `now`; returns its completion
    /// cycle. The channel serializes transfers at the configured bandwidth.
    pub fn submit(&mut self, now: u64, bytes: u64, tag: Tag) -> u64 {
        let mut latency = self.cfg.latency;
        let mut bandwidth = self.cfg.bytes_per_cycle;
        let mut lose = false;
        let mut duplicate = false;
        if let Some(inj) = self.faults.as_mut() {
            if let Some(factor) = inj.throttle(now) {
                bandwidth = (bandwidth * factor).max(1e-6);
            }
            if let Some(factor) = inj.spike() {
                latency = ((latency as f64) * factor).ceil() as u64;
            }
            lose = inj.drop_completion();
            duplicate = !lose && inj.duplicate_completion();
        }
        let now_fp = now * FP;
        let start_fp = self.channel_free_fp.max(now_fp);
        let dur_fp = ((bytes as f64 / bandwidth) * FP as f64).ceil() as u64;
        self.channel_free_fp = start_fp + dur_fp;
        let complete = (start_fp + dur_fp).div_ceil(FP) + latency;
        // A dropped completion still consumed channel time; it just never
        // comes back. A duplicated one comes back twice, one cycle apart.
        if !lose {
            self.pending.push(Reverse((complete, tag)));
            if duplicate {
                self.pending.push(Reverse((complete + 1, tag)));
            }
        }
        self.accepted += 1;
        self.bytes += bytes;
        complete
    }

    /// Pop all requests completing at or before `now`.
    pub fn drain_completions(&mut self, now: u64, out: &mut Vec<Tag>) {
        while let Some(&Reverse((t, tag))) = self.pending.peek() {
            if t > now {
                break;
            }
            self.pending.pop();
            out.push(tag);
        }
    }

    /// Requests in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// `(accepted requests, bytes)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.accepted, self.bytes)
    }

    /// The earliest cycle the channel could accept a new transfer.
    pub fn channel_free(&self) -> u64 {
        self.channel_free_fp.div_ceil(FP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram(latency: u64, bw: f64) -> Dram {
        Dram::new(DramConfig {
            latency,
            bytes_per_cycle: bw,
        })
    }

    #[test]
    fn single_request_completes_after_latency() {
        let mut d = dram(100, 128.0);
        let t = d.submit(10, 128, 1);
        // 1 cycle transfer + 100 latency.
        assert_eq!(t, 111);
        let mut out = Vec::new();
        d.drain_completions(110, &mut out);
        assert!(out.is_empty());
        d.drain_completions(111, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn bandwidth_serializes_back_to_back() {
        // 8 bytes/cycle: each 128-byte request occupies 16 cycles.
        let mut d = dram(100, 8.0);
        let t1 = d.submit(0, 128, 1);
        let t2 = d.submit(0, 128, 2);
        let t3 = d.submit(0, 128, 3);
        assert_eq!(t1, 116);
        assert_eq!(t2, 132);
        assert_eq!(t3, 148);
    }

    #[test]
    fn idle_channel_resets_queueing() {
        let mut d = dram(100, 8.0);
        let _ = d.submit(0, 128, 1);
        // Long gap: the second request sees no queueing.
        let t2 = d.submit(1000, 128, 2);
        assert_eq!(t2, 1116);
    }

    #[test]
    fn fractional_bandwidth_accumulates() {
        // 6.4 bytes/cycle: a 128-byte transfer takes 20 cycles.
        let mut d = dram(0, 6.4);
        let t1 = d.submit(0, 128, 1);
        assert_eq!(t1, 20);
        let t2 = d.submit(0, 128, 2);
        assert_eq!(t2, 40);
    }

    #[test]
    fn sustained_rate_matches_bandwidth() {
        let mut d = dram(200, 8.0);
        for i in 0..1000 {
            d.submit(0, 128, i);
        }
        // Last completion ≈ 1000 * 16 + 200.
        let mut out = Vec::new();
        d.drain_completions(1000 * 16 + 200, &mut out);
        assert_eq!(out.len(), 1000);
        let (req, bytes) = d.counters();
        assert_eq!(req, 1000);
        assert_eq!(bytes, 128_000);
    }

    #[test]
    fn dropped_completions_never_return() {
        use crate::fault::{FaultInjector, FaultSpec};
        let mut d = dram(10, 128.0);
        d.set_faults(FaultInjector::new(
            &FaultSpec::parse("seed=1,drop=1").unwrap(),
        ));
        d.submit(0, 128, 1);
        d.submit(0, 128, 2);
        let mut out = Vec::new();
        d.drain_completions(u64::MAX / 2, &mut out);
        assert!(out.is_empty());
        assert_eq!(d.fault_counters().unwrap().drops, 2);
    }

    #[test]
    fn duplicated_completions_return_twice() {
        use crate::fault::{FaultInjector, FaultSpec};
        let mut d = dram(10, 128.0);
        d.set_faults(FaultInjector::new(
            &FaultSpec::parse("seed=1,dup=1").unwrap(),
        ));
        d.submit(0, 128, 7);
        let mut out = Vec::new();
        d.drain_completions(1_000, &mut out);
        assert_eq!(out, vec![7, 7]);
        assert_eq!(d.fault_counters().unwrap().dups, 1);
    }

    #[test]
    fn spike_and_throttle_stretch_timing() {
        use crate::fault::{FaultInjector, FaultSpec};
        // Always-spike ×4: 1 cycle transfer + 400 latency.
        let mut d = dram(100, 128.0);
        d.set_faults(FaultInjector::new(
            &FaultSpec::parse("seed=1,spike=1x4").unwrap(),
        ));
        assert_eq!(d.submit(10, 128, 1), 411);
        // Permanent throttle to 1/4 bandwidth: 4-cycle transfer.
        let mut t = dram(100, 128.0);
        t.set_faults(FaultInjector::new(
            &FaultSpec::parse("seed=1,throttle=1000:1:0.25").unwrap(),
        ));
        assert_eq!(t.submit(0, 128, 1), 104);
    }

    #[test]
    fn completions_drain_in_time_order() {
        let mut d = dram(10, 128.0);
        d.submit(0, 128, 3);
        d.submit(5, 128, 7);
        let mut out = Vec::new();
        d.drain_completions(100, &mut out);
        assert_eq!(out, vec![3, 7]);
    }
}

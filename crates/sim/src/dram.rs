//! DRAM model: fixed service latency plus a bandwidth token bucket.
//!
//! A request accepted at cycle `t` completes at
//! `max(t, channel_free) + latency`, and the channel-free pointer advances
//! by `bytes / bytes_per_cycle`. This reproduces the two regimes of the
//! model's `L_m = max{L, k/R}` (Eq. 4): latency-bound while the channel is
//! underutilized, bandwidth-bound (queueing) once it saturates.

use crate::config::DramConfig;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Opaque tag the caller attaches to each request (MSHR index, warp id…).
pub type Tag = u64;

/// The DRAM channel.
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Next cycle at which the channel can accept a new transfer, in
    /// fixed-point 1/256 cycles to honour fractional bytes/cycle rates.
    channel_free_fp: u64,
    /// Pending completions: (complete_cycle, tag).
    pending: BinaryHeap<Reverse<(u64, Tag)>>,
    /// Total requests accepted.
    accepted: u64,
    /// Total bytes transferred.
    bytes: u64,
}

const FP: u64 = 256;

impl Dram {
    /// Build from a configuration.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.bytes_per_cycle > 0.0);
        Self {
            cfg,
            channel_free_fp: 0,
            pending: BinaryHeap::new(),
            accepted: 0,
            bytes: 0,
        }
    }

    /// Submit a request of `bytes` at cycle `now`; returns its completion
    /// cycle. The channel serializes transfers at the configured bandwidth.
    pub fn submit(&mut self, now: u64, bytes: u64, tag: Tag) -> u64 {
        let now_fp = now * FP;
        let start_fp = self.channel_free_fp.max(now_fp);
        let dur_fp = ((bytes as f64 / self.cfg.bytes_per_cycle) * FP as f64).ceil() as u64;
        self.channel_free_fp = start_fp + dur_fp;
        let complete = (start_fp + dur_fp).div_ceil(FP) + self.cfg.latency;
        self.pending.push(Reverse((complete, tag)));
        self.accepted += 1;
        self.bytes += bytes;
        complete
    }

    /// Pop all requests completing at or before `now`.
    pub fn drain_completions(&mut self, now: u64, out: &mut Vec<Tag>) {
        while let Some(&Reverse((t, tag))) = self.pending.peek() {
            if t > now {
                break;
            }
            self.pending.pop();
            out.push(tag);
        }
    }

    /// Requests in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// `(accepted requests, bytes)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.accepted, self.bytes)
    }

    /// The earliest cycle the channel could accept a new transfer.
    pub fn channel_free(&self) -> u64 {
        self.channel_free_fp.div_ceil(FP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram(latency: u64, bw: f64) -> Dram {
        Dram::new(DramConfig {
            latency,
            bytes_per_cycle: bw,
        })
    }

    #[test]
    fn single_request_completes_after_latency() {
        let mut d = dram(100, 128.0);
        let t = d.submit(10, 128, 1);
        // 1 cycle transfer + 100 latency.
        assert_eq!(t, 111);
        let mut out = Vec::new();
        d.drain_completions(110, &mut out);
        assert!(out.is_empty());
        d.drain_completions(111, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn bandwidth_serializes_back_to_back() {
        // 8 bytes/cycle: each 128-byte request occupies 16 cycles.
        let mut d = dram(100, 8.0);
        let t1 = d.submit(0, 128, 1);
        let t2 = d.submit(0, 128, 2);
        let t3 = d.submit(0, 128, 3);
        assert_eq!(t1, 116);
        assert_eq!(t2, 132);
        assert_eq!(t3, 148);
    }

    #[test]
    fn idle_channel_resets_queueing() {
        let mut d = dram(100, 8.0);
        let _ = d.submit(0, 128, 1);
        // Long gap: the second request sees no queueing.
        let t2 = d.submit(1000, 128, 2);
        assert_eq!(t2, 1116);
    }

    #[test]
    fn fractional_bandwidth_accumulates() {
        // 6.4 bytes/cycle: a 128-byte transfer takes 20 cycles.
        let mut d = dram(0, 6.4);
        let t1 = d.submit(0, 128, 1);
        assert_eq!(t1, 20);
        let t2 = d.submit(0, 128, 2);
        assert_eq!(t2, 40);
    }

    #[test]
    fn sustained_rate_matches_bandwidth() {
        let mut d = dram(200, 8.0);
        for i in 0..1000 {
            d.submit(0, 128, i);
        }
        // Last completion ≈ 1000 * 16 + 200.
        let mut out = Vec::new();
        d.drain_completions(1000 * 16 + 200, &mut out);
        assert_eq!(out.len(), 1000);
        let (req, bytes) = d.counters();
        assert_eq!(req, 1000);
        assert_eq!(bytes, 128_000);
    }

    #[test]
    fn completions_drain_in_time_order() {
        let mut d = dram(10, 128.0);
        d.submit(0, 128, 3);
        d.submit(5, 128, 7);
        let mut out = Vec::new();
        d.drain_completions(100, &mut out);
        assert_eq!(out, vec![3, 7]);
    }
}

//! Chip-level simulation: several SMs sharing one DRAM channel.
//!
//! The paper (and `xmodel-core`) normalizes everything per SM, giving each
//! SM a static `1/N` share of chip bandwidth. This module is the ablation
//! of that assumption: N simulated SMs contend for a single DRAM channel,
//! so an SM running a memory-hungry kernel can *steal* bandwidth from an
//! SM running a compute-heavy one — the effect the static partition
//! cannot express. Homogeneous chips validate the partition (each SM gets
//! ≈ 1/N); heterogeneous chips quantify its error.

use crate::config::{SimConfig, SimWorkload};
use crate::dram::Dram;
use crate::sm::{Sm, TAG_SM_SHIFT};
use crate::stats::SimStats;
use std::cell::RefCell;
use std::rc::Rc;

/// A multi-SM chip sharing one DRAM channel.
///
/// ## Example
///
/// ```
/// use xmodel_sim::prelude::*;
/// use xmodel_workloads::TraceSpec;
///
/// let cfg = SimConfig::builder().lanes(4.0).dram(400, 8.0).build();
/// let wl = SimWorkload {
///     trace: TraceSpec::Stream { region_lines: 1 << 20 },
///     ops_per_request: 10.0,
///     ilp: 1.0,
///     warps: 16,
/// };
/// // Four SMs share a channel of 4x the per-SM bandwidth.
/// let stats = simulate_chip(&cfg, &wl, 4, 32.0, 2_000, 8_000);
/// assert_eq!(stats.len(), 4);
/// ```
pub struct ChipSim {
    sms: Vec<Sm>,
    shared: Rc<RefCell<Dram>>,
    cycle: u64,
    route_buf: Vec<u64>,
    inboxes: Vec<Vec<u64>>,
}

impl ChipSim {
    /// Build a chip of `(config, workload)` pairs — one per SM — sharing a
    /// DRAM channel of `chip_bytes_per_cycle` total bandwidth and the
    /// latency of the first SM's DRAM configuration.
    ///
    /// Each SM's own `dram.bytes_per_cycle` is ignored; L1/L2 stages stay
    /// private per SM.
    pub fn new(nodes: &[(SimConfig, SimWorkload)], chip_bytes_per_cycle: f64, seed: u64) -> Self {
        assert!(!nodes.is_empty(), "need at least one SM");
        assert!(nodes.len() <= u16::MAX as usize);
        assert!(chip_bytes_per_cycle > 0.0);
        let latency = nodes.first().map_or(0, |(cfg, _)| cfg.dram.latency);
        let shared = Rc::new(RefCell::new(Dram::new(crate::config::DramConfig {
            latency,
            bytes_per_cycle: chip_bytes_per_cycle,
        })));
        let sms = nodes
            .iter()
            .enumerate()
            .map(|(i, (cfg, wl))| {
                let mut sm = Sm::new(cfg, wl, seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                sm.attach_shared_dram(Rc::clone(&shared), i as u16);
                sm
            })
            .collect::<Vec<_>>();
        let n = sms.len();
        Self {
            sms,
            shared,
            cycle: 0,
            route_buf: Vec::new(),
            inboxes: vec![Vec::new(); n],
        }
    }

    /// Number of SMs.
    pub fn sm_count(&self) -> usize {
        self.sms.len()
    }

    /// Advance the whole chip one cycle.
    pub fn step(&mut self) {
        // Route shared-DRAM completions to their SMs.
        self.route_buf.clear();
        self.shared
            .borrow_mut()
            .drain_completions(self.cycle, &mut self.route_buf);
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        let direct = 1u64 << 63;
        let sm_mask = ((1u64 << 15) - 1) << TAG_SM_SHIFT;
        for &tag in &self.route_buf {
            let sm = ((tag & sm_mask) >> TAG_SM_SHIFT) as usize;
            // Strip the SM bits; keep the direct-wake bit.
            let local = tag & !(sm_mask) & !direct | (tag & direct);
            self.inboxes[sm].push(local);
        }
        for (sm, inbox) in self.sms.iter_mut().zip(&self.inboxes) {
            sm.step_with(inbox);
        }
        self.cycle += 1;
    }

    /// Run `warmup` unmeasured cycles then `measure` measured ones and
    /// return per-SM statistics.
    // xlint: determinism-root
    pub fn run(&mut self, warmup: u64, measure: u64) -> Vec<SimStats> {
        let _span = xmodel_obs::span!(xmodel_obs::names::span::SIM_CHIP);
        for sm in &mut self.sms {
            sm.set_measuring(false);
        }
        {
            let _warm = xmodel_obs::span!(xmodel_obs::names::span::SIM_WARMUP);
            for _ in 0..warmup {
                self.step();
            }
        }
        for sm in &mut self.sms {
            sm.set_measuring(true);
        }
        {
            let _meas = xmodel_obs::span!(xmodel_obs::names::span::SIM_MEASURE);
            for _ in 0..measure {
                self.step();
            }
        }
        self.sms.iter().map(|s| s.stats().clone()).collect()
    }

    /// Aggregate chip MS throughput (requests/cycle across all SMs).
    pub fn total_ms_throughput(stats: &[SimStats]) -> f64 {
        stats.iter().map(SimStats::ms_throughput).sum()
    }
}

/// Convenience: homogeneous chip of `n_sms` identical SMs.
pub fn simulate_chip(
    cfg: &SimConfig,
    wl: &SimWorkload,
    n_sms: usize,
    chip_bytes_per_cycle: f64,
    warmup: u64,
    measure: u64,
) -> Vec<SimStats> {
    let nodes: Vec<_> = (0..n_sms).map(|_| (*cfg, *wl)).collect();
    ChipSim::new(&nodes, chip_bytes_per_cycle, 42).run(warmup, measure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmodel_workloads::TraceSpec;

    fn stream_wl(warps: u32, z: f64) -> SimWorkload {
        SimWorkload {
            trace: TraceSpec::Stream {
                region_lines: 1 << 22,
            },
            ops_per_request: z,
            ilp: 1.0,
            warps,
        }
    }

    fn cfg() -> SimConfig {
        SimConfig::builder()
            .lanes(4.0)
            .issue_width(4)
            .lsu(2)
            .dram(400, 8.0)
            .build()
    }

    #[test]
    fn homogeneous_chip_matches_static_partition() {
        // 4 memory-bound SMs sharing 32 B/cyc: each should get ~8 B/cyc =
        // 1/16 req/cyc — the paper's per-SM normalization assumption.
        let stats = simulate_chip(&cfg(), &stream_wl(32, 2.0), 4, 32.0, 20_000, 40_000);
        assert_eq!(stats.len(), 4);
        let share = 8.0 / 128.0;
        for (i, s) in stats.iter().enumerate() {
            assert!(
                (s.ms_throughput() - share).abs() < 0.15 * share,
                "SM{i}: {} vs {share}",
                s.ms_throughput()
            );
        }
        let total = ChipSim::total_ms_throughput(&stats);
        assert!((total - 4.0 * share).abs() < 0.1 * 4.0 * share);
    }

    #[test]
    fn heterogeneous_chip_steals_bandwidth() {
        // One memory-hungry SM + three compute-heavy SMs: the hungry SM
        // must exceed its static 1/4 share — the partition's error case.
        let hungry = (cfg(), stream_wl(48, 2.0));
        let compute = (cfg(), stream_wl(48, 400.0));
        let nodes = vec![hungry, compute, compute, compute];
        let stats = ChipSim::new(&nodes, 32.0, 7).run(20_000, 40_000);
        let share = 8.0 / 128.0; // static quarter
        assert!(
            stats[0].ms_throughput() > 1.5 * share,
            "hungry SM got {} (static share {share})",
            stats[0].ms_throughput()
        );
        // And the chip channel is the binding resource overall.
        let total = ChipSim::total_ms_throughput(&stats);
        assert!(total <= 32.0 / 128.0 + 1e-6);
    }

    #[test]
    fn single_sm_chip_equals_standalone() {
        let wl = stream_wl(24, 10.0);
        let chip = simulate_chip(&cfg(), &wl, 1, 8.0, 10_000, 30_000);
        let solo = crate::sm::simulate(&cfg(), &wl, 10_000, 30_000);
        // Same configuration, same seed handling differences only in the
        // seed mix: throughput should agree closely.
        assert!(
            (chip[0].ms_throughput() - solo.ms_throughput()).abs() < 0.05 * solo.ms_throughput(),
            "chip {} vs solo {}",
            chip[0].ms_throughput(),
            solo.ms_throughput()
        );
    }

    #[test]
    fn chip_is_deterministic() {
        let wl = stream_wl(16, 5.0);
        let a = simulate_chip(&cfg(), &wl, 2, 16.0, 5_000, 10_000);
        let b = simulate_chip(&cfg(), &wl, 2, 16.0, 5_000, 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_conservation_per_sm() {
        let stats = simulate_chip(&cfg(), &stream_wl(20, 10.0), 3, 24.0, 5_000, 10_000);
        for s in &stats {
            assert!((s.avg_k() + s.avg_x() - 20.0).abs() < 1e-9);
        }
    }
}

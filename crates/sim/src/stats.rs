//! Simulation counters and derived observables.

use serde::{Deserialize, Serialize};

/// Everything measured during the post-warm-up window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Measured cycles (excludes warm-up).
    pub cycles: u64,
    /// Warp-operations retired by CS.
    pub ops_retired: f64,
    /// Warp memory requests completed (data returned to a warp).
    pub requests_completed: u64,
    /// Bytes delivered to warps (`requests × line bytes`).
    pub bytes_delivered: u64,
    /// L1 hits observed during measurement.
    pub l1_hits: u64,
    /// L1 misses (fresh MSHR allocations).
    pub l1_misses: u64,
    /// Secondary misses merged onto an existing MSHR.
    pub l1_merges: u64,
    /// Issue attempts rejected because every MSHR was busy.
    pub mshr_stalls: u64,
    /// Completions absorbed because their target was not waiting — a
    /// duplicated or stale delivery under fault injection (always 0 in a
    /// fault-free run).
    pub spurious_wakes: u64,
    /// Lost (dropped-completion) requests re-submitted by the recovery
    /// sweep under fault injection.
    pub lost_recovered: u64,
    /// Σ over cycles of warps resident in MS (issuing/waiting/stalled).
    pub sum_k: f64,
    /// Σ over cycles of warps resident in CS.
    pub sum_x: f64,
    /// `(cycle, k)` samples of the spatial state, one per sample interval.
    pub trajectory: Vec<(u64, u32)>,
    /// Histogram of the instantaneous `k` (index = k, value = cycles).
    pub k_histogram: Vec<u64>,
}

impl SimStats {
    /// New empty stats for `warps` resident warps.
    pub fn new(warps: u32) -> Self {
        Self {
            cycles: 0,
            ops_retired: 0.0,
            requests_completed: 0,
            bytes_delivered: 0,
            l1_hits: 0,
            l1_misses: 0,
            l1_merges: 0,
            mshr_stalls: 0,
            spurious_wakes: 0,
            lost_recovered: 0,
            sum_k: 0.0,
            sum_x: 0.0,
            trajectory: Vec::new(),
            k_histogram: vec![0; warps as usize + 1],
        }
    }

    /// MS throughput in requests per cycle.
    pub fn ms_throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.requests_completed as f64 / self.cycles as f64
        }
    }

    /// CS throughput in warp-ops per cycle.
    pub fn cs_throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops_retired / self.cycles as f64
        }
    }

    /// Mean number of warps in MS (the spatial state the model predicts).
    pub fn avg_k(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.sum_k / self.cycles as f64
        }
    }

    /// Mean number of warps in CS.
    pub fn avg_x(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.sum_x / self.cycles as f64
        }
    }

    /// L1 hit rate over the measurement window (0 when no L1 traffic).
    pub fn hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses + self.l1_merges;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Most frequently observed `k` (mode of the spatial-state histogram).
    pub fn mode_k(&self) -> u32 {
        self.k_histogram
            .iter()
            .enumerate()
            .fold(
                (0usize, 0u64),
                |best, (k, &c)| {
                    if c > best.1 {
                        (k, c)
                    } else {
                        best
                    }
                },
            )
            .0 as u32
    }
}

/// One consistent sample of the monotone counters the simtrace probe
/// layer ([`crate::probe`]) differences per frame. Keeping the sampling
/// in one method means a counter cannot be added to the probe stream
/// without being added here, and the probe side never touches the stats
/// fields directly.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct ProbeCounters {
    pub cycles: u64,
    pub ops: f64,
    pub requests: u64,
    pub hits: u64,
    pub misses: u64,
    pub merges: u64,
    pub mshr_stalls: u64,
}

impl ProbeCounters {
    /// Per-frame delta against the previous sample. Counters are
    /// monotone during a run, so plain subtraction is exact; saturating
    /// keeps a (hypothetical) reset from underflowing.
    pub(crate) fn delta(&self, prev: &ProbeCounters) -> ProbeCounters {
        ProbeCounters {
            cycles: self.cycles.saturating_sub(prev.cycles),
            ops: (self.ops - prev.ops).max(0.0),
            requests: self.requests.saturating_sub(prev.requests),
            hits: self.hits.saturating_sub(prev.hits),
            misses: self.misses.saturating_sub(prev.misses),
            merges: self.merges.saturating_sub(prev.merges),
            mshr_stalls: self.mshr_stalls.saturating_sub(prev.mshr_stalls),
        }
    }
}

impl SimStats {
    /// Sample every counter the probe layer differences, in one read.
    pub(crate) fn probe_counters(&self) -> ProbeCounters {
        ProbeCounters {
            cycles: self.cycles,
            ops: self.ops_retired,
            requests: self.requests_completed,
            hits: self.l1_hits,
            misses: self.l1_misses,
            merges: self.l1_merges,
            mshr_stalls: self.mshr_stalls,
        }
    }
}

impl std::fmt::Display for SimStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MS {:.4} req/cyc, CS {:.4} ops/cyc, k/x = {:.1}/{:.1}, L1 hit {:.2} ({} stalls) over {} cycles",
            self.ms_throughput(),
            self.cs_throughput(),
            self.avg_k(),
            self.avg_x(),
            self.hit_rate(),
            self.mshr_stalls,
            self.cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = SimStats::new(8);
        assert_eq!(s.ms_throughput(), 0.0);
        assert_eq!(s.cs_throughput(), 0.0);
        assert_eq!(s.avg_k(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mode_k(), 0);
        assert_eq!(s.k_histogram.len(), 9);
    }

    #[test]
    fn derived_rates() {
        let mut s = SimStats::new(4);
        s.cycles = 100;
        s.requests_completed = 25;
        s.ops_retired = 300.0;
        s.sum_k = 150.0;
        s.sum_x = 250.0;
        s.l1_hits = 30;
        s.l1_misses = 10;
        assert!((s.ms_throughput() - 0.25).abs() < 1e-12);
        assert!((s.cs_throughput() - 3.0).abs() < 1e-12);
        assert!((s.avg_k() - 1.5).abs() < 1e-12);
        assert!((s.avg_x() - 2.5).abs() < 1e-12);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_summarizes() {
        let mut s = SimStats::new(4);
        s.cycles = 100;
        s.requests_completed = 25;
        s.ops_retired = 300.0;
        let text = s.to_string();
        assert!(text.contains("MS 0.2500"));
        assert!(text.contains("100 cycles"));
    }

    #[test]
    fn mode_of_histogram() {
        let mut s = SimStats::new(4);
        s.k_histogram = vec![1, 5, 9, 2, 0];
        assert_eq!(s.mode_k(), 2);
    }
}

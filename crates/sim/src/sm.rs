//! The cycle-stepped SM driver.

use crate::cache::{Access, L1Cache, SimpleCache};
use crate::config::{SimConfig, SimWorkload};
use crate::dram::Dram;
use crate::error::{SimError, Watchdog};
use crate::fault::{FaultCounters, FaultInjector, FaultSpec};
use crate::stats::SimStats;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::rc::Rc;
use xmodel_workloads::AddressStream;

/// Tag bit marking a DRAM completion that wakes a warp directly (bypass or
/// no-L1) rather than completing an MSHR fill.
const TAG_DIRECT: u64 = 1 << 63;

/// Bit offset where a chip-level simulation stores the SM id in shared
/// DRAM tags (see [`crate::chip`]).
pub(crate) const TAG_SM_SHIFT: u32 = 48;

/// Cycle period of `sim.snapshot` trace events when tracing is live and
/// no explicit `trajectory_interval` is set.
pub(crate) const SNAPSHOT_INTERVAL: u64 = 256;

/// Cycle period of the lost-request recovery sweep under fault injection.
const RECOVERY_SWEEP: u64 = 256;

/// Cycle stride between watchdog budget checks in [`Sm::run_watched`].
const WATCHDOG_STRIDE: u64 = 512;

/// A DRAM attachment: private channel, or a chip-shared channel the SM
/// submits to with its id encoded in the tag (completions are routed back
/// by the chip driver).
enum DramPort {
    Own(Box<Dram>),
    Shared(Rc<RefCell<Dram>>, u64),
}

impl DramPort {
    fn submit(&mut self, now: u64, bytes: u64, tag: u64) {
        match self {
            DramPort::Own(d) => {
                d.submit(now, bytes, tag);
            }
            DramPort::Shared(d, smbits) => {
                d.borrow_mut().submit(now, bytes, tag | *smbits);
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum WarpState {
    /// Executing: `ops_left` warp-ops until the next memory request.
    Computing { ops_left: f64 },
    /// Has a memory request ready to hand to the LSU.
    IssuePending,
    /// Request in flight (L1 hit pipeline, MSHR fill, or direct DRAM).
    Waiting,
    /// Rejected for MSHR exhaustion; retries through the LSU.
    Stalled,
}

struct Warp {
    state: WarpState,
    pending_addr: u64,
    stream: Box<dyn AddressStream>,
    rng: SmallRng,
}

/// One simulated streaming multiprocessor.
pub struct Sm {
    cfg: SimConfig,
    wl: SimWorkload,
    warps: Vec<Warp>,
    l1: Option<L1Cache>,
    l2: Option<(SimpleCache, Dram)>,
    dram: DramPort,
    hit_queue: BinaryHeap<Reverse<(u64, u32)>>,
    cycle: u64,
    rr: usize,
    lsu_rr: usize,
    measuring: bool,
    stats: SimStats,
    drain_buf: Vec<u64>,
    /// Sample the spatial trajectory every this many cycles (0 = never).
    pub trajectory_interval: u64,
    /// True when a fault injector may lose completions: enables the
    /// outstanding-request ledger and the recovery sweep.
    fault_active: bool,
    /// In-flight requests by tag → `(submit_cycle, addr)`; only populated
    /// while `fault_active` (a `BTreeMap` so sweep order is deterministic).
    outstanding: BTreeMap<u64, (u64, u64)>,
    /// A request older than this many cycles is presumed lost and
    /// re-submitted with the same tag.
    recovery_timeout: u64,
    /// SM index stamped on probe frames (0 unless chip-attached).
    sm_id: u16,
    /// Construction seed, recorded in the simtrace probe header.
    seed: u64,
    /// Simtrace probe cursor — tracing-only side state; never read by
    /// the simulation path.
    probe: crate::probe::ProbeCursor,
}

impl Sm {
    /// Build an SM with every warp starting in CS (a fresh compute
    /// quantum). `seed` controls the per-warp address streams and compute
    /// jitter; identical seeds give identical runs.
    pub fn new(cfg: &SimConfig, wl: &SimWorkload, seed: u64) -> Self {
        Self::with_initial_ms_fraction(cfg, wl, seed, 0.0)
    }

    /// Build an SM with the first `ms_fraction` of warps starting with an
    /// immediate memory request (threads initially in MS) — the knob used
    /// to probe the bistable regime of §III-D.
    pub fn with_initial_ms_fraction(
        cfg: &SimConfig,
        wl: &SimWorkload,
        seed: u64,
        ms_fraction: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&ms_fraction));
        assert!(wl.warps >= 1, "need at least one warp");
        assert!(wl.ilp > 0.0 && wl.ops_per_request > 0.0);
        let in_ms = (ms_fraction * wl.warps as f64).round() as u32;
        let warps = (0..wl.warps)
            .map(|w| {
                let mut rng =
                    SmallRng::seed_from_u64(seed ^ (w as u64).wrapping_mul(0xA24B_AED4_963E_E407));
                let mut stream = wl.trace.instantiate(w, seed);
                let state = if w < in_ms {
                    WarpState::IssuePending
                } else {
                    WarpState::Computing {
                        ops_left: sample_ops(wl.ops_per_request, &mut rng),
                    }
                };
                let pending_addr = stream.next_addr();
                Warp {
                    state,
                    pending_addr,
                    stream,
                    rng,
                }
            })
            .collect();
        Self {
            warps,
            l1: cfg.l1.map(L1Cache::new),
            l2: cfg.l2.map(|l2| {
                (
                    SimpleCache::new(l2.capacity_bytes, 128),
                    Dram::new(crate::config::DramConfig {
                        latency: l2.latency,
                        bytes_per_cycle: l2.bytes_per_cycle,
                    }),
                )
            }),
            dram: DramPort::Own(Box::new(Dram::new(cfg.dram))),
            hit_queue: BinaryHeap::new(),
            cycle: 0,
            rr: 0,
            lsu_rr: 0,
            measuring: false,
            stats: SimStats::new(wl.warps),
            drain_buf: Vec::new(),
            cfg: *cfg,
            wl: *wl,
            trajectory_interval: 0,
            fault_active: false,
            outstanding: BTreeMap::new(),
            recovery_timeout: u64::MAX,
            sm_id: 0,
            seed,
            probe: crate::probe::ProbeCursor::default(),
        }
    }

    /// Build an SM whose private DRAM channel injects the faults in
    /// `spec` (latency spikes, dropped/duplicated completions, bandwidth
    /// throttling). Dropped completions are recovered by a periodic sweep
    /// that re-submits overdue requests under their original tag; the
    /// recoveries and any absorbed duplicate completions are counted in
    /// [`SimStats::lost_recovered`] / [`SimStats::spurious_wakes`]. The
    /// spec's sink and solver fields are ignored here — they perturb
    /// other layers (`xmodel_obs::fault`, `xmodel_core::degrade`).
    pub fn with_faults(cfg: &SimConfig, wl: &SimWorkload, seed: u64, spec: &FaultSpec) -> Self {
        let mut sm = Self::new(cfg, wl, seed);
        if spec.perturbs_memory() {
            if let DramPort::Own(d) = &mut sm.dram {
                d.set_faults(FaultInjector::new(spec));
            }
            sm.fault_active = spec.drop_prob > 0.0;
            sm.recovery_timeout = recovery_timeout(cfg, wl, spec);
        }
        sm
    }

    /// Build an SM from pre-instantiated per-warp address streams (for
    /// recorded/algorithm-derived traces); `z`/`e` play the same role as
    /// in [`SimWorkload`]. The workload's own trace field is ignored.
    pub fn with_streams(
        cfg: &SimConfig,
        streams: Vec<Box<dyn xmodel_workloads::AddressStream>>,
        ops_per_request: f64,
        ilp: f64,
        seed: u64,
    ) -> Self {
        assert!(!streams.is_empty());
        let wl = SimWorkload {
            trace: xmodel_workloads::TraceSpec::Stream { region_lines: 1 },
            ops_per_request,
            ilp,
            warps: streams.len() as u32,
        };
        let mut sm = Self::new(cfg, &wl, seed);
        for (w, stream) in sm.warps.iter_mut().zip(streams) {
            w.stream = stream;
            w.pending_addr = w.stream.next_addr();
        }
        sm
    }

    /// Re-attach this SM to a chip-shared DRAM channel (used by
    /// [`crate::chip::ChipSim`]). Completions must then be injected via
    /// [`Sm::step_with`].
    pub(crate) fn attach_shared_dram(&mut self, dram: Rc<RefCell<Dram>>, sm_id: u16) {
        self.dram = DramPort::Shared(dram, (sm_id as u64) << TAG_SM_SHIFT);
        self.sm_id = sm_id;
    }

    fn bypasses(&self, warp: u32) -> bool {
        self.l1.is_none()
            || (warp as f64) >= (1.0 - self.cfg.bypass_fraction) * self.wl.warps as f64
    }

    /// Send a request for `addr` into the memory hierarchy below L1:
    /// probe L2 when configured (hits ride the L2 channel; misses install
    /// the line and fall through to DRAM), else go straight to DRAM.
    fn submit_mem(&mut self, now: u64, addr: u64, tag: u64) {
        let bytes = self.cfg.request_bytes.round().max(1.0) as u64;
        if self.fault_active {
            self.outstanding.insert(tag, (now, addr));
        }
        if let Some((cache, channel)) = self.l2.as_mut() {
            if cache.probe_insert(addr) {
                channel.submit(now, bytes, tag);
                return;
            }
        }
        self.dram.submit(now, bytes, tag);
    }

    /// Re-submit requests whose completion is overdue (lost to a drop
    /// fault) under their original tag, so the eventual completion still
    /// routes to the right MSHR or warp.
    fn recover_lost(&mut self, now: u64) {
        let timeout = self.recovery_timeout;
        let overdue: Vec<(u64, u64)> = self
            .outstanding
            .iter()
            .filter(|&(_, &(t0, _))| now.saturating_sub(t0) >= timeout)
            .map(|(&tag, &(_, addr))| (tag, addr))
            .collect();
        for (tag, addr) in overdue {
            self.stats.lost_recovered += 1;
            if xmodel_obs::enabled() {
                xmodel_obs::event!("sim.fault.recovered", cycle = now, tag = tag);
            }
            self.submit_mem(now, addr, tag);
        }
    }

    fn wake(&mut self, warp: u32) {
        let w = &mut self.warps[warp as usize];
        if w.state != WarpState::Waiting {
            // A duplicated or stale completion under fault injection:
            // absorb it rather than corrupting the warp's state machine.
            self.stats.spurious_wakes += 1;
            return;
        }
        let ops = sample_ops(self.wl.ops_per_request, &mut w.rng);
        w.state = WarpState::Computing { ops_left: ops };
        w.pending_addr = w.stream.next_addr();
        if self.measuring {
            self.stats.requests_completed += 1;
            self.stats.bytes_delivered += self.cfg.request_bytes.round().max(1.0) as u64;
        }
    }

    /// Advance one cycle (private-DRAM configuration).
    pub fn step(&mut self) {
        self.step_with(&[]);
    }

    /// Advance one cycle, additionally delivering `injected` completion
    /// tags routed from a chip-shared DRAM channel.
    pub fn step_with(&mut self, injected: &[u64]) {
        let now = self.cycle;

        // 1. Completions: DRAM first, then the L1 hit pipeline.
        self.drain_buf.clear();
        let mut buf = std::mem::take(&mut self.drain_buf);
        buf.extend_from_slice(injected);
        if let DramPort::Own(d) = &mut self.dram {
            d.drain_completions(now, &mut buf);
        }
        if let Some((_, channel)) = self.l2.as_mut() {
            channel.drain_completions(now, &mut buf);
        }
        for tag in buf.drain(..) {
            if self.fault_active {
                self.outstanding.remove(&tag);
            }
            if tag & TAG_DIRECT != 0 {
                self.wake((tag & !TAG_DIRECT) as u32);
            } else {
                match self
                    .l1
                    .as_mut()
                    .and_then(|l1| l1.try_complete_fill(tag as usize))
                {
                    Some(waiters) => {
                        for w in waiters {
                            self.wake(w);
                        }
                    }
                    // Idle MSHR (duplicated fill) or a tag without an L1:
                    // absorb instead of panicking.
                    None => self.stats.spurious_wakes += 1,
                }
            }
        }
        self.drain_buf = buf;
        if self.fault_active && now % RECOVERY_SWEEP == 0 && !self.outstanding.is_empty() {
            self.recover_lost(now);
        }
        while let Some(&Reverse((t, w))) = self.hit_queue.peek() {
            if t > now {
                break;
            }
            self.hit_queue.pop();
            self.wake(w);
        }

        // 2. LSU: issue up to lsu_per_cycle pending requests, round-robin.
        let n = self.warps.len();
        let mut issued = 0;
        for off in 0..n {
            if issued >= self.cfg.lsu_per_cycle {
                break;
            }
            let wi = (self.lsu_rr + off) % n;
            if !matches!(
                self.warps[wi].state,
                WarpState::IssuePending | WarpState::Stalled
            ) {
                continue;
            }
            issued += 1;
            let addr = self.warps[wi].pending_addr;
            if self.bypasses(wi as u32) {
                self.submit_mem(now, addr, TAG_DIRECT | wi as u64);
                self.warps[wi].state = WarpState::Waiting;
            } else {
                // xlint: allow(no-panic-in-lib, state-machine invariant: Cached access is only emitted when an L1 is configured)
                let l1 = self.l1.as_mut().expect("cached warp without L1");
                match l1.access(addr, wi as u32) {
                    Access::Hit => {
                        self.hit_queue
                            .push(Reverse((now + l1_hit_latency(&self.cfg), wi as u32)));
                        self.warps[wi].state = WarpState::Waiting;
                        if self.measuring {
                            self.stats.l1_hits += 1;
                        }
                    }
                    Access::MissAllocated { mshr } => {
                        self.submit_mem(now, addr, mshr as u64);
                        self.warps[wi].state = WarpState::Waiting;
                        if self.measuring {
                            self.stats.l1_misses += 1;
                        }
                    }
                    Access::MissMerged { .. } => {
                        self.warps[wi].state = WarpState::Waiting;
                        if self.measuring {
                            self.stats.l1_merges += 1;
                        }
                    }
                    Access::MshrFull => {
                        self.warps[wi].state = WarpState::Stalled;
                        if self.measuring {
                            self.stats.mshr_stalls += 1;
                        }
                    }
                }
            }
        }
        self.lsu_rr = (self.lsu_rr + 1) % n;

        // 3. CS: spend up to `lanes` warp-ops, round-robin, each selected
        // warp retiring at most its ILP width.
        let mut credit = self.cfg.lanes;
        let mut selected = 0;
        let mut retired = 0.0;
        for off in 0..n {
            if credit <= 1e-12 || selected >= self.cfg.issue_width {
                break;
            }
            let wi = (self.rr + off) % n;
            if let WarpState::Computing { ops_left } = self.warps[wi].state {
                let take = self.wl.ilp.min(ops_left).min(credit);
                let left = ops_left - take;
                credit -= take;
                retired += take;
                selected += 1;
                self.warps[wi].state = if left <= 1e-9 {
                    WarpState::IssuePending
                } else {
                    WarpState::Computing { ops_left: left }
                };
            }
        }
        self.rr = (self.rr + 1) % n;

        // 4. Accounting.
        if self.measuring {
            self.stats.cycles += 1;
            self.stats.ops_retired += retired;
            let (mut computing, mut queued, mut waiting, mut stalled) = (0u32, 0u32, 0u32, 0u32);
            for w in &self.warps {
                match w.state {
                    WarpState::Computing { .. } => computing += 1,
                    WarpState::IssuePending => queued += 1,
                    WarpState::Waiting => waiting += 1,
                    WarpState::Stalled => stalled += 1,
                }
            }
            let k = (queued + waiting + stalled) as usize;
            self.stats.sum_k += k as f64;
            self.stats.sum_x += (n - k) as f64;
            self.stats.k_histogram[k] += 1;
            if self.trajectory_interval > 0 && now % self.trajectory_interval == 0 {
                self.stats.trajectory.push((now, k as u32));
            }
            // Trace snapshot: a superset of the trajectory sample. Reads
            // simulator state only — determinism is unaffected by tracing.
            if xmodel_obs::enabled() {
                let interval = if self.trajectory_interval > 0 {
                    self.trajectory_interval
                } else {
                    SNAPSHOT_INTERVAL
                };
                if now % interval == 0 {
                    let (dram_inflight, dram_backlog) = match &self.dram {
                        DramPort::Own(d) => (d.in_flight(), d.channel_free().saturating_sub(now)),
                        DramPort::Shared(d, _) => {
                            let d = d.borrow();
                            (d.in_flight(), d.channel_free().saturating_sub(now))
                        }
                    };
                    xmodel_obs::event!(
                        "sim.snapshot",
                        cycle = now,
                        k = k,
                        x = n - k,
                        mshrs_busy = self.l1.as_ref().map_or(0, L1Cache::mshrs_busy),
                        dram_inflight = dram_inflight,
                        dram_backlog = dram_backlog,
                        hit_rate = self.stats.hit_rate(),
                    );
                    self.probe.emit(
                        &crate::probe::HeaderCtx {
                            sm: self.sm_id,
                            interval,
                            warps: self.wl.warps,
                            seed: self.seed,
                            z: self.wl.ops_per_request,
                            e: self.wl.ilp,
                        },
                        &crate::probe::StateSample {
                            cycle: now,
                            computing,
                            queued,
                            waiting,
                            stalled,
                            k: k as u32,
                            dram_inflight,
                            dram_backlog,
                        },
                        &self.stats,
                    );
                }
            }
        }

        self.cycle += 1;
    }

    /// Enable or disable measurement (chip driver control).
    pub fn set_measuring(&mut self, on: bool) {
        self.measuring = on;
    }

    /// Run `warmup` unmeasured cycles then `measure` measured ones.
    // xlint: determinism-root
    pub fn run(&mut self, warmup: u64, measure: u64) -> &SimStats {
        let _span = xmodel_obs::span!(xmodel_obs::names::span::SIM_RUN);
        self.measuring = false;
        {
            let _warm = xmodel_obs::span!(xmodel_obs::names::span::SIM_WARMUP);
            for _ in 0..warmup {
                self.step();
            }
        }
        self.measuring = true;
        {
            let _meas = xmodel_obs::span!(xmodel_obs::names::span::SIM_MEASURE);
            for _ in 0..measure {
                self.step();
            }
        }
        &self.stats
    }

    /// [`Sm::run`] under a [`Watchdog`]: the run is aborted with a typed
    /// [`SimError::Watchdog`] when it exceeds its cycle or wall-clock
    /// budget, or (during the measured phase) stops completing requests
    /// for `stall_cycles` — converting a fault-induced hang into an error
    /// instead of spinning forever or returning garbage stats.
    // xlint: determinism-root
    pub fn run_watched(
        &mut self,
        warmup: u64,
        measure: u64,
        watchdog: &Watchdog,
    ) -> Result<&SimStats, SimError> {
        let _span = xmodel_obs::span!(xmodel_obs::names::span::SIM_RUN);
        // xlint: allow(nondeterminism-in-result-path, watchdog wall-clock budget; overruns abort with a typed error and never alter stats)
        let started = std::time::Instant::now();
        let total = warmup + measure;
        let mut last_completed = self.stats.requests_completed;
        let mut last_progress = 0u64;
        self.measuring = false;
        for i in 0..total {
            if i == warmup {
                self.measuring = true;
                last_progress = i;
            }
            self.step();
            if i % WATCHDOG_STRIDE == 0 {
                if self.stats.requests_completed != last_completed {
                    last_completed = self.stats.requests_completed;
                    last_progress = i;
                }
                let stalled = if self.measuring { i - last_progress } else { 0 };
                watchdog.check(i + 1, self.stats.requests_completed, stalled, started)?;
            }
        }
        Ok(&self.stats)
    }

    /// Run with measurement on until `requests` warp requests complete or
    /// `max_cycles` elapse; returns the cycles spent (None on timeout).
    /// Used to validate the execution-time extension of `xmodel-core`.
    pub fn run_until_requests(&mut self, requests: u64, max_cycles: u64) -> Option<u64> {
        self.measuring = true;
        let start = self.cycle;
        while self.stats.requests_completed < requests {
            if self.cycle - start >= max_cycles {
                return None;
            }
            self.step();
        }
        Some(self.cycle - start)
    }

    /// Stats collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Faults the DRAM channel has injected, when built via
    /// [`Sm::with_faults`] (None otherwise).
    pub fn fault_counters(&self) -> Option<FaultCounters> {
        match &self.dram {
            DramPort::Own(d) => d.fault_counters(),
            DramPort::Shared(d, _) => d.borrow().fault_counters(),
        }
    }

    /// Requests currently awaiting completion in the recovery ledger
    /// (0 unless drop faults are active).
    pub fn outstanding_requests(&self) -> usize {
        self.outstanding.len()
    }
}

/// How long to wait before declaring a request's completion lost: the
/// worst-case service time under the spec's spike and throttle factors,
/// plus full-fleet queueing, with generous margin. Too short would only
/// cause benign duplicate re-submissions (absorbed by the wake guard);
/// too long delays recovery.
fn recovery_timeout(cfg: &SimConfig, wl: &SimWorkload, spec: &FaultSpec) -> u64 {
    let transfer = (cfg.request_bytes / cfg.dram.bytes_per_cycle)
        .ceil()
        .max(1.0);
    let slow = 1.0 / spec.throttle_factor.clamp(0.01, 1.0);
    let latency = cfg.dram.latency as f64 * spec.spike_factor.max(1.0);
    let queueing = wl.warps as f64 * transfer * slow;
    (4.0 * (latency + transfer * slow) + queueing).ceil() as u64 + 1024
}

fn l1_hit_latency(cfg: &SimConfig) -> u64 {
    cfg.l1.map(|c| c.hit_latency).unwrap_or(1)
}

/// Uniform jitter in `[0.5·z, 1.5·z)` with mean `z`, desynchronising warps
/// the way variable control flow does on hardware. Infinite `z` (pure
/// compute) passes through.
fn sample_ops(z: f64, rng: &mut SmallRng) -> f64 {
    if z.is_infinite() {
        return f64::INFINITY;
    }
    z * (0.5 + rng.random::<f64>())
}

/// Run a fresh SM to completion and return its stats (seed 42).
pub fn simulate(cfg: &SimConfig, wl: &SimWorkload, warmup: u64, measure: u64) -> SimStats {
    simulate_with_seed(cfg, wl, warmup, measure, 42)
}

/// [`simulate`] with an explicit seed.
pub fn simulate_with_seed(
    cfg: &SimConfig,
    wl: &SimWorkload,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> SimStats {
    let mut sm = Sm::new(cfg, wl, seed);
    sm.run(warmup, measure);
    sm.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmodel_workloads::TraceSpec;

    fn stream_wl(warps: u32, z: f64, e: f64) -> SimWorkload {
        SimWorkload {
            trace: TraceSpec::Stream {
                region_lines: 1 << 22,
            },
            ops_per_request: z,
            ilp: e,
            warps,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SimConfig::builder().lanes(4.0).dram(400, 8.0).build();
        let wl = stream_wl(16, 10.0, 1.0);
        let a = simulate_with_seed(&cfg, &wl, 5_000, 20_000, 7);
        let b = simulate_with_seed(&cfg, &wl, 5_000, 20_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn pure_compute_saturates_lanes() {
        let cfg = SimConfig::builder().lanes(4.0).issue_width(8).build();
        let wl = SimWorkload {
            trace: TraceSpec::Stream { region_lines: 64 },
            ops_per_request: f64::INFINITY,
            ilp: 1.0,
            warps: 16,
        };
        let s = simulate(&cfg, &wl, 1_000, 10_000);
        assert!(
            (s.cs_throughput() - 4.0).abs() < 0.01,
            "{}",
            s.cs_throughput()
        );
        assert_eq!(s.requests_completed, 0);
        assert_eq!(s.avg_k(), 0.0);
    }

    #[test]
    fn few_threads_cannot_saturate_lanes() {
        let cfg = SimConfig::builder().lanes(4.0).issue_width(8).build();
        let wl = SimWorkload {
            trace: TraceSpec::Stream { region_lines: 64 },
            ops_per_request: f64::INFINITY,
            ilp: 1.0,
            warps: 2,
        };
        let s = simulate(&cfg, &wl, 1_000, 10_000);
        // Two warps at ILP 1 retire 2 ops/cycle on 4 lanes.
        assert!((s.cs_throughput() - 2.0).abs() < 0.01);
    }

    #[test]
    fn ilp_multiplies_single_warp_throughput() {
        let cfg = SimConfig::builder().lanes(4.0).issue_width(8).build();
        let mk = |e| SimWorkload {
            trace: TraceSpec::Stream { region_lines: 64 },
            ops_per_request: f64::INFINITY,
            ilp: e,
            warps: 1,
        };
        let s1 = simulate(&cfg, &mk(1.0), 1_000, 5_000);
        let s2 = simulate(&cfg, &mk(2.0), 1_000, 5_000);
        assert!((s1.cs_throughput() - 1.0).abs() < 0.01);
        assert!((s2.cs_throughput() - 2.0).abs() < 0.01);
    }

    #[test]
    fn memory_bound_stream_saturates_dram_bandwidth() {
        // Z tiny: throughput pinned by DRAM: 8 B/cyc = 1/16 req/cyc.
        let cfg = SimConfig::builder()
            .lanes(4.0)
            .issue_width(8)
            .dram(400, 8.0)
            .build();
        let s = simulate(&cfg, &stream_wl(48, 2.0, 1.0), 20_000, 50_000);
        let expect = 8.0 / 128.0;
        assert!(
            (s.ms_throughput() - expect).abs() < 0.1 * expect,
            "ms = {}, expect {}",
            s.ms_throughput(),
            expect
        );
    }

    #[test]
    fn latency_bound_throughput_scales_with_warps() {
        // Few warps, huge bandwidth: each warp turns around in
        // ~Z + latency cycles => ms ≈ n / (L + Z).
        let cfg = SimConfig::builder()
            .lanes(8.0)
            .issue_width(8)
            .lsu(8)
            .dram(400, 1e6)
            .build();
        let s4 = simulate(&cfg, &stream_wl(4, 10.0, 1.0), 10_000, 40_000);
        let s8 = simulate(&cfg, &stream_wl(8, 10.0, 1.0), 10_000, 40_000);
        let ratio = s8.ms_throughput() / s4.ms_throughput();
        assert!((ratio - 2.0).abs() < 0.15, "ratio = {ratio}");
        let expect4 = 4.0 / 410.0;
        assert!(
            (s4.ms_throughput() - expect4).abs() < 0.15 * expect4,
            "ms = {} vs {}",
            s4.ms_throughput(),
            expect4
        );
    }

    #[test]
    fn spatial_state_concentrates_in_ms_for_memory_bound() {
        let cfg = SimConfig::builder().lanes(4.0).dram(400, 8.0).build();
        let s = simulate(&cfg, &stream_wl(32, 2.0, 1.0), 10_000, 40_000);
        // Memory bound: nearly every warp waits in MS.
        assert!(s.avg_k() > 28.0, "avg_k = {}", s.avg_k());
        assert!((s.avg_k() + s.avg_x() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn cache_hits_cut_memory_traffic() {
        let wl = SimWorkload {
            trace: TraceSpec::PrivateWorkingSet {
                ws_lines: 8,
                stream_prob: 0.0,
                reuse_skew: 0.0,
            },
            ops_per_request: 10.0,
            ilp: 1.0,
            warps: 8,
        };
        let base = SimConfig::builder().lanes(4.0).dram(400, 8.0);
        let no_l1 = base.clone().build();
        let with_l1 = base.l1(64 * 1024, 20, 32).build();
        let s0 = simulate(&no_l1, &wl, 10_000, 40_000);
        let s1 = simulate(&with_l1, &wl, 10_000, 40_000);
        assert!(s1.hit_rate() > 0.9, "hit rate = {}", s1.hit_rate());
        assert!(
            s1.ms_throughput() > 3.0 * s0.ms_throughput(),
            "cached {} vs uncached {}",
            s1.ms_throughput(),
            s0.ms_throughput()
        );
    }

    #[test]
    fn thrashing_working_set_degrades_hit_rate() {
        let mk = |warps| SimWorkload {
            trace: TraceSpec::PrivateWorkingSet {
                ws_lines: 32,
                stream_prob: 0.0,
                reuse_skew: 0.0,
            },
            ops_per_request: 10.0,
            ilp: 1.0,
            warps,
        };
        let cfg = SimConfig::builder()
            .lanes(4.0)
            .dram(400, 8.0)
            // 16 KiB = 128 lines: four warps' working sets fit.
            .l1(16 * 1024, 20, 32)
            .build();
        let few = simulate(&cfg, &mk(4), 20_000, 40_000);
        let many = simulate(&cfg, &mk(48), 20_000, 40_000);
        assert!(few.hit_rate() > 0.9, "few = {}", few.hit_rate());
        assert!(
            many.hit_rate() < 0.5,
            "many = {} should thrash",
            many.hit_rate()
        );
    }

    #[test]
    fn bypass_fraction_sends_warps_straight_to_dram() {
        let wl = SimWorkload {
            trace: TraceSpec::PrivateWorkingSet {
                ws_lines: 8,
                stream_prob: 0.0,
                reuse_skew: 0.0,
            },
            ops_per_request: 10.0,
            ilp: 1.0,
            warps: 8,
        };
        let all_cached = SimConfig::builder()
            .lanes(4.0)
            .dram(400, 8.0)
            .l1(64 * 1024, 20, 32)
            .build();
        let all_bypass = SimConfig::builder()
            .lanes(4.0)
            .dram(400, 8.0)
            .l1(64 * 1024, 20, 32)
            .bypass(1.0)
            .build();
        let sc = simulate(&all_cached, &wl, 5_000, 20_000);
        let sb = simulate(&all_bypass, &wl, 5_000, 20_000);
        assert!(sc.l1_hits > 0);
        assert_eq!(sb.l1_hits + sb.l1_misses + sb.l1_merges, 0);
    }

    #[test]
    fn mshr_pressure_is_observable() {
        // Streaming misses with very few MSHRs: stalls must appear.
        let cfg = SimConfig::builder()
            .lanes(4.0)
            .lsu(4)
            .dram(600, 4.0)
            .l1(16 * 1024, 20, 2)
            .build();
        let s = simulate(&cfg, &stream_wl(32, 2.0, 1.0), 5_000, 20_000);
        assert!(s.mshr_stalls > 0);
    }

    #[test]
    fn initial_distribution_knob() {
        let cfg = SimConfig::builder().lanes(4.0).dram(400, 8.0).build();
        let wl = stream_wl(16, 50.0, 1.0);
        let mut all_ms = Sm::with_initial_ms_fraction(&cfg, &wl, 1, 1.0);
        // Before any step, every warp sits in MS.
        all_ms.run(0, 1);
        assert!(all_ms.stats().avg_k() >= 15.0);
    }

    #[test]
    fn fault_free_run_has_no_spurious_or_recovered() {
        let cfg = SimConfig::builder().lanes(4.0).dram(400, 8.0).build();
        let s = simulate(&cfg, &stream_wl(16, 10.0, 1.0), 5_000, 20_000);
        assert_eq!(s.spurious_wakes, 0);
        assert_eq!(s.lost_recovered, 0);
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let cfg = SimConfig::builder()
            .lanes(4.0)
            .dram(400, 8.0)
            .l1(16 * 1024, 20, 16)
            .build();
        let wl = stream_wl(16, 10.0, 1.0);
        let spec =
            FaultSpec::parse("seed=5,spike=0.05x4,drop=0.02,dup=0.02,throttle=2000:0.25:0.5")
                .unwrap();
        let run = || {
            let mut sm = Sm::with_faults(&cfg, &wl, 7, &spec);
            sm.run(5_000, 20_000);
            (sm.stats().clone(), sm.fault_counters().unwrap())
        };
        let (sa, ca) = run();
        let (sb, cb) = run();
        assert_eq!(sa, sb);
        assert_eq!(ca, cb);
        assert!(ca.total() > 0, "{ca:?}");
    }

    #[test]
    fn dropped_completions_are_recovered() {
        let cfg = SimConfig::builder().lanes(4.0).dram(200, 64.0).build();
        let wl = stream_wl(8, 10.0, 1.0);
        let spec = FaultSpec::parse("seed=11,drop=0.05").unwrap();
        let mut sm = Sm::with_faults(&cfg, &wl, 3, &spec);
        sm.run(0, 200_000);
        let drops = sm.fault_counters().unwrap().drops;
        assert!(drops > 0, "no drops injected");
        assert!(
            sm.stats().lost_recovered > 0,
            "drops = {drops} but nothing recovered"
        );
        // The run keeps making progress despite every drop.
        assert!(sm.stats().requests_completed > 1_000);
        // Whatever is still outstanding is bounded by the in-flight set.
        assert!(sm.outstanding_requests() <= wl.warps as usize);
    }

    #[test]
    fn duplicated_completions_are_absorbed() {
        let cfg = SimConfig::builder()
            .lanes(4.0)
            .dram(200, 64.0)
            .l1(16 * 1024, 20, 16)
            .build();
        let wl = stream_wl(8, 10.0, 1.0);
        let spec = FaultSpec::parse("seed=11,dup=0.2").unwrap();
        let mut sm = Sm::with_faults(&cfg, &wl, 3, &spec);
        sm.run(0, 50_000);
        assert!(sm.fault_counters().unwrap().dups > 0);
        assert!(sm.stats().spurious_wakes > 0);
        assert!(sm.stats().requests_completed > 100);
    }

    #[test]
    fn watchdog_converts_hang_to_typed_error() {
        // Drop every completion with no L2: no request ever completes.
        let cfg = SimConfig::builder().lanes(4.0).dram(200, 64.0).build();
        let wl = stream_wl(8, 5.0, 1.0);
        let spec = FaultSpec::parse("seed=1,drop=1").unwrap();
        let mut sm = Sm::with_faults(&cfg, &wl, 3, &spec);
        let watchdog = crate::error::Watchdog {
            stall_cycles: 20_000,
            ..Default::default()
        };
        let err = sm.run_watched(0, 10_000_000, &watchdog).unwrap_err();
        assert!(
            matches!(err, SimError::Watchdog { .. }),
            "expected watchdog, got {err:?}"
        );
    }

    #[test]
    fn run_watched_matches_run_when_within_budget() {
        let cfg = SimConfig::builder().lanes(4.0).dram(400, 8.0).build();
        let wl = stream_wl(16, 10.0, 1.0);
        let mut a = Sm::new(&cfg, &wl, 7);
        a.run(2_000, 8_000);
        let mut b = Sm::new(&cfg, &wl, 7);
        b.run_watched(2_000, 8_000, &Watchdog::default()).unwrap();
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn trajectory_sampling() {
        let cfg = SimConfig::builder().lanes(4.0).dram(400, 8.0).build();
        let wl = stream_wl(8, 10.0, 1.0);
        let mut sm = Sm::new(&cfg, &wl, 3);
        sm.trajectory_interval = 100;
        sm.run(0, 1_000);
        assert!(sm.stats().trajectory.len() >= 9);
    }
}

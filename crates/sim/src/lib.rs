//! # xmodel-sim — a cycle-level multithreaded-SM simulator
//!
//! The paper measures its claims on real GPUs; this crate is the
//! substitute substrate: a deterministic, cycle-stepped simulator of one
//! streaming multiprocessor with
//!
//! * a **computation system** — `M` warp-ops/cycle of lane capacity, a
//!   round-robin dual-issue scheduler honouring each warp's ILP width;
//! * a **memory system** — optional set-associative LRU L1 with a finite
//!   MSHR file, load/store-unit issue limits, and a DRAM model with fixed
//!   service latency plus a bandwidth token bucket;
//! * per-warp **address streams** from `xmodel-workloads`;
//! * counters for exactly the observables the paper reads off hardware
//!   (MS GB/s, CS ops/s, hit rates) *plus* the one thing hardware hides:
//!   the instantaneous spatial state `(x, k)` — how many warps sit in CS
//!   vs MS — which is what the X-model predicts.
//!
//! The simulator intentionally includes second-order effects the analytic
//! model abstracts away (MSHR exhaustion, issue-port contention, discrete
//! line granularity) so that model-vs-simulator comparisons are meaningful
//! validation rather than tautology.
//!
//! ```
//! use xmodel_sim::prelude::*;
//! use xmodel_workloads::TraceSpec;
//!
//! let cfg = SimConfig::builder()
//!     .lanes(6.0)
//!     .dram(600, 12.8)
//!     .l1(16 * 1024, 30, 32)
//!     .build();
//! let wl = SimWorkload {
//!     trace: TraceSpec::Stream { region_lines: 1 << 20 },
//!     ops_per_request: 10.0,
//!     ilp: 1.5,
//!     warps: 32,
//! };
//! let stats = simulate(&cfg, &wl, 20_000, 5_000);
//! assert!(stats.ms_throughput() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod chip;
pub mod config;
pub mod dram;
pub mod error;
pub mod exec;
pub mod fault;
pub(crate) mod probe;
pub mod sm;
pub mod stats;

pub use chip::{simulate_chip, ChipSim};
pub use config::{CacheConfig, DramConfig, SimConfig, SimConfigBuilder, SimWorkload};
pub use error::{SimError, Watchdog};
pub use exec::{simulate_ir, IrSm};
pub use fault::{FaultCounters, FaultInjector, FaultSpec, SolverFault};
pub use sm::{simulate, simulate_with_seed, Sm};
pub use stats::SimStats;

/// Glob import of the common types.
pub mod prelude {
    pub use crate::chip::{simulate_chip, ChipSim};
    pub use crate::config::{CacheConfig, DramConfig, SimConfig, SimWorkload};
    pub use crate::error::{SimError, Watchdog};
    pub use crate::exec::{simulate_ir, IrSm};
    pub use crate::fault::{FaultCounters, FaultSpec, SolverFault};
    pub use crate::sm::{simulate, simulate_with_seed, Sm};
    pub use crate::stats::SimStats;
}

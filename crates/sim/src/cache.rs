//! Set-associative LRU cache with a finite MSHR file.

use crate::config::CacheConfig;

/// Result of a cache access attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present; data after the hit latency.
    Hit,
    /// Line absent; a new MSHR was allocated — caller must send the fill
    /// request to memory.
    MissAllocated {
        /// Index of the allocated MSHR (used to complete the fill).
        mshr: usize,
    },
    /// Line absent but a fill is already outstanding; the request was
    /// merged onto that MSHR and will complete with it.
    MissMerged {
        /// Index of the MSHR the request merged onto.
        mshr: usize,
    },
    /// No MSHR available: the request must retry later (the resource
    /// contention §VI blames for persistent thrashing).
    MshrFull,
}

#[derive(Debug, Clone)]
struct Way {
    line: u64,
    last_use: u64,
    valid: bool,
}

/// One MSHR entry: an outstanding line fill plus merged waiters.
#[derive(Debug, Clone)]
pub struct Mshr {
    /// Line address being filled.
    pub line: u64,
    /// Warp ids waiting on this fill (primary first).
    pub waiters: Vec<u32>,
    /// Busy flag.
    pub busy: bool,
}

/// The L1 model.
#[derive(Debug)]
pub struct L1Cache {
    cfg: CacheConfig,
    sets: usize,
    ways: Vec<Way>,
    mshrs: Vec<Mshr>,
    tick: u64,
    hits: u64,
    misses: u64,
    merges: u64,
    mshr_stalls: u64,
}

impl L1Cache {
    /// Build from a configuration.
    pub fn new(cfg: CacheConfig) -> Self {
        let lines = (cfg.capacity_bytes / cfg.line_bytes).max(1);
        let ways = cfg.ways.max(1) as u64;
        let sets = (lines / ways).max(1) as usize;
        Self {
            cfg,
            sets,
            ways: vec![
                Way {
                    line: 0,
                    last_use: 0,
                    valid: false
                };
                sets * ways as usize
            ],
            mshrs: vec![
                Mshr {
                    line: 0,
                    waiters: Vec::new(),
                    busy: false
                };
                cfg.mshrs as usize
            ],
            tick: 0,
            hits: 0,
            misses: 0,
            merges: 0,
            mshr_stalls: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line as usize) % self.sets
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        let w = self.cfg.ways as usize;
        set * w..(set + 1) * w
    }

    /// Attempt an access by `warp` to a byte address.
    pub fn access(&mut self, addr: u64, warp: u32) -> Access {
        self.tick += 1;
        let line = addr / self.cfg.line_bytes;
        let set = self.set_of(line);
        let range = self.slot_range(set);

        // Hit path.
        for i in range {
            if self.ways[i].valid && self.ways[i].line == line {
                self.ways[i].last_use = self.tick;
                self.hits += 1;
                return Access::Hit;
            }
        }

        // Merge onto an outstanding fill if one exists.
        if let Some((i, m)) = self
            .mshrs
            .iter_mut()
            .enumerate()
            .find(|(_, m)| m.busy && m.line == line)
        {
            m.waiters.push(warp);
            self.merges += 1;
            return Access::MissMerged { mshr: i };
        }

        // Allocate a fresh MSHR.
        match self.mshrs.iter_mut().enumerate().find(|(_, m)| !m.busy) {
            Some((i, m)) => {
                m.busy = true;
                m.line = line;
                m.waiters.clear();
                m.waiters.push(warp);
                self.misses += 1;
                Access::MissAllocated { mshr: i }
            }
            None => {
                self.mshr_stalls += 1;
                Access::MshrFull
            }
        }
    }

    /// Complete the fill on `mshr`: install the line (LRU eviction) and
    /// return the waiter list.
    pub fn complete_fill(&mut self, mshr: usize) -> Vec<u32> {
        assert!(self.mshrs[mshr].busy, "completing idle MSHR {mshr}");
        let line = self.mshrs[mshr].line;
        let set = self.set_of(line);
        self.tick += 1;

        // Install unless already present (another path filled it).
        let range = self.slot_range(set);
        let mut victim = range.start;
        let mut found = false;
        for i in range {
            if self.ways[i].valid && self.ways[i].line == line {
                found = true;
                break;
            }
            if !self.ways[i].valid {
                victim = i;
                found = false;
                break;
            }
            if self.ways[i].last_use < self.ways[victim].last_use {
                victim = i;
            }
        }
        if !found {
            self.ways[victim] = Way {
                line,
                last_use: self.tick,
                valid: true,
            };
        }

        let m = &mut self.mshrs[mshr];
        m.busy = false;
        std::mem::take(&mut m.waiters)
    }

    /// Duplicate-safe variant of [`L1Cache::complete_fill`]: a completion
    /// for an idle or out-of-range MSHR (a duplicated or stale fill under
    /// fault injection) is absorbed as `None` instead of panicking.
    pub fn try_complete_fill(&mut self, mshr: usize) -> Option<Vec<u32>> {
        match self.mshrs.get(mshr) {
            Some(m) if m.busy => Some(self.complete_fill(mshr)),
            _ => None,
        }
    }

    /// Number of MSHRs currently busy.
    pub fn mshrs_busy(&self) -> usize {
        self.mshrs.iter().filter(|m| m.busy).count()
    }

    /// Hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.merges;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// `(hits, misses, merges, mshr_stalls)` counters.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (self.hits, self.misses, self.merges, self.mshr_stalls)
    }
}

/// A plain set-associative LRU cache without MSHR bookkeeping — the L2
/// model (lookups are immediate; bandwidth and latency are handled by the
/// channel in front of it).
#[derive(Debug)]
pub struct SimpleCache {
    line_bytes: u64,
    sets: usize,
    ways_per_set: usize,
    ways: Vec<Way>,
    tick: u64,
}

impl SimpleCache {
    /// Build with a capacity in bytes (128-byte lines, 16-way).
    pub fn new(capacity_bytes: u64, line_bytes: u64) -> Self {
        let lines = (capacity_bytes / line_bytes).max(1);
        let ways_per_set = 16usize.min(lines as usize);
        let sets = (lines as usize / ways_per_set).max(1);
        Self {
            line_bytes,
            sets,
            ways_per_set,
            ways: vec![
                Way {
                    line: 0,
                    last_use: 0,
                    valid: false
                };
                sets * ways_per_set
            ],
            tick: 0,
        }
    }

    /// Probe for a byte address; on hit, refresh recency and return `true`;
    /// on miss, install the line (LRU eviction) and return `false`.
    pub fn probe_insert(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line as usize) % self.sets;
        self.tick += 1;
        let range = set * self.ways_per_set..(set + 1) * self.ways_per_set;
        let mut victim = range.start;
        for i in range {
            if self.ways[i].valid && self.ways[i].line == line {
                self.ways[i].last_use = self.tick;
                return true;
            }
            if !self.ways[i].valid
                || (self.ways[victim].valid && self.ways[i].last_use < self.ways[victim].last_use)
            {
                victim = i;
            }
        }
        self.ways[victim] = Way {
            line,
            last_use: self.tick,
            valid: true,
        };
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: u64, ways: u32, mshrs: u32) -> CacheConfig {
        CacheConfig {
            capacity_bytes: capacity,
            line_bytes: 128,
            ways,
            hit_latency: 20,
            mshrs,
        }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = L1Cache::new(cfg(1024, 2, 4));
        let r = c.access(0, 0);
        let Access::MissAllocated { mshr } = r else {
            panic!("expected fresh miss, got {r:?}")
        };
        let waiters = c.complete_fill(mshr);
        assert_eq!(waiters, vec![0]);
        assert_eq!(c.access(0, 1), Access::Hit);
        assert_eq!(c.access(64, 1), Access::Hit, "same 128B line");
    }

    #[test]
    fn secondary_miss_merges() {
        let mut c = L1Cache::new(cfg(1024, 2, 4));
        let Access::MissAllocated { mshr } = c.access(0, 0) else {
            panic!()
        };
        assert_eq!(c.access(0, 1), Access::MissMerged { mshr });
        assert_eq!(c.access(64, 2), Access::MissMerged { mshr });
        let waiters = c.complete_fill(mshr);
        assert_eq!(waiters, vec![0, 1, 2]);
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let mut c = L1Cache::new(cfg(4096, 4, 2));
        assert!(matches!(c.access(0, 0), Access::MissAllocated { .. }));
        assert!(matches!(c.access(128, 1), Access::MissAllocated { .. }));
        assert_eq!(c.access(256, 2), Access::MshrFull);
        assert_eq!(c.counters().3, 1);
    }

    #[test]
    fn lru_evicts_least_recent_within_set() {
        // Direct-mapped-ish: capacity 512B, 2 ways => 2 sets.
        let mut c = L1Cache::new(cfg(512, 2, 8));
        // Lines 0, 2, 4 all map to set 0 (line % 2 == 0).
        for line in [0u64, 2, 4] {
            if let Access::MissAllocated { mshr } = c.access(line * 128, 0) {
                c.complete_fill(mshr);
            }
        }
        // Line 0 was LRU and must be evicted; 2 and 4 remain.
        assert!(matches!(c.access(0, 0), Access::MissAllocated { .. }));
        assert_eq!(c.access(2 * 128, 0), Access::Hit);
        assert_eq!(c.access(4 * 128, 0), Access::Hit);
    }

    #[test]
    fn hit_rate_counts() {
        let mut c = L1Cache::new(cfg(1024, 2, 4));
        let Access::MissAllocated { mshr } = c.access(0, 0) else {
            panic!()
        };
        c.complete_fill(mshr);
        c.access(0, 0);
        c.access(0, 0);
        // 2 hits / (2 hits + 1 miss).
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn simple_cache_probe_insert_and_lru() {
        let mut c = SimpleCache::new(2 * 128, 128);
        assert!(!c.probe_insert(0));
        assert!(c.probe_insert(0));
        assert!(!c.probe_insert(128));
        // Capacity 2, 2 ways, 1 set: inserting a third evicts the LRU (0
        // was refreshed, so 128 goes).
        assert!(c.probe_insert(0));
        assert!(!c.probe_insert(256));
        assert!(c.probe_insert(0));
        assert!(!c.probe_insert(128));
    }

    #[test]
    fn simple_cache_respects_capacity() {
        let mut c = SimpleCache::new(64 * 128, 128);
        for i in 0..64u64 {
            c.probe_insert(i * 128);
        }
        // Second pass: everything resident.
        for i in 0..64u64 {
            assert!(c.probe_insert(i * 128), "line {i} missing");
        }
        // Stream far past capacity, then the original lines are gone.
        for i in 64..256u64 {
            c.probe_insert(i * 128);
        }
        assert!(!c.probe_insert(0));
    }

    #[test]
    fn try_complete_fill_absorbs_duplicates_and_stale_tags() {
        let mut c = L1Cache::new(cfg(1024, 2, 4));
        let Access::MissAllocated { mshr } = c.access(0, 0) else {
            panic!()
        };
        assert_eq!(c.try_complete_fill(mshr), Some(vec![0]));
        // Second (duplicated) completion: absorbed, not a panic.
        assert_eq!(c.try_complete_fill(mshr), None);
        // Out-of-range tag: absorbed.
        assert_eq!(c.try_complete_fill(999), None);
    }

    #[test]
    fn fill_does_not_duplicate_present_line() {
        let mut c = L1Cache::new(cfg(512, 2, 8));
        let Access::MissAllocated { mshr: m1 } = c.access(0, 0) else {
            panic!()
        };
        c.complete_fill(m1);
        // New miss on a different line mapping to the same set, then a
        // re-fill of line 0 via a racing MSHR must not evict anything
        // erroneously — just reuse the present line.
        let Access::MissAllocated { mshr: m2 } = c.access(2 * 128, 0) else {
            panic!()
        };
        c.complete_fill(m2);
        assert_eq!(c.access(0, 0), Access::Hit);
        assert_eq!(c.access(2 * 128, 0), Access::Hit);
    }
}

//! Write side of the `xmodel-simtrace/1` timeline probes.
//!
//! Both simulators ([`crate::sm::Sm`] and [`crate::exec::IrSm`]) sample
//! their warp-state occupancy and memory-subsystem depth once per
//! snapshot interval while measuring. This module turns those samples
//! into `sim.probe` / `sim.probe_header` trace events plus the
//! registered `sim.*` metrics, and owns the only mutable probe state —
//! a cursor of previously sampled counters used to emit per-interval
//! deltas.
//!
//! Determinism contract: everything here *reads* simulator state. The
//! cursor is written only from inside `xmodel_obs::enabled()` blocks and
//! is never consulted by the simulation path, so enabling tracing cannot
//! perturb results (`crates/sim/tests/determinism.rs` pins this).

use crate::stats::{ProbeCounters, SimStats};

/// Static per-run context stamped on the (lazily emitted) header frame.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HeaderCtx {
    /// SM index (0 for single-SM runs; set by the chip driver).
    pub sm: u16,
    /// Cycles between probe frames.
    pub interval: u64,
    /// Resident warps `n`.
    pub warps: u32,
    /// RNG seed the SM was built with.
    pub seed: u64,
    /// Compute intensity `z` (warp-ops per request).
    pub z: f64,
    /// ILP width `e`.
    pub e: f64,
}

/// Instantaneous warp-state occupancy and memory-depth sample.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StateSample {
    /// Measured cycle index of this frame.
    pub cycle: u64,
    /// Warps executing in CS.
    pub computing: u32,
    /// Warps holding a ready request not yet accepted by the LSU.
    pub queued: u32,
    /// Warps with a request in flight.
    pub waiting: u32,
    /// Warps rejected for MSHR exhaustion (retrying).
    pub stalled: u32,
    /// Warps counted in MS — matches the `sum_k` accounting exactly.
    pub k: u32,
    /// Requests currently in flight in the DRAM model.
    pub dram_inflight: usize,
    /// Cycles until the DRAM channel frees (bandwidth backlog).
    pub dram_backlog: u64,
}

/// Per-SM probe cursor: lazily emits the header, then differences the
/// monotone counters between frames.
#[derive(Debug, Clone, Default)]
pub(crate) struct ProbeCursor {
    header_emitted: bool,
    prev: ProbeCounters,
}

impl ProbeCursor {
    /// Emit one probe frame (and, on the first call, the header). Call
    /// only under `xmodel_obs::enabled()` while measuring.
    pub(crate) fn emit(&mut self, header: &HeaderCtx, state: &StateSample, stats: &SimStats) {
        use xmodel_obs::names::metric;
        if !self.header_emitted {
            self.header_emitted = true;
            xmodel_obs::event!(
                "sim.probe_header",
                schema = xmodel_obs::simtrace::SCHEMA,
                sm = header.sm,
                interval = header.interval,
                warps = header.warps,
                seed = header.seed,
                z = header.z,
                e = header.e,
            );
        }
        let now = stats.probe_counters();
        let d = now.delta(&self.prev);
        self.prev = now;
        xmodel_obs::event!(
            "sim.probe",
            cycle = state.cycle,
            sm = header.sm,
            computing = state.computing,
            queued = state.queued,
            waiting = state.waiting,
            stalled = state.stalled,
            k = state.k,
            dram_inflight = state.dram_inflight as u64,
            dram_backlog = state.dram_backlog,
            d_cycles = d.cycles,
            d_ops = d.ops,
            d_requests = d.requests,
            d_hits = d.hits,
            d_misses = d.misses,
            d_merges = d.merges,
            d_mshr_stalls = d.mshr_stalls,
            hit_rate = stats.hit_rate(),
        );
        xmodel_obs::metrics::counter_add(metric::SIM_PROBE_FRAMES, 1);
        if d.mshr_stalls > 0 {
            xmodel_obs::metrics::counter_add(metric::SIM_MSHR_STALLS, d.mshr_stalls);
        }
        xmodel_obs::metrics::histogram_observe(
            metric::SIM_DRAM_INFLIGHT,
            &xmodel_obs::simtrace::QUEUE_DEPTH_EDGES,
            state.dram_inflight as f64,
        );
        xmodel_obs::metrics::histogram_observe(
            metric::SIM_DRAM_BACKLOG,
            &xmodel_obs::simtrace::QUEUE_DEPTH_EDGES,
            state.dram_backlog as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_differences_counters_and_emits_header_once() {
        let sink = xmodel_obs::MemSink::new();
        xmodel_obs::install(Box::new(sink.clone()));
        let mut cursor = ProbeCursor::default();
        let header = HeaderCtx {
            sm: 3,
            interval: 256,
            warps: 8,
            seed: 42,
            z: 10.0,
            e: 1.5,
        };
        let mut stats = SimStats::new(8);
        stats.cycles = 256;
        stats.ops_retired = 100.0;
        stats.requests_completed = 10;
        let state = StateSample {
            cycle: 256,
            computing: 5,
            queued: 1,
            waiting: 2,
            stalled: 0,
            k: 3,
            dram_inflight: 4,
            dram_backlog: 7,
        };
        cursor.emit(&header, &state, &stats);
        stats.cycles = 512;
        stats.ops_retired = 180.0;
        stats.requests_completed = 19;
        cursor.emit(&header, &state, &stats);
        let lines = sink.lines();
        xmodel_obs::finish(None);
        // The sink is process-global and other tests may simulate while
        // it is installed; key every assertion on this test's sm id.
        let headers: Vec<_> = lines
            .iter()
            .filter(|l| l.contains("\"kind\":\"sim.probe_header\"") && l.contains("\"sm\":3"))
            .collect();
        assert_eq!(headers.len(), 1, "header emitted exactly once");
        assert!(headers[0].contains("xmodel-simtrace/1"));
        let frames: Vec<_> = lines
            .iter()
            .filter(|l| l.contains("\"kind\":\"sim.probe\"") && l.contains("\"sm\":3"))
            .collect();
        assert_eq!(frames.len(), 2);
        // First frame deltas are totals since measuring started; the
        // second differences against the first sample.
        assert!(frames[0].contains("\"d_requests\":10"));
        assert!(frames[1].contains("\"d_requests\":9"));
        assert!(frames[1].contains("\"d_cycles\":256"));
    }
}

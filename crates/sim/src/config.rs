//! Simulator configuration.

use serde::{Deserialize, Serialize};
use xmodel_workloads::TraceSpec;

/// DRAM (off-chip memory) model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Service latency per request in cycles (unloaded).
    pub latency: u64,
    /// Sustained bandwidth in bytes per cycle (per SM share).
    pub bytes_per_cycle: f64,
}

/// L1 cache model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Miss-status holding registers: outstanding distinct line misses.
    pub mshrs: u32,
}

/// L2 cache stage: a capacity with its own service channel, between L1
/// (or the bypass path) and DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct L2Config {
    /// Capacity in bytes (the SM's share of the chip-wide L2).
    pub capacity_bytes: u64,
    /// Hit service latency in cycles.
    pub latency: u64,
    /// Hit bandwidth in bytes per cycle (per SM share; typically several
    /// times the DRAM share — this is why bypassing L1 to L2 pays off).
    pub bytes_per_cycle: f64,
}

/// Full SM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// CS lane capacity in warp-ops per cycle (`M`).
    pub lanes: f64,
    /// Maximum warps the scheduler can select per cycle.
    pub issue_width: u32,
    /// Warp memory requests accepted per cycle by the LSU.
    pub lsu_per_cycle: u32,
    /// L1 cache; `None` disables it (all requests go to L2/DRAM).
    pub l1: Option<CacheConfig>,
    /// L2 stage; `None` sends L1 misses and bypasses straight to DRAM.
    pub l2: Option<L2Config>,
    /// DRAM model.
    pub dram: DramConfig,
    /// Fraction of warps that bypass L1 for the next memory level
    /// (cache-bypassing of §VI). Warps with the highest ids bypass.
    pub bypass_fraction: f64,
    /// Bytes one warp request moves through the memory channels. 128 for a
    /// fully-coalesced 4-byte access; larger for uncoalesced patterns that
    /// split into several transactions (the coalescing effect §V names as
    /// the model's main accuracy limiter).
    pub request_bytes: f64,
}

impl SimConfig {
    /// Start building a configuration with reasonable defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig {
                lanes: 1.0,
                issue_width: 4,
                lsu_per_cycle: 2,
                l1: None,
                l2: None,
                dram: DramConfig {
                    latency: 500,
                    bytes_per_cycle: 8.0,
                },
                bypass_fraction: 0.0,
                request_bytes: 128.0,
            },
        }
    }
}

/// Fluent builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Set CS lane capacity (`M`, warp-ops/cycle).
    #[must_use]
    pub fn lanes(mut self, m: f64) -> Self {
        assert!(m > 0.0);
        self.cfg.lanes = m;
        self
    }

    /// Set scheduler issue width (warps selected per cycle).
    #[must_use]
    pub fn issue_width(mut self, w: u32) -> Self {
        assert!(w >= 1);
        self.cfg.issue_width = w;
        self
    }

    /// Set LSU throughput (warp requests accepted per cycle).
    #[must_use]
    pub fn lsu(mut self, per_cycle: u32) -> Self {
        assert!(per_cycle >= 1);
        self.cfg.lsu_per_cycle = per_cycle;
        self
    }

    /// Set DRAM latency (cycles) and bandwidth (bytes/cycle).
    #[must_use]
    pub fn dram(mut self, latency: u64, bytes_per_cycle: f64) -> Self {
        assert!(latency >= 1 && bytes_per_cycle > 0.0);
        self.cfg.dram = DramConfig {
            latency,
            bytes_per_cycle,
        };
        self
    }

    /// Enable an L1 cache with capacity, hit latency and MSHR count
    /// (128-byte lines, 8-way by default).
    #[must_use]
    pub fn l1(mut self, capacity_bytes: u64, hit_latency: u64, mshrs: u32) -> Self {
        assert!(capacity_bytes >= 128 && hit_latency >= 1 && mshrs >= 1);
        self.cfg.l1 = Some(CacheConfig {
            capacity_bytes,
            line_bytes: 128,
            ways: 8,
            hit_latency,
            mshrs,
        });
        self
    }

    /// Remove the L1 (the Fig. 18 "disable L1" configuration).
    #[must_use]
    pub fn no_l1(mut self) -> Self {
        self.cfg.l1 = None;
        self
    }

    /// Enable an L2 stage with capacity, latency and bandwidth.
    #[must_use]
    pub fn l2(mut self, capacity_bytes: u64, latency: u64, bytes_per_cycle: f64) -> Self {
        assert!(capacity_bytes >= 128 && latency >= 1 && bytes_per_cycle > 0.0);
        self.cfg.l2 = Some(L2Config {
            capacity_bytes,
            latency,
            bytes_per_cycle,
        });
        self
    }

    /// Set the bytes each warp request moves (coalescing factor × 128).
    #[must_use]
    pub fn request_bytes(mut self, bytes: f64) -> Self {
        assert!(bytes >= 1.0);
        self.cfg.request_bytes = bytes;
        self
    }

    /// Set the bypass fraction (cache-bypassing of §VI).
    #[must_use]
    pub fn bypass(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        self.cfg.bypass_fraction = fraction;
        self
    }

    /// Finish.
    pub fn build(self) -> SimConfig {
        self.cfg
    }
}

/// The workload the SM executes: an address stream plus the per-warp
/// compute quantum between requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimWorkload {
    /// Per-warp memory access pattern.
    pub trace: TraceSpec,
    /// Average warp-instructions executed between two memory requests
    /// (the workload's `Z`).
    pub ops_per_request: f64,
    /// ILP degree: warp-ops the warp can retire per selected cycle (`E`).
    pub ilp: f64,
    /// Resident warps (`n`).
    pub warps: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let cfg = SimConfig::builder()
            .lanes(6.0)
            .issue_width(4)
            .lsu(2)
            .dram(600, 13.7)
            .l1(16 * 1024, 30, 32)
            .l2(128 * 1024, 120, 40.0)
            .bypass(0.25)
            .build();
        assert_eq!(cfg.lanes, 6.0);
        assert_eq!(cfg.dram.latency, 600);
        let l1 = cfg.l1.unwrap();
        assert_eq!(l1.capacity_bytes, 16 * 1024);
        assert_eq!(l1.line_bytes, 128);
        assert_eq!(cfg.bypass_fraction, 0.25);
        assert_eq!(cfg.request_bytes, 128.0);
        let c2 = SimConfig::builder().request_bytes(384.0).build();
        assert_eq!(c2.request_bytes, 384.0);
        let l2 = cfg.l2.unwrap();
        assert_eq!(l2.capacity_bytes, 128 * 1024);
        assert_eq!(l2.latency, 120);
    }

    #[test]
    fn no_l1_clears_cache() {
        let cfg = SimConfig::builder().l1(16 * 1024, 30, 32).no_l1().build();
        assert!(cfg.l1.is_none());
    }

    #[test]
    #[should_panic]
    fn rejects_zero_lanes() {
        let _ = SimConfig::builder().lanes(0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_bypass() {
        let _ = SimConfig::builder().bypass(1.5);
    }
}

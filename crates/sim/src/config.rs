//! Simulator configuration.

use crate::error::SimError;
use serde::{Deserialize, Serialize};
use xmodel_workloads::TraceSpec;

/// DRAM (off-chip memory) model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Service latency per request in cycles (unloaded).
    pub latency: u64,
    /// Sustained bandwidth in bytes per cycle (per SM share).
    pub bytes_per_cycle: f64,
}

/// L1 cache model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Miss-status holding registers: outstanding distinct line misses.
    pub mshrs: u32,
}

/// L2 cache stage: a capacity with its own service channel, between L1
/// (or the bypass path) and DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct L2Config {
    /// Capacity in bytes (the SM's share of the chip-wide L2).
    pub capacity_bytes: u64,
    /// Hit service latency in cycles.
    pub latency: u64,
    /// Hit bandwidth in bytes per cycle (per SM share; typically several
    /// times the DRAM share — this is why bypassing L1 to L2 pays off).
    pub bytes_per_cycle: f64,
}

/// Full SM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// CS lane capacity in warp-ops per cycle (`M`).
    pub lanes: f64,
    /// Maximum warps the scheduler can select per cycle.
    pub issue_width: u32,
    /// Warp memory requests accepted per cycle by the LSU.
    pub lsu_per_cycle: u32,
    /// L1 cache; `None` disables it (all requests go to L2/DRAM).
    pub l1: Option<CacheConfig>,
    /// L2 stage; `None` sends L1 misses and bypasses straight to DRAM.
    pub l2: Option<L2Config>,
    /// DRAM model.
    pub dram: DramConfig,
    /// Fraction of warps that bypass L1 for the next memory level
    /// (cache-bypassing of §VI). Warps with the highest ids bypass.
    pub bypass_fraction: f64,
    /// Bytes one warp request moves through the memory channels. 128 for a
    /// fully-coalesced 4-byte access; larger for uncoalesced patterns that
    /// split into several transactions (the coalescing effect §V names as
    /// the model's main accuracy limiter).
    pub request_bytes: f64,
}

impl SimConfig {
    /// Start building a configuration with reasonable defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig {
                lanes: 1.0,
                issue_width: 4,
                lsu_per_cycle: 2,
                l1: None,
                l2: None,
                dram: DramConfig {
                    latency: 500,
                    bytes_per_cycle: 8.0,
                },
                bypass_fraction: 0.0,
                request_bytes: 128.0,
            },
        }
    }
}

/// Fluent builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Set CS lane capacity (`M`, warp-ops/cycle).
    #[must_use]
    pub fn lanes(mut self, m: f64) -> Self {
        self.cfg.lanes = m;
        self
    }

    /// Set scheduler issue width (warps selected per cycle).
    #[must_use]
    pub fn issue_width(mut self, w: u32) -> Self {
        self.cfg.issue_width = w;
        self
    }

    /// Set LSU throughput (warp requests accepted per cycle).
    #[must_use]
    pub fn lsu(mut self, per_cycle: u32) -> Self {
        self.cfg.lsu_per_cycle = per_cycle;
        self
    }

    /// Set DRAM latency (cycles) and bandwidth (bytes/cycle).
    #[must_use]
    pub fn dram(mut self, latency: u64, bytes_per_cycle: f64) -> Self {
        self.cfg.dram = DramConfig {
            latency,
            bytes_per_cycle,
        };
        self
    }

    /// Enable an L1 cache with capacity, hit latency and MSHR count
    /// (128-byte lines, 8-way by default).
    #[must_use]
    pub fn l1(mut self, capacity_bytes: u64, hit_latency: u64, mshrs: u32) -> Self {
        self.cfg.l1 = Some(CacheConfig {
            capacity_bytes,
            line_bytes: 128,
            ways: 8,
            hit_latency,
            mshrs,
        });
        self
    }

    /// Remove the L1 (the Fig. 18 "disable L1" configuration).
    #[must_use]
    pub fn no_l1(mut self) -> Self {
        self.cfg.l1 = None;
        self
    }

    /// Enable an L2 stage with capacity, latency and bandwidth.
    #[must_use]
    pub fn l2(mut self, capacity_bytes: u64, latency: u64, bytes_per_cycle: f64) -> Self {
        self.cfg.l2 = Some(L2Config {
            capacity_bytes,
            latency,
            bytes_per_cycle,
        });
        self
    }

    /// Set the bytes each warp request moves (coalescing factor × 128).
    #[must_use]
    pub fn request_bytes(mut self, bytes: f64) -> Self {
        self.cfg.request_bytes = bytes;
        self
    }

    /// Set the bypass fraction (cache-bypassing of §VI).
    #[must_use]
    pub fn bypass(mut self, fraction: f64) -> Self {
        self.cfg.bypass_fraction = fraction;
        self
    }

    /// Validate and finish. Every NaN, infinite, or out-of-range value
    /// set on the builder is rejected here with a typed
    /// [`SimError::InvalidParameter`] naming the offending field, so
    /// garbage never propagates into a running simulation.
    pub fn try_build(self) -> Result<SimConfig, SimError> {
        let cfg = self.cfg;
        let bad = |name, value, constraint| {
            Err(SimError::InvalidParameter {
                name,
                value,
                constraint,
            })
        };
        if !cfg.lanes.is_finite() || cfg.lanes <= 0.0 {
            return bad("lanes", cfg.lanes, "finite and > 0");
        }
        if cfg.issue_width < 1 {
            return bad("issue_width", cfg.issue_width as f64, ">= 1");
        }
        if cfg.lsu_per_cycle < 1 {
            return bad("lsu_per_cycle", cfg.lsu_per_cycle as f64, ">= 1");
        }
        if cfg.dram.latency < 1 {
            return bad("dram.latency", cfg.dram.latency as f64, ">= 1");
        }
        if !cfg.dram.bytes_per_cycle.is_finite() || cfg.dram.bytes_per_cycle <= 0.0 {
            return bad(
                "dram.bytes_per_cycle",
                cfg.dram.bytes_per_cycle,
                "finite and > 0",
            );
        }
        if let Some(l1) = cfg.l1 {
            if l1.capacity_bytes < 128 {
                return bad("l1.capacity_bytes", l1.capacity_bytes as f64, ">= 128");
            }
            if l1.hit_latency < 1 {
                return bad("l1.hit_latency", l1.hit_latency as f64, ">= 1");
            }
            if l1.mshrs < 1 {
                return bad("l1.mshrs", l1.mshrs as f64, ">= 1");
            }
        }
        if let Some(l2) = cfg.l2 {
            if l2.capacity_bytes < 128 {
                return bad("l2.capacity_bytes", l2.capacity_bytes as f64, ">= 128");
            }
            if l2.latency < 1 {
                return bad("l2.latency", l2.latency as f64, ">= 1");
            }
            if !l2.bytes_per_cycle.is_finite() || l2.bytes_per_cycle <= 0.0 {
                return bad("l2.bytes_per_cycle", l2.bytes_per_cycle, "finite and > 0");
            }
        }
        if !cfg.bypass_fraction.is_finite() || !(0.0..=1.0).contains(&cfg.bypass_fraction) {
            return bad("bypass_fraction", cfg.bypass_fraction, "within [0, 1]");
        }
        if !cfg.request_bytes.is_finite() || cfg.request_bytes < 1.0 {
            return bad("request_bytes", cfg.request_bytes, "finite and >= 1");
        }
        Ok(cfg)
    }

    /// Finish, panicking on invalid values (documented invariant — use
    /// [`SimConfigBuilder::try_build`] to handle errors).
    pub fn build(self) -> SimConfig {
        match self.try_build() {
            Ok(cfg) => cfg,
            // xlint: allow(no-panic-in-lib, documented panicking builder; try_build is the fallible form)
            Err(e) => panic!("invalid simulator configuration: {e}"),
        }
    }
}

impl SimWorkload {
    /// Validate the workload: NaN, infinite (except `ops_per_request`,
    /// where `+inf` means pure compute) and non-positive values are
    /// rejected with a typed error.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.warps < 1 {
            return Err(SimError::InvalidParameter {
                name: "warps",
                value: self.warps as f64,
                constraint: ">= 1",
            });
        }
        if self.ops_per_request.is_nan() || self.ops_per_request <= 0.0 {
            return Err(SimError::InvalidParameter {
                name: "ops_per_request",
                value: self.ops_per_request,
                constraint: "> 0 (inf = pure compute)",
            });
        }
        if !self.ilp.is_finite() || self.ilp <= 0.0 {
            return Err(SimError::InvalidParameter {
                name: "ilp",
                value: self.ilp,
                constraint: "finite and > 0",
            });
        }
        Ok(())
    }
}

/// The workload the SM executes: an address stream plus the per-warp
/// compute quantum between requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimWorkload {
    /// Per-warp memory access pattern.
    pub trace: TraceSpec,
    /// Average warp-instructions executed between two memory requests
    /// (the workload's `Z`).
    pub ops_per_request: f64,
    /// ILP degree: warp-ops the warp can retire per selected cycle (`E`).
    pub ilp: f64,
    /// Resident warps (`n`).
    pub warps: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let cfg = SimConfig::builder()
            .lanes(6.0)
            .issue_width(4)
            .lsu(2)
            .dram(600, 13.7)
            .l1(16 * 1024, 30, 32)
            .l2(128 * 1024, 120, 40.0)
            .bypass(0.25)
            .build();
        assert_eq!(cfg.lanes, 6.0);
        assert_eq!(cfg.dram.latency, 600);
        let l1 = cfg.l1.unwrap();
        assert_eq!(l1.capacity_bytes, 16 * 1024);
        assert_eq!(l1.line_bytes, 128);
        assert_eq!(cfg.bypass_fraction, 0.25);
        assert_eq!(cfg.request_bytes, 128.0);
        let c2 = SimConfig::builder().request_bytes(384.0).build();
        assert_eq!(c2.request_bytes, 384.0);
        let l2 = cfg.l2.unwrap();
        assert_eq!(l2.capacity_bytes, 128 * 1024);
        assert_eq!(l2.latency, 120);
    }

    #[test]
    fn no_l1_clears_cache() {
        let cfg = SimConfig::builder().l1(16 * 1024, 30, 32).no_l1().build();
        assert!(cfg.l1.is_none());
    }

    #[test]
    fn rejects_zero_lanes() {
        let err = SimConfig::builder().lanes(0.0).try_build().unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidParameter { name: "lanes", .. }
        ));
    }

    #[test]
    fn rejects_bad_bypass() {
        let err = SimConfig::builder().bypass(1.5).try_build().unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidParameter {
                name: "bypass_fraction",
                ..
            }
        ));
    }

    #[test]
    fn rejects_non_finite_values() {
        for (builder, name) in [
            (SimConfig::builder().lanes(f64::NAN), "lanes"),
            (SimConfig::builder().lanes(f64::INFINITY), "lanes"),
            (
                SimConfig::builder().dram(400, f64::NAN),
                "dram.bytes_per_cycle",
            ),
            (
                SimConfig::builder().request_bytes(f64::INFINITY),
                "request_bytes",
            ),
            (SimConfig::builder().bypass(f64::NAN), "bypass_fraction"),
            (
                SimConfig::builder().l2(1 << 20, 100, -3.0),
                "l2.bytes_per_cycle",
            ),
        ] {
            let err = builder.try_build().unwrap_err();
            let SimError::InvalidParameter { name: got, .. } = err else {
                panic!("wrong variant for {name}")
            };
            assert_eq!(got, name);
        }
    }

    #[test]
    fn rejects_degenerate_integers() {
        assert!(SimConfig::builder().issue_width(0).try_build().is_err());
        assert!(SimConfig::builder().lsu(0).try_build().is_err());
        assert!(SimConfig::builder().dram(0, 8.0).try_build().is_err());
        assert!(SimConfig::builder().l1(64, 20, 32).try_build().is_err());
        assert!(SimConfig::builder().l1(1 << 14, 20, 0).try_build().is_err());
    }

    #[test]
    fn workload_validation() {
        let ok = SimWorkload {
            trace: TraceSpec::Stream { region_lines: 64 },
            ops_per_request: f64::INFINITY,
            ilp: 1.0,
            warps: 4,
        };
        assert!(ok.validate().is_ok());
        let mut bad = ok;
        bad.ops_per_request = f64::NAN;
        assert!(bad.validate().is_err());
        bad = ok;
        bad.ilp = 0.0;
        assert!(bad.validate().is_err());
        bad = ok;
        bad.warps = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid simulator configuration")]
    fn build_panics_on_invalid() {
        let _ = SimConfig::builder().lanes(-1.0).build();
    }
}

//! Heatmaps for two-parameter design-space sweeps.

use crate::axis::Axis;
use crate::svg::SvgDoc;

/// A dense 2-D field with labelled axes.
///
/// ## Example
///
/// ```
/// use xmodel_viz::heatmap::Heatmap;
///
/// let map = Heatmap::evaluate(
///     "z = x*y", "x", "y",
///     (1..=8).map(f64::from).collect(),
///     (1..=4).map(f64::from).collect(),
///     |x, y| x * y,
/// );
/// assert_eq!(map.argmax(), (8.0, 4.0, 32.0));
/// assert!(map.to_svg(320.0, 200.0).contains("<svg"));
/// ```
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Title above the map.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// Column coordinates (len = width).
    pub xs: Vec<f64>,
    /// Row coordinates (len = height).
    pub ys: Vec<f64>,
    /// Row-major values, `values[row * xs.len() + col]`.
    pub values: Vec<f64>,
}

impl Heatmap {
    /// Build from a function evaluated over the grid.
    pub fn evaluate(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        xs: Vec<f64>,
        ys: Vec<f64>,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Self {
        assert!(!xs.is_empty() && !ys.is_empty());
        let mut values = Vec::with_capacity(xs.len() * ys.len());
        for &y in &ys {
            for &x in &xs {
                values.push(f(x, y));
            }
        }
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            xs,
            ys,
            values,
        }
    }

    /// First and last x-axis ticks (0 when the axis is empty).
    fn x_bounds(&self) -> (f64, f64) {
        (
            self.xs.first().copied().unwrap_or(0.0),
            self.xs.last().copied().unwrap_or(0.0),
        )
    }

    /// First and last y-axis ticks (0 when the axis is empty).
    fn y_bounds(&self) -> (f64, f64) {
        (
            self.ys.first().copied().unwrap_or(0.0),
            self.ys.last().copied().unwrap_or(0.0),
        )
    }

    /// `(min, max)` of the finite values (`(0, 1)` when none are finite).
    pub fn range(&self) -> (f64, f64) {
        let finite: Vec<f64> = self
            .values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        if finite.is_empty() {
            return (0.0, 1.0);
        }
        let lo = finite.iter().copied().fold(f64::MAX, f64::min);
        let hi = finite.iter().copied().fold(f64::MIN, f64::max);
        if (hi - lo).abs() < f64::EPSILON {
            (lo, lo + 1.0)
        } else {
            (lo, hi)
        }
    }

    /// Location `(x, y, value)` of the maximum cell.
    pub fn argmax(&self) -> (f64, f64, f64) {
        let mut best = (0usize, f64::MIN);
        for (i, &v) in self.values.iter().enumerate() {
            if v.is_finite() && v > best.1 {
                best = (i, v);
            }
        }
        let (i, v) = best;
        (self.xs[i % self.xs.len()], self.ys[i / self.xs.len()], v)
    }

    /// Render to SVG with a sequential colour scale and a colour bar.
    pub fn to_svg(&self, width: f64, height: f64) -> String {
        let (x0, x1) = self.x_bounds();
        let (y0, y1) = self.y_bounds();
        let (ml, mr, mt, mb) = (56.0, 70.0, 30.0, 46.0);
        let (pw, ph) = (width - ml - mr, height - mt - mb);
        let mut doc = SvgDoc::new(width, height);
        let (lo, hi) = self.range();
        let (w, h) = (self.xs.len(), self.ys.len());
        let (cw, ch) = (pw / w as f64, ph / h as f64);

        for row in 0..h {
            for col in 0..w {
                let v = self.values[row * w + col];
                let color = if v.is_finite() {
                    sequential((v - lo) / (hi - lo))
                } else {
                    "#dddddd".to_string()
                };
                // Row 0 at the bottom (y increases upward).
                let x = ml + col as f64 * cw;
                let y = mt + ph - (row + 1) as f64 * ch;
                doc.rect(x, y, cw + 0.5, ch + 0.5, &color, None);
            }
        }
        doc.rect(ml, mt, pw, ph, "none", Some("#666"));

        // Axis labels at the corners of the grid.
        doc.text(ml, mt + ph + 16.0, &Axis::fmt(x0), 10.0, "start", 0.0);
        doc.text(ml + pw, mt + ph + 16.0, &Axis::fmt(x1), 10.0, "end", 0.0);
        doc.text(ml - 6.0, mt + ph, &Axis::fmt(y0), 10.0, "end", 0.0);
        doc.text(ml - 6.0, mt + 10.0, &Axis::fmt(y1), 10.0, "end", 0.0);
        doc.text(
            width / 2.0,
            height - 8.0,
            &self.x_label,
            11.0,
            "middle",
            0.0,
        );
        doc.text(14.0, mt + ph / 2.0, &self.y_label, 11.0, "middle", -90.0);
        doc.text(width / 2.0, 16.0, &self.title, 13.0, "middle", 0.0);

        // Colour bar.
        let bx = ml + pw + 16.0;
        for i in 0..64 {
            let t = i as f64 / 63.0;
            let y = mt + ph * (1.0 - t) - ph / 64.0;
            doc.rect(bx, y, 14.0, ph / 64.0 + 0.5, &sequential(t), None);
        }
        doc.rect(bx, mt, 14.0, ph, "none", Some("#666"));
        doc.text(bx + 18.0, mt + ph, &Axis::fmt(lo), 9.0, "start", 0.0);
        doc.text(bx + 18.0, mt + 8.0, &Axis::fmt(hi), 9.0, "start", 0.0);
        doc.finish()
    }

    /// ASCII rendering with a 10-glyph ramp.
    pub fn to_ascii(&self) -> String {
        const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let (lo, hi) = self.range();
        let w = self.xs.len();
        let mut out = format!("{}\n", self.title);
        for row in (0..self.ys.len()).rev() {
            out.push_str(&format!("{:>9} |", Axis::fmt(self.ys[row])));
            for col in 0..w {
                let v = self.values[row * w + col];
                let g = if v.is_finite() {
                    let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                    RAMP[(t * 9.0).round() as usize]
                } else {
                    '?'
                };
                out.push(g);
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>9}  {}..{}  ({})\n",
            "",
            Axis::fmt(self.x_bounds().0),
            Axis::fmt(self.x_bounds().1),
            self.x_label
        ));
        out
    }
}

/// Sequential colour scale from deep blue to warm yellow.
fn sequential(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    let r = (20.0 + 215.0 * t) as u8;
    let g = (40.0 + 170.0 * t) as u8;
    let b = (120.0 + 60.0 * (1.0 - t) - 60.0 * t) as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> Heatmap {
        Heatmap::evaluate(
            "t",
            "x",
            "y",
            (0..8).map(|i| i as f64).collect(),
            (0..5).map(|i| i as f64).collect(),
            |x, y| x + 10.0 * y,
        )
    }

    #[test]
    fn evaluate_fills_row_major() {
        let m = map();
        assert_eq!(m.values.len(), 40);
        assert_eq!(m.values[0], 0.0); // (x=0, y=0)
        assert_eq!(m.values[7], 7.0); // (x=7, y=0)
        assert_eq!(m.values[8], 10.0); // (x=0, y=1)
    }

    #[test]
    fn range_and_argmax() {
        let m = map();
        assert_eq!(m.range(), (0.0, 47.0));
        assert_eq!(m.argmax(), (7.0, 4.0, 47.0));
    }

    #[test]
    fn svg_renders_cells_and_colorbar() {
        let svg = map().to_svg(480.0, 320.0);
        assert!(svg.contains("<svg"));
        // 40 cells + frame + colour bar (64) + bar frame + background.
        assert!(svg.matches("<rect").count() >= 40 + 64);
    }

    #[test]
    fn ascii_uses_ramp() {
        let a = map().to_ascii();
        assert!(a.contains('@'), "max glyph present");
        assert!(a.lines().count() >= 7);
    }

    #[test]
    fn degenerate_constant_field() {
        let m = Heatmap::evaluate("c", "x", "y", vec![0.0, 1.0], vec![0.0], |_, _| 3.0);
        let (lo, hi) = m.range();
        assert!(hi > lo);
        let _ = m.to_svg(100.0, 80.0);
    }

    #[test]
    fn nan_cells_are_tolerated() {
        let m = Heatmap::evaluate("n", "x", "y", vec![0.0, 1.0], vec![0.0], |x, _| {
            if x > 0.5 {
                f64::NAN
            } else {
                1.0
            }
        });
        assert!(m.to_ascii().contains('?'));
        let _ = m.to_svg(100.0, 80.0);
    }
}

//! # xmodel-viz — dependency-free SVG and ASCII plotting
//!
//! The X-model is a *visual* analytic model: its deliverable is the
//! X-graph. The Rust plotting ecosystem being thin, this crate implements
//! the small slice of 2-D charting the paper's figures need, with zero
//! dependencies:
//!
//! * [`axis`] — nice-number tick placement and linear mapping;
//! * [`svg`] — a minimal SVG document builder with proper escaping;
//! * [`chart`] — line/scatter/bar charts with dual y-axes, markers and
//!   legends (every figure of the paper is one of these);
//! * [`grid`] — multi-panel composition (Figs. 10 and 11 are grids);
//! * [`ascii`] — terminal rendering for quick looks from the CLI;
//! * [`timeline`] — k(t)/x(t) trajectories reconstructed from
//!   `xmodel-obs` trace files;
//! * [`flame`] — self-time bar rendering for span profiles.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ascii;
pub mod axis;
pub mod chart;
pub mod flame;
pub mod grid;
pub mod heatmap;
pub mod svg;
pub mod timeline;

pub use chart::{Chart, Marker, Series, SeriesKind};
pub use grid::PanelGrid;
pub use heatmap::Heatmap;
pub use timeline::{OccupancyTimeline, Timeline};

/// Categorical palette used across every figure (color-blind friendly).
pub const PALETTE: [&str; 8] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb", "#222222",
];

/// Glob import of the common types.
pub mod prelude {
    pub use crate::ascii::AsciiChart;
    pub use crate::chart::{Chart, Marker, Series, SeriesKind};
    pub use crate::grid::PanelGrid;
    pub use crate::heatmap::Heatmap;
    pub use crate::timeline::{OccupancyTimeline, Timeline};
    pub use crate::PALETTE;
}

//! k(t) timeline reconstructed from `sim.snapshot` trace events.
//!
//! The simulator emits one `sim.snapshot` event per sampling interval
//! while tracing is enabled (`xmodel sim --trace out.jsonl`). This
//! module parses a JSONL trace back into time series — warps in the
//! memory phase `k(t)`, compute phase `x(t)`, MSHR occupancy and L1 hit
//! rate — and renders them as an ASCII chart or an SVG figure. It is the
//! dynamic companion to the static X-graph: where the X-graph shows the
//! fixed points of Eq. (1), the timeline shows the trajectory the
//! simulated SM actually follows between them.

use crate::chart::{Chart, Series};
use crate::prelude::AsciiChart;
use xmodel_obs::json::{parse, JsonValue};

/// Time series extracted from one trace file.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// `(cycle, k)` — warps waiting on memory.
    pub k: Vec<(f64, f64)>,
    /// `(cycle, x)` — warps in the compute phase.
    pub x: Vec<(f64, f64)>,
    /// `(cycle, mshrs_busy)` — occupied miss-status registers.
    pub mshrs: Vec<(f64, f64)>,
    /// `(cycle, hit_rate)` — cumulative L1 hit rate.
    pub hit_rate: Vec<(f64, f64)>,
    /// Snapshot lines seen (`k.len()` unless some were malformed).
    pub snapshots: usize,
}

impl Timeline {
    /// Build a timeline from trace lines, keeping only `sim.snapshot`
    /// events. Malformed lines and other event kinds are skipped.
    pub fn from_lines<'a>(lines: impl Iterator<Item = &'a str>) -> Timeline {
        let mut tl = Timeline::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(v) = parse(line) else { continue };
            if v.get("kind").and_then(JsonValue::as_str) != Some("sim.snapshot") {
                continue;
            }
            let Some(cycle) = v.get("cycle").and_then(JsonValue::as_f64) else {
                continue;
            };
            tl.snapshots += 1;
            let push = |dst: &mut Vec<(f64, f64)>, key: &str| {
                if let Some(y) = v.get(key).and_then(JsonValue::as_f64) {
                    dst.push((cycle, y));
                }
            };
            push(&mut tl.k, "k");
            push(&mut tl.x, "x");
            push(&mut tl.mshrs, "mshrs_busy");
            push(&mut tl.hit_rate, "hit_rate");
        }
        tl
    }

    /// Read a JSONL trace file and build the timeline.
    pub fn from_path(path: &std::path::Path) -> std::io::Result<Timeline> {
        let text = std::fs::read_to_string(path)?;
        Ok(Timeline::from_lines(text.lines()))
    }

    /// True when the trace held no snapshot events.
    pub fn is_empty(&self) -> bool {
        self.snapshots == 0
    }

    /// Terminal rendering: `k(t)` (`*`) and `x(t)` (`o`) on one grid.
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        if self.is_empty() {
            return "timeline: no sim.snapshot events in trace\n".to_string();
        }
        let mut c = AsciiChart::new(
            format!("k(t) [*] and x(t) [o], {} snapshots", self.snapshots),
            width,
            height,
        );
        c.add(&self.k);
        c.add(&self.x);
        c.render()
    }

    /// SVG rendering of the full timeline (k, x, MSHRs; hit rate on the
    /// right axis when present).
    pub fn to_chart(&self) -> Chart {
        let mut chart = Chart::new("Simulated SM trajectory", "cycle", "warps")
            .with(Series::line("k (memory)", self.k.clone(), 0))
            .with(Series::line("x (compute)", self.x.clone(), 1));
        if self.mshrs.iter().any(|&(_, y)| y > 0.0) {
            chart = chart.with(Series::line("MSHRs busy", self.mshrs.clone(), 2).dashed());
        }
        if self.hit_rate.iter().any(|&(_, y)| y > 0.0) {
            chart = chart
                .right_axis("L1 hit rate")
                .with(Series::line("hit rate", self.hit_rate.clone(), 3).on_right_axis());
        }
        chart
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(cycle: u64, k: u64, x: u64) -> String {
        format!(
            "{{\"kind\":\"sim.snapshot\",\"t_us\":1,\"cycle\":{cycle},\"k\":{k},\"x\":{x},\
             \"mshrs_busy\":2,\"dram_inflight\":1,\"dram_backlog\":0,\"hit_rate\":0.5}}"
        )
    }

    #[test]
    fn extracts_snapshot_series() {
        let lines = [
            snapshot(256, 10, 22),
            "{\"kind\":\"solver.result\",\"t_us\":3,\"n\":32}".to_string(),
            snapshot(512, 12, 20),
            "not json at all".to_string(),
        ];
        let tl = Timeline::from_lines(lines.iter().map(String::as_str));
        assert_eq!(tl.snapshots, 2);
        assert_eq!(tl.k, vec![(256.0, 10.0), (512.0, 12.0)]);
        assert_eq!(tl.x, vec![(256.0, 22.0), (512.0, 20.0)]);
        assert_eq!(tl.mshrs.len(), 2);
        assert_eq!(tl.hit_rate, vec![(256.0, 0.5), (512.0, 0.5)]);
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let tl = Timeline::from_lines([].into_iter());
        assert!(tl.is_empty());
        assert!(tl.render_ascii(40, 8).contains("no sim.snapshot"));
    }

    #[test]
    fn ascii_render_has_both_series() {
        let lines: Vec<String> = (1..=32).map(|i| snapshot(i * 256, i, 32 - i)).collect();
        let tl = Timeline::from_lines(lines.iter().map(String::as_str));
        let s = tl.render_ascii(60, 12);
        assert!(s.contains('*') && s.contains('o'));
    }

    #[test]
    fn svg_chart_includes_hit_rate_axis() {
        let lines: Vec<String> = (1..=8).map(|i| snapshot(i * 256, i, 8 - i)).collect();
        let tl = Timeline::from_lines(lines.iter().map(String::as_str));
        let svg = tl.to_chart().to_svg(640.0, 400.0);
        assert!(svg.contains("hit rate"));
        assert!(svg.contains("k (memory)"));
    }
}

//! k(t) timeline reconstructed from `sim.snapshot` trace events.
//!
//! The simulator emits one `sim.snapshot` event per sampling interval
//! while tracing is enabled (`xmodel sim --trace out.jsonl`). This
//! module parses a JSONL trace back into time series — warps in the
//! memory phase `k(t)`, compute phase `x(t)`, MSHR occupancy and L1 hit
//! rate — and renders them as an ASCII chart or an SVG figure. It is the
//! dynamic companion to the static X-graph: where the X-graph shows the
//! fixed points of Eq. (1), the timeline shows the trajectory the
//! simulated SM actually follows between them.

use crate::chart::{Chart, Series};
use crate::prelude::AsciiChart;
use xmodel_obs::json::{parse, JsonValue};

/// Time series extracted from one trace file.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// `(cycle, k)` — warps waiting on memory.
    pub k: Vec<(f64, f64)>,
    /// `(cycle, x)` — warps in the compute phase.
    pub x: Vec<(f64, f64)>,
    /// `(cycle, mshrs_busy)` — occupied miss-status registers.
    pub mshrs: Vec<(f64, f64)>,
    /// `(cycle, hit_rate)` — cumulative L1 hit rate.
    pub hit_rate: Vec<(f64, f64)>,
    /// Snapshot lines seen (`k.len()` unless some were malformed).
    pub snapshots: usize,
}

impl Timeline {
    /// Build a timeline from trace lines, keeping only `sim.snapshot`
    /// events. Malformed lines and other event kinds are skipped.
    pub fn from_lines<'a>(lines: impl Iterator<Item = &'a str>) -> Timeline {
        let mut tl = Timeline::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(v) = parse(line) else { continue };
            if v.get("kind").and_then(JsonValue::as_str) != Some("sim.snapshot") {
                continue;
            }
            let Some(cycle) = v.get("cycle").and_then(JsonValue::as_f64) else {
                continue;
            };
            tl.snapshots += 1;
            let push = |dst: &mut Vec<(f64, f64)>, key: &str| {
                if let Some(y) = v.get(key).and_then(JsonValue::as_f64) {
                    dst.push((cycle, y));
                }
            };
            push(&mut tl.k, "k");
            push(&mut tl.x, "x");
            push(&mut tl.mshrs, "mshrs_busy");
            push(&mut tl.hit_rate, "hit_rate");
        }
        tl
    }

    /// Read a JSONL trace file and build the timeline.
    pub fn from_path(path: &std::path::Path) -> std::io::Result<Timeline> {
        let text = std::fs::read_to_string(path)?;
        Ok(Timeline::from_lines(text.lines()))
    }

    /// True when the trace held no snapshot events.
    pub fn is_empty(&self) -> bool {
        self.snapshots == 0
    }

    /// Terminal rendering: `k(t)` (`*`) and `x(t)` (`o`) on one grid.
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        if self.is_empty() {
            return "timeline: no sim.snapshot events in trace\n".to_string();
        }
        let mut c = AsciiChart::new(
            format!("k(t) [*] and x(t) [o], {} snapshots", self.snapshots),
            width,
            height,
        );
        c.add(&self.k);
        c.add(&self.x);
        c.render()
    }

    /// SVG rendering of the full timeline (k, x, MSHRs; hit rate on the
    /// right axis when present).
    pub fn to_chart(&self) -> Chart {
        let mut chart = Chart::new("Simulated SM trajectory", "cycle", "warps")
            .with(Series::line("k (memory)", self.k.clone(), 0))
            .with(Series::line("x (compute)", self.x.clone(), 1));
        if self.mshrs.iter().any(|&(_, y)| y > 0.0) {
            chart = chart.with(Series::line("MSHRs busy", self.mshrs.clone(), 2).dashed());
        }
        if self.hit_rate.iter().any(|&(_, y)| y > 0.0) {
            chart = chart
                .right_axis("L1 hit rate")
                .with(Series::line("hit rate", self.hit_rate.clone(), 3).on_right_axis());
        }
        chart
    }
}

/// Warp-state occupancy reconstructed from `sim.probe` frames
/// (`xmodel-simtrace/1` — see [`xmodel_obs::simtrace`]).
///
/// Multi-SM traces are summed per cycle, so the series show chip-wide
/// occupancy; use [`xmodel_obs::simtrace::SimTrace::header_for`] and
/// filter frames upstream for a per-SM view.
#[derive(Debug, Clone, Default)]
pub struct OccupancyTimeline {
    /// `(cycle, warps)` executing in CS.
    pub computing: Vec<(f64, f64)>,
    /// `(cycle, warps)` holding a ready request not yet issued.
    pub queued: Vec<(f64, f64)>,
    /// `(cycle, warps)` with a request in flight.
    pub waiting: Vec<(f64, f64)>,
    /// `(cycle, warps)` stalled on MSHR exhaustion.
    pub stalled: Vec<(f64, f64)>,
    /// `(cycle, k)` — warps counted in MS.
    pub k: Vec<(f64, f64)>,
    /// Probe frames consumed (across all SMs).
    pub frames: usize,
}

impl OccupancyTimeline {
    /// Aggregate a parsed simtrace into chip-wide occupancy series.
    pub fn from_trace(trace: &xmodel_obs::simtrace::SimTrace) -> OccupancyTimeline {
        use std::collections::BTreeMap;
        #[derive(Default)]
        struct Acc {
            computing: f64,
            queued: f64,
            waiting: f64,
            stalled: f64,
            k: f64,
        }
        let mut by_cycle: BTreeMap<u64, Acc> = BTreeMap::new();
        for f in &trace.frames {
            let e = by_cycle.entry(f.cycle).or_default();
            e.computing += f64::from(f.computing);
            e.queued += f64::from(f.queued);
            e.waiting += f64::from(f.waiting);
            e.stalled += f64::from(f.stalled);
            e.k += f64::from(f.k);
        }
        let mut occ = OccupancyTimeline {
            frames: trace.frames.len(),
            ..OccupancyTimeline::default()
        };
        for (cycle, v) in by_cycle {
            let c = cycle as f64;
            occ.computing.push((c, v.computing));
            occ.queued.push((c, v.queued));
            occ.waiting.push((c, v.waiting));
            occ.stalled.push((c, v.stalled));
            occ.k.push((c, v.k));
        }
        occ
    }

    /// True when the trace held no probe frames.
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }

    /// Terminal rendering: `k(t)` (`*`), computing (`o`), stalled (`+`).
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        if self.is_empty() {
            return "occupancy: no sim.probe frames in trace\n".to_string();
        }
        let mut c = AsciiChart::new(
            format!(
                "warp occupancy: k [*], computing [o], stalled [+], {} frames",
                self.frames
            ),
            width,
            height,
        );
        c.add(&self.k);
        c.add(&self.computing);
        c.add(&self.stalled);
        c.render()
    }

    /// SVG chart of every state series plus the derived `k(t)`.
    pub fn to_chart(&self) -> Chart {
        Chart::new("Warp-state occupancy", "cycle", "warps")
            .with(Series::line("computing", self.computing.clone(), 0))
            .with(Series::line("queued", self.queued.clone(), 1).dashed())
            .with(Series::line("waiting", self.waiting.clone(), 2))
            .with(Series::line("stalled", self.stalled.clone(), 3).dashed())
            .with(Series::line("k (in MS)", self.k.clone(), 4))
    }

    /// Heatmap of warp-state occupancy over time: one row per state
    /// (0 = computing, 1 = queued, 2 = waiting, 3 = stalled), one column
    /// per sampled cycle. `None` when the trace held no frames.
    pub fn to_heatmap(&self) -> Option<crate::heatmap::Heatmap> {
        if self.is_empty() {
            return None;
        }
        let xs: Vec<f64> = self.computing.iter().map(|&(c, _)| c).collect();
        let ys: Vec<f64> = (0..4).map(f64::from).collect();
        let rows = [&self.computing, &self.queued, &self.waiting, &self.stalled];
        let mut values = Vec::with_capacity(xs.len() * 4);
        for row in rows {
            values.extend(row.iter().map(|&(_, y)| y));
        }
        Some(crate::heatmap::Heatmap {
            title: "warp-state occupancy (0=computing 1=queued 2=waiting 3=stalled)".into(),
            x_label: "cycle".into(),
            y_label: "state".into(),
            xs,
            ys,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(cycle: u64, k: u64, x: u64) -> String {
        format!(
            "{{\"kind\":\"sim.snapshot\",\"t_us\":1,\"cycle\":{cycle},\"k\":{k},\"x\":{x},\
             \"mshrs_busy\":2,\"dram_inflight\":1,\"dram_backlog\":0,\"hit_rate\":0.5}}"
        )
    }

    #[test]
    fn extracts_snapshot_series() {
        let lines = [
            snapshot(256, 10, 22),
            "{\"kind\":\"solver.result\",\"t_us\":3,\"n\":32}".to_string(),
            snapshot(512, 12, 20),
            "not json at all".to_string(),
        ];
        let tl = Timeline::from_lines(lines.iter().map(String::as_str));
        assert_eq!(tl.snapshots, 2);
        assert_eq!(tl.k, vec![(256.0, 10.0), (512.0, 12.0)]);
        assert_eq!(tl.x, vec![(256.0, 22.0), (512.0, 20.0)]);
        assert_eq!(tl.mshrs.len(), 2);
        assert_eq!(tl.hit_rate, vec![(256.0, 0.5), (512.0, 0.5)]);
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let tl = Timeline::from_lines([].into_iter());
        assert!(tl.is_empty());
        assert!(tl.render_ascii(40, 8).contains("no sim.snapshot"));
    }

    #[test]
    fn ascii_render_has_both_series() {
        let lines: Vec<String> = (1..=32).map(|i| snapshot(i * 256, i, 32 - i)).collect();
        let tl = Timeline::from_lines(lines.iter().map(String::as_str));
        let s = tl.render_ascii(60, 12);
        assert!(s.contains('*') && s.contains('o'));
    }

    #[test]
    fn single_snapshot_renders_without_panic() {
        let line = snapshot(256, 10, 22);
        let tl = Timeline::from_lines([line.as_str()].into_iter());
        assert_eq!(tl.snapshots, 1);
        let ascii = tl.render_ascii(40, 8);
        assert!(ascii.contains('*'), "single-interval ascii renders");
        let svg = tl.to_chart().to_svg(320.0, 200.0);
        assert!(svg.contains("<svg"), "single-interval svg renders");
    }

    fn probe(cycle: u64, sm: u16, computing: u64, waiting: u64) -> String {
        format!(
            "{{\"kind\":\"sim.probe\",\"t_us\":1,\"cycle\":{cycle},\"sm\":{sm},\
             \"computing\":{computing},\"queued\":0,\"waiting\":{waiting},\"stalled\":0,\
             \"k\":{waiting},\"dram_inflight\":2,\"dram_backlog\":0,\"d_cycles\":256,\
             \"d_ops\":100.0,\"d_requests\":10}}"
        )
    }

    #[test]
    fn occupancy_sums_across_sms() {
        let lines = [
            probe(256, 0, 20, 12),
            probe(256, 1, 18, 14),
            probe(512, 0, 22, 10),
            probe(512, 1, 21, 11),
        ];
        let trace = xmodel_obs::simtrace::SimTrace::from_lines(lines.iter().map(String::as_str));
        let occ = OccupancyTimeline::from_trace(&trace);
        assert_eq!(occ.frames, 4);
        assert_eq!(occ.computing, vec![(256.0, 38.0), (512.0, 43.0)]);
        assert_eq!(occ.k, vec![(256.0, 26.0), (512.0, 21.0)]);
        assert!(occ.render_ascii(40, 8).contains('*'));
        assert!(occ.to_chart().to_svg(320.0, 200.0).contains("computing"));
        let hm = occ.to_heatmap().expect("non-empty heatmap");
        assert_eq!(hm.xs.len(), 2);
        assert_eq!(hm.values.len(), 8);
    }

    #[test]
    fn occupancy_handles_empty_and_single_frame_traces() {
        let empty = OccupancyTimeline::from_trace(&xmodel_obs::simtrace::SimTrace::from_lines(
            [].into_iter(),
        ));
        assert!(empty.is_empty());
        assert!(empty.render_ascii(40, 8).contains("no sim.probe"));
        assert!(empty.to_chart().to_svg(320.0, 200.0).contains("(no data)"));
        assert!(empty.to_heatmap().is_none());

        let line = probe(256, 0, 20, 12);
        let single = OccupancyTimeline::from_trace(&xmodel_obs::simtrace::SimTrace::from_lines(
            [line.as_str()].into_iter(),
        ));
        assert_eq!(single.frames, 1);
        assert!(single.render_ascii(40, 8).contains('*'));
        assert!(single.to_chart().to_svg(320.0, 200.0).contains("<svg"));
        let hm = single.to_heatmap().expect("single-frame heatmap");
        let _ = hm.to_svg(200.0, 120.0);
        let _ = hm.to_ascii();
    }

    #[test]
    fn svg_chart_includes_hit_rate_axis() {
        let lines: Vec<String> = (1..=8).map(|i| snapshot(i * 256, i, 8 - i)).collect();
        let tl = Timeline::from_lines(lines.iter().map(String::as_str));
        let svg = tl.to_chart().to_svg(640.0, 400.0);
        assert!(svg.contains("hit rate"));
        assert!(svg.contains("k (memory)"));
    }
}

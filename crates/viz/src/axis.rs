//! Linear axis scaling with nice-number tick placement.

/// A linear or logarithmic axis over a data range.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Axis label.
    pub label: String,
    /// Data minimum (after nice-rounding).
    pub min: f64,
    /// Data maximum (after nice-rounding).
    pub max: f64,
    /// Tick positions.
    pub ticks: Vec<f64>,
    /// Logarithmic mapping (base 10 ticks).
    pub log: bool,
}

impl Axis {
    /// Build an axis covering `[lo, hi]` with about `n_ticks` ticks at
    /// nice (1/2/5 × 10^k) intervals.
    pub fn nice(label: impl Into<String>, lo: f64, hi: f64, n_ticks: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite(),
            "axis bounds must be finite"
        );
        let (lo, hi) = if (hi - lo).abs() < f64::EPSILON {
            (lo - 0.5, hi + 0.5)
        } else if hi < lo {
            (hi, lo)
        } else {
            (lo, hi)
        };
        let step = nice_step(hi - lo, n_ticks.max(2));
        let min = (lo / step).floor() * step;
        let max = (hi / step).ceil() * step;
        let mut ticks = Vec::new();
        let mut t = min;
        while t <= max + step * 1e-9 {
            // Snap tiny float noise to zero.
            ticks.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
            t += step;
        }
        Self {
            label: label.into(),
            min,
            max,
            ticks,
            log: false,
        }
    }

    /// Build a logarithmic axis covering `[lo, hi]` (both must be
    /// positive) with decade ticks.
    pub fn nice_log(label: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite(),
            "axis bounds must be finite"
        );
        let lo = lo.max(1e-12);
        let hi = hi.max(lo * 10.0);
        let dmin = lo.log10().floor();
        let dmax = hi.log10().ceil();
        let ticks = (dmin as i32..=dmax as i32).map(|d| 10f64.powi(d)).collect();
        Self {
            label: label.into(),
            min: 10f64.powf(dmin),
            max: 10f64.powf(dmax),
            ticks,
            log: true,
        }
    }

    /// Map a data value to `[0, 1]` along the axis.
    pub fn unit(&self, v: f64) -> f64 {
        if self.log {
            let v = v.max(self.min * 1e-3);
            (v.ln() - self.min.ln()) / (self.max.ln() - self.min.ln())
        } else {
            (v - self.min) / (self.max - self.min)
        }
    }

    /// Format a tick value compactly.
    pub fn fmt(v: f64) -> String {
        if v == 0.0 {
            return "0".to_string();
        }
        let a = v.abs();
        if !(1e-3..1e6).contains(&a) {
            format!("{v:.1e}")
        } else if a >= 100.0 || (v.fract() == 0.0 && a >= 1.0) {
            format!("{v:.0}")
        } else if a >= 1.0 {
            trim(format!("{v:.2}"))
        } else {
            trim(format!("{v:.3}"))
        }
    }
}

fn trim(mut s: String) -> String {
    if s.contains('.') {
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
    }
    s
}

/// Largest of {1, 2, 5}·10^k producing at least `n` intervals over `span`.
fn nice_step(span: f64, n: usize) -> f64 {
    let raw = span / n as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let nice = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    nice * mag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice_axis_covers_range() {
        let a = Axis::nice("x", 0.0, 48.0, 6);
        assert!(a.min <= 0.0 && a.max >= 48.0);
        assert!(a.ticks.len() >= 4);
        // Ticks are evenly spaced.
        let step = a.ticks[1] - a.ticks[0];
        for w in a.ticks.windows(2) {
            assert!((w[1] - w[0] - step).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_range_is_widened() {
        let a = Axis::nice("x", 3.0, 3.0, 5);
        assert!(a.max > a.min);
    }

    #[test]
    fn reversed_range_is_swapped() {
        let a = Axis::nice("x", 10.0, 0.0, 5);
        assert!(a.min <= 0.0 && a.max >= 10.0);
    }

    #[test]
    fn unit_maps_endpoints() {
        let a = Axis::nice("x", 0.0, 100.0, 5);
        assert_eq!(a.unit(a.min), 0.0);
        assert_eq!(a.unit(a.max), 1.0);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(Axis::fmt(0.0), "0");
        assert_eq!(Axis::fmt(150.0), "150");
        assert_eq!(Axis::fmt(2.5), "2.5");
        assert_eq!(Axis::fmt(0.125), "0.125");
        assert_eq!(Axis::fmt(3.0), "3");
        assert!(Axis::fmt(1.5e7).contains('e'));
    }

    #[test]
    fn nice_steps() {
        assert_eq!(nice_step(10.0, 5), 2.0);
        assert_eq!(nice_step(1.0, 5), 0.2);
        assert_eq!(nice_step(48.0, 6), 10.0);
        assert_eq!(nice_step(0.3, 6), 0.05);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_bounds() {
        let _ = Axis::nice("x", f64::NAN, 1.0, 5);
    }

    #[test]
    fn log_axis_decade_ticks() {
        let a = Axis::nice_log("z", 0.3, 700.0);
        assert!(a.log);
        assert_eq!(a.ticks, vec![0.1, 1.0, 10.0, 100.0, 1000.0]);
        assert_eq!(a.unit(a.min), 0.0);
        assert_eq!(a.unit(a.max), 1.0);
        // Geometric midpoint maps to the middle.
        let mid = (a.min * a.max).sqrt();
        assert!((a.unit(mid) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_axis_clamps_nonpositive() {
        let a = Axis::nice_log("z", 1.0, 100.0);
        assert!(a.unit(0.0) < 0.0 + 1e-9 || a.unit(0.0).is_finite());
    }
}

//! Multi-panel figure composition (Figs. 10 and 11 are panel grids).

use crate::chart::Chart;
use crate::svg::SvgDoc;

/// A grid of charts rendered into one SVG.
#[derive(Debug, Clone)]
pub struct PanelGrid {
    /// Overall figure title.
    pub title: String,
    /// Panels in row-major order.
    pub panels: Vec<Chart>,
    /// Number of columns.
    pub cols: usize,
    /// Per-panel pixel size.
    pub panel_size: (f64, f64),
}

impl PanelGrid {
    /// New grid with `cols` columns.
    pub fn new(title: impl Into<String>, cols: usize) -> Self {
        assert!(cols >= 1);
        Self {
            title: title.into(),
            panels: Vec::new(),
            cols,
            panel_size: (420.0, 300.0),
        }
    }

    /// Add a panel (builder style).
    #[must_use]
    pub fn with(mut self, chart: Chart) -> Self {
        self.panels.push(chart);
        self
    }

    /// Number of rows the current panels occupy.
    pub fn rows(&self) -> usize {
        self.panels.len().div_ceil(self.cols)
    }

    /// Render the full grid.
    pub fn to_svg(&self) -> String {
        let (pw, ph) = self.panel_size;
        let title_h = if self.title.is_empty() { 0.0 } else { 28.0 };
        let cols = self.cols.min(self.panels.len().max(1));
        let width = pw * cols as f64;
        let height = ph * self.rows().max(1) as f64 + title_h;
        let mut doc = SvgDoc::new(width.max(1.0), height.max(1.0));
        if !self.title.is_empty() {
            doc.text(width / 2.0, 19.0, &self.title, 15.0, "middle", 0.0);
        }
        for (i, chart) in self.panels.iter().enumerate() {
            let col = i % self.cols;
            let row = i / self.cols;
            let panel = chart.render(pw, ph);
            doc.embed(&panel, col as f64 * pw, title_h + row as f64 * ph);
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::Series;

    fn chart(i: usize) -> Chart {
        Chart::new(format!("panel {i}"), "x", "y").with(Series::line(
            "s",
            vec![(0.0, 0.0), (1.0, i as f64)],
            i,
        ))
    }

    #[test]
    fn grid_places_all_panels() {
        let g = PanelGrid::new("Fig 10", 3)
            .with(chart(0))
            .with(chart(1))
            .with(chart(2))
            .with(chart(3));
        assert_eq!(g.rows(), 2);
        let svg = g.to_svg();
        assert!(svg.contains("Fig 10"));
        for i in 0..4 {
            assert!(svg.contains(&format!("panel {i}")));
        }
        assert_eq!(svg.matches("translate(").count(), 4);
    }

    #[test]
    fn empty_grid_renders() {
        let svg = PanelGrid::new("empty", 2).to_svg();
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn single_column_layout() {
        let g = PanelGrid::new("", 1).with(chart(0)).with(chart(1));
        assert_eq!(g.rows(), 2);
        let svg = g.to_svg();
        assert!(svg.contains("translate(0.00 300.00)"));
    }
}

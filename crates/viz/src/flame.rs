//! Profile rendering: horizontal self-time bars for the hot-span view
//! of `xmodel profile`, fed by `xmodel-obs`'s folded span profiles.
//!
//! The folded-stack *file* is the flamegraph interchange format; this
//! module is the quick terminal look — one labelled bar per span name,
//! scaled to the hottest.

/// Render `(label, value)` pairs as right-aligned labels with
/// proportional bars, largest first. `width` is the bar column width in
/// characters; entries beyond `top` are summed into an `(other)` row.
/// Values are microseconds and are printed as milliseconds.
pub fn self_time_bars(entries: &[(String, f64)], width: usize, top: usize) -> String {
    let width = width.max(8);
    let mut sorted: Vec<&(String, f64)> = entries.iter().filter(|(_, v)| *v > 0.0).collect();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
    if sorted.is_empty() {
        return "(no self time recorded)\n".to_string();
    }
    let shown = sorted.len().min(top.max(1));
    let rest: f64 = sorted[shown..].iter().map(|(_, v)| v).sum();
    let label_w = sorted[..shown]
        .iter()
        .map(|(name, _)| name.len())
        .chain(std::iter::once(7)) // "(other)"
        .max()
        .unwrap_or(7)
        .min(32);
    let max = sorted.first().map_or(1.0, |(_, v)| *v);

    let mut out = String::new();
    let mut row = |name: &str, value: f64| {
        let filled = ((value / max) * width as f64).round() as usize;
        let filled = filled.clamp(usize::from(value > 0.0), width);
        out.push_str(&format!(
            "{:<label_w$} {:>10.3} ms |{}{}|\n",
            truncate(name, label_w),
            value / 1e3,
            "█".repeat(filled),
            " ".repeat(width - filled),
        ));
    };
    for (name, value) in &sorted[..shown] {
        row(name, *value);
    }
    if rest > 0.0 {
        row("(other)", rest);
    }
    out
}

/// Render `(label, signed Δµs)` pairs as a two-sided bar chart:
/// regressions (`+`) grow right of the axis, improvements (`−`) grow
/// left, both scaled to the largest magnitude. Largest magnitude first;
/// entries beyond `top` are dropped with a trailing count. `width` is
/// the bar column width *per side*. Values print as milliseconds.
pub fn delta_bars(entries: &[(String, f64)], width: usize, top: usize) -> String {
    let width = width.max(4);
    let mut sorted: Vec<&(String, f64)> = entries.iter().filter(|(_, v)| *v != 0.0).collect();
    sorted.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
    if sorted.is_empty() {
        return "(no self-time deltas)\n".to_string();
    }
    let shown = sorted.len().min(top.max(1));
    let label_w = sorted[..shown]
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(8)
        .min(32);
    let max = sorted[..shown]
        .iter()
        .map(|(_, v)| v.abs())
        .fold(f64::MIN_POSITIVE, f64::max);

    let mut out = String::new();
    for (name, value) in &sorted[..shown] {
        let filled = ((value.abs() / max) * width as f64).round() as usize;
        let filled = filled.clamp(1, width);
        let (left, right) = if *value < 0.0 {
            (
                format!("{}{}", " ".repeat(width - filled), "█".repeat(filled)),
                " ".repeat(width),
            )
        } else {
            (
                " ".repeat(width),
                format!("{}{}", "█".repeat(filled), " ".repeat(width - filled)),
            )
        };
        out.push_str(&format!(
            "{:<label_w$} {:>+10.3} ms |{left}|{right}|\n",
            truncate(name, label_w),
            value / 1e3,
        ));
    }
    if sorted.len() > shown {
        out.push_str(&format!("... {} more\n", sorted.len() - shown));
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let head: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{head}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_and_sort() {
        let entries = vec![
            ("small".to_string(), 100.0),
            ("big".to_string(), 1000.0),
            ("zero".to_string(), 0.0),
        ];
        let out = self_time_bars(&entries, 20, 10);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "zero-value entries are dropped:\n{out}");
        assert!(lines[0].starts_with("big"), "sorted descending:\n{out}");
        let bar_len = |l: &str| l.chars().filter(|&c| c == '█').count();
        assert_eq!(bar_len(lines[0]), 20);
        assert_eq!(bar_len(lines[1]), 2);
    }

    #[test]
    fn overflow_collapses_into_other() {
        let entries: Vec<(String, f64)> = (0..5)
            .map(|i| (format!("s{i}"), 100.0 + i as f64))
            .collect();
        let out = self_time_bars(&entries, 16, 2);
        assert!(out.contains("(other)"), "{out}");
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn empty_input_is_graceful() {
        assert!(self_time_bars(&[], 20, 5).contains("no self time"));
    }

    #[test]
    fn delta_bars_split_sides_by_sign() {
        let entries = vec![
            ("slower".to_string(), 2000.0),
            ("faster".to_string(), -1000.0),
            ("flat".to_string(), 0.0),
        ];
        let out = delta_bars(&entries, 10, 10);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "zero deltas dropped:\n{out}");
        assert!(
            lines[0].starts_with("slower"),
            "sorted by magnitude:\n{out}"
        );
        // Regression bar sits right of the axis, improvement left.
        let cells = |l: &str| -> Vec<String> { l.split('|').map(str::to_string).collect() };
        let slower = cells(lines[0]);
        assert!(!slower[1].contains('█') && slower[2].contains('█'), "{out}");
        let faster = cells(lines[1]);
        assert!(faster[1].contains('█') && !faster[2].contains('█'), "{out}");
        assert!(lines[0].contains("+2.000 ms"));
        assert!(lines[1].contains("-1.000 ms"));
    }

    #[test]
    fn delta_bars_empty_and_overflow() {
        assert!(delta_bars(&[], 10, 5).contains("no self-time deltas"));
        let entries: Vec<(String, f64)> = (0..6)
            .map(|i| (format!("d{i}"), 100.0 + i as f64))
            .collect();
        let out = delta_bars(&entries, 8, 3);
        assert!(out.contains("... 3 more"), "{out}");
    }
}

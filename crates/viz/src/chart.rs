//! Line/scatter/bar charts with dual y-axes, markers and legends.

use crate::axis::Axis;
use crate::svg::SvgDoc;
use crate::PALETTE;

/// How a series is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Connected line.
    Line,
    /// Dashed connected line.
    DashedLine,
    /// Isolated points (the Fig. 12 trace-points).
    Scatter,
    /// Vertical bars (Fig. 18).
    Bars,
}

/// One data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` data points.
    pub points: Vec<(f64, f64)>,
    /// Rendering style.
    pub kind: SeriesKind,
    /// Palette index (wraps).
    pub color: usize,
    /// `true` to scale against the right-hand y axis.
    pub right_axis: bool,
}

impl Series {
    /// A line series on the left axis.
    pub fn line(label: impl Into<String>, points: Vec<(f64, f64)>, color: usize) -> Self {
        Self {
            label: label.into(),
            points,
            kind: SeriesKind::Line,
            color,
            right_axis: false,
        }
    }

    /// A scatter series on the left axis.
    pub fn scatter(label: impl Into<String>, points: Vec<(f64, f64)>, color: usize) -> Self {
        Self {
            kind: SeriesKind::Scatter,
            ..Self::line(label, points, color)
        }
    }

    /// A bar series on the left axis.
    pub fn bars(label: impl Into<String>, points: Vec<(f64, f64)>, color: usize) -> Self {
        Self {
            kind: SeriesKind::Bars,
            ..Self::line(label, points, color)
        }
    }

    /// Move this series to the right-hand y axis.
    #[must_use]
    pub fn on_right_axis(mut self) -> Self {
        self.right_axis = true;
        self
    }

    /// Use a dashed line.
    #[must_use]
    pub fn dashed(mut self) -> Self {
        self.kind = SeriesKind::DashedLine;
        self
    }
}

/// A labelled point or vertical marker (σ, π, δ, ψ annotations).
#[derive(Debug, Clone)]
pub struct Marker {
    /// Greek-letter label.
    pub label: String,
    /// x position.
    pub x: f64,
    /// y position; `None` draws a full-height vertical dashed line.
    pub y: Option<f64>,
}

/// A complete chart description.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Title above the plot.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// Left y-axis label.
    pub y_label: String,
    /// Right y-axis label (enables the right axis when any series uses it).
    pub y2_label: String,
    /// The series to draw.
    pub series: Vec<Series>,
    /// Annotations.
    pub markers: Vec<Marker>,
    /// Force the left y axis to start at zero (default true).
    pub zero_based: bool,
    /// Logarithmic x axis (decade ticks).
    pub log_x: bool,
    /// Logarithmic left y axis (decade ticks). The right axis stays
    /// linear.
    pub log_y: bool,
}

impl Chart {
    /// New empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            y2_label: String::new(),
            series: Vec::new(),
            markers: Vec::new(),
            zero_based: true,
            log_x: false,
            log_y: false,
        }
    }

    /// Switch to log-log scales (the classic roofline layout).
    #[must_use]
    pub fn log_log(mut self) -> Self {
        self.log_x = true;
        self.log_y = true;
        self.zero_based = false;
        self
    }

    /// Add a series (builder style).
    #[must_use]
    pub fn with(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Add a marker (builder style).
    #[must_use]
    pub fn with_marker(mut self, m: Marker) -> Self {
        self.markers.push(m);
        self
    }

    /// Set the right-axis label.
    #[must_use]
    pub fn right_axis(mut self, label: impl Into<String>) -> Self {
        self.y2_label = label.into();
        self
    }

    fn bounds(&self, right: bool) -> Option<(f64, f64, f64, f64)> {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .filter(|s| s.right_axis == right)
            .flat_map(|s| s.points.iter().copied())
            .filter(|&(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            return None;
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for (x, y) in pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        Some((x0, x1, y0, y1))
    }

    /// Render to an SVG document of the given size.
    pub fn render(&self, width: f64, height: f64) -> SvgDoc {
        let mut doc = SvgDoc::new(width, height);
        let (ml, mr, mt, mb) = (
            56.0,
            if self.y2_label.is_empty() { 18.0 } else { 56.0 },
            30.0,
            46.0,
        );
        let (pw, ph) = (width - ml - mr, height - mt - mb);

        let left_b = self.bounds(false);
        let right_b = self.bounds(true);
        let all_x = match (left_b, right_b) {
            (Some(l), Some(r)) => Some((l.0.min(r.0), l.1.max(r.1))),
            (Some(l), None) => Some((l.0, l.1)),
            (None, Some(r)) => Some((r.0, r.1)),
            (None, None) => None,
        };
        let Some((x_lo, x_hi)) = all_x else {
            doc.text(width / 2.0, height / 2.0, "(no data)", 12.0, "middle", 0.0);
            return doc;
        };
        let x_axis = if self.log_x {
            Axis::nice_log(self.x_label.clone(), x_lo, x_hi)
        } else {
            Axis::nice(self.x_label.clone(), x_lo, x_hi, 6)
        };
        let (y_lo, y_hi) = left_b.map(|b| (b.2, b.3)).unwrap_or((0.0, 1.0));
        let y_axis = if self.log_y {
            Axis::nice_log(self.y_label.clone(), y_lo, y_hi)
        } else {
            Axis::nice(
                self.y_label.clone(),
                if self.zero_based { y_lo.min(0.0) } else { y_lo },
                y_hi,
                5,
            )
        };
        let y2_axis = right_b.map(|b| {
            Axis::nice(
                self.y2_label.clone(),
                if self.zero_based { b.2.min(0.0) } else { b.2 },
                b.3,
                5,
            )
        });

        let px = |v: f64| ml + x_axis.unit(v) * pw;
        let py = |v: f64| mt + (1.0 - y_axis.unit(v)) * ph;
        let py2 = |v: f64, a: &Axis| mt + (1.0 - a.unit(v)) * ph;

        // Frame and grid.
        doc.rect(ml, mt, pw, ph, "none", Some("#999"));
        for &t in &x_axis.ticks {
            let x = px(t);
            doc.line(x, mt + ph, x, mt + ph + 4.0, "#444", 1.0, None);
            doc.text(x, mt + ph + 16.0, &Axis::fmt(t), 10.0, "middle", 0.0);
        }
        for &t in &y_axis.ticks {
            let y = py(t);
            doc.line(ml - 4.0, y, ml, y, "#444", 1.0, None);
            doc.line(ml, y, ml + pw, y, "#eee", 0.5, None);
            doc.text(ml - 7.0, y + 3.0, &Axis::fmt(t), 10.0, "end", 0.0);
        }
        if let Some(a2) = &y2_axis {
            for &t in &a2.ticks {
                let y = py2(t, a2);
                doc.line(ml + pw, y, ml + pw + 4.0, y, "#444", 1.0, None);
                doc.text(ml + pw + 7.0, y + 3.0, &Axis::fmt(t), 10.0, "start", 0.0);
            }
            doc.text(
                width - 12.0,
                mt + ph / 2.0,
                &self.y2_label,
                11.0,
                "middle",
                90.0,
            );
        }
        doc.text(
            width / 2.0,
            height - 8.0,
            &self.x_label,
            11.0,
            "middle",
            0.0,
        );
        doc.text(14.0, mt + ph / 2.0, &self.y_label, 11.0, "middle", -90.0);
        doc.text(width / 2.0, 16.0, &self.title, 13.0, "middle", 0.0);

        // Series.
        for s in &self.series {
            let color = PALETTE[s.color % PALETTE.len()];
            let to_px: Box<dyn Fn(f64, f64) -> (f64, f64)> = match (&s.right_axis, &y2_axis) {
                (true, Some(a2)) => Box::new(move |x, y| (px(x), py2(y, a2))),
                _ => Box::new(move |x, y| (px(x), py(y))),
            };
            match s.kind {
                SeriesKind::Line | SeriesKind::DashedLine => {
                    let pts: Vec<_> = s.points.iter().map(|&(x, y)| to_px(x, y)).collect();
                    let dash = if s.kind == SeriesKind::DashedLine {
                        Some("6 4")
                    } else {
                        None
                    };
                    doc.polyline(&pts, color, 1.8, dash);
                }
                SeriesKind::Scatter => {
                    for &(x, y) in &s.points {
                        let (cx, cy) = to_px(x, y);
                        doc.circle(cx, cy, 3.0, color);
                    }
                }
                SeriesKind::Bars => {
                    let bw = pw / (s.points.len().max(1) as f64) * 0.6;
                    for &(x, y) in &s.points {
                        let (cx, cy) = to_px(x, y);
                        let y0 = py(0.0f64.max(y_axis.min));
                        doc.rect(cx - bw / 2.0, cy.min(y0), bw, (y0 - cy).abs(), color, None);
                    }
                }
            }
        }

        // Markers.
        for m in &self.markers {
            let x = px(m.x);
            match m.y {
                Some(yv) => {
                    let y = py(yv);
                    doc.circle(x, y, 4.0, "#222");
                    doc.text(x + 6.0, y - 6.0, &m.label, 11.0, "start", 0.0);
                }
                None => {
                    doc.line(x, mt, x, mt + ph, "#888", 1.0, Some("3 3"));
                    doc.text(x, mt - 4.0, &m.label, 11.0, "middle", 0.0);
                }
            }
        }

        // Legend.
        let mut ly = mt + 8.0;
        for s in &self.series {
            let color = PALETTE[s.color % PALETTE.len()];
            doc.line(ml + 8.0, ly, ml + 28.0, ly, color, 2.0, None);
            doc.text(ml + 33.0, ly + 3.5, &s.label, 10.0, "start", 0.0);
            ly += 14.0;
        }
        doc
    }

    /// Render and return the SVG file contents.
    pub fn to_svg(&self, width: f64, height: f64) -> String {
        self.render(width, height).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> Chart {
        Chart::new("X-graph", "Threads", "MS Throughput")
            .with(Series::line(
                "f(k)",
                vec![(0.0, 0.0), (8.0, 0.3), (20.0, 0.1)],
                0,
            ))
            .with(Series::line("g(x)", vec![(0.0, 0.15), (17.0, 0.15), (20.0, 0.0)], 1).dashed())
            .with_marker(Marker {
                label: "σ'".into(),
                x: 8.0,
                y: Some(0.3),
            })
            .with_marker(Marker {
                label: "π".into(),
                x: 17.0,
                y: None,
            })
    }

    #[test]
    fn renders_complete_svg() {
        let svg = sample_chart().to_svg(480.0, 320.0);
        assert!(svg.contains("<svg"));
        assert!(svg.contains("X-graph"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("stroke-dasharray")); // dashed g(x) + pi marker
        assert!(svg.contains("σ"));
        assert!(svg.contains("Threads"));
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let svg = Chart::new("t", "x", "y").to_svg(200.0, 100.0);
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn dual_axis_renders_both_scales() {
        let c = Chart::new("arch", "Warps", "GB/s")
            .right_axis("GF/s")
            .with(Series::line("f(k)", vec![(0.0, 0.0), (48.0, 150.0)], 0))
            .with(Series::line("g(x)", vec![(0.0, 0.0), (48.0, 90.0)], 1).on_right_axis());
        let svg = c.to_svg(480.0, 320.0);
        assert!(svg.contains("GF/s"));
        assert!(svg.contains("rotate(90.0") || svg.contains("rotate(90 "));
    }

    #[test]
    fn scatter_and_bars_render() {
        let c = Chart::new("b", "x", "y")
            .with(Series::scatter("pts", vec![(1.0, 1.0), (2.0, 2.0)], 2))
            .with(Series::bars("bars", vec![(1.0, 1.0), (2.0, 0.5)], 3));
        let svg = c.to_svg(300.0, 200.0);
        assert!(svg.matches("<circle").count() >= 2);
        assert!(svg.matches("<rect").count() >= 3); // background + frame + bars
    }

    #[test]
    fn nonfinite_points_are_ignored_for_bounds() {
        let c = Chart::new("t", "x", "y").with(Series::line(
            "s",
            vec![(0.0, 1.0), (1.0, f64::NAN), (2.0, 3.0)],
            0,
        ));
        // Must not panic.
        let _ = c.to_svg(200.0, 150.0);
    }
}

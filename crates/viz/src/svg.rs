//! Minimal SVG document builder.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

/// Escape text content for XML.
pub fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '&' => "&amp;".chars().collect::<Vec<_>>(),
            '<' => "&lt;".chars().collect(),
            '>' => "&gt;".chars().collect(),
            '"' => "&quot;".chars().collect(),
            '\'' => "&apos;".chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl SvgDoc {
    /// Start a document of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width > 0.0 && height > 0.0);
        Self {
            width,
            height,
            body: String::new(),
        }
    }

    /// Document width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Add a line segment.
    #[allow(clippy::too_many_arguments)]
    pub fn line(
        &mut self,
        x1: f64,
        y1: f64,
        x2: f64,
        y2: f64,
        stroke: &str,
        width: f64,
        dash: Option<&str>,
    ) {
        let dash = dash
            .map(|d| format!(" stroke-dasharray=\"{d}\""))
            .unwrap_or_default();
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width}"{dash}/>"#
        );
    }

    /// Add a polyline through `pts` (pixel coordinates).
    pub fn polyline(&mut self, pts: &[(f64, f64)], stroke: &str, width: f64, dash: Option<&str>) {
        if pts.len() < 2 {
            return;
        }
        let mut d = String::new();
        for &(x, y) in pts {
            let _ = write!(d, "{x:.2},{y:.2} ");
        }
        let dash = dash
            .map(|d| format!(" stroke-dasharray=\"{d}\""))
            .unwrap_or_default();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width}"{dash}/>"#,
            d.trim_end()
        );
    }

    /// Add a circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}"/>"#
        );
    }

    /// Add a rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
        let stroke = stroke
            .map(|s| format!(" stroke=\"{s}\""))
            .unwrap_or_default();
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}"{stroke}/>"#
        );
    }

    /// Add text. `anchor` ∈ {start, middle, end}; `rotate` in degrees
    /// about the text position.
    pub fn text(&mut self, x: f64, y: f64, content: &str, size: f64, anchor: &str, rotate: f64) {
        let transform = if rotate != 0.0 {
            format!(" transform=\"rotate({rotate:.1} {x:.2} {y:.2})\"")
        } else {
            String::new()
        };
        let _ = writeln!(
            self.body,
            r##"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="Helvetica,Arial,sans-serif" text-anchor="{anchor}" fill="#222"{transform}>{}</text>"##,
            escape(content)
        );
    }

    /// Embed another document's body at an offset (panel composition).
    pub fn embed(&mut self, other: &SvgDoc, dx: f64, dy: f64) {
        let _ = writeln!(
            self.body,
            r#"<g transform="translate({dx:.2} {dy:.2})">{}</g>"#,
            other.body
        );
    }

    /// Finish: the full SVG file contents.
    pub fn finish(&self) -> String {
        format!(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn document_structure() {
        let mut d = SvgDoc::new(100.0, 50.0);
        d.line(0.0, 0.0, 10.0, 10.0, "#000", 1.0, None);
        d.circle(5.0, 5.0, 2.0, "red");
        d.text(1.0, 1.0, "σ'", 10.0, "middle", 0.0);
        let s = d.finish();
        assert!(s.starts_with("<?xml"));
        assert!(s.contains("<svg"));
        assert!(s.ends_with("</svg>\n"));
        assert!(s.contains("<line"));
        assert!(s.contains("<circle"));
        assert!(s.contains("σ"));
    }

    #[test]
    fn polyline_needs_two_points() {
        let mut d = SvgDoc::new(10.0, 10.0);
        d.polyline(&[(1.0, 1.0)], "#000", 1.0, None);
        assert!(!d.finish().contains("<polyline"));
        d.polyline(&[(1.0, 1.0), (2.0, 2.0)], "#000", 1.0, Some("4 2"));
        let s = d.finish();
        assert!(s.contains("<polyline"));
        assert!(s.contains("stroke-dasharray"));
    }

    #[test]
    fn embed_translates() {
        let mut inner = SvgDoc::new(10.0, 10.0);
        inner.circle(1.0, 1.0, 1.0, "blue");
        let mut outer = SvgDoc::new(40.0, 40.0);
        outer.embed(&inner, 20.0, 5.0);
        let s = outer.finish();
        assert!(s.contains("translate(20.00 5.00)"));
        assert!(s.contains("<circle"));
    }

    #[test]
    fn rotated_text() {
        let mut d = SvgDoc::new(10.0, 10.0);
        d.text(5.0, 5.0, "y", 8.0, "middle", -90.0);
        assert!(d.finish().contains("rotate(-90.0"));
    }
}

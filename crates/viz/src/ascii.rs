//! ASCII chart rendering for terminal output.

use crate::axis::Axis;

/// A terminal chart: multiple series drawn with distinct glyphs on a
/// character grid.
#[derive(Debug, Clone)]
pub struct AsciiChart {
    /// Title line.
    pub title: String,
    /// Grid width in characters (plot area).
    pub width: usize,
    /// Grid height in characters (plot area).
    pub height: usize,
    series: Vec<(char, Vec<(f64, f64)>)>,
}

/// Glyphs assigned to successive series.
const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '~'];

impl AsciiChart {
    /// New chart with a plot area of `width × height` characters.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 16 && height >= 4);
        Self {
            title: title.into(),
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Add a series; glyphs are assigned in order.
    pub fn add(&mut self, points: &[(f64, f64)]) {
        let glyph = GLYPHS[self.series.len() % GLYPHS.len()];
        self.series.push((glyph, points.to_vec()));
    }

    /// Render to a multi-line string.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .filter(|&(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for &(x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        y0 = y0.min(0.0);
        if (x1 - x0).abs() < f64::EPSILON {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < f64::EPSILON {
            y1 = y0 + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (glyph, series) in &self.series {
            for &(x, y) in series {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
                let cy = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy.min(self.height - 1);
                grid[row][cx.min(self.width - 1)] = *glyph;
            }
        }

        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        for (i, row) in grid.iter().enumerate() {
            let yv = y1 - (y1 - y0) * i as f64 / (self.height - 1) as f64;
            out.push_str(&format!("{:>9} |", Axis::fmt(yv)));
            out.extend(row.iter());
            out.push('\n');
        }
        let left = Axis::fmt(x0);
        let right = format!("{:>w$}", Axis::fmt(x1), w = self.width - left.len());
        out.push_str(&format!(
            "{:>9} +{}\n{:>9}  {left}{right}\n",
            "",
            "-".repeat(self.width),
            ""
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_series_glyphs() {
        let mut c = AsciiChart::new("f(k)", 40, 10);
        c.add(
            &(0..40)
                .map(|i| (i as f64, (i as f64) * 0.5))
                .collect::<Vec<_>>(),
        );
        c.add(&[(0.0, 20.0), (39.0, 0.0)]);
        let s = c.render();
        assert!(s.starts_with("f(k)\n"));
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert_eq!(s.lines().count(), 1 + 10 + 2);
    }

    #[test]
    fn empty_chart() {
        let c = AsciiChart::new("t", 20, 5);
        assert!(c.render().contains("(no data)"));
    }

    #[test]
    fn single_point_does_not_panic() {
        let mut c = AsciiChart::new("p", 20, 5);
        c.add(&[(3.0, 7.0)]);
        let s = c.render();
        assert!(s.contains('*'));
    }

    #[test]
    fn axis_labels_present() {
        let mut c = AsciiChart::new("t", 30, 6);
        c.add(&[(0.0, 0.0), (64.0, 0.25)]);
        let s = c.render();
        assert!(s.contains("64"));
        assert!(s.contains("0.25"));
    }
}

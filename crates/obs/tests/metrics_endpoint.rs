//! Integration test of the live `/metrics` endpoint: bind on port 0,
//! scrape it over a real TCP connection mid-run, and check the body is
//! valid Prometheus text format reflecting the live registry.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Minimal Prometheus text-format validation: every non-comment line is
/// `name{labels} value` or `name value`, `# TYPE` lines name a known
/// metric type, `# HELP` lines carry escaped text, and bucket counts
/// are cumulative.
fn assert_valid_prometheus(body: &str) {
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let _name = parts.next().expect("TYPE line names a metric");
            let ty = parts.next().expect("TYPE line carries a type");
            assert!(
                ["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty),
                "unknown metric type {ty:?} in {line:?}"
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut parts = rest.splitn(2, ' ');
            let _name = parts.next().expect("HELP line names a metric");
            let text = parts.next().expect("HELP line carries text");
            assert!(!text.is_empty(), "empty HELP text in {line:?}");
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment form: {line:?}");
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf" || value == "NaN",
            "unparseable sample value {value:?} in {line:?}"
        );
        let name = series.split('{').next().unwrap_or("");
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name {name:?} in {line:?}"
        );
        if series.contains('{') {
            assert!(series.ends_with('}'), "unclosed label set in {line:?}");
        }
    }
}

fn scrape(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has header/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn scrape_mid_run_yields_valid_prometheus_text() {
    // serve_metrics() with no live sink installs a NullSink, enabling
    // the registry without a trace file — the long-running-sweep shape.
    let server = xmodel_obs::serve_metrics("127.0.0.1:0").expect("bind port 0");
    assert!(xmodel_obs::enabled(), "exporter implies live registry");

    // Mid-run state: some phases have completed, counters are moving.
    for i in 0..10u64 {
        let _span = xmodel_obs::span!("sweep.point");
        xmodel_obs::metrics::counter_add("sweep.evals", 3);
        xmodel_obs::metrics::gauge_set("sweep.progress", i as f64 / 10.0);
        xmodel_obs::metrics::histogram_observe("eq5.eval_us", &[1.0, 10.0, 100.0], i as f64);
    }

    let (head, body) = scrape(server.addr(), "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "missing exposition content type: {head}"
    );
    assert_valid_prometheus(&body);

    assert!(body.contains("xmodel_sweep_evals 30"), "body:\n{body}");
    assert!(body.contains("# TYPE xmodel_sweep_evals counter"));
    assert!(body.contains("xmodel_sweep_progress 0.9"));
    assert!(body.contains("# TYPE xmodel_eq5_eval_us histogram"));
    assert!(body.contains("xmodel_eq5_eval_us_count 10"));
    assert!(body.contains("le=\"+Inf\""));
    assert!(body.contains("xmodel_span_calls_total{span=\"sweep.point\"} 10"));
    assert!(body.contains("# TYPE xmodel_span_duration_us histogram"));
    assert!(body.contains("span=\"sweep.point\""));

    // A second scrape still works (connections are handled serially)
    // and sees fresh state.
    xmodel_obs::metrics::counter_add("sweep.evals", 1);
    let (_, body2) = scrape(server.addr(), "/metrics");
    assert!(body2.contains("xmodel_sweep_evals 31"), "body2:\n{body2}");

    // Unknown paths 404 without killing the exporter.
    let (head3, _) = scrape(server.addr(), "/nope");
    assert!(head3.starts_with("HTTP/1.1 404"), "head3: {head3}");
    let (head4, _) = scrape(server.addr(), "/metrics");
    assert!(head4.starts_with("HTTP/1.1 200"));

    xmodel_obs::finish(None);
}

//! Concurrency contract of the sink layer: many threads emitting spans
//! and events into one shared `JsonlSink` (a `FileSink` in spirit — a
//! buffered writer over one file) must produce valid, line-atomic JSONL
//! with nothing torn, interleaved, or lost.
//!
//! These tests drive the *global* pipeline (`install` + macros) the way
//! a multi-threaded sweep would, using the `compat/crossbeam` scoped
//! threads the workspace standardizes on.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

const THREADS: usize = 8;
const EVENTS_PER_THREAD: usize = 250;

// Tracing state is process-global; the two tests here must not overlap.
static GLOBAL_TRACE_LOCK: Mutex<()> = Mutex::new(());

/// A unique temp-file path per call (no tempfile crate in the tree).
fn temp_trace(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "xmodel-obs-{tag}-{}-{}.jsonl",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

#[test]
fn concurrent_writers_produce_line_atomic_jsonl() {
    let _guard = GLOBAL_TRACE_LOCK.lock().unwrap();
    let path = temp_trace("concurrent");
    xmodel_obs::init_jsonl(&path).expect("create trace file");

    crossbeam::thread::scope(|scope| {
        for thread in 0..THREADS {
            scope.spawn(move |_| {
                for i in 0..EVENTS_PER_THREAD {
                    let _span = xmodel_obs::span!("worker.step");
                    xmodel_obs::event!(
                        "worker.tick",
                        thread = thread as u64,
                        i = i as u64,
                        // A value that would corrupt neighbours if lines tore.
                        payload = "quote\" backslash\\ and\nnewline",
                    );
                    xmodel_obs::metrics::counter_add("worker.ticks", 1);
                }
            });
        }
    })
    .expect("threads join");

    let manifest = xmodel_obs::manifest::RunManifest::collect(
        "concurrent-test",
        std::collections::BTreeMap::new(),
        None,
    );
    assert_eq!(
        manifest.counters.get("worker.ticks"),
        Some(&((THREADS * EVENTS_PER_THREAD) as u64)),
        "counter updates lost under contention"
    );
    xmodel_obs::finish(Some(&manifest));

    let text = std::fs::read_to_string(&path).expect("read trace back");
    std::fs::remove_file(&path).ok();

    let mut ticks = 0usize;
    let mut spans = 0usize;
    let mut manifests = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let value = xmodel_obs::json::parse(line)
            .unwrap_or_else(|e| panic!("line {} not valid JSON ({e}): {line}", lineno + 1));
        match value
            .get("kind")
            .and_then(xmodel_obs::json::JsonValue::as_str)
        {
            Some("worker.tick") => ticks += 1,
            Some("span") => spans += 1,
            Some("run_manifest") => manifests += 1,
            other => panic!("unexpected kind {other:?} on line {}", lineno + 1),
        }
    }
    assert_eq!(ticks, THREADS * EVENTS_PER_THREAD, "events lost or torn");
    assert_eq!(spans, THREADS * EVENTS_PER_THREAD, "span events lost");
    assert_eq!(manifests, 1);
}

#[test]
fn concurrent_histogram_observations_are_not_lost() {
    let _guard = GLOBAL_TRACE_LOCK.lock().unwrap();
    let path = temp_trace("hist");
    xmodel_obs::init_jsonl(&path).expect("create trace file");

    crossbeam::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|_| {
                for i in 0..EVENTS_PER_THREAD {
                    xmodel_obs::metrics::histogram_observe(
                        "latency",
                        &[1.0, 10.0, 100.0],
                        i as f64,
                    );
                }
            });
        }
    })
    .expect("threads join");

    let snap = xmodel_obs::metrics::snapshot();
    xmodel_obs::finish(None);
    std::fs::remove_file(&path).ok();

    let h = &snap.histograms["latency"];
    assert_eq!(h.count, (THREADS * EVENTS_PER_THREAD) as u64);
    assert_eq!(h.counts.iter().sum::<u64>(), h.count);
}

//! Minimal bounded HTTP/1.x plumbing shared by the Prometheus exporter
//! ([`crate::export`]) and the `xmodel serve` daemon (`core::serve`).
//!
//! Std-only by design — no HTTP framework, no new dependencies — but
//! hardened against the failure modes a socket facing real clients
//! sees:
//!
//! * **Bounded reads.** The request line + headers are capped at
//!   [`HttpLimits::max_head_bytes`] and the body at
//!   [`HttpLimits::max_body_bytes`]; a client streaming an endless
//!   header line gets a typed [`HttpError::TooLarge`], not unbounded
//!   memory growth (the exporter's original `read_line` loop had
//!   exactly that exposure).
//! * **Connection timeouts.** Every read and write carries
//!   [`HttpLimits::io_timeout`]; a slow or stalled client becomes a
//!   typed [`HttpError::Timeout`] instead of a hung handler thread.
//! * **Typed malformation.** Torn request lines, truncated bodies and
//!   unparseable framing surface as [`HttpError::Malformed`] with a
//!   static reason, each mapping to a canonical status code via
//!   [`HttpError::status`].
//!
//! The parser handles exactly the shape these servers need: one
//! request per connection, `Content-Length` framing (no chunked
//! encoding), `Connection: close` responses.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Default cap on request-line + header bytes.
pub const DEFAULT_MAX_HEAD_BYTES: usize = 8 * 1024;

/// Default cap on request-body bytes.
pub const DEFAULT_MAX_BODY_BYTES: usize = 64 * 1024;

/// Default per-connection read/write timeout.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Read/size bounds applied to one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers before [`HttpError::TooLarge`].
    pub max_head_bytes: usize,
    /// Maximum declared/accepted body bytes before [`HttpError::TooLarge`].
    pub max_body_bytes: usize,
    /// Socket read/write timeout; expiry is [`HttpError::Timeout`].
    pub io_timeout: Duration,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self {
            max_head_bytes: DEFAULT_MAX_HEAD_BYTES,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            io_timeout: DEFAULT_IO_TIMEOUT,
        }
    }
}

/// Why a request could not be read. Each variant maps to a canonical
/// HTTP status via [`HttpError::status`], so handlers can answer
/// instead of hanging up.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (reset, broken pipe, ...).
    Io(io::Error),
    /// The client was slower than [`HttpLimits::io_timeout`].
    Timeout,
    /// A size limit was exceeded.
    TooLarge {
        /// What grew past the limit (`"request head"` / `"request body"`).
        what: &'static str,
        /// The limit in bytes.
        limit: usize,
    },
    /// The bytes received do not parse as an HTTP request.
    Malformed(&'static str),
}

impl HttpError {
    /// Canonical `(status, reason)` for this error: 408 for timeouts,
    /// 413 for oversize requests, 400 for everything malformed.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::Timeout => (408, "Request Timeout"),
            HttpError::TooLarge { .. } => (413, "Payload Too Large"),
            HttpError::Io(_) | HttpError::Malformed(_) => (400, "Bad Request"),
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Timeout => write!(f, "client read/write timed out"),
            HttpError::TooLarge { what, limit } => {
                write!(f, "{what} exceeds {limit} bytes")
            }
            HttpError::Malformed(reason) => write!(f, "malformed request: {reason}"),
        }
    }
}

fn map_io(e: io::Error) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), upper-case as received.
    pub method: String,
    /// Request target (path + query), verbatim.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` framed; empty when absent).
    pub body: String,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }
}

/// Index just past the first blank line (`\r\n\r\n` or `\n\n`), if any.
fn head_end(bytes: &[u8]) -> Option<usize> {
    if let Some(i) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
        return Some(i + 4);
    }
    bytes.windows(2).position(|w| w == b"\n\n").map(|i| i + 2)
}

/// Read and parse one request from `stream` under `limits`. Applies the
/// read/write timeouts to the stream as a side effect, so a later
/// [`write_response`] on the same stream is bounded too.
pub fn read_request(stream: &mut TcpStream, limits: &HttpLimits) -> Result<Request, HttpError> {
    stream
        .set_read_timeout(Some(limits.io_timeout))
        .map_err(HttpError::Io)?;
    stream
        .set_write_timeout(Some(limits.io_timeout))
        .map_err(HttpError::Io)?;

    // Accumulate until the blank line ending the head; anything after
    // it is the start of the body.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let body_start = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::TooLarge {
                what: "request head",
                limit: limits.max_head_bytes,
            });
        }
        let n = stream.read(&mut chunk).map_err(map_io)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before end of headers",
            ));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
    };

    let (head_bytes, body_prefix) = buf.split_at(body_start);
    let head = String::from_utf8_lossy(head_bytes);
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("request line has no target"))?
        .to_string();

    let mut headers = Vec::new();
    for line in lines {
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header line without a colon"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed("unparseable Content-Length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(HttpError::TooLarge {
            what: "request body",
            limit: limits.max_body_bytes,
        });
    }

    let mut body = body_prefix.to_vec();
    body.truncate(content_length);
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(map_io)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body"));
        }
        let want = content_length - body.len();
        body.extend_from_slice(chunk.get(..n.min(want)).unwrap_or_default());
    }

    Ok(Request {
        method,
        path,
        headers,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// One response, written with `Connection: close` framing.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra `(name, value)` headers (e.g. `Retry-After`).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// Reason phrase for the status codes these servers emit.
    pub fn reason_for(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Response",
        }
    }

    /// A `200 OK` response.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        Self::with_status(200, content_type, body)
    }

    /// A response with an arbitrary status and canonical reason phrase.
    pub fn with_status(status: u16, content_type: &'static str, body: String) -> Self {
        Response {
            status,
            reason: Self::reason_for(status),
            content_type,
            headers: Vec::new(),
            body,
        }
    }

    /// Builder-style extra header.
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }
}

/// Serialize `response` to `stream` (with `Content-Length` and
/// `Connection: close`) and flush. The stream's write timeout (set by
/// [`read_request`], or by the caller) bounds the whole write.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut out = String::with_capacity(response.body.len() + 128);
    out.push_str(&format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.reason,
        response.content_type,
        response.body.len(),
    ));
    for (name, value) in &response.headers {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    out.push_str("\r\n");
    out.push_str(&response.body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &[u8], limits: HttpLimits) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("send");
            // Keep the socket open briefly so the server sees a stall,
            // not EOF, when it wants more bytes than were sent.
            std::thread::sleep(Duration::from_millis(300));
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let result = read_request(&mut stream, &limits);
        client.join().expect("client thread");
        result
    }

    #[test]
    fn parses_post_with_body_and_headers() {
        let raw = b"POST /solve HTTP/1.1\r\nHost: x\r\nX-Deadline-Ms: 250\r\n\
                    Content-Length: 11\r\n\r\nhello world";
        let req = round_trip(raw, HttpLimits::default()).expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.header("x-deadline-ms"), Some("250"));
        assert_eq!(req.header("X-DEADLINE-MS"), Some("250"));
        assert_eq!(req.body, "hello world");
    }

    #[test]
    fn oversized_head_is_typed_not_unbounded() {
        let mut raw = b"GET /metrics HTTP/1.1\r\nX-Junk: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 64 * 1024));
        let limits = HttpLimits {
            max_head_bytes: 1024,
            ..Default::default()
        };
        match round_trip(&raw, limits) {
            Err(HttpError::TooLarge { what, limit }) => {
                assert_eq!(what, "request head");
                assert_eq!(limit, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_declared_body_is_rejected_before_reading_it() {
        let raw = b"POST /solve HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        match round_trip(raw, HttpLimits::default()) {
            Err(HttpError::TooLarge { what, .. }) => assert_eq!(what, "request body"),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn slow_client_times_out_instead_of_hanging() {
        let limits = HttpLimits {
            io_timeout: Duration::from_millis(100),
            ..Default::default()
        };
        let started = std::time::Instant::now();
        match round_trip(b"GET /metr", limits) {
            Err(HttpError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(started.elapsed() < Duration::from_secs(2), "bounded wait");
    }

    #[test]
    fn torn_body_is_malformed() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"POST /solve HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort")
                .expect("send");
            s.shutdown(std::net::Shutdown::Write).expect("shutdown");
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let result = read_request(&mut stream, &HttpLimits::default());
        client.join().expect("client thread");
        match result {
            Err(HttpError::Malformed(reason)) => assert!(reason.contains("mid-body")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn error_statuses_are_canonical() {
        assert_eq!(HttpError::Timeout.status().0, 408);
        assert_eq!(
            HttpError::TooLarge {
                what: "request head",
                limit: 1
            }
            .status()
            .0,
            413
        );
        assert_eq!(HttpError::Malformed("x").status().0, 400);
        assert_eq!(Response::reason_for(429), "Too Many Requests");
    }

    #[test]
    fn write_response_emits_content_length_and_close() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let resp = Response::with_status(429, "application/json", "{\"e\":1}".to_string())
                .header("Retry-After", "1");
            write_response(&mut stream, &resp).expect("write");
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut text = String::new();
        stream.read_to_string(&mut text).expect("read");
        server.join().expect("server thread");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("{\"e\":1}"));
    }
}

//! Trace-diff engine for regression attribution: align two trace runs'
//! span call trees and report, per span, how self/total wall time and
//! latency percentiles moved — so "the benchmark regressed 8%" becomes
//! "`solver.solve_fast` gained 7.9 ms of self time".
//!
//! Alignment is by registered span name *plus* tree path (the
//! `root;mid;leaf` chain used by folded stacks): two nodes only pair up
//! when the same name sits in the same place of the call tree, so a
//! re-parented span shows up as one vanished and one new entry rather
//! than a bogus delta. Paths inherit [`crate::profile::SpanProfile`]'s
//! semantics — first-observed parent, orphan parents treated as roots,
//! parent-edge cycles cut at the repeated name.
//!
//! The result serializes under schema [`SCHEMA`] and renders three ways:
//! a human table ([`TraceDiff::render`]), compact JSON
//! ([`TraceDiff::to_json`]), and a *differential* folded-stack form
//! ([`TraceDiff::to_folded`]) whose sample counts are signed self-time
//! deltas in microseconds, for side-by-side flamegraph tooling.

use crate::json;
use crate::profile::SpanProfile;
use serde::Serialize;
use std::collections::BTreeMap;

/// Schema tag of the serialized diff. Bump the suffix when fields
/// change; `schema-version-once` (xlint) keeps this the single
/// definition.
pub const SCHEMA: &str = "xmodel-trace-diff/1";

/// Default absolute self-time floor below which a delta is noise, µs.
pub const DEFAULT_MIN_US: f64 = 100.0;

/// Default relative change (vs the base's self time) below which a
/// delta is noise.
pub const DEFAULT_REL: f64 = 0.05;

/// How a span aligned across the two traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStatus {
    /// Present at the same tree path in both traces.
    Common,
    /// Only in the new trace (or moved to a new tree path).
    New,
    /// Only in the base trace (or moved away from this tree path).
    Vanished,
}

impl SpanStatus {
    /// Stable lowercase form used in tables and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanStatus::Common => "common",
            SpanStatus::New => "new",
            SpanStatus::Vanished => "vanished",
        }
    }
}

impl Serialize for SpanStatus {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

/// Base → new shift of one latency quantile, microseconds.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct QuantileShift {
    /// Quantile estimate in the base trace.
    pub base_us: f64,
    /// Quantile estimate in the new trace.
    pub new_us: f64,
    /// `new_us − base_us`.
    pub delta_us: f64,
}

impl QuantileShift {
    fn between(base: f64, new: f64) -> QuantileShift {
        QuantileShift {
            base_us: base,
            new_us: new,
            delta_us: new - base,
        }
    }
}

/// One aligned span's movement between the two traces.
#[derive(Debug, Clone, Serialize)]
pub struct SpanDelta {
    /// Span name (last element of `path`).
    pub name: String,
    /// Semicolon-joined tree path, `root;mid;leaf`.
    pub path: String,
    /// Alignment status.
    pub status: SpanStatus,
    /// Completed spans in the base trace.
    pub base_count: u64,
    /// Completed spans in the new trace.
    pub new_count: u64,
    /// Self time in the base trace, µs.
    pub base_self_us: f64,
    /// Self time in the new trace, µs.
    pub new_self_us: f64,
    /// `new_self_us − base_self_us`.
    pub self_delta_us: f64,
    /// Total (inclusive) time in the base trace, µs.
    pub base_total_us: f64,
    /// Total (inclusive) time in the new trace, µs.
    pub new_total_us: f64,
    /// `new_total_us − base_total_us`.
    pub total_delta_us: f64,
    /// Median single-span latency shift.
    pub p50: QuantileShift,
    /// 95th-percentile single-span latency shift.
    pub p95: QuantileShift,
    /// 99th-percentile single-span latency shift.
    pub p99: QuantileShift,
}

impl SpanDelta {
    /// Is this delta worth reporting? True for new/vanished spans and
    /// for self-time moves exceeding both the absolute floor `min_us`
    /// and the relative threshold `rel`. The relative scale is the
    /// base's self time; a span with zero base self time (all time in
    /// its children) falls back to the base *total* time so `rel` keeps
    /// meaning instead of flagging every over-floor delta, and only when
    /// both are zero does the absolute floor alone decide.
    pub fn significant(&self, min_us: f64, rel: f64) -> bool {
        if self.status != SpanStatus::Common {
            return true;
        }
        let magnitude = self.self_delta_us.abs();
        if magnitude <= min_us {
            return false;
        }
        let scale = if self.base_self_us.abs() > 0.0 {
            self.base_self_us.abs()
        } else {
            self.base_total_us.abs()
        };
        scale == 0.0 || magnitude > rel * scale
    }

    /// Significant *and* slower (`self_delta_us > 0`): a culprit.
    pub fn regression(&self, min_us: f64, rel: f64) -> bool {
        self.significant(min_us, rel) && self.self_delta_us > 0.0
    }
}

/// The aligned diff of two trace runs.
#[derive(Debug, Clone, Serialize)]
pub struct TraceDiff {
    /// Line discriminator for JSON output: always `"trace_diff"`.
    pub kind: &'static str,
    /// Schema tag ([`SCHEMA`]).
    pub schema: &'static str,
    /// Per-span deltas, sorted by `self_delta_us` descending (worst
    /// regressions first; ties broken by path for determinism).
    pub deltas: Vec<SpanDelta>,
    /// Reader warnings from either profile, prefixed `base:` / `new:`.
    pub warnings: Vec<String>,
}

/// Tree path of every node: semicolon-joined parent chain ending in the
/// node's own name, with [`SpanProfile::roots`] semantics (orphan parent
/// ⇒ root) and parent-edge cycles cut at the repeated name.
fn tree_paths(profile: &SpanProfile) -> BTreeMap<String, String> {
    let mut paths = BTreeMap::new();
    for name in profile.nodes.keys() {
        let mut chain = vec![name.clone()];
        let mut cursor = name.as_str();
        while let Some(parent) = profile
            .nodes
            .get(cursor)
            .and_then(|node| node.parent.as_deref())
        {
            if !profile.nodes.contains_key(parent) || chain.iter().any(|seen| seen == parent) {
                break;
            }
            chain.push(parent.to_string());
            cursor = parent;
        }
        chain.reverse();
        paths.insert(name.clone(), chain.join(";"));
    }
    paths
}

impl TraceDiff {
    /// Align `base` and `new` and compute all per-span deltas.
    pub fn between(base: &SpanProfile, new: &SpanProfile) -> TraceDiff {
        let base_paths = tree_paths(base);
        let new_paths = tree_paths(new);

        let mut deltas = Vec::new();
        for (name, base_node) in &base.nodes {
            let base_path = base_paths
                .get(name)
                .cloned()
                .unwrap_or_else(|| name.clone());
            let aligned = new
                .nodes
                .get(name)
                .filter(|_| new_paths.get(name) == Some(&base_path));
            let quantile = |q: f64| {
                QuantileShift::between(
                    base_node.hist.quantile(q).unwrap_or(0.0),
                    aligned.and_then(|n| n.hist.quantile(q)).unwrap_or(0.0),
                )
            };
            let new_self = if aligned.is_some() {
                new.self_us(name)
            } else {
                0.0
            };
            let base_self = base.self_us(name);
            let new_total = aligned.map(|n| n.total_us).unwrap_or(0.0);
            deltas.push(SpanDelta {
                name: name.clone(),
                path: base_path,
                status: if aligned.is_some() {
                    SpanStatus::Common
                } else {
                    SpanStatus::Vanished
                },
                base_count: base_node.count,
                new_count: aligned.map(|n| n.count).unwrap_or(0),
                base_self_us: base_self,
                new_self_us: new_self,
                self_delta_us: new_self - base_self,
                base_total_us: base_node.total_us,
                new_total_us: new_total,
                total_delta_us: new_total - base_node.total_us,
                p50: quantile(0.50),
                p95: quantile(0.95),
                p99: quantile(0.99),
            });
        }
        for (name, new_node) in &new.nodes {
            let new_path = new_paths.get(name).cloned().unwrap_or_else(|| name.clone());
            let already_aligned =
                base.nodes.contains_key(name) && base_paths.get(name) == Some(&new_path);
            if already_aligned {
                continue;
            }
            let new_self = new.self_us(name);
            let quantile =
                |q: f64| QuantileShift::between(0.0, new_node.hist.quantile(q).unwrap_or(0.0));
            deltas.push(SpanDelta {
                name: name.clone(),
                path: new_path,
                status: SpanStatus::New,
                base_count: 0,
                new_count: new_node.count,
                base_self_us: 0.0,
                new_self_us: new_self,
                self_delta_us: new_self,
                base_total_us: 0.0,
                new_total_us: new_node.total_us,
                total_delta_us: new_node.total_us,
                p50: quantile(0.50),
                p95: quantile(0.95),
                p99: quantile(0.99),
            });
        }
        deltas.sort_by(|a, b| {
            b.self_delta_us
                .total_cmp(&a.self_delta_us)
                .then_with(|| a.path.cmp(&b.path))
        });

        let mut warnings = Vec::new();
        warnings.extend(base.warnings.iter().map(|w| format!("base: {w}")));
        warnings.extend(new.warnings.iter().map(|w| format!("new: {w}")));
        TraceDiff {
            kind: "trace_diff",
            schema: SCHEMA,
            deltas,
            warnings,
        }
    }

    /// Deltas worth reporting at thresholds `(min_us, rel)` — see
    /// [`SpanDelta::significant`] — in the stored (worst-first) order.
    pub fn significant(&self, min_us: f64, rel: f64) -> Vec<&SpanDelta> {
        self.deltas
            .iter()
            .filter(|d| d.significant(min_us, rel))
            .collect()
    }

    /// Significant slowdowns only, worst first — the attribution list.
    pub fn culprits(&self, min_us: f64, rel: f64) -> Vec<&SpanDelta> {
        self.deltas
            .iter()
            .filter(|d| d.regression(min_us, rel))
            .collect()
    }

    /// True when [`TraceDiff::significant`] is non-empty — drives the
    /// CLI's "differences found" exit status.
    pub fn has_differences(&self, min_us: f64, rel: f64) -> bool {
        self.deltas.iter().any(|d| d.significant(min_us, rel))
    }

    /// Human table: one row per span (up to `top`), worst self-time
    /// regression first, with counts, self/total deltas and the p50/p95
    /// shifts. Insignificant rows are marked `·`, significant ones `!`.
    pub fn render(&self, top: usize, min_us: f64, rel: f64) -> String {
        let mut out = String::new();
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        if self.deltas.is_empty() {
            out.push_str("trace-diff: no span events in either trace\n");
            return out;
        }
        out.push_str(&format!(
            "{:<34} {:>8} {:>13} {:>12} {:>12} {:>11} {:>11}\n",
            "span (status)", "calls", "Δself ms", "Δtotal ms", "self b→n ms", "Δp50 µs", "Δp95 µs"
        ));
        let shown = self.deltas.len().min(top.max(1));
        for delta in self.deltas.iter().take(shown) {
            let marker = if delta.significant(min_us, rel) {
                "!"
            } else {
                "·"
            };
            let label = match delta.status {
                SpanStatus::Common => format!("{marker} {}", delta.name),
                other => format!("{marker} {} ({})", delta.name, other.as_str()),
            };
            out.push_str(&format!(
                "{:<34} {:>8} {:>+13.3} {:>+12.3} {:>12} {:>+11.1} {:>+11.1}\n",
                label,
                format!("{}→{}", delta.base_count, delta.new_count),
                delta.self_delta_us / 1e3,
                delta.total_delta_us / 1e3,
                format!(
                    "{:.1}→{:.1}",
                    delta.base_self_us / 1e3,
                    delta.new_self_us / 1e3
                ),
                delta.p50.delta_us,
                delta.p95.delta_us,
            ));
        }
        if self.deltas.len() > shown {
            out.push_str(&format!("... {} more span(s)\n", self.deltas.len() - shown));
        }
        out
    }

    /// Serialize to one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Differential folded-stack rendering: one `root;mid;leaf <±µs>`
    /// line per span whose self time moved, the "sample count" being the
    /// *signed* self-time delta rounded to whole microseconds. Lines
    /// sort by path so the output is diff-stable.
    pub fn to_folded(&self) -> String {
        let mut rows: Vec<(&str, i64)> = self
            .deltas
            .iter()
            .map(|d| (d.path.as_str(), d.self_delta_us.round() as i64))
            .filter(|&(_, delta)| delta != 0)
            .collect();
        rows.sort_unstable();
        let mut out = String::new();
        for (path, delta) in rows {
            out.push_str(&format!("{path} {delta:+}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(name: &str, parent: Option<&str>, dur_us: f64) -> String {
        match parent {
            Some(p) => format!(
                r#"{{"kind":"span","t_us":1,"name":"{name}","dur_us":{dur_us},"parent":"{p}"}}"#
            ),
            None => format!(r#"{{"kind":"span","t_us":1,"name":"{name}","dur_us":{dur_us}}}"#),
        }
    }

    fn profile(lines: &[String]) -> SpanProfile {
        SpanProfile::from_lines(lines.iter().map(String::as_str))
    }

    fn base_lines() -> Vec<String> {
        vec![
            span_line("leaf", Some("mid"), 100.0),
            span_line("leaf", Some("mid"), 300.0),
            span_line("mid", Some("root"), 500.0),
            span_line("root", None, 1000.0),
        ]
    }

    #[test]
    fn self_diff_is_all_zero_and_insignificant() {
        let base = profile(&base_lines());
        let diff = TraceDiff::between(&base, &base);
        assert_eq!(diff.schema, SCHEMA);
        assert_eq!(diff.deltas.len(), 3);
        for delta in &diff.deltas {
            assert_eq!(delta.status, SpanStatus::Common);
            assert_eq!(delta.self_delta_us, 0.0);
            assert_eq!(delta.total_delta_us, 0.0);
            assert_eq!(delta.p95.delta_us, 0.0);
        }
        assert!(!diff.has_differences(DEFAULT_MIN_US, DEFAULT_REL));
        assert!(diff.to_folded().is_empty());
    }

    #[test]
    fn slowed_span_ranks_first_with_correct_delta() {
        let base = profile(&base_lines());
        // `mid` gains 10 ms of self time (its children are unchanged).
        let slowed = vec![
            span_line("leaf", Some("mid"), 100.0),
            span_line("leaf", Some("mid"), 300.0),
            span_line("mid", Some("root"), 10500.0),
            span_line("root", None, 11000.0),
        ];
        let diff = TraceDiff::between(&base, &profile(&slowed));
        let first = diff.deltas.first().map(|d| d.name.as_str());
        assert_eq!(first, Some("mid"), "slowed span must rank #1");
        let mid = &diff.deltas[0];
        assert!((mid.self_delta_us - 10_000.0).abs() < 1e-6);
        assert_eq!(mid.path, "root;mid");
        assert!(mid.regression(DEFAULT_MIN_US, DEFAULT_REL));
        // `root` total grew but its self time did not.
        let root = diff
            .deltas
            .iter()
            .find(|d| d.name == "root")
            .expect("root aligned");
        assert!((root.total_delta_us - 10_000.0).abs() < 1e-6);
        assert!(root.self_delta_us.abs() < 1e-6);
        let culprits = diff.culprits(DEFAULT_MIN_US, DEFAULT_REL);
        assert_eq!(culprits.len(), 1);
        let folded = diff.to_folded();
        assert!(folded.contains("root;mid +10000"), "folded:\n{folded}");
    }

    #[test]
    fn new_and_vanished_spans_are_flagged() {
        let base = profile(&base_lines());
        let changed = vec![
            span_line("leaf", Some("mid"), 400.0),
            span_line("mid", Some("root"), 500.0),
            span_line("root", None, 1000.0),
            span_line("extra", Some("root"), 50.0),
        ];
        let diff = TraceDiff::between(&base, &profile(&changed));
        let extra = diff
            .deltas
            .iter()
            .find(|d| d.name == "extra")
            .expect("new span present");
        assert_eq!(extra.status, SpanStatus::New);
        assert_eq!(extra.base_count, 0);
        assert!(extra.significant(DEFAULT_MIN_US, DEFAULT_REL));
        assert!(diff.has_differences(DEFAULT_MIN_US, DEFAULT_REL));

        let reverse = TraceDiff::between(&profile(&changed), &base);
        let gone = reverse
            .deltas
            .iter()
            .find(|d| d.name == "extra")
            .expect("vanished span present");
        assert_eq!(gone.status, SpanStatus::Vanished);
        assert_eq!(gone.new_count, 0);
        assert!((gone.self_delta_us + 50.0).abs() < 1e-6);
    }

    #[test]
    fn reparented_span_splits_into_vanished_plus_new() {
        let base = profile(&base_lines());
        let moved = vec![
            span_line("leaf", Some("root"), 400.0), // was under mid
            span_line("mid", Some("root"), 500.0),
            span_line("root", None, 1000.0),
        ];
        let diff = TraceDiff::between(&base, &profile(&moved));
        let statuses: Vec<(&str, SpanStatus, &str)> = diff
            .deltas
            .iter()
            .filter(|d| d.name == "leaf")
            .map(|d| (d.name.as_str(), d.status, d.path.as_str()))
            .collect();
        assert!(
            statuses.contains(&("leaf", SpanStatus::Vanished, "root;mid;leaf")),
            "{statuses:?}"
        );
        assert!(
            statuses.contains(&("leaf", SpanStatus::New, "root;leaf")),
            "{statuses:?}"
        );
    }

    #[test]
    fn thresholds_separate_noise_from_signal() {
        let delta = SpanDelta {
            name: "s".into(),
            path: "s".into(),
            status: SpanStatus::Common,
            base_count: 1,
            new_count: 1,
            base_self_us: 10_000.0,
            new_self_us: 10_300.0,
            self_delta_us: 300.0,
            base_total_us: 10_000.0,
            new_total_us: 10_300.0,
            total_delta_us: 300.0,
            p50: QuantileShift::default(),
            p95: QuantileShift::default(),
            p99: QuantileShift::default(),
        };
        // 3% over a 10 ms base: over the absolute floor, under 5% rel.
        assert!(!delta.significant(DEFAULT_MIN_US, DEFAULT_REL));
        assert!(delta.significant(DEFAULT_MIN_US, 0.01));
        // Improvements are significant but not regressions.
        let mut faster = delta.clone();
        faster.self_delta_us = -900.0;
        assert!(faster.significant(DEFAULT_MIN_US, DEFAULT_REL));
        assert!(!faster.regression(DEFAULT_MIN_US, DEFAULT_REL));
    }

    #[test]
    fn zero_base_self_time_respects_relative_threshold() {
        // A pure-parent span: all base time in its children, so base
        // self time is 0 µs but base total is 100 ms. A 200 µs self-time
        // wobble clears the absolute floor; it must still be measured
        // against the base *total* so `--rel` keeps meaning.
        let wobble = SpanDelta {
            name: "parent".into(),
            path: "parent".into(),
            status: SpanStatus::Common,
            base_count: 1,
            new_count: 1,
            base_self_us: 0.0,
            new_self_us: 200.0,
            self_delta_us: 200.0,
            base_total_us: 100_000.0,
            new_total_us: 100_200.0,
            total_delta_us: 200.0,
            p50: QuantileShift::default(),
            p95: QuantileShift::default(),
            p99: QuantileShift::default(),
        };
        // 200 µs is 0.2% of the 100 ms base total: noise at rel = 5%.
        assert!(!wobble.significant(DEFAULT_MIN_US, DEFAULT_REL));
        // A genuinely large move (10 ms = 10% of base total) still fires.
        let mut real = wobble.clone();
        real.new_self_us = 10_000.0;
        real.self_delta_us = 10_000.0;
        assert!(real.significant(DEFAULT_MIN_US, DEFAULT_REL));
        // Both base self and total zero: the absolute floor decides.
        let mut fresh = wobble.clone();
        fresh.base_total_us = 0.0;
        assert!(fresh.significant(DEFAULT_MIN_US, DEFAULT_REL));
        assert!(!fresh.significant(500.0, DEFAULT_REL));
    }

    #[test]
    fn json_and_render_are_consistent() {
        let base = profile(&base_lines());
        let diff = TraceDiff::between(&base, &base);
        let parsed = json::parse(&diff.to_json()).expect("diff JSON parses");
        assert_eq!(
            parsed.get("kind").and_then(crate::json::JsonValue::as_str),
            Some("trace_diff")
        );
        assert_eq!(
            parsed
                .get("schema")
                .and_then(crate::json::JsonValue::as_str),
            Some(SCHEMA)
        );
        let table = diff.render(10, DEFAULT_MIN_US, DEFAULT_REL);
        assert!(table.contains("Δself ms"));
        assert!(table.contains("root"));
        // Cycles in the parent chain must not hang path building.
        let looped = vec![
            span_line("a", Some("b"), 10.0),
            span_line("b", Some("a"), 10.0),
        ];
        let p = profile(&looped);
        let d = TraceDiff::between(&p, &p);
        assert_eq!(d.deltas.len(), 2);
    }
}

//! Trace analysis for `xmodel trace-report`: read a JSONL trace back,
//! tally events by kind, reconstruct the span tree with timings, and
//! surface the run manifest.

use crate::json::{self, JsonValue};
use std::collections::BTreeMap;

/// Timing stats for one span name.
#[derive(Debug, Clone, Default)]
pub struct SpanStats {
    /// Completed spans with this name.
    pub count: u64,
    /// Total duration, microseconds.
    pub total_us: f64,
    /// Shortest single span, microseconds.
    pub min_us: f64,
    /// Longest single span, microseconds.
    pub max_us: f64,
    /// Parent span name (first observed).
    pub parent: Option<String>,
}

/// Everything `trace-report` extracts from a trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Total lines read.
    pub lines: usize,
    /// Lines that failed to parse as JSON objects.
    pub malformed: usize,
    /// Event counts by kind (spans and manifests included).
    pub counts: BTreeMap<String, u64>,
    /// Span timing stats by name.
    pub spans: BTreeMap<String, SpanStats>,
    /// The run manifest line, if present.
    pub manifest: Option<JsonValue>,
}

impl TraceReport {
    /// Build a report from trace lines.
    pub fn from_lines<'a>(lines: impl Iterator<Item = &'a str>) -> TraceReport {
        let mut report = TraceReport::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            report.lines += 1;
            let Ok(value) = json::parse(line) else {
                report.malformed += 1;
                continue;
            };
            let Some(kind) = value.get("kind").and_then(JsonValue::as_str) else {
                report.malformed += 1;
                continue;
            };
            *report.counts.entry(kind.to_string()).or_default() += 1;
            match kind {
                "span" => report.record_span(&value),
                "run_manifest" => report.manifest = Some(value),
                _ => {}
            }
        }
        report
    }

    /// Build a report by reading `path`. Invalid UTF-8 is replaced, not
    /// fatal — a torn write mid-line must still yield a best-effort
    /// report; only a missing/unreadable file errors.
    pub fn from_path(path: &std::path::Path) -> std::io::Result<TraceReport> {
        let bytes = std::fs::read(path)?;
        let text = String::from_utf8_lossy(&bytes);
        Ok(Self::from_lines(text.lines()))
    }

    fn record_span(&mut self, value: &JsonValue) {
        let Some(name) = value.get("name").and_then(JsonValue::as_str) else {
            self.malformed += 1; // a `span` line without its name
            return;
        };
        let dur_us = value
            .get("dur_us")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        let stats = self.spans.entry(name.to_string()).or_default();
        if stats.count == 0 {
            stats.min_us = dur_us;
            stats.max_us = dur_us;
            stats.parent = value
                .get("parent")
                .and_then(JsonValue::as_str)
                .map(str::to_string);
        } else {
            stats.min_us = stats.min_us.min(dur_us);
            stats.max_us = stats.max_us.max(dur_us);
        }
        stats.count += 1;
        stats.total_us += dur_us;
    }

    /// Render the human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} lines ({} malformed)\n",
            self.lines, self.malformed
        ));
        if self.lines == 0 {
            out.push_str("warning: trace is empty\n");
        } else if self.malformed > 0 {
            out.push_str(&format!(
                "warning: {} malformed line(s) skipped (truncated trace?)\n",
                self.malformed
            ));
        }

        if let Some(manifest) = &self.manifest {
            let field = |k: &str| {
                manifest
                    .get(k)
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?")
                    .to_string()
            };
            let wall_ms = manifest
                .get("wall_ms")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            out.push_str(&format!(
                "run: `{}` version {} ({:.1} ms wall)\n",
                field("command"),
                field("version"),
                wall_ms
            ));
            if let Some(JsonValue::Object(params)) = manifest.get("params") {
                if !params.is_empty() {
                    let joined: Vec<String> = params
                        .iter()
                        .map(|(k, v)| match v.as_str() {
                            Some(s) => format!("{k}={s}"),
                            None => format!("{k}=?"),
                        })
                        .collect();
                    out.push_str(&format!("params: {}\n", joined.join(" ")));
                }
            }
            if let Some(seed) = manifest.get("seed").and_then(JsonValue::as_u64) {
                out.push_str(&format!("seed: {seed}\n"));
            }
        } else {
            out.push_str("run: (no manifest found — truncated trace?)\n");
        }

        if !self.spans.is_empty() {
            out.push_str("\nspans:\n");
            // Roots: spans with no parent, or whose parent never completed.
            let roots: Vec<&String> = self
                .spans
                .iter()
                .filter(|(_, s)| {
                    s.parent
                        .as_ref()
                        .is_none_or(|p| !self.spans.contains_key(p))
                })
                .map(|(name, _)| name)
                .collect();
            for root in roots {
                self.render_span_tree(&mut out, root, 0);
            }
        }

        out.push_str("\nevents:\n");
        let mut kinds: Vec<(&String, &u64)> = self.counts.iter().collect();
        kinds.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (kind, count) in kinds {
            out.push_str(&format!("  {count:>8}  {kind}\n"));
        }
        out
    }

    fn render_span_tree(&self, out: &mut String, name: &str, depth: usize) {
        let Some(stats) = self.spans.get(name) else {
            return;
        };
        let indent = "  ".repeat(depth + 1);
        let mean_us = stats.total_us / stats.count.max(1) as f64;
        out.push_str(&format!(
            "{indent}{name:<24} {:>6}x  total {:>10.1} µs  mean {:>9.1} µs  [{:.1} .. {:.1}]\n",
            stats.count, stats.total_us, mean_us, stats.min_us, stats.max_us
        ));
        let children: Vec<&String> = self
            .spans
            .iter()
            .filter(|(child, s)| s.parent.as_deref() == Some(name) && child.as_str() != name)
            .map(|(child, _)| child)
            .collect();
        for child in children {
            self.render_span_tree(out, child, depth + 1);
        }
    }
}

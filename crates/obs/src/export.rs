//! Live metrics endpoint: a std-only background exporter serving the
//! metrics registry ([`crate::metrics`]) and span aggregates
//! ([`crate::span`]) as Prometheus text format (version 0.0.4) over
//! plain HTTP.
//!
//! Built directly on [`std::net::TcpListener`] — no HTTP framework, no
//! new dependencies — because the endpoint only ever answers one shape
//! of request: `GET /metrics`. The CLI wires this to `--metrics-addr
//! HOST:PORT` and the `XMODEL_METRICS_ADDR` environment variable so
//! long-running sweeps can be scraped (or just `curl`ed) mid-run.
//!
//! The exporter thread is spawned **only** by [`serve`]; when no address
//! is configured nothing here runs and the instrumentation fast path is
//! untouched.

use crate::metrics;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Handle to a running exporter. Dropping it does **not** stop the
/// server — the thread is detached and serves until process exit, which
/// is the lifetime a run-scoped scrape target wants.
#[derive(Debug, Clone, Copy)]
pub struct MetricsServer {
    addr: SocketAddr,
}

impl MetricsServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port) and
/// serve `/metrics` from a detached background thread.
pub fn serve(addr: &str) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("xmodel-metrics".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                // One connection at a time: scrape bodies are tiny and
                // serialized access keeps the thread budget at one.
                let _ = handle_connection(stream);
            }
        })?;
    Ok(MetricsServer { addr: bound })
}

fn handle_connection(stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers until the blank line; we never need their contents.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = if path == "/metrics" || path == "/" {
        ("200 OK", render_prometheus())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

/// Replace every character Prometheus metric names reject with `_`
/// (names here are dotted, e.g. `solver.brackets`).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escape a Prometheus label value.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Render the current metrics snapshot and span aggregates as
/// Prometheus text format. Span-duration histograms (named
/// `span_us.<name>`) collapse into one `xmodel_span_duration_us` family
/// with a `span` label; everything else exports under its sanitized
/// name prefixed `xmodel_`.
pub fn render_prometheus() -> String {
    let snap = metrics::snapshot();
    let mut out = String::new();

    for (name, value) in &snap.counters {
        let metric = format!("xmodel_{}", sanitize(name));
        out.push_str(&format!("# TYPE {metric} counter\n{metric} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let metric = format!("xmodel_{}", sanitize(name));
        out.push_str(&format!(
            "# TYPE {metric} gauge\n{metric} {}\n",
            fmt_value(*value)
        ));
    }
    for (name, hist) in &snap.histograms {
        let (metric, label) = match name.strip_prefix("span_us.") {
            Some(span) => (
                "xmodel_span_duration_us".to_string(),
                format!("span=\"{}\",", escape_label(span)),
            ),
            None => (format!("xmodel_{}", sanitize(name)), String::new()),
        };
        out.push_str(&format!("# TYPE {metric} histogram\n"));
        let mut cumulative = 0u64;
        for (i, count) in hist.counts.iter().enumerate() {
            cumulative += count;
            let le = match hist.edges.get(i) {
                Some(edge) => fmt_value(*edge),
                None => "+Inf".to_string(),
            };
            out.push_str(&format!(
                "{metric}_bucket{{{label}le=\"{le}\"}} {cumulative}\n"
            ));
        }
        let bare = label.trim_end_matches(',');
        let series = |suffix: &str| {
            if bare.is_empty() {
                format!("{metric}{suffix}")
            } else {
                format!("{metric}{suffix}{{{bare}}}")
            }
        };
        out.push_str(&format!("{} {}\n", series("_sum"), fmt_value(hist.sum)));
        out.push_str(&format!("{} {cumulative}\n", series("_count")));
    }

    // Span aggregates as counters, so scrapers see phase totals even
    // between manifest writes.
    let aggs = crate::span::aggregates();
    if !aggs.is_empty() {
        out.push_str("# TYPE xmodel_span_calls_total counter\n");
        for (name, agg) in &aggs {
            out.push_str(&format!(
                "xmodel_span_calls_total{{span=\"{}\"}} {}\n",
                escape_label(name),
                agg.count
            ));
        }
        out.push_str("# TYPE xmodel_span_seconds_total counter\n");
        for (name, agg) in &aggs {
            out.push_str(&format!(
                "xmodel_span_seconds_total{{span=\"{}\"}} {}\n",
                escape_label(name),
                fmt_value(agg.total_ns as f64 / 1e9)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_rewrites_bad_characters() {
        assert_eq!(sanitize("solver.brackets"), "solver_brackets");
        assert_eq!(sanitize("0abc-d"), "_abc_d");
        assert_eq!(sanitize("a0:b_c"), "a0:b_c");
    }

    #[test]
    fn prometheus_rendering_is_wellformed_when_empty() {
        // No install() here: whatever global state exists, rendering
        // must produce parseable output (possibly empty).
        let text = render_prometheus();
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "bad exposition line: {line}"
            );
        }
    }
}

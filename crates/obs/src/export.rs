//! Live metrics endpoint: a std-only background exporter serving the
//! metrics registry ([`crate::metrics`]) and span aggregates
//! ([`crate::span`]) as Prometheus text format (version 0.0.4) over
//! plain HTTP.
//!
//! Built directly on [`std::net::TcpListener`] — no HTTP framework, no
//! new dependencies — because the endpoint only ever answers one shape
//! of request: `GET /metrics`. The CLI wires this to `--metrics-addr
//! HOST:PORT` and the `XMODEL_METRICS_ADDR` environment variable so
//! long-running sweeps can be scraped (or just `curl`ed) mid-run.
//!
//! The exporter thread is spawned **only** by [`serve`]; when no address
//! is configured nothing here runs and the instrumentation fast path is
//! untouched.

use crate::http::{self, HttpLimits, Response};
use crate::metrics;
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Handle to a running exporter. Dropping it does **not** stop the
/// server — the thread is detached and serves until process exit, which
/// is the lifetime a run-scoped scrape target wants.
#[derive(Debug, Clone, Copy)]
pub struct MetricsServer {
    addr: SocketAddr,
}

impl MetricsServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port) and
/// serve `/metrics` from a detached background thread.
pub fn serve(addr: &str) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("xmodel-metrics".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                // One connection at a time: scrape bodies are tiny and
                // serialized access keeps the thread budget at one.
                let _ = handle_connection(stream);
            }
        })?;
    Ok(MetricsServer { addr: bound })
}

/// Prometheus exposition-format content type.
const PROMETHEUS_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";

fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    // The bounded reader replaces the old unbounded `read_line` loop: a
    // client streaming an endless header (or just stalling) now gets a
    // typed error response within `HttpLimits::io_timeout` instead of
    // pinning the exporter thread.
    let limits = HttpLimits::default();
    let response = match http::read_request(&mut stream, &limits) {
        Ok(req) if req.path == "/metrics" || req.path == "/" => {
            Response::ok(PROMETHEUS_TEXT, render_prometheus())
        }
        Ok(_) => Response::with_status(404, PROMETHEUS_TEXT, "not found\n".to_string()),
        Err(e) => {
            let (status, _) = e.status();
            Response::with_status(status, PROMETHEUS_TEXT, format!("{e}\n"))
        }
    };
    http::write_response(&mut stream, &response)
}

/// Replace every character Prometheus metric names reject with `_`
/// (names here are dotted, e.g. `solver.brackets`).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escape a Prometheus label value.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escape `# HELP` text (the format escapes backslash and line feed
/// only; quotes are legal in help text).
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// `# HELP` + `# TYPE` header for one metric family. `help` falls back
/// to the `obs::names` registry when the caller has nothing better.
fn family_header(out: &mut String, metric: &str, kind: &str, help: Option<&str>) {
    if let Some(help) = help {
        out.push_str(&format!("# HELP {metric} {}\n", escape_help(help)));
    }
    out.push_str(&format!("# TYPE {metric} {kind}\n"));
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Render the current metrics snapshot and span aggregates as
/// Prometheus text format. Span-duration histograms (named
/// `span_us.<name>`) collapse into one `xmodel_span_duration_us` family
/// with a `span` label; everything else exports under its sanitized
/// name prefixed `xmodel_`.
pub fn render_prometheus() -> String {
    let snap = metrics::snapshot();
    let mut out = String::new();

    for (name, value) in &snap.counters {
        let metric = format!("xmodel_{}", sanitize(name));
        family_header(
            &mut out,
            &metric,
            "counter",
            crate::names::metric_help(name),
        );
        out.push_str(&format!("{metric} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let metric = format!("xmodel_{}", sanitize(name));
        family_header(&mut out, &metric, "gauge", crate::names::metric_help(name));
        out.push_str(&format!("{metric} {}\n", fmt_value(*value)));
    }
    // Histogram families may span several registry entries (every
    // `span_us.<name>` collapses into `xmodel_span_duration_us`); the
    // format allows each `# TYPE`/`# HELP` line at most once per family.
    let mut seen_families: Vec<String> = Vec::new();
    for (name, hist) in &snap.histograms {
        let (metric, label, help) = match name.strip_prefix("span_us.") {
            Some(span) => (
                "xmodel_span_duration_us".to_string(),
                format!("span=\"{}\",", escape_label(span)),
                Some("span duration in microseconds"),
            ),
            None => (
                format!("xmodel_{}", sanitize(name)),
                String::new(),
                crate::names::metric_help(name),
            ),
        };
        if !seen_families.contains(&metric) {
            family_header(&mut out, &metric, "histogram", help);
            seen_families.push(metric.clone());
        }
        let mut cumulative = 0u64;
        let mut inf_emitted = false;
        for (i, count) in hist.counts.iter().enumerate() {
            cumulative += count;
            let le = match hist.edges.get(i) {
                Some(edge) => fmt_value(*edge),
                None => {
                    inf_emitted = true;
                    "+Inf".to_string()
                }
            };
            out.push_str(&format!(
                "{metric}_bucket{{{label}le=\"{le}\"}} {cumulative}\n"
            ));
        }
        // The registry always allocates the overflow bucket, but the
        // format *requires* an `le="+Inf"` series — keep the guarantee
        // local so a registry change cannot silently break scrapers.
        if !inf_emitted {
            out.push_str(&format!(
                "{metric}_bucket{{{label}le=\"+Inf\"}} {cumulative}\n"
            ));
        }
        let bare = label.trim_end_matches(',');
        let series = |suffix: &str| {
            if bare.is_empty() {
                format!("{metric}{suffix}")
            } else {
                format!("{metric}{suffix}{{{bare}}}")
            }
        };
        out.push_str(&format!("{} {}\n", series("_sum"), fmt_value(hist.sum)));
        out.push_str(&format!("{} {cumulative}\n", series("_count")));
    }

    // Span aggregates as counters, so scrapers see phase totals even
    // between manifest writes.
    let aggs = crate::span::aggregates();
    if !aggs.is_empty() {
        family_header(
            &mut out,
            "xmodel_span_calls_total",
            "counter",
            Some("completed spans by name"),
        );
        for (name, agg) in &aggs {
            out.push_str(&format!(
                "xmodel_span_calls_total{{span=\"{}\"}} {}\n",
                escape_label(name),
                agg.count
            ));
        }
        family_header(
            &mut out,
            "xmodel_span_seconds_total",
            "counter",
            Some("total wall time in spans by name"),
        );
        for (name, agg) in &aggs {
            out.push_str(&format!(
                "xmodel_span_seconds_total{{span=\"{}\"}} {}\n",
                escape_label(name),
                fmt_value(agg.total_ns as f64 / 1e9)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_rewrites_bad_characters() {
        assert_eq!(sanitize("solver.brackets"), "solver_brackets");
        assert_eq!(sanitize("0abc-d"), "_abc_d");
        assert_eq!(sanitize("a0:b_c"), "a0:b_c");
    }

    #[test]
    fn prometheus_rendering_is_wellformed_when_empty() {
        // No install() here: whatever global state exists, rendering
        // must produce parseable output (possibly empty).
        let text = render_prometheus();
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "bad exposition line: {line}"
            );
        }
    }

    /// Text-format 0.0.4 audit over a populated registry: every family
    /// gets exactly one `# TYPE` (and at most one `# HELP`) line, HELP
    /// text is escaped, registered dotted names sanitize cleanly, and
    /// every histogram emits an `le="+Inf"` bucket whose cumulative
    /// count equals `_count`.
    #[test]
    fn prometheus_format_audit() {
        let _guard = crate::TEST_LOCK.lock();
        crate::install(Box::new(crate::NullSink));
        metrics::counter_add(crate::names::metric::FASTPATH_CACHE_HITS, 3);
        metrics::counter_add(crate::names::metric::SWEEP_CHUNK_CLAIMS, 9);
        metrics::gauge_set(crate::names::metric::SWEEP_UTILIZATION, 0.875);
        metrics::histogram_observe(
            crate::names::metric::SWEEP_WORKER_CELLS,
            metrics::count_edges(),
            17.0,
        );
        // Two span histograms: they must share one family header.
        for span in ["solver.solve_fast", "sweep.run"] {
            metrics::histogram_observe(
                &metrics::span_histogram_name(span),
                metrics::latency_edges_us(),
                42.0,
            );
        }
        let text = render_prometheus();
        crate::finish(None);

        let mut type_lines: Vec<&str> = Vec::new();
        let mut help_lines: Vec<&str> = Vec::new();
        for line in text.lines() {
            assert!(!line.is_empty(), "blank exposition line");
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                type_lines.push(rest);
                let kind = rest.split_whitespace().nth(1).unwrap_or("");
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind),
                    "bad TYPE kind: {line}"
                );
            } else if let Some(rest) = line.strip_prefix("# HELP ") {
                help_lines.push(rest);
                assert!(!rest.contains('\n'), "unescaped newline in HELP");
            } else {
                // Sample line: name{labels} value — metric char set only.
                let name = line
                    .split(['{', ' '])
                    .next()
                    .expect("sample line has a name");
                assert!(
                    name.chars()
                        .enumerate()
                        .all(|(i, c)| c.is_ascii_alphabetic()
                            || c == '_'
                            || c == ':'
                            || (i > 0 && c.is_ascii_digit())),
                    "unsanitized metric name: {name}"
                );
            }
        }
        for lines in [&type_lines, &help_lines] {
            let mut families: Vec<&str> = lines
                .iter()
                .filter_map(|l| l.split_whitespace().next())
                .collect();
            families.sort_unstable();
            let n = families.len();
            families.dedup();
            assert_eq!(families.len(), n, "duplicate TYPE/HELP for a family");
        }
        // Registered metrics carry their registry help text.
        assert!(text.contains("# HELP xmodel_fastpath_cache_hits"));
        assert!(text.contains("# HELP xmodel_sweep_utilization"));
        // The two span histograms collapsed into one labelled family.
        assert_eq!(
            type_lines
                .iter()
                .filter(|l| l.starts_with("xmodel_span_duration_us "))
                .count(),
            1
        );
        assert!(text.contains("span=\"solver.solve_fast\""));
        assert!(text.contains("span=\"sweep.run\""));
        // +Inf buckets: one per histogram series, cumulative == _count.
        let inf_buckets = text
            .lines()
            .filter(|l| l.contains("le=\"+Inf\""))
            .collect::<Vec<_>>();
        assert_eq!(inf_buckets.len(), 3, "one +Inf bucket per series");
        for bucket in inf_buckets {
            let total = bucket.split_whitespace().last().unwrap_or("");
            assert_eq!(total, "1", "cumulative +Inf count: {bucket}");
        }
    }
}

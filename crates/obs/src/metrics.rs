//! Process-wide metrics registry: named counters, gauges, and fixed-
//! bucket histograms. Generalizes the ad-hoc counters in `SimStats` for
//! consumers outside the simulator; values are folded into the run
//! manifest at the end of a traced run.
//!
//! All update paths are gated on the global tracing flag, so a build with
//! tracing disabled pays one relaxed atomic load per call.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Monotonically increasing counter value.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub u64);

/// Last-write-wins instantaneous value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub f64);

/// Histogram over fixed, caller-supplied bucket edges.
///
/// With edges `[e0, e1, ..., en]` there are `n + 2` buckets: values
/// `v <= e0` land in bucket 0, `e_{i-1} < v <= e_i` in bucket `i`, and
/// `v > en` in the final overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Upper bucket edges (inclusive), ascending.
    pub edges: Vec<f64>,
    /// Per-bucket observation counts (`edges.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl Histogram {
    fn new(edges: &[f64]) -> Self {
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly ascending"
        );
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let bucket = self.edges.partition_point(|&e| e < v);
        self.counts[bucket] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock();
    f(guard.get_or_insert_with(Registry::default))
}

/// Add `delta` to the named counter (created at zero on first use).
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| r.counters.entry(name.to_string()).or_default().0 += delta);
}

/// Set the named gauge.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| r.gauges.entry(name.to_string()).or_default().0 = value);
}

/// Observe `value` in the named histogram, creating it with `edges` on
/// first use (later calls may pass the same or empty edges; the first
/// registration wins).
pub fn histogram_observe(name: &str, edges: &[f64], value: f64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| {
        r.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(edges))
            .observe(value);
    });
}

/// Snapshot of every metric, for the manifest and for tests.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Take a snapshot of the registry.
pub fn snapshot() -> MetricsSnapshot {
    with_registry(|r| MetricsSnapshot {
        counters: r.counters.iter().map(|(k, v)| (k.clone(), v.0)).collect(),
        gauges: r.gauges.iter().map(|(k, v)| (k.clone(), v.0)).collect(),
        histograms: r.histograms.clone(),
    })
}

/// Clear all metrics (between runs in one process, and in tests).
pub fn reset() {
    *REGISTRY.lock() = None;
}

//! Process-wide metrics registry: named counters, gauges, and fixed-
//! bucket histograms. Generalizes the ad-hoc counters in `SimStats` for
//! consumers outside the simulator; values are folded into the run
//! manifest at the end of a traced run.
//!
//! All update paths are gated on the global tracing flag, so a build with
//! tracing disabled pays one relaxed atomic load per call.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Monotonically increasing counter value.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub u64);

/// Last-write-wins instantaneous value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub f64);

/// Histogram over fixed, caller-supplied bucket edges.
///
/// With edges `[e0, e1, ..., en]` there are `n + 2` buckets: values
/// `v <= e0` land in bucket 0, `e_{i-1} < v <= e_i` in bucket `i`, and
/// `v > en` in the final overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Upper bucket edges (inclusive), ascending.
    pub edges: Vec<f64>,
    /// Per-bucket observation counts (`edges.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl Histogram {
    /// Empty histogram over `edges` (strictly ascending upper bounds).
    /// Also usable standalone, outside the global registry — the span
    /// profiler builds one per span name.
    pub fn with_edges(edges: &[f64]) -> Self {
        assert!(
            edges.windows(2).all(|w| matches!(w, [a, b] if a < b)),
            "histogram edges must be strictly ascending"
        );
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn new(edges: &[f64]) -> Self {
        Self::with_edges(edges)
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        self.observe(v);
    }

    fn observe(&mut self, v: f64) {
        let bucket = self.edges.partition_point(|&e| e < v);
        self.counts[bucket] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0 <= q <= 1`) by linear interpolation
    /// within the bucket containing the target rank. Returns `None` when
    /// the histogram is empty. The underflow bucket interpolates from 0,
    /// the overflow bucket is pinned to its lower edge (the estimate is
    /// then a lower bound — the registry has no upper bound to offer).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cumulative + n;
            if next as f64 >= target {
                let frac = ((target - cumulative as f64) / n as f64).clamp(0.0, 1.0);
                let (lo, hi) = self.bucket_bounds(i);
                return Some(match hi {
                    Some(hi) => lo + frac * (hi - lo),
                    None => lo, // overflow bucket: lower bound
                });
            }
            cumulative = next;
        }
        // Unreachable with count > 0, but stay total.
        self.edges.last().copied().map(|e| e.max(0.0))
    }

    /// `(lower, upper)` value bounds of bucket `i`; upper is `None` for
    /// the overflow bucket.
    fn bucket_bounds(&self, i: usize) -> (f64, Option<f64>) {
        if self.edges.is_empty() {
            return (0.0, None);
        }
        if i == 0 {
            let first = self.edges.first().copied().unwrap_or(0.0);
            (0.0f64.min(first), Some(first))
        } else if i < self.edges.len() {
            (self.edges[i - 1], Some(self.edges[i]))
        } else {
            (self.edges[self.edges.len() - 1], None)
        }
    }
}

/// Log-spaced bucket edges for latency-in-microseconds histograms:
/// 1 µs … ~100 s in quarter-decade steps. Shared by the span timer
/// ([`crate::span`]), the manifest phase summaries, and the profiler so
/// their percentiles agree.
pub fn latency_edges_us() -> &'static [f64] {
    static EDGES: OnceLock<Vec<f64>> = OnceLock::new();
    EDGES.get_or_init(|| {
        (0..33)
            .map(|i| 10f64.powf(i as f64 / 4.0))
            .collect::<Vec<f64>>()
    })
}

/// Log-spaced bucket edges for count-valued histograms (items per
/// worker, cells per chunk, …): 1 … 10⁸ in half-decade steps. Counts of
/// zero land in the underflow bucket.
pub fn count_edges() -> &'static [f64] {
    static EDGES: OnceLock<Vec<f64>> = OnceLock::new();
    EDGES.get_or_init(|| {
        (0..17)
            .map(|i| 10f64.powf(i as f64 / 2.0))
            .collect::<Vec<f64>>()
    })
}

/// Histogram name under which a span's duration distribution is
/// registered: `span_us.<span name>`.
pub fn span_histogram_name(span: &str) -> String {
    format!("span_us.{span}")
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock();
    f(guard.get_or_insert_with(Registry::default))
}

/// Add `delta` to the named counter (created at zero on first use).
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| r.counters.entry(name.to_string()).or_default().0 += delta);
}

/// Set the named gauge.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| r.gauges.entry(name.to_string()).or_default().0 = value);
}

/// Observe `value` in the named histogram, creating it with `edges` on
/// first use (later calls may pass the same or empty edges; the first
/// registration wins).
pub fn histogram_observe(name: &str, edges: &[f64], value: f64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| {
        r.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(edges))
            .observe(value);
    });
}

/// Snapshot of every metric, for the manifest and for tests.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Take a snapshot of the registry.
pub fn snapshot() -> MetricsSnapshot {
    with_registry(|r| MetricsSnapshot {
        counters: r.counters.iter().map(|(k, v)| (k.clone(), v.0)).collect(),
        gauges: r.gauges.iter().map(|(k, v)| (k.clone(), v.0)).collect(),
        histograms: r.histograms.clone(),
    })
}

/// Clear all metrics (between runs in one process, and in tests).
pub fn reset() {
    *REGISTRY.lock() = None;
}

//! Span-profile aggregation for `xmodel profile`: fold the JSONL span
//! stream back into a call-tree profile — call counts, total and self
//! time, and p50/p95/p99 latency per span name — plus a folded-stack
//! rendering (`root;child;leaf <µs>`) that flamegraph tools consume.
//!
//! Span events record `name` + `parent` (first-observed), not full
//! stacks, so the tree is keyed by span *name*: every occurrence of a
//! name aggregates into one node under its first-observed parent. That
//! matches how the workspace names spans (stable `&'static str` phase
//! names) and keeps the profile robust to truncated traces — an
//! unmatched or orphaned span simply becomes a root.
//!
//! Like [`crate::report`], the reader is best-effort: malformed lines
//! are counted, never fatal.

use crate::json::{self, JsonValue};
use crate::metrics::{latency_edges_us, Histogram};
use std::collections::BTreeMap;

/// One aggregated node of the call-tree profile.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// First-observed parent span name.
    pub parent: Option<String>,
    /// Completed spans with this name.
    pub count: u64,
    /// Total (inclusive) time across them, microseconds.
    pub total_us: f64,
    /// Duration distribution, for percentile columns.
    pub hist: Histogram,
}

impl SpanNode {
    fn new(name: &str) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            parent: None,
            count: 0,
            total_us: 0.0,
            hist: Histogram::with_edges(latency_edges_us()),
        }
    }

    /// Estimated quantile of the single-span duration, microseconds.
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.hist.quantile(q).unwrap_or(0.0)
    }
}

/// A call-tree profile aggregated from a trace's span events.
#[derive(Debug, Clone, Default)]
pub struct SpanProfile {
    /// Total non-empty lines read.
    pub lines: usize,
    /// Lines that failed to parse, or span events missing their name.
    pub malformed: usize,
    /// Aggregated nodes by span name.
    pub nodes: BTreeMap<String, SpanNode>,
    /// Non-fatal oddities found while reading (reported to the user).
    pub warnings: Vec<String>,
}

impl SpanProfile {
    /// Aggregate a profile from trace lines (best-effort).
    pub fn from_lines<'a>(lines: impl Iterator<Item = &'a str>) -> SpanProfile {
        let mut profile = SpanProfile::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            profile.lines += 1;
            let Ok(value) = json::parse(line) else {
                profile.malformed += 1;
                continue;
            };
            if value.get("kind").and_then(JsonValue::as_str) != Some("span") {
                continue;
            }
            let Some(name) = value.get("name").and_then(JsonValue::as_str) else {
                profile.malformed += 1;
                continue;
            };
            let dur_us = value
                .get("dur_us")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0)
                .max(0.0);
            let parent = value
                .get("parent")
                .and_then(JsonValue::as_str)
                .map(str::to_string);
            let node = profile
                .nodes
                .entry(name.to_string())
                .or_insert_with(|| SpanNode::new(name));
            if node.count == 0 {
                node.parent = parent;
            }
            node.count += 1;
            node.total_us += dur_us;
            node.hist.record(dur_us);
        }
        profile.finish_warnings();
        profile
    }

    /// Aggregate a profile by reading `path`. Invalid UTF-8 is replaced,
    /// not fatal; only a missing/unreadable file errors.
    pub fn from_path(path: &std::path::Path) -> std::io::Result<SpanProfile> {
        let bytes = std::fs::read(path)?;
        let text = String::from_utf8_lossy(&bytes);
        Ok(Self::from_lines(text.lines()))
    }

    fn finish_warnings(&mut self) {
        if self.lines == 0 {
            self.warnings.push("trace is empty".to_string());
        } else if self.nodes.is_empty() {
            self.warnings
                .push("trace contains no span events".to_string());
        }
        if self.malformed > 0 {
            self.warnings.push(format!(
                "{} malformed line(s) skipped (truncated trace?)",
                self.malformed
            ));
        }
        let orphans: Vec<&str> = self
            .nodes
            .values()
            .filter_map(|n| n.parent.as_deref())
            .filter(|p| !self.nodes.contains_key(*p))
            .collect();
        if !orphans.is_empty() {
            self.warnings.push(format!(
                "{} span(s) reference a parent that never completed; treating as roots",
                orphans.len()
            ));
        }
    }

    /// True when no span events were found.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Root nodes: no parent, or a parent that never completed.
    /// Sorted by total time, descending.
    pub fn roots(&self) -> Vec<&SpanNode> {
        let mut roots: Vec<&SpanNode> = self
            .nodes
            .values()
            .filter(|n| {
                n.parent
                    .as_ref()
                    .is_none_or(|p| !self.nodes.contains_key(p) || p == &n.name)
            })
            .collect();
        roots.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));
        roots
    }

    /// Children of `name`, sorted by total time descending.
    pub fn children(&self, name: &str) -> Vec<&SpanNode> {
        let mut children: Vec<&SpanNode> = self
            .nodes
            .values()
            .filter(|n| n.parent.as_deref() == Some(name) && n.name != name)
            .collect();
        children.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));
        children
    }

    /// Self time of `name`: total minus the total of its children
    /// (clamped at zero — child totals can exceed the parent's when a
    /// name also occurs under other parents).
    pub fn self_us(&self, name: &str) -> f64 {
        let Some(node) = self.nodes.get(name) else {
            return 0.0;
        };
        let child_total: f64 = self.children(name).iter().map(|c| c.total_us).sum();
        (node.total_us - child_total).max(0.0)
    }

    /// Render the call-tree table: one row per span name, indented by
    /// depth, with count, total, self, and latency-percentile columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        if self.is_empty() {
            out.push_str("profile: no span events\n");
            return out;
        }
        out.push_str(&format!(
            "{:<32} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10}\n",
            "span", "calls", "total ms", "self ms", "p50 µs", "p95 µs", "p99 µs"
        ));
        let mut path = Vec::new();
        for root in self.roots() {
            self.render_node(&mut out, root, 0, &mut path);
        }
        out
    }

    fn render_node(&self, out: &mut String, node: &SpanNode, depth: usize, path: &mut Vec<String>) {
        if path.contains(&node.name) {
            return; // parent-edge cycle (recursive span names); cut here
        }
        let label = format!("{}{}", "  ".repeat(depth), node.name);
        out.push_str(&format!(
            "{:<32} {:>8} {:>12.3} {:>12.3} {:>10.1} {:>10.1} {:>10.1}\n",
            label,
            node.count,
            node.total_us / 1e3,
            self.self_us(&node.name) / 1e3,
            node.quantile_us(0.50),
            node.quantile_us(0.95),
            node.quantile_us(0.99),
        ));
        path.push(node.name.clone());
        for child in self.children(&node.name) {
            self.render_node(out, child, depth + 1, path);
        }
        path.pop();
    }

    /// Folded-stack rendering: one `root;child;leaf <µs>` line per node
    /// with nonzero self time, suitable for `flamegraph.pl` and
    /// compatible tools (the "sample count" is self time in µs).
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        let mut path = Vec::new();
        for root in self.roots() {
            self.fold_node(&mut out, root, &mut path);
        }
        out
    }

    fn fold_node(&self, out: &mut String, node: &SpanNode, path: &mut Vec<String>) {
        if path.contains(&node.name) {
            return;
        }
        path.push(node.name.clone());
        let self_us = self.self_us(&node.name).round() as u64;
        if self_us > 0 || self.children(&node.name).is_empty() {
            out.push_str(&format!("{} {}\n", path.join(";"), self_us));
        }
        for child in self.children(&node.name) {
            self.fold_node(out, child, path);
        }
        path.pop();
    }

    /// `(name, self-time µs)` pairs sorted by self time descending —
    /// the flat "hot spans" view used by the CLI's bar rendering.
    pub fn hotspots(&self) -> Vec<(String, f64)> {
        let mut flat: Vec<(String, f64)> = self
            .nodes
            .keys()
            .map(|name| (name.clone(), self.self_us(name)))
            .collect();
        flat.sort_by(|a, b| b.1.total_cmp(&a.1));
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(name: &str, parent: Option<&str>, dur_us: f64) -> String {
        match parent {
            Some(p) => format!(
                r#"{{"kind":"span","t_us":1,"name":"{name}","dur_us":{dur_us},"parent":"{p}"}}"#
            ),
            None => format!(r#"{{"kind":"span","t_us":1,"name":"{name}","dur_us":{dur_us}}}"#),
        }
    }

    #[test]
    fn builds_tree_with_self_time() {
        let lines = [
            span_line("leaf", Some("mid"), 100.0),
            span_line("leaf", Some("mid"), 300.0),
            span_line("mid", Some("root"), 500.0),
            span_line("root", None, 1000.0),
        ];
        let p = SpanProfile::from_lines(lines.iter().map(String::as_str));
        assert_eq!(p.malformed, 0);
        assert_eq!(p.nodes["leaf"].count, 2);
        assert!((p.self_us("mid") - 100.0).abs() < 1e-9);
        assert!((p.self_us("root") - 500.0).abs() < 1e-9);
        assert!((p.self_us("leaf") - 400.0).abs() < 1e-9);
        let rendered = p.render();
        assert!(rendered.contains("root"));
        assert!(rendered.contains("p95"));
        let folded = p.to_folded();
        assert!(folded.contains("root;mid;leaf 400"));
        assert!(folded.contains("root;mid 100"));
        assert!(folded.contains("root 500"));
    }

    #[test]
    fn percentiles_come_from_histogram() {
        let lines: Vec<String> = (1..=100)
            .map(|i| span_line("step", None, i as f64 * 10.0))
            .collect();
        let p = SpanProfile::from_lines(lines.iter().map(String::as_str));
        let n = &p.nodes["step"];
        assert_eq!(n.count, 100);
        let p50 = n.quantile_us(0.50);
        let p99 = n.quantile_us(0.99);
        assert!(p50 > 300.0 && p50 < 700.0, "p50 = {p50}");
        assert!(p99 >= p50, "p99 = {p99} < p50 = {p50}");
    }

    #[test]
    fn malformed_and_empty_are_best_effort() {
        let p = SpanProfile::from_lines(std::iter::empty());
        assert!(p.is_empty());
        assert!(p.warnings.iter().any(|w| w.contains("empty")));
        assert!(p.render().contains("no span events"));

        let lines = [
            r#"{"kind":"span","t_us":1,"name":"ok","dur_us":5.0}"#.to_string(),
            r#"{"kind":"span","t_us":1,"dur_us"#.to_string(), // truncated
            "not json at all".to_string(),
            r#"{"kind":"span","t_us":1}"#.to_string(), // span without name
        ];
        let p = SpanProfile::from_lines(lines.iter().map(String::as_str));
        assert_eq!(p.malformed, 3);
        assert_eq!(p.nodes["ok"].count, 1);
        assert!(p.warnings.iter().any(|w| w.contains("malformed")));
    }

    #[test]
    fn orphan_parents_become_roots_and_cycles_terminate() {
        let lines = [
            span_line("child", Some("never-completed"), 10.0),
            span_line("self-cycle", Some("self-cycle"), 10.0),
        ];
        let p = SpanProfile::from_lines(lines.iter().map(String::as_str));
        let roots: Vec<&str> = p.roots().iter().map(|n| n.name.as_str()).collect();
        assert!(roots.contains(&"child"));
        assert!(roots.contains(&"self-cycle"));
        assert!(p.warnings.iter().any(|w| w.contains("parent")));
        // Render and fold must terminate despite the cycle.
        let _ = p.render();
        let _ = p.to_folded();
    }
}

//! Span timing: RAII guards measuring named phases on the monotonic
//! clock. Each completed span emits a `span` event carrying its duration
//! and parent, and folds into a global per-name aggregate that the run
//! manifest reports as wall-time per phase.

use crate::event::Value;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregate timing for one span name.
#[derive(Debug, Clone, Default)]
pub struct SpanAgg {
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total time across them, nanoseconds.
    pub total_ns: u128,
}

static AGGREGATES: Mutex<BTreeMap<&'static str, SpanAgg>> = Mutex::new(BTreeMap::new());

/// Innermost active span name on this thread.
pub fn current() -> Option<&'static str> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Snapshot of all span aggregates, keyed by name.
pub fn aggregates() -> BTreeMap<&'static str, SpanAgg> {
    AGGREGATES.lock().clone()
}

/// Clear aggregates (between runs in one process, and in tests).
pub fn reset_aggregates() {
    AGGREGATES.lock().clear();
}

/// RAII span. Create via [`crate::span!`]; the span ends (and its event
/// is emitted) when the guard drops. Inert when tracing is disabled —
/// not even the clock is read.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    parent: Option<&'static str>,
    start: Instant,
}

impl SpanGuard {
    /// Start a span named `name` if tracing is enabled.
    pub fn begin(name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { inner: None };
        }
        let parent = current();
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard {
            inner: Some(ActiveSpan {
                name,
                parent,
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let elapsed = active.start.elapsed();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            debug_assert_eq!(stack.last(), Some(&active.name), "span stack imbalance");
            stack.pop();
        });
        {
            let mut aggs = AGGREGATES.lock();
            let agg = aggs.entry(active.name).or_default();
            agg.count += 1;
            agg.total_ns += elapsed.as_nanos();
        }
        // Duration distribution per span name, for the p50/p95/p99
        // columns of the manifest phase summary and the /metrics export.
        crate::metrics::histogram_observe(
            &crate::metrics::span_histogram_name(active.name),
            crate::metrics::latency_edges_us(),
            elapsed.as_nanos() as f64 / 1e3,
        );
        let mut fields = vec![
            ("name", Value::from(active.name)),
            ("dur_us", Value::F64(elapsed.as_nanos() as f64 / 1e3)),
        ];
        if let Some(parent) = active.parent {
            fields.push(("parent", Value::from(parent)));
        }
        crate::emit_with_span("span", active.parent, fields);
    }
}

/// Start a timed span for the enclosing scope:
/// `let _span = xmodel_obs::span!(xmodel_obs::names::span::SOLVER_SOLVE);`
///
/// The name must be `&'static str`; workspace crates take it from
/// [`crate::names`] (enforced by the `span-name-registry` lint).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::begin($name)
    };
}

//! JSON support for the trace layer: a serde-driven compact writer (used
//! by the JSONL sink and the run manifest) and a small recursive-descent
//! parser (used by `trace-report`, which must read traces back without a
//! deserializer framework).

use serde::ser::{self, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serialize any `Serialize` value to compact JSON.
///
/// The writer itself cannot fail (it appends to a `String`), but a
/// custom `Serialize` impl may report an error through `ser::Error`;
/// that degrades to `"null"` rather than panicking — the trace layer
/// must never take down an instrumented process.
pub fn to_string<T: Serialize>(value: &T) -> String {
    try_to_string(value).unwrap_or_else(|_| "null".to_string())
}

/// Serialize to compact JSON, surfacing any error a custom `Serialize`
/// impl reports instead of swallowing it.
pub fn try_to_string<T: Serialize>(value: &T) -> Result<String, Infallible> {
    let mut out = String::new();
    value.serialize(Writer { out: &mut out })?;
    Ok(out)
}

/// Escape and append a JSON string literal.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no NaN/Inf; null keeps the line parseable.
        out.push_str("null");
    }
}

/// Error type for the writer; never actually produced.
#[derive(Debug)]
pub struct Infallible(String);

impl std::fmt::Display for Infallible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Infallible {}

impl ser::Error for Infallible {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Infallible(msg.to_string())
    }
}

struct Writer<'a> {
    out: &'a mut String,
}

/// Shared state for every compound (seq/map/struct) serializer.
pub struct Compound<'a> {
    out: &'a mut String,
    first: bool,
    close: char,
}

impl Compound<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }
}

impl<'a> ser::Serializer for Writer<'a> {
    type Ok = ();
    type Error = Infallible;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Infallible> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), Infallible> {
        self.serialize_i64(v as i64)
    }

    fn serialize_i16(self, v: i16) -> Result<(), Infallible> {
        self.serialize_i64(v as i64)
    }

    fn serialize_i32(self, v: i32) -> Result<(), Infallible> {
        self.serialize_i64(v as i64)
    }

    fn serialize_i64(self, v: i64) -> Result<(), Infallible> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<(), Infallible> {
        self.serialize_u64(v as u64)
    }

    fn serialize_u16(self, v: u16) -> Result<(), Infallible> {
        self.serialize_u64(v as u64)
    }

    fn serialize_u32(self, v: u32) -> Result<(), Infallible> {
        self.serialize_u64(v as u64)
    }

    fn serialize_u64(self, v: u64) -> Result<(), Infallible> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), Infallible> {
        write_f64(self.out, v as f64);
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Infallible> {
        write_f64(self.out, v);
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), Infallible> {
        write_escaped(self.out, &v.to_string());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Infallible> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), Infallible> {
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for b in v {
            ser::SerializeSeq::serialize_element(&mut seq, b)?;
        }
        ser::SerializeSeq::end(seq)
    }

    fn serialize_none(self) -> Result<(), Infallible> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Infallible> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), Infallible> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Infallible> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), Infallible> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Infallible> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Infallible> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push(':');
        value.serialize(Writer { out: self.out })?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, Infallible> {
        self.out.push('[');
        Ok(Compound {
            out: self.out,
            first: true,
            close: ']',
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, Infallible> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, Infallible> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, Infallible> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push(':');
        self.serialize_seq(Some(len))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, Infallible> {
        self.out.push('{');
        Ok(Compound {
            out: self.out,
            first: true,
            close: '}',
        })
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<Compound<'a>, Infallible> {
        self.serialize_map(Some(len))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, Infallible> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push(':');
        self.serialize_map(Some(len))
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Infallible;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Infallible> {
        self.sep();
        value.serialize(Writer { out: self.out })
    }

    fn end(self) -> Result<(), Infallible> {
        self.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = Infallible;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Infallible> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Infallible> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = Infallible;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Infallible> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Infallible> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = Infallible;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Infallible> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Infallible> {
        self.out.push(self.close);
        self.out.push('}');
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = Infallible;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Infallible> {
        self.sep();
        // Keys must be strings in JSON; serialize then re-wrap non-strings.
        let mut raw = String::new();
        key.serialize(Writer { out: &mut raw })?;
        if raw.starts_with('"') {
            self.out.push_str(&raw);
        } else {
            write_escaped(self.out, &raw);
        }
        self.out.push(':');
        Ok(())
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Infallible> {
        value.serialize(Writer { out: self.out })
    }

    fn end(self) -> Result<(), Infallible> {
        self.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Infallible;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Infallible> {
        self.sep();
        write_escaped(self.out, key);
        self.out.push(':');
        value.serialize(Writer { out: self.out })
    }

    fn end(self) -> Result<(), Infallible> {
        self.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = Infallible;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Infallible> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<(), Infallible> {
        self.out.push(self.close);
        self.out.push('}');
        Ok(())
    }
}

/// A parsed JSON value, as read back by `trace-report`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as f64; trace values fit exactly)
    Number(f64),
    /// String
    Str(String),
    /// Array
    Array(Vec<JsonValue>),
    /// Object, in key order
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric content truncated to u64.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|f| f as u64)
    }
}

/// Parse one JSON document; trailing whitespace is allowed.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found {:?})",
            c as char,
            pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences intact).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8 in string")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

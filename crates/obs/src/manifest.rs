//! Run manifests: one structured record describing a whole run —
//! command, parameters, seed, code version, and wall-time per phase —
//! appended as the final line of a trace.

use crate::{json, metrics, span};
use serde::Serialize;
use std::collections::BTreeMap;

/// Aggregate timing of one span name over the run.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseSummary {
    /// Span name.
    pub name: String,
    /// Completed spans with this name.
    pub count: u64,
    /// Total wall time, milliseconds.
    pub total_ms: f64,
    /// Median single-span latency, microseconds (absent when the
    /// duration histogram recorded nothing, e.g. tracing toggled off
    /// mid-run).
    pub p50_us: Option<f64>,
    /// 95th-percentile single-span latency, microseconds.
    pub p95_us: Option<f64>,
    /// 99th-percentile single-span latency, microseconds.
    pub p99_us: Option<f64>,
}

/// End-of-run record summarising what ran and how long each phase took.
#[derive(Debug, Clone, Serialize)]
pub struct RunManifest {
    /// Line discriminator: always `"run_manifest"`.
    pub kind: &'static str,
    /// Trace schema version ([`crate::event::SCHEMA`]).
    pub schema: &'static str,
    /// The command that ran (e.g. `sim`, `whatif`, bench name).
    pub command: String,
    /// Flag/parameter values the run was invoked with.
    pub params: BTreeMap<String, String>,
    /// RNG seed, where the command uses one.
    pub seed: Option<u64>,
    /// Code version: `git describe`-style when available, else crate version.
    pub version: String,
    /// Total wall time since trace initialisation, milliseconds.
    pub wall_ms: f64,
    /// Per-phase wall time from the span registry.
    pub phases: Vec<PhaseSummary>,
    /// Counter metrics accumulated during the run.
    pub counters: BTreeMap<String, u64>,
    /// Gauge metrics at end of run (e.g. `sweep.utilization`).
    pub gauges: BTreeMap<String, f64>,
}

impl RunManifest {
    /// Assemble a manifest for `command`, pulling phase times and
    /// counters from the global registries.
    pub fn collect(
        command: &str,
        params: BTreeMap<String, String>,
        seed: Option<u64>,
    ) -> RunManifest {
        let snapshot = metrics::snapshot();
        let phases = span::aggregates()
            .into_iter()
            .map(|(name, agg)| {
                let hist = snapshot.histograms.get(&metrics::span_histogram_name(name));
                let q = |p: f64| hist.and_then(|h| h.quantile(p));
                PhaseSummary {
                    name: name.to_string(),
                    count: agg.count,
                    total_ms: agg.total_ns as f64 / 1e6,
                    p50_us: q(0.50),
                    p95_us: q(0.95),
                    p99_us: q(0.99),
                }
            })
            .collect();
        RunManifest {
            kind: "run_manifest",
            schema: crate::event::SCHEMA,
            command: command.to_string(),
            params,
            seed,
            version: describe_version(),
            wall_ms: crate::now_us() as f64 / 1e3,
            phases,
            counters: snapshot.counters,
            gauges: snapshot.gauges,
        }
    }

    /// Serialize to one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }
}

/// `git describe --tags --always --dirty` when run inside a checkout;
/// falls back to the crate version for installed binaries.
pub fn describe_version() -> String {
    std::process::Command::new("git")
        .args(["describe", "--tags", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| format!("v{}", env!("CARGO_PKG_VERSION")))
}

//! # xmodel-obs — structured observability for the X-model workspace
//!
//! One small crate giving every layer of the workspace the same three
//! primitives:
//!
//! * **Spans** — RAII phase timers on the monotonic clock.
//!   `let _s = xmodel_obs::span!("solve");` times the enclosing scope,
//!   emits a `span` event on completion, and feeds the per-phase totals
//!   reported in the run manifest.
//! * **Events** — structured JSONL records with typed fields.
//!   `xmodel_obs::event!("solver.bracket", lo = 1.0, hi = 2.0);`
//!   Each event carries a microsecond timestamp and the innermost
//!   enclosing span.
//! * **Metrics** — named counters, gauges, and fixed-bucket histograms
//!   ([`metrics`]), folded into the manifest at end of run.
//!
//! ## Enabling a trace
//!
//! Tracing is off by default and costs one relaxed atomic load per
//! instrumentation site. It turns on when a sink is installed:
//!
//! ```no_run
//! xmodel_obs::init_jsonl(std::path::Path::new("out.jsonl")).unwrap();
//! // ... instrumented work ...
//! let manifest = xmodel_obs::manifest::RunManifest::collect(
//!     "sim", std::collections::BTreeMap::new(), Some(42));
//! xmodel_obs::finish(Some(&manifest));
//! ```
//!
//! The CLI wires this to `--trace <path>` and the `XMODEL_TRACE`
//! environment variable (see [`init_from_env`]), and appends a
//! [`manifest::RunManifest`] as the final line of every traced run.
//!
//! Two consumption layers sit on top of the raw stream:
//!
//! * [`profile`] folds a trace's span events back into a call-tree
//!   profile (self/total time, call counts, p50/p95/p99) and emits a
//!   flamegraph-compatible folded-stack rendering — `xmodel profile`.
//! * [`diff`] aligns two such profiles by span name + tree path and
//!   reports per-span self/total-time deltas and percentile shifts —
//!   `xmodel trace-diff`, the regression-attribution layer.
//! * [`export`] serves the live metrics registry as Prometheus text
//!   format over `std::net` — `xmodel --metrics-addr HOST:PORT` or the
//!   `XMODEL_METRICS_ADDR` environment variable. [`init_metrics_from_env`]
//!   mirrors [`init_from_env`] for that variable. The exporter thread is
//!   only spawned when an address is configured.
//!
//! ## Trace format
//!
//! One JSON object per line, schema [`event::SCHEMA`]. Every line has a
//! `"kind"`; events add `"t_us"` (µs since trace start), `"span"`, and
//! their payload fields inline. Two kinds are structural: `span`
//! (completed span: `name`, `dur_us`, `parent`) and `run_manifest`
//! (final line). `xmodel trace-report <file>` ([`report`]) summarizes a
//! trace; determinism of traced runs is guaranteed because
//! instrumentation only ever *reads* model and simulator state.

#![forbid(unsafe_code)]

pub mod diff;
pub mod event;
pub mod export;
pub mod http;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod names;
pub mod profile;
pub mod report;
pub mod residual;
pub mod simtrace;
pub mod sink;
pub mod span;

pub use event::{Event, Value};
pub use sink::{FaultySink, JsonlSink, MemSink, NullSink, Sink, SinkFaultCounters};

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Sink>>> = Mutex::new(None);
static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Serializes unit tests that touch the process-global tracing state
/// (shared across this crate's test modules).
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Is tracing live? Instrumentation sites check this first; when false
/// they do no other work (the "NullSink" fast path).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process's trace clock started.
pub fn now_us() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Install a sink and enable tracing. Clears span aggregates and metrics
/// so the new trace starts from a clean slate.
pub fn install(sink: Box<dyn Sink>) {
    ANCHOR.get_or_init(Instant::now);
    span::reset_aggregates();
    metrics::reset();
    *SINK.lock() = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Install a buffered JSONL file sink writing to `path`.
pub fn init_jsonl(path: &std::path::Path) -> std::io::Result<()> {
    install(Box::new(JsonlSink::create(path)?));
    Ok(())
}

/// Install a JSONL sink at `$XMODEL_TRACE` if that variable is set.
/// Returns the path used, or `None` when the variable is unset. A path
/// that cannot be created is reported on stderr and tracing stays off.
pub fn init_from_env() -> Option<std::path::PathBuf> {
    let path = std::path::PathBuf::from(std::env::var_os("XMODEL_TRACE")?);
    match init_jsonl(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: XMODEL_TRACE={}: {e}", path.display());
            None
        }
    }
}

/// Start the background `/metrics` exporter on `addr` (port 0 picks a
/// free port; the bound address is in the returned handle). When no
/// sink is live this installs a [`NullSink`] first so spans and metrics
/// record for the exporter to serve; a later [`install`] replaces the
/// sink without disturbing the exporter. When no address is configured
/// this is never called and no exporter thread exists.
pub fn serve_metrics(addr: &str) -> std::io::Result<export::MetricsServer> {
    if !enabled() {
        install(Box::new(NullSink));
    }
    export::serve(addr)
}

/// Start the exporter at `$XMODEL_METRICS_ADDR` if that variable is
/// set. Returns the bound server, or `None` when the variable is unset.
/// An address that cannot be bound is reported on stderr and the
/// exporter stays off.
pub fn init_metrics_from_env() -> Option<export::MetricsServer> {
    let addr = std::env::var("XMODEL_METRICS_ADDR").ok()?;
    match serve_metrics(&addr) {
        Ok(server) => Some(server),
        Err(e) => {
            eprintln!("warning: XMODEL_METRICS_ADDR={addr}: {e}");
            None
        }
    }
}

/// Emit an event with the current thread's innermost span attached.
/// Callers should gate on [`enabled`] first (the [`event!`] macro does);
/// emitting while disabled is a silent no-op.
pub fn emit(kind: &'static str, fields: Vec<(&'static str, Value)>) {
    emit_with_span(kind, span::current(), fields);
}

/// Emit an event with an explicit span attribution (used by span
/// completion, which attributes itself to its parent).
pub fn emit_with_span(
    kind: &'static str,
    span: Option<&'static str>,
    fields: Vec<(&'static str, Value)>,
) {
    if !enabled() {
        return;
    }
    let event = Event {
        kind,
        t_us: now_us(),
        span,
        fields,
    };
    if let Some(sink) = SINK.lock().as_ref() {
        sink.emit(&event);
    }
}

/// Flush the active sink's buffers.
pub fn flush() {
    if let Some(sink) = SINK.lock().as_ref() {
        sink.flush();
    }
}

/// End the trace: optionally append the run manifest as the final line,
/// flush, uninstall the sink, and disable tracing.
pub fn finish(manifest: Option<&manifest::RunManifest>) {
    let sink = {
        ENABLED.store(false, Ordering::SeqCst);
        SINK.lock().take()
    };
    if let Some(sink) = sink {
        if let Some(m) = manifest {
            sink.emit_raw(&m.to_json());
        }
        sink.flush();
    }
}

/// Emit a structured trace event:
/// `xmodel_obs::event!("sim.snapshot", cycle = now, k = running);`
/// Field values may be any integer, float, bool, or string type.
/// Compiles to a single relaxed atomic load when tracing is disabled.
#[macro_export]
macro_rules! event {
    ($kind:literal $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit($kind, vec![$((stringify!($key), $crate::Value::from($val))),*]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use std::collections::BTreeMap;

    // Global tracing state is process-wide; serialize tests that touch it.
    use crate::TEST_LOCK;

    fn with_mem_sink(f: impl FnOnce()) -> Vec<String> {
        let _guard = TEST_LOCK.lock();
        let sink = MemSink::new();
        install(Box::new(sink.clone()));
        f();
        let lines = sink.lines();
        finish(None);
        lines
    }

    #[test]
    fn jsonl_round_trip() {
        let lines = with_mem_sink(|| {
            event!(
                "test.kinds",
                unsigned = 7u64,
                signed = -3i32,
                float = 2.5f64,
                flag = true,
                label = "bi\"stable\"",
            );
        });
        assert_eq!(lines.len(), 1);
        let parsed = json::parse(&lines[0]).expect("emitted line parses");
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("test.kinds"));
        assert_eq!(parsed.get("unsigned").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("signed").unwrap().as_f64(), Some(-3.0));
        assert_eq!(parsed.get("float").unwrap().as_f64(), Some(2.5));
        assert_eq!(parsed.get("flag"), Some(&JsonValue::Bool(true)));
        assert_eq!(parsed.get("label").unwrap().as_str(), Some("bi\"stable\""));
        assert!(parsed.get("t_us").unwrap().as_f64().is_some());
    }

    #[test]
    fn span_nesting_attributes_parent_and_events() {
        let lines = with_mem_sink(|| {
            let _outer = span!("outer");
            event!("in.outer");
            {
                let _inner = span!("inner");
                event!("in.inner");
            }
        });
        let parsed: Vec<JsonValue> = lines.iter().map(|l| json::parse(l).unwrap()).collect();
        let kind = |v: &JsonValue| v.get("kind").unwrap().as_str().unwrap().to_string();

        assert_eq!(kind(&parsed[0]), "in.outer");
        assert_eq!(parsed[0].get("span").unwrap().as_str(), Some("outer"));
        assert_eq!(kind(&parsed[1]), "in.inner");
        assert_eq!(parsed[1].get("span").unwrap().as_str(), Some("inner"));

        // inner span closes before outer; both record their parent.
        assert_eq!(kind(&parsed[2]), "span");
        assert_eq!(parsed[2].get("name").unwrap().as_str(), Some("inner"));
        assert_eq!(parsed[2].get("parent").unwrap().as_str(), Some("outer"));
        assert_eq!(kind(&parsed[3]), "span");
        assert_eq!(parsed[3].get("name").unwrap().as_str(), Some("outer"));
        assert_eq!(parsed[3].get("parent"), None);

        assert_eq!(span::current(), None, "span stack unwound");
    }

    #[test]
    fn disabled_tracing_is_a_no_op() {
        let _guard = TEST_LOCK.lock();
        assert!(!enabled());
        span::reset_aggregates();
        metrics::reset();
        // None of these may panic, allocate sinks, or record anything.
        event!("ignored.event", x = 1u32);
        {
            let _s = span!("ignored_span");
        }
        metrics::counter_add("ignored", 1);
        metrics::histogram_observe("ignored_h", &[1.0], 0.5);
        assert_eq!(span::aggregates().len(), 0);
        assert_eq!(metrics::snapshot().counters.len(), 0);
        // And the NullSink itself swallows direct emissions.
        let null = NullSink;
        null.emit(&Event {
            kind: "x",
            t_us: 0,
            span: None,
            fields: vec![],
        });
        null.emit_raw("{}");
        null.flush();
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper() {
        let _guard = TEST_LOCK.lock();
        install(Box::new(NullSink));
        let edges = [1.0, 2.0, 4.0];
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 4.5, 100.0] {
            metrics::histogram_observe("h", &edges, v);
        }
        let snap = metrics::snapshot();
        finish(None);
        let h = &snap.histograms["h"];
        // v <= 1.0 → bucket 0; 1.0 < v <= 2.0 → 1; 2.0 < v <= 4.0 → 2; overflow → 3.
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        assert_eq!(h.count, 8);
        assert!((h.mean() - 116.5 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let _guard = TEST_LOCK.lock();
        install(Box::new(NullSink));
        metrics::counter_add("events", 3);
        metrics::counter_add("events", 4);
        metrics::gauge_set("level", 0.25);
        metrics::gauge_set("level", 0.75);
        let snap = metrics::snapshot();
        finish(None);
        assert_eq!(snap.counters["events"], 7);
        assert_eq!(snap.gauges["level"], 0.75);
    }

    #[test]
    fn manifest_serializes_and_parses() {
        let lines = with_mem_sink(|| {
            {
                let _phase = span!("solve");
            }
            metrics::counter_add("solver.brackets", 2);
            let mut params = BTreeMap::new();
            params.insert("warps".to_string(), "32".to_string());
            let m = manifest::RunManifest::collect("sim", params, Some(42));
            emit_with_span("noop", None, vec![]); // keep sink non-empty pre-manifest
            if let Some(sink) = SINK.lock().as_ref() {
                sink.emit_raw(&m.to_json());
            }
        });
        let manifest_line = lines.last().unwrap();
        let parsed = json::parse(manifest_line).expect("manifest parses");
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("run_manifest"));
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some(event::SCHEMA));
        assert_eq!(parsed.get("command").unwrap().as_str(), Some("sim"));
        assert_eq!(parsed.get("seed").unwrap().as_u64(), Some(42));
        assert_eq!(
            parsed.get("params").unwrap().get("warps").unwrap().as_str(),
            Some("32")
        );
        let phases = match parsed.get("phases") {
            Some(JsonValue::Array(p)) => p,
            other => panic!("phases not an array: {other:?}"),
        };
        assert!(phases
            .iter()
            .any(|p| p.get("name").unwrap().as_str() == Some("solve")));
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("solver.brackets")
                .unwrap()
                .as_u64(),
            Some(2)
        );
    }

    #[test]
    fn report_summarizes_spans_and_counts() {
        let lines = with_mem_sink(|| {
            let _outer = span!("run");
            for _ in 0..3 {
                let _inner = span!("step");
                event!("work.item", n = 1u32);
            }
        });
        let report = report::TraceReport::from_lines(lines.iter().map(String::as_str));
        assert_eq!(report.malformed, 0);
        assert_eq!(report.counts["work.item"], 3);
        assert_eq!(report.spans["step"].count, 3);
        assert_eq!(report.spans["step"].parent.as_deref(), Some("run"));
        let rendered = report.render();
        assert!(rendered.contains("run"));
        assert!(rendered.contains("step"));
        assert!(rendered.contains("work.item"));
    }
}

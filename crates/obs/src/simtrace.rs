//! `xmodel-simtrace/1` — the simulator timeline probe schema.
//!
//! The cycle-level simulators (`xmodel::sim::{Sm, IrSm, ChipSim}`) emit,
//! when tracing is live, one `sim.probe` event per accounting interval:
//! warp-state occupancy (how many warps are computing / queued for issue
//! / waiting on memory / stalled on MSHRs), the measured `k(t)` the
//! analytic model predicts as `k*`, DRAM in-flight and backlog depths,
//! and interval deltas of every monotone counter (ops, requests, hits,
//! misses, merges, MSHR stalls) so rates and stall attribution can be
//! recovered offline. A one-time `sim.probe_header` event per simulated
//! SM records the static context: probe interval, warp count, workload
//! intensity `z` and ILP `e`, and the SM's seed.
//!
//! This module is the *read* side: [`SimTrace`] parses a JSONL trace
//! back into typed [`ProbeFrame`]s (tolerating foreign lines — the
//! probes share the stream with spans, snapshots and the manifest) and
//! [`SimTrace::summary`] folds them into the occupancy/stall/DRAM
//! digest that `xmodel sim-report` renders. The write side lives in
//! `xmodel::sim::probe` and only ever *reads* simulator state, so traced
//! and untraced runs are byte-identical (asserted by
//! `crates/sim/tests/determinism.rs`).

use crate::json::{self, JsonValue};
use serde::Serialize;
use std::io::BufRead;

/// Version tag for the simulator probe stream; bump when the
/// `sim.probe` / `sim.probe_header` field set changes incompatibly.
pub const SCHEMA: &str = "xmodel-simtrace/1";

/// Bucket edges (requests / cycles) shared by the DRAM in-flight and
/// backlog depth histograms the probe layer feeds; powers of two because
/// queue depths are compared against power-of-two channel counts.
pub const QUEUE_DEPTH_EDGES: [f64; 9] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Static per-SM context from a `sim.probe_header` event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProbeHeader {
    /// SM index (0 for single-SM runs).
    pub sm: u16,
    /// Probe cadence in cycles.
    pub interval: u64,
    /// Resident warps on this SM.
    pub warps: u32,
    /// RNG seed of this SM (chip runs mix the run seed per SM).
    pub seed: u64,
    /// Workload intensity Z (ops per request); `None` when non-finite
    /// (a compute-only workload serializes Z = ∞ as JSON `null`).
    pub z: Option<f64>,
    /// Workload ILP E.
    pub e: Option<f64>,
}

/// One `sim.probe` event: the simulator's internal state at an interval
/// boundary, plus deltas of the monotone counters since the previous
/// frame (or since measurement start, for the first frame).
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct ProbeFrame {
    /// Absolute simulation cycle of the sample.
    pub cycle: u64,
    /// SM index the sample belongs to.
    pub sm: u16,
    /// Warps executing compute ops (the model's x = n − k).
    pub computing: u32,
    /// Warps queued for issue this cycle (IssuePending).
    pub queued: u32,
    /// Warps waiting on an outstanding memory request.
    pub waiting: u32,
    /// Warps stalled on MSHR exhaustion (or at a barrier, IR mode).
    pub stalled: u32,
    /// Measured k: warps in the memory subsystem.
    pub k: u32,
    /// DRAM requests in flight at the sample cycle.
    pub dram_inflight: u64,
    /// DRAM channel backlog in cycles (0 when the channel is free).
    pub dram_backlog: u64,
    /// Measured cycles covered by this frame's deltas.
    pub d_cycles: u64,
    /// Warp-ops retired in the frame.
    pub d_ops: f64,
    /// Memory requests completed in the frame.
    pub d_requests: u64,
    /// L1 hits in the frame.
    pub d_hits: u64,
    /// L1 misses in the frame.
    pub d_misses: u64,
    /// L1 MSHR merges in the frame.
    pub d_merges: u64,
    /// Issue attempts rejected for MSHR exhaustion in the frame.
    pub d_mshr_stalls: u64,
    /// Cumulative L1 hit rate at the sample cycle.
    pub hit_rate: f64,
}

impl ProbeFrame {
    /// Warps accounted in this frame (resident warp count).
    pub fn warps(&self) -> u32 {
        self.computing + self.queued + self.waiting + self.stalled
    }

    /// Memory-system throughput over the frame, requests/cycle.
    pub fn ms_throughput(&self) -> Option<f64> {
        (self.d_cycles > 0).then(|| self.d_requests as f64 / self.d_cycles as f64)
    }

    /// Compute-system throughput over the frame, warp-ops/cycle.
    pub fn cs_throughput(&self) -> Option<f64> {
        (self.d_cycles > 0).then(|| self.d_ops / self.d_cycles as f64)
    }

    /// Little's-law memory latency estimate over the frame, cycles:
    /// `k · Δcycles / Δrequests`. `None` when no request completed.
    pub fn latency(&self) -> Option<f64> {
        (self.d_requests > 0).then(|| self.k as f64 * self.d_cycles as f64 / self.d_requests as f64)
    }
}

/// A parsed simulator probe trace: headers and frames in emission order,
/// plus whatever run-manifest context the trace carries.
#[derive(Debug, Clone, Default)]
pub struct SimTrace {
    /// One header per simulated SM, in emission order.
    pub headers: Vec<ProbeHeader>,
    /// All probe frames, in emission order (SMs interleave under
    /// `sim::chip`).
    pub frames: Vec<ProbeFrame>,
    /// Count of legacy `sim.snapshot` events seen (a trace predating
    /// this schema has snapshots but no frames).
    pub snapshots: usize,
    /// `params` map of the trace's run manifest, when present.
    pub params: std::collections::BTreeMap<String, String>,
    /// Lines that failed to parse as JSON (torn writes, truncation).
    pub malformed: usize,
}

impl SimTrace {
    /// Parse probe events out of trace lines; foreign kinds are skipped,
    /// malformed lines counted. Never fails: a trace with no probes is
    /// simply empty.
    pub fn from_lines<'a>(lines: impl Iterator<Item = &'a str>) -> SimTrace {
        let mut trace = SimTrace::default();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(v) = json::parse(line) else {
                trace.malformed += 1;
                continue;
            };
            match v.get("kind").and_then(JsonValue::as_str) {
                Some("sim.probe") => {
                    if let Some(frame) = parse_frame(&v) {
                        trace.frames.push(frame);
                    } else {
                        trace.malformed += 1;
                    }
                }
                Some("sim.probe_header") => {
                    if let Some(h) = parse_header(&v) {
                        trace.headers.push(h);
                    } else {
                        trace.malformed += 1;
                    }
                }
                Some("sim.snapshot") => trace.snapshots += 1,
                Some("run_manifest") => {
                    if let Some(JsonValue::Object(params)) = v.get("params") {
                        for (key, val) in params {
                            if let Some(s) = val.as_str() {
                                trace.params.insert(key.clone(), s.to_string());
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        trace
    }

    /// Parse a trace file from disk.
    pub fn from_path(path: &std::path::Path) -> std::io::Result<SimTrace> {
        let file = std::fs::File::open(path)?;
        let reader = std::io::BufReader::new(file);
        let mut lines = Vec::new();
        for line in reader.lines() {
            lines.push(line?);
        }
        Ok(SimTrace::from_lines(lines.iter().map(String::as_str)))
    }

    /// No probe frames at all?
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Distinct SM indices with frames, ascending.
    pub fn sms(&self) -> Vec<u16> {
        let mut sms: Vec<u16> = self.frames.iter().map(|f| f.sm).collect();
        sms.sort_unstable();
        sms.dedup();
        sms
    }

    /// The header for one SM, if the trace carries it.
    pub fn header_for(&self, sm: u16) -> Option<&ProbeHeader> {
        self.headers.iter().find(|h| h.sm == sm)
    }

    /// Resident warps per SM: first header's, else inferred from the
    /// first frame's state counts.
    pub fn warps(&self) -> Option<u32> {
        self.headers
            .first()
            .map(|h| h.warps)
            .or_else(|| self.frames.first().map(ProbeFrame::warps))
    }

    /// Probe cadence in cycles: first header's, else inferred from the
    /// first two frames of the same SM.
    pub fn interval(&self) -> Option<u64> {
        if let Some(h) = self.headers.first() {
            return Some(h.interval);
        }
        let first = self.frames.first()?;
        self.frames
            .iter()
            .find(|f| f.sm == first.sm && f.cycle > first.cycle)
            .map(|f| f.cycle - first.cycle)
    }

    /// Fold the frames into the digest `xmodel sim-report` renders.
    pub fn summary(&self) -> SimTraceSummary {
        let mut s = SimTraceSummary {
            schema: SCHEMA,
            sms: self.sms().len(),
            warps: self.warps().unwrap_or(0),
            interval: self.interval().unwrap_or(0),
            frames: self.frames.len(),
            snapshots: self.snapshots,
            malformed: self.malformed,
            ..SimTraceSummary::default()
        };
        if self.frames.is_empty() {
            return s;
        }
        s.first_cycle = self.frames.iter().map(|f| f.cycle).min().unwrap_or(0);
        s.last_cycle = self.frames.iter().map(|f| f.cycle).max().unwrap_or(0);
        let n = self.frames.len() as f64;
        for f in &self.frames {
            s.mean_computing += f.computing as f64 / n;
            s.mean_queued += f.queued as f64 / n;
            s.mean_waiting += f.waiting as f64 / n;
            s.mean_stalled += f.stalled as f64 / n;
            s.mean_k += f.k as f64 / n;
            s.d_cycles += f.d_cycles;
            s.d_ops += f.d_ops;
            s.d_requests += f.d_requests;
            s.d_hits += f.d_hits;
            s.d_misses += f.d_misses;
            s.d_merges += f.d_merges;
            s.d_mshr_stalls += f.d_mshr_stalls;
        }
        if s.d_cycles > 0 {
            // Rates are per SM: frames partition each SM's measured
            // cycles, so summed deltas over summed cycles is the mean.
            s.ms_throughput = s.d_requests as f64 / s.d_cycles as f64;
            s.cs_throughput = s.d_ops / s.d_cycles as f64;
        }
        if s.d_hits + s.d_misses > 0 {
            s.hit_rate = s.d_hits as f64 / (s.d_hits + s.d_misses) as f64;
        }
        let mut inflight: Vec<f64> = self.frames.iter().map(|f| f.dram_inflight as f64).collect();
        let (p50, p95, max) = sorted_quantiles(&mut inflight);
        (
            s.dram_inflight_p50,
            s.dram_inflight_p95,
            s.dram_inflight_max,
        ) = (p50, p95, max);
        let mut backlog: Vec<f64> = self.frames.iter().map(|f| f.dram_backlog as f64).collect();
        let (p50, p95, max) = sorted_quantiles(&mut backlog);
        (s.dram_backlog_p50, s.dram_backlog_p95, s.dram_backlog_max) = (p50, p95, max);
        s
    }
}

/// In-place sort + (p50, p95, max) of a sample vector; zeros when empty.
fn sorted_quantiles(values: &mut [f64]) -> (f64, f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let at = |q: f64| values[((values.len() - 1) as f64 * q).round() as usize];
    (at(0.50), at(0.95), values[values.len() - 1])
}

/// The occupancy/stall/DRAM digest of one simtrace, serialized by
/// `xmodel sim-report --json` (schema [`SCHEMA`]).
#[derive(Debug, Clone, Default, Serialize)]
pub struct SimTraceSummary {
    /// Schema tag ([`SCHEMA`]).
    pub schema: &'static str,
    /// Distinct SMs sampled.
    pub sms: usize,
    /// Resident warps per SM.
    pub warps: u32,
    /// Probe cadence, cycles.
    pub interval: u64,
    /// Probe frames parsed.
    pub frames: usize,
    /// Legacy `sim.snapshot` events seen.
    pub snapshots: usize,
    /// Unparseable lines.
    pub malformed: usize,
    /// First sampled cycle.
    pub first_cycle: u64,
    /// Last sampled cycle.
    pub last_cycle: u64,
    /// Mean warps executing compute ops.
    pub mean_computing: f64,
    /// Mean warps queued for issue.
    pub mean_queued: f64,
    /// Mean warps waiting on memory.
    pub mean_waiting: f64,
    /// Mean warps stalled on MSHRs/barriers.
    pub mean_stalled: f64,
    /// Mean measured k.
    pub mean_k: f64,
    /// Total measured cycles across frames (per-SM cycles summed).
    pub d_cycles: u64,
    /// Total warp-ops retired in frames.
    pub d_ops: f64,
    /// Total requests completed in frames.
    pub d_requests: u64,
    /// Total L1 hits in frames.
    pub d_hits: u64,
    /// Total L1 misses in frames.
    pub d_misses: u64,
    /// Total MSHR merges in frames.
    pub d_merges: u64,
    /// Total MSHR-exhaustion stalls in frames.
    pub d_mshr_stalls: u64,
    /// Mean per-SM MS throughput, requests/cycle.
    pub ms_throughput: f64,
    /// Mean per-SM CS throughput, warp-ops/cycle.
    pub cs_throughput: f64,
    /// Aggregate L1 hit rate over the frames.
    pub hit_rate: f64,
    /// Median DRAM in-flight depth at probe boundaries.
    pub dram_inflight_p50: f64,
    /// 95th-percentile DRAM in-flight depth.
    pub dram_inflight_p95: f64,
    /// Maximum DRAM in-flight depth.
    pub dram_inflight_max: f64,
    /// Median DRAM backlog, cycles.
    pub dram_backlog_p50: f64,
    /// 95th-percentile DRAM backlog, cycles.
    pub dram_backlog_p95: f64,
    /// Maximum DRAM backlog, cycles.
    pub dram_backlog_max: f64,
}

impl SimTraceSummary {
    /// Serialize as one compact JSON line.
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Occupancy shares of warp-time by state, in render order
    /// `(label, mean warps, share of resident warps)`.
    pub fn occupancy_shares(&self) -> [(&'static str, f64, f64); 4] {
        let total =
            (self.mean_computing + self.mean_queued + self.mean_waiting + self.mean_stalled)
                .max(f64::MIN_POSITIVE);
        let row = |label, mean: f64| (label, mean, mean / total);
        [
            row("computing", self.mean_computing),
            row("queued", self.mean_queued),
            row("waiting", self.mean_waiting),
            row("stalled", self.mean_stalled),
        ]
    }

    /// Render the human-readable digest (the top half of
    /// `xmodel sim-report`; the occupancy timeline chart follows it).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.frames == 0 {
            out.push_str("simtrace: no sim.probe frames in trace");
            if self.snapshots > 0 {
                let _ = write!(
                    out,
                    " ({} legacy sim.snapshot events; re-run the sim with this build to probe)",
                    self.snapshots
                );
            }
            out.push('\n');
            return out;
        }
        let _ = writeln!(
            out,
            "simtrace: {} frame(s) from {} SM(s), {} warps, interval {} (cycles {}..{})",
            self.frames, self.sms, self.warps, self.interval, self.first_cycle, self.last_cycle
        );
        if self.malformed > 0 {
            let _ = writeln!(out, "warning: {} malformed line(s) skipped", self.malformed);
        }
        out.push_str("warp-state occupancy (mean warps, share of warp-time):\n");
        for (label, mean, share) in self.occupancy_shares() {
            let bar = "#".repeat((share * 32.0).round() as usize);
            let _ = writeln!(
                out,
                "  {label:<10} {mean:>6.2}  {:>5.1}%  {bar}",
                share * 100.0
            );
        }
        let _ = writeln!(
            out,
            "measured state: mean k = {:.2} (model's k*), mean x = {:.2}",
            self.mean_k,
            (self.warps as f64 - self.mean_k).max(0.0)
        );
        let _ = writeln!(
            out,
            "throughput from probe deltas: MS {:.4} req/cyc, CS {:.4} ops/cyc per SM",
            self.ms_throughput, self.cs_throughput
        );
        let _ = writeln!(
            out,
            "DRAM: in-flight p50 {:.0} p95 {:.0} max {:.0}; backlog cycles p50 {:.0} p95 {:.0} max {:.0}",
            self.dram_inflight_p50,
            self.dram_inflight_p95,
            self.dram_inflight_max,
            self.dram_backlog_p50,
            self.dram_backlog_p95,
            self.dram_backlog_max
        );
        if self.d_hits + self.d_misses > 0 {
            let _ = writeln!(
                out,
                "L1: hit rate {:.2} ({} hits / {} misses / {} merges, {} MSHR stalls)",
                self.hit_rate, self.d_hits, self.d_misses, self.d_merges, self.d_mshr_stalls
            );
        }
        out
    }
}

fn get_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(JsonValue::as_u64)
}

fn get_f64(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(JsonValue::as_f64)
}

fn parse_header(v: &JsonValue) -> Option<ProbeHeader> {
    Some(ProbeHeader {
        sm: get_u64(v, "sm")? as u16,
        interval: get_u64(v, "interval")?,
        warps: get_u64(v, "warps")? as u32,
        seed: get_u64(v, "seed")?,
        z: get_f64(v, "z"),
        e: get_f64(v, "e"),
    })
}

fn parse_frame(v: &JsonValue) -> Option<ProbeFrame> {
    Some(ProbeFrame {
        cycle: get_u64(v, "cycle")?,
        sm: get_u64(v, "sm")? as u16,
        computing: get_u64(v, "computing")? as u32,
        queued: get_u64(v, "queued")? as u32,
        waiting: get_u64(v, "waiting")? as u32,
        stalled: get_u64(v, "stalled")? as u32,
        k: get_u64(v, "k")? as u32,
        dram_inflight: get_u64(v, "dram_inflight")?,
        dram_backlog: get_u64(v, "dram_backlog")?,
        d_cycles: get_u64(v, "d_cycles")?,
        d_ops: get_f64(v, "d_ops")?,
        d_requests: get_u64(v, "d_requests")?,
        d_hits: get_u64(v, "d_hits").unwrap_or(0),
        d_misses: get_u64(v, "d_misses").unwrap_or(0),
        d_merges: get_u64(v, "d_merges").unwrap_or(0),
        d_mshr_stalls: get_u64(v, "d_mshr_stalls").unwrap_or(0),
        hit_rate: get_f64(v, "hit_rate").unwrap_or(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_line(cycle: u64, sm: u16, k: u32, d_requests: u64) -> String {
        format!(
            r#"{{"kind":"sim.probe","t_us":1,"cycle":{cycle},"sm":{sm},"computing":3,"queued":1,"waiting":{},"stalled":2,"k":{k},"dram_inflight":12,"dram_backlog":0,"d_cycles":256,"d_ops":800.5,"d_requests":{d_requests},"d_hits":10,"d_misses":30,"d_merges":2,"d_mshr_stalls":5,"hit_rate":0.25}}"#,
            k - 2
        )
    }

    #[test]
    fn parses_headers_frames_and_manifest_params() {
        let lines = [
            r#"{"kind":"sim.probe_header","t_us":0,"schema":"xmodel-simtrace/1","sm":0,"interval":256,"warps":24,"seed":42,"z":20,"e":1}"#.to_string(),
            frame_line(256, 0, 18, 19),
            frame_line(512, 0, 20, 21),
            r#"{"kind":"sim.snapshot","t_us":2,"cycle":256,"k":18}"#.to_string(),
            r#"{"kind":"run_manifest","params":{"workload":"gesummv","gpu":"fermi"}}"#.to_string(),
            "not json".to_string(),
        ];
        let trace = SimTrace::from_lines(lines.iter().map(String::as_str));
        assert_eq!(trace.frames.len(), 2);
        assert_eq!(trace.headers.len(), 1);
        assert_eq!(trace.snapshots, 1);
        assert_eq!(trace.malformed, 1);
        assert_eq!(trace.warps(), Some(24));
        assert_eq!(trace.interval(), Some(256));
        assert_eq!(trace.sms(), vec![0]);
        assert_eq!(trace.params["workload"], "gesummv");
        let f = &trace.frames[0];
        assert_eq!(f.warps(), 3 + 1 + 16 + 2);
        assert!((f.ms_throughput().unwrap() - 19.0 / 256.0).abs() < 1e-12);
        assert!((f.cs_throughput().unwrap() - 800.5 / 256.0).abs() < 1e-12);
        assert!((f.latency().unwrap() - 18.0 * 256.0 / 19.0).abs() < 1e-9);
    }

    #[test]
    fn summary_aggregates_and_renders() {
        let lines = [
            frame_line(256, 0, 18, 19),
            frame_line(512, 0, 20, 21),
            frame_line(256, 1, 10, 9),
        ];
        let trace = SimTrace::from_lines(lines.iter().map(String::as_str));
        let s = trace.summary();
        assert_eq!(s.frames, 3);
        assert_eq!(s.sms, 2);
        assert_eq!(s.d_requests, 49);
        assert_eq!(s.d_cycles, 3 * 256);
        assert!((s.ms_throughput - 49.0 / 768.0).abs() < 1e-12);
        assert!((s.mean_k - (18.0 + 20.0 + 10.0) / 3.0).abs() < 1e-12);
        assert!(s.hit_rate > 0.0 && s.hit_rate < 1.0);
        let text = s.render();
        assert!(text.contains("warp-state occupancy"));
        assert!(text.contains("computing"));
        assert!(text.contains("DRAM"));
        // Shares sum to ~1.
        let total: f64 = s.occupancy_shares().iter().map(|(_, _, sh)| sh).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_headerless_traces_degrade_gracefully() {
        let empty = SimTrace::from_lines(std::iter::empty());
        assert!(empty.is_empty());
        assert_eq!(empty.warps(), None);
        assert_eq!(empty.interval(), None);
        let text = empty.summary().render();
        assert!(text.contains("no sim.probe frames"));

        // No header: warps and interval inferred from frames.
        let lines = [frame_line(256, 0, 18, 19), frame_line(512, 0, 20, 21)];
        let trace = SimTrace::from_lines(lines.iter().map(String::as_str));
        assert_eq!(trace.warps(), Some(3 + 1 + 16 + 2));
        assert_eq!(trace.interval(), Some(256));
        // Single frame: interval cannot be inferred.
        let one = SimTrace::from_lines(std::iter::once(lines[0].as_str()));
        assert_eq!(one.interval(), None);
        assert_eq!(one.summary().frames, 1);
    }
}

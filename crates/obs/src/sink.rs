//! Trace sinks: where serialized events go.

use crate::event::Event;
use parking_lot::Mutex;
use std::io::Write;
use std::sync::Arc;

/// Destination for trace events. Implementations receive fully formed
/// events and decide how to persist them; `emit` must be cheap enough to
/// call from simulator inner loops (the JSONL sink buffers writes).
pub trait Sink: Send {
    /// Record one event.
    fn emit(&self, event: &Event);

    /// Record an already-serialized JSON line (used for the manifest).
    fn emit_raw(&self, line: &str);

    /// Flush buffered output to its destination.
    fn flush(&self);
}

/// Discards everything. Installed implicitly when tracing is disabled;
/// never actually reached because emission is gated on the global enable
/// flag, so disabled tracing costs one relaxed atomic load per call site.
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event) {}
    fn emit_raw(&self, _line: &str) {}
    fn flush(&self) {}
}

/// Buffered JSON-lines writer over any `io::Write`.
pub struct JsonlSink {
    writer: Mutex<std::io::BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// Create over an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            writer: Mutex::new(std::io::BufWriter::new(writer)),
        }
    }

    /// Create writing to `path` (truncates an existing file).
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(file)))
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        self.emit_raw(&event.to_json());
    }

    fn emit_raw(&self, line: &str) {
        let mut w = self.writer.lock();
        // I/O errors must not abort a simulation mid-run; drop the line.
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

/// In-memory sink for tests: collects serialized lines.
#[derive(Clone, Default)]
pub struct MemSink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all lines emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }
}

impl Sink for MemSink {
    fn emit(&self, event: &Event) {
        self.lines.lock().push(event.to_json());
    }

    fn emit_raw(&self, line: &str) {
        self.lines.lock().push(line.to_string());
    }

    fn flush(&self) {}
}

//! Trace sinks: where serialized events go.

use crate::event::Event;
use parking_lot::Mutex;
use std::io::Write;
use std::sync::Arc;

/// Destination for trace events. Implementations receive fully formed
/// events and decide how to persist them; `emit` must be cheap enough to
/// call from simulator inner loops (the JSONL sink buffers writes).
pub trait Sink: Send {
    /// Record one event.
    fn emit(&self, event: &Event);

    /// Record an already-serialized JSON line (used for the manifest).
    fn emit_raw(&self, line: &str);

    /// Flush buffered output to its destination.
    fn flush(&self);
}

/// Discards everything. Installed implicitly when tracing is disabled;
/// never actually reached because emission is gated on the global enable
/// flag, so disabled tracing costs one relaxed atomic load per call site.
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event) {}
    fn emit_raw(&self, _line: &str) {}
    fn flush(&self) {}
}

/// Buffered JSON-lines writer over any `io::Write`.
pub struct JsonlSink {
    writer: Mutex<std::io::BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// Create over an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            writer: Mutex::new(std::io::BufWriter::new(writer)),
        }
    }

    /// Create writing to `path` (truncates an existing file).
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(file)))
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        self.emit_raw(&event.to_json());
    }

    fn emit_raw(&self, line: &str) {
        let mut w = self.writer.lock();
        // I/O errors must not abort a simulation mid-run; drop the line.
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

/// Counters kept by a [`FaultySink`]; cheap atomic handle, clone freely.
#[derive(Clone, Default)]
pub struct SinkFaultCounters {
    inner: Arc<SinkFaultCountersInner>,
}

#[derive(Default)]
struct SinkFaultCountersInner {
    torn: std::sync::atomic::AtomicU64,
    dropped: std::sync::atomic::AtomicU64,
    delivered: std::sync::atomic::AtomicU64,
}

impl SinkFaultCounters {
    /// Lines truncated mid-record (torn writes).
    pub fn torn(&self) -> u64 {
        self.inner.torn.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Lines swallowed entirely (simulated write errors).
    pub fn dropped(&self) -> u64 {
        self.inner
            .dropped
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Lines forwarded intact.
    pub fn delivered(&self) -> u64 {
        self.inner
            .delivered
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    fn bump(&self, field: &std::sync::atomic::AtomicU64) {
        field.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Fault-injecting sink decorator: simulates the two ways persistent
/// trace output fails in practice — **torn writes** (a record truncated
/// mid-line by a crash or full disk) and **write errors** (a record lost
/// entirely). Used by the chaos suite to prove every reader
/// ([`crate::report::TraceReport`], manifest assembly) tolerates a
/// corrupted stream instead of panicking.
///
/// Fault selection is deterministic: a SplitMix64 stream seeded from the
/// fault spec, advanced once per line. The generator lives here (inline,
/// ~5 lines) because `xmodel-obs` deliberately has no dependency on the
/// simulator's rand shim.
pub struct FaultySink {
    inner: Box<dyn Sink>,
    tear_prob: f64,
    error_prob: f64,
    state: Mutex<u64>,
    counters: SinkFaultCounters,
}

/// One SplitMix64 step: returns the next raw u64 and advances the state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultySink {
    /// Decorate `inner`, tearing each line with probability `tear_prob`
    /// and dropping it with probability `error_prob` (checked in that
    /// order), both deterministic in `seed`.
    pub fn new(inner: Box<dyn Sink>, tear_prob: f64, error_prob: f64, seed: u64) -> Self {
        FaultySink {
            inner,
            tear_prob: tear_prob.clamp(0.0, 1.0),
            error_prob: error_prob.clamp(0.0, 1.0),
            state: Mutex::new(seed),
            counters: SinkFaultCounters::default(),
        }
    }

    /// Handle to the torn/dropped/delivered counters; survives after the
    /// sink itself is moved into [`crate::install`].
    pub fn counters(&self) -> SinkFaultCounters {
        self.counters.clone()
    }

    /// Uniform sample in [0, 1) from the SplitMix64 stream.
    fn sample(&self) -> f64 {
        let mut state = self.state.lock();
        (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Sink for FaultySink {
    fn emit(&self, event: &Event) {
        self.emit_raw(&event.to_json());
    }

    fn emit_raw(&self, line: &str) {
        let roll = self.sample();
        if roll < self.tear_prob {
            // Torn write: the first half of the record reaches the
            // stream, the rest (and any structure closing it) does not.
            let mut cut = line.len() / 2;
            while cut > 0 && !line.is_char_boundary(cut) {
                cut -= 1;
            }
            let torn = &line[..cut];
            self.counters.bump(&self.counters.inner.torn);
            self.inner.emit_raw(torn);
        } else if roll < self.tear_prob + self.error_prob {
            self.counters.bump(&self.counters.inner.dropped);
        } else {
            self.counters.bump(&self.counters.inner.delivered);
            self.inner.emit_raw(line);
        }
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

/// In-memory sink for tests: collects serialized lines.
#[derive(Clone, Default)]
pub struct MemSink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all lines emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }
}

impl Sink for MemSink {
    fn emit(&self, event: &Event) {
        self.lines.lock().push(event.to_json());
    }

    fn emit_raw(&self, line: &str) {
        self.lines.lock().push(line.to_string());
    }

    fn flush(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tear: f64, error: f64, seed: u64, n: usize) -> (Vec<String>, SinkFaultCounters) {
        let mem = MemSink::new();
        let faulty = FaultySink::new(Box::new(mem.clone()), tear, error, seed);
        let counters = faulty.counters();
        for i in 0..n {
            faulty.emit_raw(&format!("{{\"kind\":\"test.line\",\"i\":{i}}}"));
        }
        (mem.lines(), counters)
    }

    #[test]
    fn fault_free_sink_is_transparent() {
        let (lines, c) = run(0.0, 0.0, 1, 100);
        assert_eq!(lines.len(), 100);
        assert_eq!((c.torn(), c.dropped(), c.delivered()), (0, 0, 100));
    }

    #[test]
    fn counters_partition_the_stream() {
        let (lines, c) = run(0.2, 0.2, 42, 500);
        assert_eq!(c.torn() + c.dropped() + c.delivered(), 500);
        assert!(c.torn() > 0 && c.dropped() > 0 && c.delivered() > 0);
        // Dropped lines never reach the inner sink; torn + delivered do.
        assert_eq!(lines.len() as u64, c.torn() + c.delivered());
    }

    #[test]
    fn faults_are_deterministic_in_the_seed() {
        let (a, ca) = run(0.3, 0.1, 7, 200);
        let (b, cb) = run(0.3, 0.1, 7, 200);
        assert_eq!(a, b);
        assert_eq!(
            (ca.torn(), ca.dropped(), ca.delivered()),
            (cb.torn(), cb.dropped(), cb.delivered())
        );
        let (c, _) = run(0.3, 0.1, 8, 200);
        assert_ne!(a, c, "different seed must fault differently");
    }

    #[test]
    fn torn_lines_are_proper_prefixes() {
        let (lines, c) = run(1.0, 0.0, 3, 10);
        assert_eq!(c.torn(), 10);
        for (i, line) in lines.iter().enumerate() {
            let full = format!("{{\"kind\":\"test.line\",\"i\":{i}}}");
            assert!(full.starts_with(line.as_str()));
            assert!(line.len() < full.len());
        }
    }

    #[test]
    fn torn_cut_lands_on_char_boundary() {
        let mem = MemSink::new();
        let faulty = FaultySink::new(Box::new(mem.clone()), 1.0, 0.0, 9);
        faulty.emit_raw("ééééééé"); // 2-byte chars: len/2 may split one
        let lines = mem.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].chars().all(|ch| ch == 'é'));
    }
}

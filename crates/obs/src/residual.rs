//! `xmodel-residual/1` — model-vs-simulator residual analysis.
//!
//! The paper's validation argument (§V) is pointwise: the analytic
//! operating point is compared against the simulator's *converged*
//! averages. This module makes the comparison continuous: it aligns a
//! [`crate::simtrace::SimTrace`] against the analytic model's predicted
//! operating point and produces, per observable, the residual *time
//! series* `measured(t) − predicted` plus summary quantiles — the
//! residual-analysis layer `xmodel residuals` renders and gates on.
//!
//! Dependency direction note: `xmodel-core` depends on this crate, so
//! the model side arrives as a plain [`ModelPrediction`] struct; the CLI
//! bridges (it solves the model, then passes the numbers down here).

use crate::json;
use crate::simtrace::{ProbeFrame, SimTrace};
use serde::Serialize;

/// Version tag for residual reports; bump when the report shape
/// changes incompatibly.
pub const SCHEMA: &str = "xmodel-residual/1";

/// Default relative-residual warn threshold for `xmodel residuals
/// --rel`. The interval simulator and the analytic model agree on k and
/// throughputs to within a few percent once converged, but k(t)
/// fluctuates around k* and cache warm-up skews early frames, so the
/// committed gate tolerates 25% before calling a preset mismatched
/// (see EXPERIMENTS.md for the measured per-preset residuals).
pub const DEFAULT_REL_TOL: f64 = 0.25;

/// The analytic model's predicted operating point for the traced
/// configuration, in the simulator's units (per-SM, per-cycle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ModelPrediction {
    /// Predicted threads in the memory subsystem, k*.
    pub k: f64,
    /// Predicted threads in the compute subsystem, x* = n − k*.
    pub x: f64,
    /// Predicted MS throughput, requests/cycle.
    pub ms_throughput: f64,
    /// Predicted CS throughput, warp-ops/cycle.
    pub cs_throughput: f64,
    /// Predicted memory latency, cycles (Little's law: k*/MS*).
    pub latency: f64,
}

/// One observable's residual series and summary statistics.
#[derive(Debug, Clone, Serialize)]
pub struct ResidualSeries {
    /// Observable name (`k`, `x`, `ms_throughput`, ...).
    pub variable: &'static str,
    /// The model's prediction.
    pub predicted: f64,
    /// Mean of the measured samples.
    pub mean_measured: f64,
    /// Mean residual, `mean_measured − predicted`.
    pub mean_residual: f64,
    /// Relative residual of the means:
    /// `|mean − predicted| / max(|predicted|, |mean|)` — symmetric and
    /// bounded by 1 when either side is zero, so a zero prediction
    /// cannot divide the gate by zero.
    pub rel_residual: f64,
    /// Median absolute residual across frames.
    pub p50_abs: f64,
    /// 95th-percentile absolute residual across frames.
    pub p95_abs: f64,
    /// Maximum absolute residual across frames.
    pub max_abs: f64,
    /// Frames contributing samples.
    pub samples: usize,
    /// Whether this observable participates in the `--rel` exit gate
    /// (derived observables like latency are reported warn-only).
    pub gated: bool,
    /// The residual time series, `(cycle, measured − predicted)`.
    pub series: Vec<(u64, f64)>,
}

impl ResidualSeries {
    fn build(
        variable: &'static str,
        predicted: f64,
        gated: bool,
        samples: impl Iterator<Item = (u64, f64)>,
    ) -> ResidualSeries {
        let mut series: Vec<(u64, f64)> = Vec::new();
        let mut sum = 0.0;
        for (cycle, measured) in samples {
            series.push((cycle, measured - predicted));
            sum += measured;
        }
        let n = series.len();
        let mean_measured = if n > 0 { sum / n as f64 } else { 0.0 };
        let mean_residual = mean_measured - predicted;
        let scale = predicted.abs().max(mean_measured.abs());
        let rel_residual = if n == 0 || !scale.is_finite() {
            // No samples (or a non-finite prediction, e.g. an infinite
            // latency from a zero-throughput model) means the trace
            // cannot support the comparison; treat as maximally
            // suspicious rather than silently green or NaN.
            1.0
        } else if scale > 0.0 {
            mean_residual.abs() / scale
        } else {
            0.0
        };
        let mut abs: Vec<f64> = series.iter().map(|(_, r)| r.abs()).collect();
        abs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let at = |q: f64| {
            if abs.is_empty() {
                0.0
            } else {
                abs[((abs.len() - 1) as f64 * q).round() as usize]
            }
        };
        ResidualSeries {
            variable,
            predicted,
            mean_measured,
            mean_residual,
            rel_residual,
            p50_abs: at(0.50),
            p95_abs: at(0.95),
            max_abs: abs.last().copied().unwrap_or(0.0),
            samples: n,
            gated,
            series,
        }
    }
}

/// The full model-vs-simulator residual report (schema [`SCHEMA`]).
#[derive(Debug, Clone, Serialize)]
pub struct ResidualReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: &'static str,
    /// The prediction the trace was compared against.
    pub predicted: ModelPrediction,
    /// Probe frames consumed.
    pub frames: usize,
    /// Per-observable residuals, ranked worst-first by relative
    /// residual (gated observables before warn-only ones on ties).
    pub series: Vec<ResidualSeries>,
}

impl ResidualReport {
    /// Align `trace` against `pred`. Every probe frame contributes one
    /// sample per observable (frames of different SMs are all samples
    /// of the same per-SM prediction); rate observables skip frames
    /// with no measured cycles, latency skips frames with no completed
    /// requests.
    pub fn between(trace: &SimTrace, pred: &ModelPrediction) -> ResidualReport {
        let frames = &trace.frames;
        let k = |f: &ProbeFrame| Some(f.k as f64);
        let x = |f: &ProbeFrame| Some((f.warps() - f.k.min(f.warps())) as f64);
        let sampled = |extract: &dyn Fn(&ProbeFrame) -> Option<f64>| {
            frames
                .iter()
                .filter_map(|f| extract(f).map(|v| (f.cycle, v)))
                .collect::<Vec<_>>()
        };
        let mut series = vec![
            ResidualSeries::build("k", pred.k, true, sampled(&k).into_iter()),
            // x = n − k is fully determined by k, and at memory-bound
            // operating points (k ≈ n) its magnitude approaches zero, so
            // the symmetric relative residual amplifies absolute noise
            // the k gate already bounds. Report it, but warn-only.
            ResidualSeries::build("x", pred.x, false, sampled(&x).into_iter()),
            ResidualSeries::build(
                "ms_throughput",
                pred.ms_throughput,
                true,
                sampled(&|f: &ProbeFrame| f.ms_throughput()).into_iter(),
            ),
            ResidualSeries::build(
                "cs_throughput",
                pred.cs_throughput,
                true,
                sampled(&|f: &ProbeFrame| f.cs_throughput()).into_iter(),
            ),
            ResidualSeries::build(
                "latency",
                pred.latency,
                false,
                sampled(&|f: &ProbeFrame| f.latency()).into_iter(),
            ),
        ];
        series.sort_by(|a, b| {
            b.rel_residual
                .partial_cmp(&a.rel_residual)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.gated.cmp(&a.gated))
        });
        ResidualReport {
            schema: SCHEMA,
            predicted: *pred,
            frames: frames.len(),
            series,
        }
    }

    /// Gated observables whose relative residual exceeds `rel`.
    pub fn exceeding(&self, rel: f64) -> Vec<&ResidualSeries> {
        self.series
            .iter()
            .filter(|s| s.gated && s.rel_residual > rel)
            .collect()
    }

    /// Serialize the report (summaries only, then the series) as one
    /// compact JSON line.
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Render the ranked residual table. Gated observables exceeding
    /// `rel` are marked `!`; warn-only ones `~` when they exceed it.
    pub fn render(&self, rel: f64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "residuals vs model ({} frame(s); gate: rel > {:.0}%):",
            self.frames,
            rel * 100.0
        );
        let _ = writeln!(
            out,
            "  {:<14} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
            "variable", "predicted", "measured", "rel", "p50|r|", "p95|r|", "max|r|"
        );
        for s in &self.series {
            let mark = if s.rel_residual > rel {
                if s.gated {
                    '!'
                } else {
                    '~'
                }
            } else {
                ' '
            };
            let _ = writeln!(
                out,
                "{mark} {:<14} {:>10.4} {:>10.4} {:>8.1}% {:>9.3} {:>9.3} {:>9.3}",
                s.variable,
                s.predicted,
                s.mean_measured,
                s.rel_residual * 100.0,
                s.p50_abs,
                s.p95_abs,
                s.max_abs
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simtrace::SimTrace;

    fn frame_line(cycle: u64, k: u32, d_requests: u64, d_ops: f64) -> String {
        format!(
            r#"{{"kind":"sim.probe","t_us":1,"cycle":{cycle},"sm":0,"computing":{},"queued":0,"waiting":{k},"stalled":0,"k":{k},"dram_inflight":8,"dram_backlog":0,"d_cycles":256,"d_ops":{d_ops},"d_requests":{d_requests},"hit_rate":0}}"#,
            24 - k
        )
    }

    fn trace_of(lines: &[String]) -> SimTrace {
        SimTrace::from_lines(lines.iter().map(String::as_str))
    }

    #[test]
    fn perfect_agreement_has_zero_residuals() {
        // k = 18, x = 6, 18 requests / 256 cycles, 360 ops / 256 cycles.
        let lines = [
            frame_line(256, 18, 18, 360.0),
            frame_line(512, 18, 18, 360.0),
        ];
        let pred = ModelPrediction {
            k: 18.0,
            x: 6.0,
            ms_throughput: 18.0 / 256.0,
            cs_throughput: 360.0 / 256.0,
            latency: 18.0 * 256.0 / 18.0,
        };
        let report = ResidualReport::between(&trace_of(&lines), &pred);
        for s in &report.series {
            assert!(
                s.rel_residual < 1e-12,
                "{} residual {}",
                s.variable,
                s.rel_residual
            );
            assert_eq!(s.samples, 2);
        }
        assert!(report.exceeding(0.01).is_empty());
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"xmodel-residual/1\""));
    }

    #[test]
    fn mismatched_prediction_is_ranked_and_gated() {
        let lines = [
            frame_line(256, 18, 18, 360.0),
            frame_line(512, 20, 20, 400.0),
        ];
        // Predict half the k the simulator measured.
        let pred = ModelPrediction {
            k: 9.5,
            x: 14.5,
            ms_throughput: 19.0 / 256.0,
            cs_throughput: 380.0 / 256.0,
            latency: 256.0,
        };
        let report = ResidualReport::between(&trace_of(&lines), &pred);
        let worst = &report.series[0];
        assert!(worst.variable == "k" || worst.variable == "x");
        assert!(worst.rel_residual > 0.25);
        let exceeded = report.exceeding(0.25);
        assert!(exceeded.iter().any(|s| s.variable == "k"));
        // Throughputs agree, so they are not flagged.
        assert!(exceeded.iter().all(|s| s.variable != "ms_throughput"));
        let table = report.render(0.25);
        assert!(table.lines().any(|l| l.starts_with('!')));
    }

    #[test]
    fn zero_prediction_and_empty_trace_are_guarded() {
        // Zero prediction with zero measurement: residual 0, not NaN.
        let lines = [frame_line(256, 0, 0, 0.0)];
        let pred = ModelPrediction {
            k: 0.0,
            x: 24.0,
            ms_throughput: 0.0,
            cs_throughput: 0.0,
            latency: 0.0,
        };
        let report = ResidualReport::between(&trace_of(&lines), &pred);
        let k = report.series.iter().find(|s| s.variable == "k").unwrap();
        assert_eq!(k.rel_residual, 0.0);
        // Latency had no completed requests: no samples, flagged 1.0
        // (warn-only, so the gate still passes).
        let lat = report
            .series
            .iter()
            .find(|s| s.variable == "latency")
            .unwrap();
        assert_eq!(lat.samples, 0);
        assert_eq!(lat.rel_residual, 1.0);
        assert!(report.exceeding(0.5).is_empty());

        // An empty trace has no samples for anything: every gated
        // observable (k and the two throughputs; x and latency are
        // warn-only) is flagged at rel 1.0 rather than silently green.
        let empty = ResidualReport::between(&SimTrace::default(), &pred);
        assert_eq!(empty.frames, 0);
        assert_eq!(empty.exceeding(0.99).len(), 3);
        assert!(empty.render(0.25).contains("0 frame(s)"));
    }
}

//! Central registry of span and metric names.
//!
//! Every span or counter name used by the workspace crates (`core`,
//! `sim`, `profile`, `cli`) must be a constant from this module, so the
//! Prometheus label sets, folded profile trees and manifest phase tables
//! stay consistent across crates. The `span-name-registry` lint
//! (`cargo run -p xlint`) enforces this: a bare string literal passed to
//! [`crate::span!`], [`crate::metrics::counter_add`],
//! [`crate::metrics::gauge_set`] or
//! [`crate::metrics::histogram_observe`] in those crates is a finding.

/// Span names: `<subsystem>.<phase>`, dot-separated, lowercase.
pub mod span {
    /// The dense scan + bisection pass of the flow-balance solver.
    pub const SOLVER_SOLVE: &str = "solver.solve";
    /// The tabulated fast path of the flow-balance solver
    /// (coarse-scan-then-refine over a `CurveTable`).
    pub const SOLVER_SOLVE_FAST: &str = "solver.solve_fast";
    /// One full parallel grid sweep (`core::sweep::run`).
    pub const SWEEP_RUN: &str = "sweep.run";
    /// One work-stealing chunk of a parallel grid sweep.
    pub const SWEEP_CHUNK: &str = "sweep.chunk";
    /// One cycle-level simulator run (interval machine).
    pub const SIM_RUN: &str = "sim.run";
    /// One IR-driven simulator run.
    pub const SIM_RUN_IR: &str = "sim.run_ir";
    /// Warm-up portion of a simulator run (excluded from measurement).
    pub const SIM_WARMUP: &str = "sim.warmup";
    /// Measured portion of a simulator run.
    pub const SIM_MEASURE: &str = "sim.measure";
    /// Assembling machine/workload parameters from profile counters.
    pub const PROFILE_ASSEMBLE: &str = "profile.assemble";
    /// Grid-search calibration of cache locality parameters.
    pub const PROFILE_CALIBRATE: &str = "profile.calibrate";
}

/// Counter / gauge names: `<subsystem>.<noun>`, dot-separated, lowercase.
pub mod metric {
    /// Number of flow-balance solves performed.
    pub const SOLVER_SOLVES: &str = "solver.solves";
    /// Calibration grid points whose fit failed and were skipped.
    pub const PROFILE_CALIBRATE_SKIPPED: &str = "profile.calibrate.skipped";
    /// Operating points resolved below the exact rung of the
    /// degradation ladder (grid-scan or baseline-estimate provenance).
    pub const SOLVER_DEGRADED: &str = "solver.degraded";
    /// Calibration measurements rejected as outliers or retried.
    pub const PROFILE_CALIBRATE_RETRIES: &str = "profile.calibrate.retries";
    /// Exact `f`/`ĝ` curve evaluations performed by the solver, summed
    /// per solve (both the dense reference and the fast path emit it, so
    /// the fast path's saving is visible in `xmodel profile`).
    pub const SOLVER_CURVE_EVALS: &str = "solver.curve_evals";
    /// Grid points dispatched through `core::sweep::run`.
    pub const SWEEP_ITEMS: &str = "sweep.items";
    /// Work-stealing chunks executed by `core::sweep::run`.
    pub const SWEEP_CHUNKS: &str = "sweep.chunks";
}

#[cfg(test)]
mod tests {
    /// Registry invariants: names are lowercase dot-separated identifiers
    /// and globally unique.
    #[test]
    fn names_are_well_formed_and_unique() {
        let all = [
            super::span::SOLVER_SOLVE,
            super::span::SOLVER_SOLVE_FAST,
            super::span::SWEEP_RUN,
            super::span::SWEEP_CHUNK,
            super::span::SIM_RUN,
            super::span::SIM_RUN_IR,
            super::span::SIM_WARMUP,
            super::span::SIM_MEASURE,
            super::span::PROFILE_ASSEMBLE,
            super::span::PROFILE_CALIBRATE,
            super::metric::SOLVER_SOLVES,
            super::metric::SOLVER_CURVE_EVALS,
            super::metric::SWEEP_ITEMS,
            super::metric::SWEEP_CHUNKS,
            super::metric::PROFILE_CALIBRATE_SKIPPED,
            super::metric::SOLVER_DEGRADED,
            super::metric::PROFILE_CALIBRATE_RETRIES,
        ];
        for name in all {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "bad name {name:?}"
            );
            assert!(!name.starts_with('.') && !name.ends_with('.'));
        }
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "duplicate registry entry");
    }
}

//! Central registry of span and metric names.
//!
//! Every span or counter name used by the workspace crates (`core`,
//! `sim`, `profile`, `cli`) must be a constant from this module, so the
//! Prometheus label sets, folded profile trees and manifest phase tables
//! stay consistent across crates. The `span-name-registry` lint
//! (`cargo run -p xlint`) enforces this: a bare string literal passed to
//! [`crate::span!`], [`crate::metrics::counter_add`],
//! [`crate::metrics::gauge_set`] or
//! [`crate::metrics::histogram_observe`] in those crates is a finding.

/// Span names: `<subsystem>.<phase>`, dot-separated, lowercase.
pub mod span {
    /// The dense scan + bisection pass of the flow-balance solver.
    pub const SOLVER_SOLVE: &str = "solver.solve";
    /// The tabulated fast path of the flow-balance solver
    /// (coarse-scan-then-refine over a `CurveTable`).
    pub const SOLVER_SOLVE_FAST: &str = "solver.solve_fast";
    /// The one-shot batched dense solve (`core::batch::solve_batch`):
    /// lane-batched kernels over the full grid, no table.
    pub const SOLVER_SOLVE_BATCH: &str = "solver.solve_batch";
    /// One full parallel grid sweep (`core::sweep::run`).
    pub const SWEEP_RUN: &str = "sweep.run";
    /// One work-stealing chunk of a parallel grid sweep.
    pub const SWEEP_CHUNK: &str = "sweep.chunk";
    /// One cycle-level simulator run (interval machine).
    pub const SIM_RUN: &str = "sim.run";
    /// One IR-driven simulator run.
    pub const SIM_RUN_IR: &str = "sim.run_ir";
    /// Warm-up portion of a simulator run (excluded from measurement).
    pub const SIM_WARMUP: &str = "sim.warmup";
    /// Measured portion of a simulator run.
    pub const SIM_MEASURE: &str = "sim.measure";
    /// Assembling machine/workload parameters from profile counters.
    pub const PROFILE_ASSEMBLE: &str = "profile.assemble";
    /// Grid-search calibration of cache locality parameters.
    pub const PROFILE_CALIBRATE: &str = "profile.calibrate";
    /// One multi-SM chip simulation (`sim::chip::ChipSim::run`).
    pub const SIM_CHIP: &str = "sim.chip";
    /// Aligning a simtrace against the analytic model's predictions
    /// (`xmodel residuals`).
    pub const RESIDUAL_COMPARE: &str = "residual.compare";
    /// One admitted request handled by the `xmodel serve` daemon
    /// (`core::serve`), parse through response write.
    pub const SERVE_REQUEST: &str = "serve.request";
}

/// Counter / gauge names: `<subsystem>.<noun>`, dot-separated, lowercase.
pub mod metric {
    /// Number of flow-balance solves performed.
    pub const SOLVER_SOLVES: &str = "solver.solves";
    /// Calibration grid points whose fit failed and were skipped.
    pub const PROFILE_CALIBRATE_SKIPPED: &str = "profile.calibrate.skipped";
    /// Operating points resolved below the exact rung of the
    /// degradation ladder (grid-scan or baseline-estimate provenance).
    pub const SOLVER_DEGRADED: &str = "solver.degraded";
    /// Calibration measurements rejected as outliers or retried.
    pub const PROFILE_CALIBRATE_RETRIES: &str = "profile.calibrate.retries";
    /// Exact `f`/`ĝ` curve evaluations performed by the solver, summed
    /// per solve (both the dense reference and the fast path emit it, so
    /// the fast path's saving is visible in `xmodel profile`).
    pub const SOLVER_CURVE_EVALS: &str = "solver.curve_evals";
    /// Grid points dispatched through `core::sweep::run`.
    pub const SWEEP_ITEMS: &str = "sweep.items";
    /// Work-stealing chunks executed by `core::sweep::run`.
    pub const SWEEP_CHUNKS: &str = "sweep.chunks";

    // --- core::fastpath deep introspection -----------------------------

    /// `CurveTable` constructions (one tabulation of Eq. (2)/(5)).
    pub const FASTPATH_TABLE_BUILDS: &str = "fastpath.table_builds";
    /// Exact curve evaluations spent building `CurveTable`s.
    pub const FASTPATH_TABLE_EVALS: &str = "fastpath.table_evals";
    /// `SolveCache` solves answered from the already-built table.
    pub const FASTPATH_CACHE_HITS: &str = "fastpath.cache_hits";
    /// `SolveCache` solves that had no table yet (cold build).
    pub const FASTPATH_CACHE_MISSES: &str = "fastpath.cache_misses";
    /// `SolveCache` rebuilds forced by a supply-curve key change or a
    /// domain that no longer covers `n` (stale table).
    pub const FASTPATH_CACHE_STALE: &str = "fastpath.cache_stale";
    /// Coarse blocks skipped wholesale by monotone-range screening.
    pub const FASTPATH_BLOCKS_SCREENED: &str = "fastpath.blocks_screened";
    /// Coarse blocks that survived screening and were refined
    /// sample-by-sample.
    pub const FASTPATH_BLOCKS_REFINED: &str = "fastpath.blocks_refined";
    /// Dense samples answered from the interpolated table.
    pub const FASTPATH_INTERP_EVALS: &str = "fastpath.interp_evals";
    /// Exact `f(k)` evaluations spent inside fast-path solves.
    pub const FASTPATH_EXACT_EVALS: &str = "fastpath.exact_evals";
    /// Coarse blocks whose screening was disabled by an unsound
    /// (non-finite-margin) table interval.
    pub const FASTPATH_UNSOUND_DISABLES: &str = "fastpath.unsound_disables";
    /// Eight-lane kernel loop bodies executed by batched evaluation
    /// (tabulation, batched refine and `solve_batch` dense scans).
    pub const FASTPATH_BATCH_EVALS: &str = "fastpath.batch_evals";

    // --- core::sweep executor introspection ----------------------------

    /// Chunk claims taken from the atomic cursor, including the final
    /// empty claim each worker uses to discover the queue is drained.
    pub const SWEEP_CHUNK_CLAIMS: &str = "sweep.chunk_claims";
    /// Distribution of grid cells completed per worker per run
    /// (histogram; a tight distribution means good load balance).
    pub const SWEEP_WORKER_CELLS: &str = "sweep.worker_cells";
    /// Worker threads used by the most recent sweep (gauge).
    pub const SWEEP_WORKERS: &str = "sweep.workers";
    /// Mean worker busy fraction of the last sweep's wall time (gauge,
    /// 0–1; 1.0 means every worker computed the whole time).
    pub const SWEEP_UTILIZATION: &str = "sweep.utilization";
    /// Relative busy-time spread `(max − min) / max` across workers of
    /// the last sweep (gauge, 0 = perfectly balanced).
    pub const SWEEP_IMBALANCE: &str = "sweep.imbalance";
    /// Warm-started sweep cells solved from the previous cell's seed
    /// (root windows + uniform-gap proofs) without a full coarse scan.
    pub const SWEEP_WARM_HITS: &str = "sweep.warm_hits";
    /// Sweep cells resolved by the USL rational-function screen's
    /// single-crossing fast path (no full descent).
    pub const SWEEP_USL_SCREENED: &str = "sweep.usl_screened";

    // --- core::degrade ladder introspection ----------------------------

    /// Operating points resolved by the exact rung.
    pub const DEGRADE_RUNG_EXACT: &str = "degrade.rung_exact";
    /// Operating points resolved by the grid-scan rung.
    pub const DEGRADE_RUNG_GRID_SCAN: &str = "degrade.rung_grid_scan";
    /// Operating points resolved by the baseline-estimate rung.
    pub const DEGRADE_RUNG_BASELINE: &str = "degrade.rung_baseline";
    /// Time spent attempting the exact rung, µs (histogram).
    pub const DEGRADE_EXACT_US: &str = "degrade.exact_us";
    /// Time spent attempting the grid-scan rung, µs (histogram).
    pub const DEGRADE_GRID_SCAN_US: &str = "degrade.grid_scan_us";
    /// Time spent computing the baseline rung, µs (histogram).
    pub const DEGRADE_BASELINE_US: &str = "degrade.baseline_us";

    // --- sim probe layer (`xmodel-simtrace/1`) --------------------------

    /// `sim.probe` frames emitted by the simulator probe layer.
    pub const SIM_PROBE_FRAMES: &str = "sim.probe_frames";
    /// DRAM requests in flight at probe boundaries (histogram over
    /// `crate::simtrace::QUEUE_DEPTH_EDGES`).
    pub const SIM_DRAM_INFLIGHT: &str = "sim.dram_inflight";
    /// DRAM channel backlog in cycles at probe boundaries (histogram
    /// over `crate::simtrace::QUEUE_DEPTH_EDGES`).
    pub const SIM_DRAM_BACKLOG: &str = "sim.dram_backlog";
    /// Warp issue attempts rejected for MSHR exhaustion, summed from
    /// probe-frame deltas.
    pub const SIM_MSHR_STALLS: &str = "sim.mshr_stalls";

    // --- residual analysis (`xmodel-residual/1`) ------------------------

    /// Observables compared by a residual report.
    pub const RESIDUAL_VARIABLES: &str = "residual.variables";
    /// Gated observables whose relative residual exceeded the
    /// tolerance.
    pub const RESIDUAL_EXCEEDANCES: &str = "residual.exceedances";

    // --- core::serve daemon (`xmodel serve`) ----------------------------

    /// Requests admitted and answered by the serve worker pool
    /// (any status, including typed errors).
    pub const SERVE_REQUESTS: &str = "serve.requests";
    /// Connections shed at admission (429 + `Retry-After`) because the
    /// queue was at capacity or the server was draining (503).
    pub const SERVE_SHED: &str = "serve.shed";
    /// Current request-queue depth (gauge, sampled at admission).
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Requests whose deadline budget expired mid-solve (504).
    pub const SERVE_DEADLINE_EXCEEDED: &str = "serve.deadline_exceeded";
    /// Connections rejected as malformed, oversized or timed out while
    /// reading (400/408/413).
    pub const SERVE_MALFORMED: &str = "serve.malformed";
    /// Requests forced below the exact ladder rung by queue pressure.
    pub const SERVE_FORCED_DEGRADE: &str = "serve.forced_degrade";
    /// End-to-end latency of admitted requests in µs, accept to
    /// response write (histogram).
    pub const SERVE_LATENCY_US: &str = "serve.latency_us";
    /// Serve solves answered by a curve table already resident in the
    /// shard's LRU.
    pub const SERVE_CACHE_HITS: &str = "serve.cache_hits";
    /// Serve solves whose curve key was absent from the shard's LRU
    /// (fresh entry inserted).
    pub const SERVE_CACHE_MISSES: &str = "serve.cache_misses";
    /// LRU entries evicted from a serve shard to admit a new curve key.
    pub const SERVE_CACHE_EVICTIONS: &str = "serve.cache_evictions";
}

/// One-line help text for a registered metric name, used for the
/// `# HELP` lines of the Prometheus exposition (`crate::export`).
/// Returns `None` for names outside the registry (ad-hoc test metrics).
pub fn metric_help(name: &str) -> Option<&'static str> {
    Some(match name {
        metric::SOLVER_SOLVES => "flow-balance solves performed",
        metric::SOLVER_DEGRADED => "operating points resolved below the exact ladder rung",
        metric::SOLVER_CURVE_EVALS => "exact curve evaluations performed by the solver",
        metric::PROFILE_CALIBRATE_SKIPPED => "calibration grid points skipped after fit failure",
        metric::PROFILE_CALIBRATE_RETRIES => "calibration measurements rejected or retried",
        metric::SWEEP_ITEMS => "grid points dispatched through the sweep executor",
        metric::SWEEP_CHUNKS => "work-stealing chunks executed by the sweep executor",
        metric::FASTPATH_TABLE_BUILDS => "CurveTable tabulations built",
        metric::FASTPATH_TABLE_EVALS => "exact curve evaluations spent building CurveTables",
        metric::FASTPATH_CACHE_HITS => "SolveCache solves reusing the cached table",
        metric::FASTPATH_CACHE_MISSES => "SolveCache solves building a table cold",
        metric::FASTPATH_CACHE_STALE => "SolveCache rebuilds forced by a stale table",
        metric::FASTPATH_BLOCKS_SCREENED => "coarse blocks skipped wholesale by range screening",
        metric::FASTPATH_BLOCKS_REFINED => "coarse blocks refined sample-by-sample",
        metric::FASTPATH_INTERP_EVALS => "dense samples answered from the interpolated table",
        metric::FASTPATH_EXACT_EVALS => "exact f(k) evaluations inside fast-path solves",
        metric::FASTPATH_UNSOUND_DISABLES => {
            "coarse blocks with screening disabled by an unsound margin"
        }
        metric::FASTPATH_BATCH_EVALS => "eight-lane batched kernel loop bodies executed",
        metric::SWEEP_CHUNK_CLAIMS => "chunk claims taken from the sweep cursor",
        metric::SWEEP_WORKER_CELLS => "cells completed per worker per sweep run",
        metric::SWEEP_WORKERS => "worker threads used by the most recent sweep",
        metric::SWEEP_UTILIZATION => "mean worker busy fraction of the last sweep",
        metric::SWEEP_IMBALANCE => "relative worker busy-time spread of the last sweep",
        metric::SWEEP_WARM_HITS => "sweep cells solved warm from the previous cell's seed",
        metric::SWEEP_USL_SCREENED => "sweep cells resolved by the USL single-crossing screen",
        metric::DEGRADE_RUNG_EXACT => "operating points resolved by the exact rung",
        metric::DEGRADE_RUNG_GRID_SCAN => "operating points resolved by the grid-scan rung",
        metric::DEGRADE_RUNG_BASELINE => "operating points resolved by the baseline rung",
        metric::DEGRADE_EXACT_US => "time spent attempting the exact rung in microseconds",
        metric::DEGRADE_GRID_SCAN_US => "time spent attempting the grid-scan rung in microseconds",
        metric::DEGRADE_BASELINE_US => "time spent computing the baseline rung in microseconds",
        metric::SIM_PROBE_FRAMES => "sim.probe frames emitted by the simulator probe layer",
        metric::SIM_DRAM_INFLIGHT => "DRAM requests in flight at probe boundaries",
        metric::SIM_DRAM_BACKLOG => "DRAM channel backlog in cycles at probe boundaries",
        metric::SIM_MSHR_STALLS => "warp issue attempts rejected for MSHR exhaustion",
        metric::RESIDUAL_VARIABLES => "observables compared by a residual report",
        metric::RESIDUAL_EXCEEDANCES => "gated observables exceeding the residual tolerance",
        metric::SERVE_REQUESTS => "requests admitted and answered by the serve worker pool",
        metric::SERVE_SHED => "connections shed at admission (queue full or draining)",
        metric::SERVE_QUEUE_DEPTH => "current serve request-queue depth",
        metric::SERVE_DEADLINE_EXCEEDED => "requests whose deadline budget expired mid-solve",
        metric::SERVE_MALFORMED => "connections rejected as malformed, oversized or timed out",
        metric::SERVE_FORCED_DEGRADE => "requests forced below the exact rung by queue pressure",
        metric::SERVE_LATENCY_US => "end-to-end latency of admitted requests in microseconds",
        metric::SERVE_CACHE_HITS => "serve solves answered by a table resident in the shard LRU",
        metric::SERVE_CACHE_MISSES => "serve solves inserting a fresh entry into the shard LRU",
        metric::SERVE_CACHE_EVICTIONS => "LRU entries evicted from a serve shard",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    /// Registry invariants: names are lowercase dot-separated identifiers
    /// and globally unique.
    #[test]
    fn names_are_well_formed_and_unique() {
        let all = [
            super::span::SOLVER_SOLVE,
            super::span::SOLVER_SOLVE_FAST,
            super::span::SOLVER_SOLVE_BATCH,
            super::span::SWEEP_RUN,
            super::span::SWEEP_CHUNK,
            super::span::SIM_RUN,
            super::span::SIM_RUN_IR,
            super::span::SIM_WARMUP,
            super::span::SIM_MEASURE,
            super::span::PROFILE_ASSEMBLE,
            super::span::PROFILE_CALIBRATE,
            super::span::SIM_CHIP,
            super::span::RESIDUAL_COMPARE,
            super::span::SERVE_REQUEST,
            super::metric::SOLVER_SOLVES,
            super::metric::SOLVER_CURVE_EVALS,
            super::metric::SWEEP_ITEMS,
            super::metric::SWEEP_CHUNKS,
            super::metric::PROFILE_CALIBRATE_SKIPPED,
            super::metric::SOLVER_DEGRADED,
            super::metric::PROFILE_CALIBRATE_RETRIES,
            super::metric::FASTPATH_TABLE_BUILDS,
            super::metric::FASTPATH_TABLE_EVALS,
            super::metric::FASTPATH_CACHE_HITS,
            super::metric::FASTPATH_CACHE_MISSES,
            super::metric::FASTPATH_CACHE_STALE,
            super::metric::FASTPATH_BLOCKS_SCREENED,
            super::metric::FASTPATH_BLOCKS_REFINED,
            super::metric::FASTPATH_INTERP_EVALS,
            super::metric::FASTPATH_EXACT_EVALS,
            super::metric::FASTPATH_UNSOUND_DISABLES,
            super::metric::FASTPATH_BATCH_EVALS,
            super::metric::SWEEP_CHUNK_CLAIMS,
            super::metric::SWEEP_WORKER_CELLS,
            super::metric::SWEEP_WORKERS,
            super::metric::SWEEP_UTILIZATION,
            super::metric::SWEEP_IMBALANCE,
            super::metric::SWEEP_WARM_HITS,
            super::metric::SWEEP_USL_SCREENED,
            super::metric::DEGRADE_RUNG_EXACT,
            super::metric::DEGRADE_RUNG_GRID_SCAN,
            super::metric::DEGRADE_RUNG_BASELINE,
            super::metric::DEGRADE_EXACT_US,
            super::metric::DEGRADE_GRID_SCAN_US,
            super::metric::DEGRADE_BASELINE_US,
            super::metric::SIM_PROBE_FRAMES,
            super::metric::SIM_DRAM_INFLIGHT,
            super::metric::SIM_DRAM_BACKLOG,
            super::metric::SIM_MSHR_STALLS,
            super::metric::RESIDUAL_VARIABLES,
            super::metric::RESIDUAL_EXCEEDANCES,
            super::metric::SERVE_REQUESTS,
            super::metric::SERVE_SHED,
            super::metric::SERVE_QUEUE_DEPTH,
            super::metric::SERVE_DEADLINE_EXCEEDED,
            super::metric::SERVE_MALFORMED,
            super::metric::SERVE_FORCED_DEGRADE,
            super::metric::SERVE_LATENCY_US,
            super::metric::SERVE_CACHE_HITS,
            super::metric::SERVE_CACHE_MISSES,
            super::metric::SERVE_CACHE_EVICTIONS,
        ];
        for name in all {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "bad name {name:?}"
            );
            assert!(!name.starts_with('.') && !name.ends_with('.'));
        }
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "duplicate registry entry");

        // Every metric constant (entries after the span block above) must
        // carry Prometheus HELP text; span names must not.
        for name in &all[14..] {
            assert!(
                super::metric_help(name).is_some(),
                "metric {name:?} missing metric_help entry"
            );
        }
        for name in &all[..14] {
            assert!(
                super::metric_help(name).is_none(),
                "span {name:?} unexpectedly has metric_help"
            );
        }
    }
}

//! Trace events: a kind, a timestamp, the enclosing span, and a flat set
//! of named fields. One event serializes to one JSONL line with the
//! fields inlined at top level, e.g.
//! `{"kind":"sim.snapshot","t_us":812,"span":"simulate","cycle":5000,"k":17}`.

use crate::json;
use serde::ser::{SerializeMap, Serializer};
use serde::Serialize;

/// Version tag stamped on every trace (`schema` field of the manifest);
/// bump when the event shape changes incompatibly.
pub const SCHEMA: &str = "xmodel-trace/1";

/// A dynamically typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite serializes as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::U64(v) => serializer.serialize_u64(*v),
            Value::I64(v) => serializer.serialize_i64(*v),
            Value::F64(v) => serializer.serialize_f64(*v),
            Value::Bool(v) => serializer.serialize_bool(*v),
            Value::Str(v) => serializer.serialize_str(v),
        }
    }
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::$variant(v as $cast)
            }
        }
    )*};
}

value_from! {
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// One trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Dotted event kind, e.g. `solver.bracket` or `sim.snapshot`.
    pub kind: &'static str,
    /// Microseconds since trace initialisation (monotonic clock).
    pub t_us: u64,
    /// Name of the innermost active span on the emitting thread.
    pub span: Option<&'static str>,
    /// Named payload fields, serialized inline at top level.
    pub fields: Vec<(&'static str, Value)>,
}

impl Serialize for Event {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let extra = 2 + usize::from(self.span.is_some());
        let mut map = serializer.serialize_map(Some(self.fields.len() + extra))?;
        map.serialize_key(&"kind")?;
        map.serialize_value(&self.kind)?;
        map.serialize_key(&"t_us")?;
        map.serialize_value(&self.t_us)?;
        if let Some(span) = self.span {
            map.serialize_key(&"span")?;
            map.serialize_value(&span)?;
        }
        for (name, value) in &self.fields {
            map.serialize_key(name)?;
            map.serialize_value(value)?;
        }
        map.end()
    }
}

impl Event {
    /// Serialize to one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }
}

//! The 12 validation workloads of §V, regenerated from their algorithmic
//! structure.
//!
//! | id | origin | pattern | character |
//! |---|---|---|---|
//! | bfs | Rodinia | gather | frontier expansion, irregular |
//! | backprop | Rodinia | shared vector | dense layer, weight reuse |
//! | stencil | Parboil | blocked stream | 7-point neighbourhood |
//! | gesummv | Polybench | shared vector | `y = (A+B)x`, §VI case study |
//! | hpccg | Mantevo | gather (DP) | CG sparse solve, double precision |
//! | heartwall | Rodinia | private WS | image tracking, compute heavy |
//! | leukocyte | Rodinia | private WS | cell detection, compute heaviest |
//! | nw | Rodinia | strided | wavefront DP, dependent, smem-bound |
//! | nn | Rodinia | stream | distance reduction, high ILP |
//! | spmv | Parboil | gather | CSR sparse matrix-vector |
//! | atax | Polybench | shared vector | `Aᵀ(Ax)`, memory bound |
//! | lud | Rodinia | private WS | blocked LU, smem-bound |
//!
//! Each workload provides a kernel IR (for the static analyser: `E`, `Z`,
//! occupancy `n`) and a trace spec (for the simulator and locality fit).

use crate::trace::TraceSpec;
use serde::{Deserialize, Serialize};
use xmodel_isa::{Kernel, Opcode::*};

/// Identifier of one §V workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum WorkloadId {
    Bfs,
    Backprop,
    Stencil,
    Gesummv,
    Hpccg,
    Heartwall,
    Leukocyte,
    Nw,
    Nn,
    Spmv,
    Atax,
    Lud,
}

impl WorkloadId {
    /// All 12 ids in paper order.
    pub fn all() -> [WorkloadId; 12] {
        use WorkloadId::*;
        [
            Bfs, Backprop, Stencil, Gesummv, Hpccg, Heartwall, Leukocyte, Nw, Nn, Spmv, Atax, Lud,
        ]
    }
}

/// One benchmark: kernel IR + trace + provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Which benchmark.
    pub id: WorkloadId,
    /// Kernel name.
    pub name: &'static str,
    /// Original benchmark suite.
    pub origin: &'static str,
    /// SASS-like kernel IR.
    pub kernel: Kernel,
    /// Memory trace specification.
    pub trace: TraceSpec,
    /// One-line description of the regenerated structure.
    pub description: &'static str,
    /// Memory transactions per warp request (1.0 = fully coalesced; the
    /// §V "coalesced access" effect the paper cites as its accuracy
    /// limiter). Both the model (effective `R/coalesce`) and the simulator
    /// (`128·coalesce` bytes per request) honour it.
    pub coalesce: f64,
}

impl Workload {
    /// Look up one workload by id.
    pub fn get(id: WorkloadId) -> Workload {
        match id {
            WorkloadId::Bfs => bfs(),
            WorkloadId::Backprop => backprop(),
            WorkloadId::Stencil => stencil(),
            WorkloadId::Gesummv => gesummv(),
            WorkloadId::Hpccg => hpccg(),
            WorkloadId::Heartwall => heartwall(),
            WorkloadId::Leukocyte => leukocyte(),
            WorkloadId::Nw => nw(),
            WorkloadId::Nn => nn(),
            WorkloadId::Spmv => spmv(),
            WorkloadId::Atax => atax(),
            WorkloadId::Lud => lud(),
        }
    }

    /// The full §V suite in paper order.
    pub fn suite() -> Vec<Workload> {
        WorkloadId::all().into_iter().map(Workload::get).collect()
    }

    /// Look up a workload by its lowercase name (`"gesummv"`, …).
    pub fn by_name(name: &str) -> Option<Workload> {
        let lower = name.to_ascii_lowercase();
        Self::suite().into_iter().find(|w| w.name == lower)
    }
}

/// bfs — frontier expansion over an irregular graph. Serial pointer
/// chasing: no dual issue, two off-chip accesses per visited edge.
fn bfs() -> Workload {
    let kernel = Kernel::builder("bfs_kernel", 256)
        .registers(18)
        .block(1.0, |b| b.inst(MOV).inst(IMAD).inst(ISETP))
        .block(512.0, |b| {
            b.inst(LDG) // frontier node
                .inst(IADD)
                .inst(ISETP)
                .inst(LDG) // edge list
                .inst(IADD)
                .inst(LOP)
                .inst(ISETP)
                .inst(STG) // next frontier
                .inst(IADD)
                .inst(BRA)
        })
        .build();
    Workload {
        id: WorkloadId::Bfs,
        name: "bfs",
        origin: "Rodinia",
        kernel,
        trace: TraceSpec::Gather {
            footprint_lines: 1 << 18,
            skew: 0.6,
        },
        description: "level-synchronous BFS: gather over edge lists, dependent integer chains",
        coalesce: 1.0,
    }
}

/// backprop — dense layer forward/backward: weight rows stream, input
/// vector is re-read by every warp; FMA pairs dual-issue.
fn backprop() -> Workload {
    let kernel = Kernel::builder("backprop_layer", 256)
        .registers(24)
        .block(1.0, |b| b.inst(MOV).inst(IMAD).inst(MOV))
        .block(1024.0, |b| {
            b.inst(LDG) // weight
                .dual(FFMA)
                .inst(LDG) // activation
                .dual(FFMA)
                .inst(FFMA)
                .dual(FADD)
                .inst(IADD)
                .dual(ISETP)
                .inst(FFMA)
                .inst(FMUL)
                .inst(IADD)
                .inst(BRA)
        })
        .build();
    Workload {
        id: WorkloadId::Backprop,
        name: "backprop",
        origin: "Rodinia",
        kernel,
        trace: TraceSpec::SharedVector {
            vector_lines: 128,
            region_lines: 1 << 20,
            vector_prob: 0.5,
        },
        description: "dense layer: streamed weights + re-read activations, paired FMAs",
        coalesce: 1.0,
    }
}

/// stencil — 7-point stencil sweep: mostly-cached neighbourhood loads with
/// a streaming frontier.
fn stencil() -> Workload {
    let kernel = Kernel::builder("stencil7", 256)
        .registers(28)
        .block(1.0, |b| b.inst(MOV).inst(IMAD).inst(IMAD))
        .block(2048.0, |b| {
            b.inst(LDG)
                .dual(FFMA)
                .inst(FFMA)
                .inst(FADD)
                .dual(FFMA)
                .inst(FFMA)
                .inst(FADD)
                .inst(FFMA)
                .inst(FMUL)
                .inst(STG)
                .inst(IADD)
                .dual(ISETP)
                .inst(BRA)
        })
        .build();
    Workload {
        id: WorkloadId::Stencil,
        name: "stencil",
        origin: "Parboil",
        kernel,
        trace: TraceSpec::PrivateWorkingSet {
            ws_lines: 48,
            stream_prob: 0.45,
            reuse_skew: 0.8,
        },
        description: "7-point stencil: plane-reuse working set plus streaming frontier",
        coalesce: 1.0,
    }
}

/// gesummv — `y = (A+B)x` (§VI case study): two streamed matrices, one
/// shared vector; two independent FMA chains give E close to 2.
fn gesummv() -> Workload {
    let kernel = Kernel::builder("gesummv", 512)
        .registers(20)
        .block(1.0, |b| b.inst(MOV).inst(IMAD))
        .block(4096.0, |b| {
            b.inst(LDG) // A row element
                .dual(FFMA) // acc_a chain
                .inst(LDG) // B row element
                .dual(FFMA) // acc_b chain (independent)
                .inst(LDG) // x vector element (shared)
                .dual(IADD)
                .inst(ISETP)
                .dual(BRA)
        })
        .build();
    Workload {
        id: WorkloadId::Gesummv,
        name: "gesummv",
        origin: "Polybench",
        kernel,
        trace: TraceSpec::PrivateWorkingSet {
            ws_lines: 40,
            stream_prob: 0.05,
            reuse_skew: 1.5,
        },
        description: "y=(A+B)x: row-tile + x-segment reuse per warp, uncoalesced columns",
        coalesce: 3.0,
    }
}

/// hpccg — double-precision CG sparse solve (the only DP workload).
fn hpccg() -> Workload {
    let kernel = Kernel::builder("hpccg_spmv", 256)
        .registers(32)
        .block(1.0, |b| b.inst(MOV).inst(IMAD).inst(ISETP))
        .block(1024.0, |b| {
            b.inst(LDG) // value
                .inst(LDG) // column index
                .inst(LDG) // x[col]
                .dual(DFMA)
                .inst(IADD)
                .inst(ISETP)
                .inst(DADD)
                .inst(IADD)
                .inst(BRA)
        })
        .build();
    Workload {
        id: WorkloadId::Hpccg,
        name: "hpccg",
        origin: "Mantevo/HPCCG",
        kernel,
        trace: TraceSpec::Gather {
            footprint_lines: 1 << 17,
            skew: 0.8,
        },
        description: "CG sparse matrix-vector in double precision, indexed gathers",
        coalesce: 1.0,
    }
}

/// heartwall — blocked image tracking: large cached template windows,
/// heavy FP arithmetic between accesses.
fn heartwall() -> Workload {
    let kernel = Kernel::builder("heartwall_track", 256)
        .registers(40)
        .block(1.0, |b| b.inst(MOV).inst(IMAD).inst(MOV).inst(IMAD))
        .block(512.0, |b| {
            let mut bb = b.inst(LDG);
            for _ in 0..8 {
                bb = bb.inst(FFMA).dual(FMUL).inst(FADD).dual(FFMA);
            }
            bb.inst(MUFU).inst(FADD).inst(IADD).dual(ISETP).inst(BRA)
        })
        .build();
    Workload {
        id: WorkloadId::Heartwall,
        name: "heartwall",
        origin: "Rodinia",
        kernel,
        trace: TraceSpec::PrivateWorkingSet {
            ws_lines: 64,
            stream_prob: 0.2,
            reuse_skew: 1.0,
        },
        description: "template tracking: windowed reuse, long FP sequences per load",
        coalesce: 1.0,
    }
}

/// leukocyte — the compute-heaviest kernel: long paired FP chains per
/// rarely-missed load.
fn leukocyte() -> Workload {
    let kernel = Kernel::builder("leukocyte_gicov", 256)
        .registers(36)
        .block(1.0, |b| b.inst(MOV).inst(IMAD))
        .block(512.0, |b| {
            let mut bb = b.inst(LDG);
            for _ in 0..40 {
                bb = bb.inst(FFMA).dual(FFMA);
            }
            bb = bb.inst(MUFU).inst(FMUL).dual(FADD);
            bb.inst(IADD).dual(ISETP).inst(BRA)
        })
        .build();
    Workload {
        id: WorkloadId::Leukocyte,
        name: "leukocyte",
        origin: "Rodinia",
        kernel,
        trace: TraceSpec::PrivateWorkingSet {
            ws_lines: 32,
            stream_prob: 0.1,
            reuse_skew: 1.0,
        },
        description: "GICOV scoring: ~40 paired FLOPs per load, small hot window",
        coalesce: 1.0,
    }
}

/// nw — Needleman-Wunsch wavefront: dependent integer max-chains, shared
/// memory tiles cap occupancy, strided apron reads.
fn nw() -> Workload {
    let kernel = Kernel::builder("nw_wavefront", 64)
        .registers(24)
        .shared_memory(16 * 1024)
        .block(1.0, |b| b.inst(MOV).inst(IMAD))
        .block(256.0, |b| {
            b.inst(LDG)
                .inst(LDS)
                .inst(IADD)
                .inst(ISETP)
                .inst(LOP)
                .inst(LDS)
                .inst(IADD)
                .inst(ISETP)
                .inst(STS)
                .inst(STG)
                .inst(IADD)
                .inst(BAR)
                .inst(BRA)
        })
        .build();
    Workload {
        id: WorkloadId::Nw,
        name: "nw",
        origin: "Rodinia",
        kernel,
        trace: TraceSpec::Strided {
            stride_lines: 33,
            region_lines: 1 << 16,
        },
        description: "sequence alignment wavefront: dependent max-chains, smem tiles",
        coalesce: 2.0,
    }
}

/// nn — nearest neighbour: pure streaming distance computation with
/// independent lanes (highest dual-issue density).
fn nn() -> Workload {
    let kernel = Kernel::builder("nn_distance", 256)
        .registers(16)
        .block(1.0, |b| b.inst(MOV).inst(IMAD))
        .block(2048.0, |b| {
            b.inst(LDG)
                .dual(FADD)
                .inst(FMUL)
                .dual(FFMA)
                .inst(FADD)
                .dual(FMUL)
                .inst(IADD)
                .dual(ISETP)
                .inst(BRA)
        })
        .build();
    Workload {
        id: WorkloadId::Nn,
        name: "nn",
        origin: "Rodinia",
        kernel,
        trace: TraceSpec::Stream {
            region_lines: 1 << 20,
        },
        description: "kNN distance scan: streaming records, independent FP lanes",
        coalesce: 1.0,
    }
}

/// spmv — CSR sparse matrix-vector: short dependent gather chains.
fn spmv() -> Workload {
    let kernel = Kernel::builder("spmv_csr", 256)
        .registers(22)
        .block(1.0, |b| b.inst(MOV).inst(IMAD).inst(ISETP))
        .block(1024.0, |b| {
            b.inst(LDG) // val
                .inst(LDG) // col
                .inst(LDG) // x[col]
                .dual(FFMA)
                .inst(IADD)
                .inst(ISETP)
                .inst(BRA)
        })
        .build();
    Workload {
        id: WorkloadId::Spmv,
        name: "spmv",
        origin: "Parboil",
        kernel,
        trace: TraceSpec::Gather {
            footprint_lines: 1 << 17,
            skew: 0.4,
        },
        description: "CSR SpMV: three loads per FMA, weakly skewed gathers",
        coalesce: 1.0,
    }
}

/// atax — `Aᵀ(Ax)`: two matrix-vector passes, memory bound with moderate
/// pairing.
fn atax() -> Workload {
    let kernel = Kernel::builder("atax", 256)
        .registers(20)
        .block(1.0, |b| b.inst(MOV).inst(IMAD))
        .block(2048.0, |b| {
            b.inst(LDG) // A element
                .dual(FFMA)
                .inst(LDG) // x / intermediate vector (shared)
                .inst(FFMA)
                .inst(IADD)
                .dual(ISETP)
                .inst(BRA)
        })
        .build();
    Workload {
        id: WorkloadId::Atax,
        name: "atax",
        origin: "Polybench",
        kernel,
        trace: TraceSpec::SharedVector {
            vector_lines: 96,
            region_lines: 1 << 20,
            vector_prob: 0.4,
        },
        description: "ATAX: streamed matrix, re-read vectors, memory bound",
        coalesce: 1.0,
    }
}

/// lud — blocked LU decomposition: shared-memory tiles bound occupancy;
/// moderate reuse window in L1 for the apron.
fn lud() -> Workload {
    let kernel = Kernel::builder("lud_internal", 256)
        .registers(28)
        .shared_memory(16 * 1024)
        .block(1.0, |b| b.inst(MOV).inst(IMAD).inst(MOV))
        .block(512.0, |b| {
            b.inst(LDG)
                .inst(LDS)
                .dual(FFMA)
                .inst(LDS)
                .dual(FFMA)
                .inst(FFMA)
                .inst(FADD)
                .inst(STS)
                .inst(IADD)
                .dual(ISETP)
                .inst(BAR)
                .inst(BRA)
        })
        .build();
    Workload {
        id: WorkloadId::Lud,
        name: "lud",
        origin: "Rodinia",
        kernel,
        trace: TraceSpec::PrivateWorkingSet {
            ws_lines: 48,
            stream_prob: 0.35,
            reuse_skew: 0.8,
        },
        description: "blocked LU: smem tiles, apron reuse, barrier-separated phases",
        coalesce: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmodel_isa::{ArchLimits, Occupancy};

    #[test]
    fn suite_has_twelve_unique_workloads() {
        let suite = Workload::suite();
        assert_eq!(suite.len(), 12);
        let mut names: Vec<_> = suite.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn every_kernel_is_analyzable_with_sane_ranges() {
        for w in Workload::suite() {
            let a = w.kernel.analyze();
            assert!(
                (1.0..=2.0).contains(&a.ilp),
                "{}: E = {} out of Kepler pairing range",
                w.name,
                a.ilp
            );
            assert!(
                a.intensity.is_finite() && a.intensity >= 2.0,
                "{}: Z = {}",
                w.name,
                a.intensity
            );
            assert!(a.dynamic_insts > 0.0);
        }
    }

    #[test]
    fn hpccg_is_the_only_dp_workload() {
        for w in Workload::suite() {
            let a = w.kernel.analyze();
            assert_eq!(
                a.uses_fp64,
                w.id == WorkloadId::Hpccg,
                "{} fp64 flag wrong",
                w.name
            );
        }
    }

    #[test]
    fn compute_heavy_kernels_have_higher_intensity() {
        let z = |id| Workload::get(id).kernel.analyze().intensity;
        // leukocyte and heartwall sit well above the memory-bound group.
        assert!(z(WorkloadId::Leukocyte) > 3.0 * z(WorkloadId::Gesummv));
        assert!(z(WorkloadId::Heartwall) > 2.0 * z(WorkloadId::Spmv));
        // gesummv/atax/nw are the memory-bound tail.
        assert!(z(WorkloadId::Gesummv) < 6.0);
        assert!(z(WorkloadId::Atax) < 8.0);
    }

    #[test]
    fn most_sp_kernels_reach_full_kepler_occupancy() {
        // §V: "MS saturates at 2048 threads (64 warps), which is also the
        // maximum allowable threads per SM" — most kernels run at full
        // occupancy on Kepler.
        let full: Vec<_> = Workload::suite()
            .into_iter()
            .filter(|w| Occupancy::compute(&w.kernel, &ArchLimits::kepler()).warps == 64)
            .map(|w| w.name)
            .collect();
        assert!(full.len() >= 8, "only {full:?} reach full occupancy");
    }

    #[test]
    fn smem_bound_kernels_are_occupancy_limited() {
        for id in [WorkloadId::Nw, WorkloadId::Lud] {
            let w = Workload::get(id);
            let occ = Occupancy::compute(&w.kernel, &ArchLimits::kepler());
            assert!(
                occ.warps < 64,
                "{} should be occupancy limited, got {}",
                w.name,
                occ.warps
            );
            assert_eq!(occ.limiter(), "shared memory", "{}", w.name);
        }
    }

    #[test]
    fn gesummv_matches_case_study_launch() {
        // §VI: 512 threads (16 warps) per block; 3 blocks fill a Fermi SM.
        let w = Workload::get(WorkloadId::Gesummv);
        assert_eq!(w.kernel.threads_per_block, 512);
        let occ = Occupancy::compute(&w.kernel, &ArchLimits::fermi(48 * 1024));
        assert_eq!(occ.warps, 48);
        // Twin FMA chains: high ILP.
        assert!(w.kernel.analyze().ilp > 1.5);
    }

    #[test]
    fn gather_workloads_use_gather_traces() {
        for id in [WorkloadId::Bfs, WorkloadId::Spmv, WorkloadId::Hpccg] {
            assert!(matches!(Workload::get(id).trace, TraceSpec::Gather { .. }));
        }
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(
            Workload::by_name("gesummv").unwrap().id,
            WorkloadId::Gesummv
        );
        assert_eq!(Workload::by_name("LUD").unwrap().id, WorkloadId::Lud);
        assert!(Workload::by_name("doom").is_none());
    }

    #[test]
    fn coalescing_factors_are_declared() {
        // gesummv (uncoalesced columns) and nw (strided aprons) carry
        // multi-transaction factors; the rest are fully coalesced.
        for w in Workload::suite() {
            match w.id {
                WorkloadId::Gesummv => assert_eq!(w.coalesce, 3.0),
                WorkloadId::Nw => assert_eq!(w.coalesce, 2.0),
                _ => assert_eq!(w.coalesce, 1.0, "{}", w.name),
            }
        }
    }

    #[test]
    fn kernel_ir_round_trips_through_disassembly() {
        for w in Workload::suite() {
            let text = xmodel_isa::disasm::disassemble(&w.kernel);
            let back = xmodel_isa::disasm::parse(&text).unwrap();
            assert_eq!(back, w.kernel, "{} failed round trip", w.name);
        }
    }
}

//! # xmodel-workloads — benchmark kernels and memory-trace generators
//!
//! The paper validates the X-model on 12 applications from Rodinia,
//! Parboil, Polybench and HPCCG (§V) and runs its case study on
//! `gesummv` (§VI). Since the original CUDA binaries and datasets are not
//! available here, each benchmark is regenerated from its algorithmic
//! structure as:
//!
//! * a [`xmodel_isa::Kernel`] — a SASS-like instruction stream whose static
//!   analysis yields the same three scalars the paper extracts (`E`, `Z`,
//!   and occupancy `n`), and
//! * a [`trace::TraceSpec`] — a per-warp memory-address generator with the
//!   kernel's characteristic access pattern (streaming, strided, gather,
//!   shared-vector reuse, blocked working sets).
//!
//! The trace feeds the cycle-level simulator (`xmodel-sim`); the kernel IR
//! feeds the static analyser. Both views are generated from one
//! description, so "measured" (simulated) and "predicted" (modelled)
//! numbers are commensurable — the substitution the DESIGN.md inventory
//! documents.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod concrete;
pub mod locality;
pub mod microbench;
pub mod suite;
pub mod trace;

pub use suite::{Workload, WorkloadId};
pub use trace::{AddressStream, TraceSpec};

/// Cache-line size (bytes) assumed by every trace generator; matches the
/// 128-byte coalesced transaction granularity of the modelled GPUs.
pub const LINE_BYTES: u64 = 128;

/// Glob import of the common types.
pub mod prelude {
    pub use crate::concrete::RecordedTraces;
    pub use crate::locality::{fit_jacob, JacobFit};
    pub use crate::microbench::{peak_ops_kernel, stream_kernel, stream_trace};
    pub use crate::suite::{Workload, WorkloadId};
    pub use crate::trace::{AddressStream, TraceSpec};
    pub use crate::LINE_BYTES;
}

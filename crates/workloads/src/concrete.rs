//! Algorithm-derived traces: run the *actual* algorithm and record the
//! addresses it touches.
//!
//! The synthetic [`crate::trace::TraceSpec`] generators model each
//! benchmark's access pattern statistically. This module implements three
//! of the underlying algorithms for real — CSR sparse matrix-vector
//! product, level-synchronous BFS over a random graph, and a 5-point
//! stencil sweep — laid out in a flat byte-addressed memory, and records
//! the per-warp address sequences they generate. Replaying those against
//! the simulator validates (or indicts) the synthetic approximations.

use crate::trace::AddressStream;
use crate::LINE_BYTES;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// A recorded per-warp address sequence, replayed cyclically.
#[derive(Debug, Clone)]
pub struct ReplayStream {
    seq: Arc<Vec<u64>>,
    pos: usize,
}

impl ReplayStream {
    /// Wrap a recorded sequence.
    pub fn new(seq: Arc<Vec<u64>>) -> Self {
        assert!(!seq.is_empty(), "empty trace");
        Self { seq, pos: 0 }
    }
}

impl AddressStream for ReplayStream {
    fn next_addr(&mut self) -> u64 {
        let a = self.seq[self.pos];
        self.pos = (self.pos + 1) % self.seq.len();
        a
    }
}

/// Per-warp recorded traces for one workload instance.
///
/// ## Example
///
/// ```
/// use xmodel_workloads::concrete::spmv_csr;
///
/// let traces = spmv_csr(1024, 8, 4, 42);
/// let mut stream = traces.stream_for(0);
/// let a = stream.next_addr();
/// assert_eq!(a % xmodel_workloads::LINE_BYTES, 0);
/// ```
#[derive(Debug, Clone)]
pub struct RecordedTraces {
    /// One sequence per warp.
    pub per_warp: Vec<Arc<Vec<u64>>>,
}

impl RecordedTraces {
    /// Instantiate the stream for one warp (wrapping on warp id).
    pub fn stream_for(&self, warp: u32) -> Box<dyn AddressStream> {
        let seq = Arc::clone(&self.per_warp[warp as usize % self.per_warp.len()]);
        Box::new(ReplayStream::new(seq))
    }

    /// Boxed streams for `warps` warps (the shape `Sm::with_streams` takes).
    pub fn streams(&self, warps: u32) -> Vec<Box<dyn AddressStream>> {
        (0..warps).map(|w| self.stream_for(w)).collect()
    }

    /// Total recorded accesses.
    pub fn total_accesses(&self) -> usize {
        self.per_warp.iter().map(|s| s.len()).sum()
    }
}

/// Align a byte offset to its cache line.
fn line(addr: u64) -> u64 {
    addr / LINE_BYTES * LINE_BYTES
}

/// Records one warp's *transaction* stream: consecutive accesses to the
/// same line of the same array coalesce into one request, exactly like a
/// warp's consecutive lanes sharing a 128-byte transaction. Temporal
/// reuse across batches (revisiting a line later) is preserved.
struct Recorder {
    seq: Vec<u64>,
    last: [Option<u64>; 4],
}

impl Recorder {
    fn new() -> Self {
        Self {
            seq: Vec::new(),
            last: [None; 4],
        }
    }

    /// Record an access to `addr` belonging to array `tag` (0..=3).
    fn push(&mut self, tag: usize, addr: u64) {
        let l = line(addr);
        if self.last[tag] != Some(l) {
            self.seq.push(l);
            self.last[tag] = Some(l);
        }
    }

    fn finish(self) -> Arc<Vec<u64>> {
        Arc::new(if self.seq.is_empty() {
            vec![0]
        } else {
            self.seq
        })
    }
}

/// Memory layout bases, spaced far apart so arrays never alias.
const A_BASE: u64 = 0;
const B_BASE: u64 = 1 << 32;
const C_BASE: u64 = 1 << 33;
const D_BASE: u64 = 3 << 32;

/// CSR sparse matrix-vector product `y = A·x`.
///
/// Layout: `val` (f32) at `A_BASE`, `col` (u32) at `B_BASE`, `x` (f32) at
/// `C_BASE`, `y` at `D_BASE`. Warp `w` processes rows `w, w+warps, …`
/// (row-interleaved, the usual CSR-scalar mapping). Column indices are
/// drawn near the diagonal with occasional long-range links, giving `x`
/// accesses genuine (not modelled) locality.
pub fn spmv_csr(rows: usize, avg_nnz: usize, warps: u32, seed: u64) -> RecordedTraces {
    assert!(rows > 0 && avg_nnz > 0 && warps > 0);
    let mut rng = SmallRng::seed_from_u64(seed);

    // Build the sparsity structure.
    let mut row_cols: Vec<Vec<u32>> = Vec::with_capacity(rows);
    for r in 0..rows {
        let nnz = 1 + rng.random_range(0..(2 * avg_nnz) as u32) as usize;
        let mut cols: Vec<u32> = (0..nnz)
            .map(|_| {
                if rng.random::<f64>() < 0.8 {
                    // Near-diagonal band.
                    let span = 64i64;
                    let c = r as i64 + rng.random_range(-span..=span);
                    c.clamp(0, rows as i64 - 1) as u32
                } else {
                    rng.random_range(0..rows as u32)
                }
            })
            .collect();
        cols.sort_unstable();
        row_cols.push(cols);
    }
    // Prefix offsets for val/col arrays.
    let mut offsets = Vec::with_capacity(rows + 1);
    let mut acc = 0u64;
    offsets.push(0u64);
    for cols in &row_cols {
        acc += cols.len() as u64;
        offsets.push(acc);
    }

    let per_warp = (0..warps)
        .map(|w| {
            let mut rec = Recorder::new();
            let mut r = w as usize;
            while r < rows {
                let start = offsets[r];
                for (i, &c) in row_cols[r].iter().enumerate() {
                    let idx = start + i as u64;
                    rec.push(0, A_BASE + idx * 4); // val[idx]
                    rec.push(1, B_BASE + idx * 4); // col[idx]
                    rec.push(2, C_BASE + c as u64 * 4); // x[col]
                }
                rec.push(3, D_BASE + r as u64 * 4); // y[r] store
                r += warps as usize;
            }
            rec.finish()
        })
        .collect();
    RecordedTraces { per_warp }
}

/// Level-synchronous BFS over a uniform random graph of `nodes` vertices
/// with mean degree `avg_degree`, from vertex 0. Records, per warp, the
/// addresses of the offsets/adjacency/visited arrays it touches while the
/// frontier is processed round-robin across warps.
pub fn bfs_frontier(nodes: usize, avg_degree: usize, warps: u32, seed: u64) -> RecordedTraces {
    assert!(nodes > 1 && avg_degree > 0 && warps > 0);
    let mut rng = SmallRng::seed_from_u64(seed);

    // CSR graph.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nodes];
    let edges = nodes * avg_degree / 2;
    for _ in 0..edges {
        let a = rng.random_range(0..nodes as u32);
        let b = rng.random_range(0..nodes as u32);
        if a != b {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
    }
    let mut offsets = Vec::with_capacity(nodes + 1);
    let mut acc = 0u64;
    offsets.push(0u64);
    for l in &adj {
        acc += l.len() as u64;
        offsets.push(acc);
    }

    // BFS, assigning frontier vertices round-robin to warps.
    let mut recs: Vec<Recorder> = (0..warps).map(|_| Recorder::new()).collect();
    let mut visited = vec![false; nodes];
    if let Some(start) = visited.first_mut() {
        *start = true;
    }
    let mut frontier = vec![0u32];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for (i, &v) in frontier.iter().enumerate() {
            let rec = &mut recs[i % warps as usize];
            // offsets[v], offsets[v+1]
            rec.push(0, A_BASE + v as u64 * 4);
            // adjacency list
            let start = offsets[v as usize];
            for (j, &u) in adj[v as usize].iter().enumerate() {
                rec.push(1, B_BASE + (start + j as u64) * 4);
                // visited[u] probe
                rec.push(2, C_BASE + u as u64);
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    // frontier store
                    rec.push(3, D_BASE + next.len() as u64 * 4);
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    RecordedTraces {
        per_warp: recs.into_iter().map(Recorder::finish).collect(),
    }
}

/// 5-point stencil sweep over a `width × height` grid of f32, rows
/// striped across warps. Each output point reads its four neighbours and
/// itself from the input grid and writes the output grid.
pub fn stencil5(width: usize, height: usize, warps: u32) -> RecordedTraces {
    assert!(width >= 2 && height >= 3 && warps > 0);
    let idx = |x: usize, y: usize| (y * width + x) as u64 * 4;
    let per_warp = (0..warps)
        .map(|w| {
            // Three input-row streams (y-1, y, y+1) coalesce separately —
            // they are distinct address regions a warp reads in parallel.
            let mut rec = Recorder::new();
            let mut y = 1 + w as usize;
            while y + 1 < height {
                for x in 1..width - 1 {
                    rec.push(0, A_BASE + idx(x, y - 1));
                    rec.push(1, A_BASE + idx(x.saturating_sub(1), y));
                    rec.push(1, A_BASE + idx(x + 1, y));
                    rec.push(2, A_BASE + idx(x, y + 1));
                    rec.push(3, B_BASE + idx(x, y)); // output store
                }
                y += warps as usize;
            }
            rec.finish()
        })
        .collect();
    RecordedTraces { per_warp }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::LruSet;

    #[test]
    fn replay_wraps_cyclically() {
        let t = Arc::new(vec![0u64, 128, 256]);
        let mut s = ReplayStream::new(t);
        let got: Vec<u64> = (0..7).map(|_| s.next_addr()).collect();
        assert_eq!(got, vec![0, 128, 256, 0, 128, 256, 0]);
    }

    #[test]
    fn spmv_trace_is_line_aligned_and_nonempty() {
        let t = spmv_csr(512, 8, 8, 3);
        assert_eq!(t.per_warp.len(), 8);
        // Transaction granularity: at least one x-gather per nonzero
        // survives coalescing, so the trace scales with the row count.
        assert!(t.total_accesses() > 512, "{}", t.total_accesses());
        for s in &t.per_warp {
            for &a in s.iter() {
                assert_eq!(a % LINE_BYTES, 0);
            }
        }
    }

    #[test]
    fn spmv_deterministic() {
        let a = spmv_csr(256, 6, 4, 9);
        let b = spmv_csr(256, 6, 4, 9);
        assert_eq!(a.per_warp[2], b.per_warp[2]);
        let c = spmv_csr(256, 6, 4, 10);
        assert_ne!(a.per_warp[2], c.per_warp[2]);
    }

    #[test]
    fn spmv_x_vector_shows_reuse() {
        // The x-vector accesses (near-diagonal) should produce measurable
        // hits in a modest cache — the property the SharedVector/Gather
        // synthetics approximate.
        let t = spmv_csr(2048, 8, 4, 5);
        let mut cache = LruSet::new(512);
        let mut hits = 0usize;
        let mut total = 0usize;
        let mut streams: Vec<_> = (0..4).map(|w| t.stream_for(w)).collect();
        for i in 0..20_000 {
            let s = &mut streams[i % 4];
            if cache.access(s.next_addr()) {
                hits += 1;
            }
            total += 1;
        }
        let h = hits as f64 / total as f64;
        assert!(h > 0.15, "hit rate {h} too low for banded spmv");
        assert!(h < 0.95, "hit rate {h} suspiciously perfect");
    }

    #[test]
    fn bfs_visits_every_reachable_node_exactly_once() {
        // Frontier stores (D_BASE region) count discovered vertices; a
        // connected-ish random graph discovers most nodes, each once.
        let t = bfs_frontier(2000, 8, 4, 11);
        // Frontier stores coalesce (consecutive slots share lines), so
        // the store-transaction count sits between nodes/32 and nodes.
        let discovered: usize = t
            .per_warp
            .iter()
            .flat_map(|s| s.iter())
            .filter(|&&a| a >= D_BASE)
            .count();
        assert!(
            discovered > 2000 / 32 && discovered < 2000,
            "discovered {discovered}"
        );
    }

    #[test]
    fn bfs_addresses_cover_all_four_arrays() {
        let t = bfs_frontier(500, 6, 2, 13);
        let all: Vec<u64> = t.per_warp.iter().flat_map(|s| s.iter().copied()).collect();
        assert!(all.iter().any(|&a| a < B_BASE));
        assert!(all.iter().any(|&a| (B_BASE..C_BASE).contains(&a)));
        assert!(all.iter().any(|&a| (C_BASE..D_BASE).contains(&a)));
        assert!(all.iter().any(|&a| a >= D_BASE));
    }

    #[test]
    fn stencil_has_cross_row_reuse() {
        // At transaction granularity the intra-row redundancy coalesces
        // away; the remaining hits come from revisiting rows y/y+1 as the
        // sweep moves down — real temporal reuse a cache can capture.
        let t = stencil5(256, 64, 1);
        let mut cache = LruSet::new(256); // holds ~3 rows of 8 lines... 256 lines
        let mut hits = 0usize;
        let mut total = 0usize;
        let mut s = t.stream_for(0);
        for _ in 0..10_000 {
            if cache.access(s.next_addr()) {
                hits += 1;
            }
            total += 1;
        }
        let h = hits as f64 / total as f64;
        assert!(h > 0.4, "stencil hit rate {h}");
        assert!(h < 0.95, "stencil hit rate {h} unrealistically high");
    }

    #[test]
    fn stencil_row_striping_disjoint_interiors() {
        let t = stencil5(64, 16, 4);
        assert_eq!(t.per_warp.len(), 4);
        // Output stores of different warps never collide (different rows).
        let outs = |w: usize| -> Vec<u64> {
            t.per_warp[w]
                .iter()
                .copied()
                .filter(|&a| a >= B_BASE)
                .collect()
        };
        let a = outs(0);
        let b = outs(1);
        assert!(a.iter().all(|x| !b.contains(x)));
    }
}

//! Microbenchmarks for profiling the architectural X-graph (§IV).
//!
//! * [`stream_kernel`]/[`stream_trace`] — a CUDA-Stream-style copy kernel:
//!   sweeping its warp count over the simulator profiles `f(k)`, i.e. the
//!   paper's method for recovering `R` and `L`.
//! * [`peak_ops_kernel`] — a register-only FMA kernel in the style of
//!   Volkov's microbenchmark, used to profile the lane count `M`.

use crate::trace::TraceSpec;
use xmodel_isa::{Kernel, Opcode::*};

/// Stream-style copy kernel: one load, one store, minimal index arithmetic.
/// `dp` selects double-precision element width (the Table II δ(DP) row).
pub fn stream_kernel(dp: bool) -> Kernel {
    let mut b = Kernel::builder(if dp { "stream_dp" } else { "stream_sp" }, 256).registers(16);
    b = b.block(1.0, |bb| bb.inst(MOV).inst(IMAD));
    b = b.block(65536.0, |bb| {
        let bb = bb.inst(LDG).inst(STG).inst(IADD);
        let bb = if dp { bb.inst(DADD) } else { bb.inst(ISETP) };
        bb.inst(BRA)
    });
    b.build()
}

/// Trace for the stream kernel: pure per-warp streaming, no reuse.
pub fn stream_trace() -> TraceSpec {
    TraceSpec::Stream {
        region_lines: 1 << 22,
    }
}

/// Peak-operations kernel with a target ILP degree `e ∈ [1, 2]`: a mix of
/// solo and paired FMAs whose static analysis recovers `E ≈ e`. Used to
/// profile `M` by saturating CS with enough warps.
pub fn peak_ops_kernel(e: f64) -> Kernel {
    assert!((1.0..=2.0).contains(&e), "pairing width is 1..=2, got {e}");
    // With p paired-fraction of issue groups of width 2 and (1-p) of width
    // 1: E = (2p + (1-p)) / 1 = 1 + p. So p = e - 1.
    let groups = 64usize;
    let paired = ((e - 1.0) * groups as f64).round() as usize;
    Kernel::builder("peak_fma", 256)
        .registers(32)
        .block(65536.0, |mut bb| {
            for i in 0..groups {
                bb = if i < paired {
                    bb.inst(FFMA).dual(FFMA)
                } else {
                    bb.inst(FFMA)
                };
            }
            bb.inst(IADD).inst(BRA)
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_kernel_is_memory_dominated() {
        let a = stream_kernel(false).analyze();
        // 5 instructions, 2 off-chip accesses: Z = 2.5.
        assert!((a.intensity - 2.5).abs() < 0.01, "Z = {}", a.intensity);
        assert!(a.ilp < 1.1);
        let d = stream_kernel(true).analyze();
        assert!(d.uses_fp64);
    }

    #[test]
    fn peak_kernel_hits_target_ilp() {
        for &e in &[1.0, 1.25, 1.5, 1.75, 2.0] {
            let a = peak_ops_kernel(e).analyze();
            assert!((a.ilp - e).abs() < 0.05, "target {e}, extracted {}", a.ilp);
        }
    }

    #[test]
    fn peak_kernel_never_touches_memory() {
        let a = peak_ops_kernel(2.0).analyze();
        assert!(a.intensity.is_infinite());
        assert!(a.flops > 0.0);
    }

    #[test]
    #[should_panic(expected = "pairing width")]
    fn peak_kernel_rejects_out_of_range_ilp() {
        let _ = peak_ops_kernel(3.0);
    }
}

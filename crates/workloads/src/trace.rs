//! Per-warp memory-address generators.
//!
//! A [`TraceSpec`] describes the access pattern of a kernel declaratively;
//! [`TraceSpec::instantiate`] builds a deterministic per-warp
//! [`AddressStream`] from it. Addresses are byte addresses aligned to the
//! 128-byte line size; the simulator's cache operates on line granularity.

use crate::LINE_BYTES;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A deterministic stream of (line-aligned) byte addresses for one warp.
pub trait AddressStream: Send {
    /// Next coalesced request address (always a multiple of [`LINE_BYTES`]).
    fn next_addr(&mut self) -> u64;
}

/// Declarative description of a kernel's memory access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceSpec {
    /// Pure streaming: each warp walks its own disjoint region linearly and
    /// never revisits a line (Stream benchmark, `stencil`-like row sweeps).
    Stream {
        /// Region length per warp, in lines (wraps after that — one full
        /// pass has zero temporal reuse, wrap gives a huge reuse distance).
        region_lines: u64,
    },
    /// Strided walk with a fixed line stride (column-major accesses,
    /// uncoalesced-style patterns).
    Strided {
        /// Stride between consecutive requests, in lines.
        stride_lines: u64,
        /// Region length per warp, in lines.
        region_lines: u64,
    },
    /// Private working set with occasional streaming: with probability
    /// `1 − stream_prob` the warp revisits a uniformly random line of its
    /// private working set; otherwise it fetches a fresh streaming line.
    /// Larger working sets and stream probabilities weaken locality
    /// (`heartwall`, `leukocyte`, `lud` blocked kernels).
    PrivateWorkingSet {
        /// Working-set size per warp, in lines.
        ws_lines: u64,
        /// Probability of a streaming (non-reused) access.
        stream_prob: f64,
        /// Skew of reuse within the working set: 0 = uniform, larger
        /// concentrates accesses on a hot subset (power-law locality, the
        /// regime the Jacob model assumes).
        reuse_skew: f64,
    },
    /// Shared read-only vector plus per-warp streaming rows: `gesummv`,
    /// `atax`, `nw`-style kernels where every warp re-reads a common vector
    /// while streaming its own matrix rows. `vector_prob` is the fraction
    /// of accesses that go to the shared vector.
    SharedVector {
        /// Shared-vector size, in lines.
        vector_lines: u64,
        /// Per-warp streamed region, in lines.
        region_lines: u64,
        /// Fraction of accesses hitting the shared vector.
        vector_prob: f64,
    },
    /// Power-law gather: line indices drawn from a Zipf-like distribution
    /// over a large footprint (graph/sparse kernels: `bfs`, `spmv`, `nn`).
    Gather {
        /// Footprint, in lines.
        footprint_lines: u64,
        /// Zipf exponent (0 = uniform; larger = more skewed/more local).
        skew: f64,
    },
}

impl TraceSpec {
    /// Build the generator for one warp of `n_warps`, deterministically
    /// seeded by `(seed, warp_id)`.
    pub fn instantiate(&self, warp_id: u32, seed: u64) -> Box<dyn AddressStream> {
        let rng = SmallRng::seed_from_u64(
            seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(warp_id as u64 + 1)),
        );
        match *self {
            TraceSpec::Stream { region_lines } => Box::new(StreamGen {
                base: warp_region_base(warp_id, region_lines),
                len: region_lines.max(1),
                pos: 0,
            }),
            TraceSpec::Strided {
                stride_lines,
                region_lines,
            } => Box::new(StridedGen {
                base: warp_region_base(warp_id, region_lines),
                len: region_lines.max(1),
                stride: stride_lines.max(1),
                pos: 0,
            }),
            TraceSpec::PrivateWorkingSet {
                ws_lines,
                stream_prob,
                reuse_skew,
            } => Box::new(PrivateWsGen {
                base: warp_region_base(warp_id, ws_lines.max(1) * 1024),
                ws: ws_lines.max(1),
                stream_prob: stream_prob.clamp(0.0, 1.0),
                reuse_skew: reuse_skew.max(0.0),
                stream_pos: 0,
                rng,
            }),
            TraceSpec::SharedVector {
                vector_lines,
                region_lines,
                vector_prob,
            } => Box::new(SharedVecGen {
                vector: vector_lines.max(1),
                base: SHARED_REGION_BASE + warp_region_base(warp_id, region_lines),
                len: region_lines.max(1),
                vector_prob: vector_prob.clamp(0.0, 1.0),
                pos: 0,
                rng,
            }),
            TraceSpec::Gather {
                footprint_lines,
                skew,
            } => Box::new(GatherGen {
                footprint: footprint_lines.max(1),
                skew: skew.max(0.0),
                rng,
            }),
        }
    }

    /// Rough per-warp working-set estimate in bytes — the `β` scale the
    /// analytic cache model wants.
    pub fn beta_bytes(&self) -> f64 {
        let lines = match *self {
            // Streams only reuse a line across its residency; effective
            // per-thread footprint is a handful of in-flight lines.
            TraceSpec::Stream { .. } => 4,
            TraceSpec::Strided { .. } => 4,
            TraceSpec::PrivateWorkingSet {
                ws_lines,
                reuse_skew,
                ..
            } => {
                // The effective per-thread footprint is the hot set.
                ((ws_lines as f64 / (1.0 + reuse_skew)).ceil() as u64).max(1)
            }
            TraceSpec::SharedVector { vector_lines, .. } => vector_lines / 4 + 4,
            TraceSpec::Gather {
                footprint_lines,
                skew,
            } => {
                // Hot set of a Zipf distribution shrinks with skew.
                let hot = (footprint_lines as f64 / (1.0 + skew * skew * 16.0)).max(4.0);
                hot as u64
            }
        };
        (lines * LINE_BYTES) as f64
    }
}

/// Disjoint region base address for one warp (1 GiB apart per unit of
/// region spacing to guarantee no accidental overlap).
fn warp_region_base(warp_id: u32, region_lines: u64) -> u64 {
    let spacing = (region_lines.max(1) + 1).next_power_of_two() * LINE_BYTES;
    (warp_id as u64 + 1) * spacing * 4
}

/// Base of the region shared by all warps in [`TraceSpec::SharedVector`].
const SHARED_REGION_BASE: u64 = 1 << 44;

struct StreamGen {
    base: u64,
    len: u64,
    pos: u64,
}

impl AddressStream for StreamGen {
    fn next_addr(&mut self) -> u64 {
        let a = self.base + (self.pos % self.len) * LINE_BYTES;
        self.pos += 1;
        a
    }
}

struct StridedGen {
    base: u64,
    len: u64,
    stride: u64,
    pos: u64,
}

impl AddressStream for StridedGen {
    fn next_addr(&mut self) -> u64 {
        let idx = (self.pos * self.stride) % self.len;
        self.pos += 1;
        self.base + idx * LINE_BYTES
    }
}

struct PrivateWsGen {
    base: u64,
    ws: u64,
    stream_prob: f64,
    reuse_skew: f64,
    stream_pos: u64,
    rng: SmallRng,
}

impl AddressStream for PrivateWsGen {
    fn next_addr(&mut self) -> u64 {
        if self.rng.random::<f64>() < self.stream_prob {
            // Fresh streaming line beyond the working set.
            self.stream_pos += 1;
            self.base + (self.ws + self.stream_pos) * LINE_BYTES
        } else {
            // Power-law reuse: idx = ws * u^(1+skew) concentrates on a
            // hot prefix of the working set.
            let u = self.rng.random::<f64>();
            let idx = ((u.powf(1.0 + self.reuse_skew)) * self.ws as f64) as u64;
            self.base + idx.min(self.ws - 1) * LINE_BYTES
        }
    }
}

struct SharedVecGen {
    vector: u64,
    base: u64,
    len: u64,
    vector_prob: f64,
    pos: u64,
    rng: SmallRng,
}

impl AddressStream for SharedVecGen {
    fn next_addr(&mut self) -> u64 {
        if self.rng.random::<f64>() < self.vector_prob {
            // Walk the shared vector coherently (all warps sweep it).
            let idx = self.rng.random_range(0..self.vector);
            idx * LINE_BYTES // the shared region sits at the bottom
        } else {
            let a = self.base + (self.pos % self.len) * LINE_BYTES;
            self.pos += 1;
            a
        }
    }
}

struct GatherGen {
    footprint: u64,
    skew: f64,
    rng: SmallRng,
}

impl AddressStream for GatherGen {
    fn next_addr(&mut self) -> u64 {
        // Inverse-CDF sample of a truncated power law: idx ∝ u^(1+skew).
        let u = self.rng.random::<f64>();
        let idx = ((u.powf(1.0 + self.skew)) * self.footprint as f64) as u64;
        idx.min(self.footprint - 1) * LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn collect(spec: TraceSpec, warp: u32, n: usize) -> Vec<u64> {
        let mut g = spec.instantiate(warp, 42);
        (0..n).map(|_| g.next_addr()).collect()
    }

    #[test]
    fn all_addresses_line_aligned() {
        let specs = [
            TraceSpec::Stream { region_lines: 64 },
            TraceSpec::Strided {
                stride_lines: 7,
                region_lines: 64,
            },
            TraceSpec::PrivateWorkingSet {
                ws_lines: 32,
                stream_prob: 0.3,
                reuse_skew: 0.0,
            },
            TraceSpec::SharedVector {
                vector_lines: 16,
                region_lines: 128,
                vector_prob: 0.5,
            },
            TraceSpec::Gather {
                footprint_lines: 4096,
                skew: 1.0,
            },
        ];
        for spec in specs {
            for a in collect(spec, 3, 200) {
                assert_eq!(a % LINE_BYTES, 0, "{spec:?} produced unaligned {a}");
            }
        }
    }

    #[test]
    fn deterministic_per_warp_seed() {
        let spec = TraceSpec::Gather {
            footprint_lines: 1024,
            skew: 0.5,
        };
        assert_eq!(collect(spec, 5, 100), collect(spec, 5, 100));
        assert_ne!(collect(spec, 5, 100), collect(spec, 6, 100));
    }

    #[test]
    fn stream_never_repeats_within_region() {
        let addrs = collect(TraceSpec::Stream { region_lines: 128 }, 0, 128);
        let unique: HashSet<_> = addrs.iter().collect();
        assert_eq!(unique.len(), 128);
        // And wraps after the region.
        let wrapped = collect(TraceSpec::Stream { region_lines: 128 }, 0, 129);
        assert_eq!(wrapped[0], wrapped[128]);
    }

    #[test]
    fn warp_regions_are_disjoint_for_private_patterns() {
        let spec = TraceSpec::Stream { region_lines: 64 };
        let a: HashSet<_> = collect(spec, 0, 64).into_iter().collect();
        let b: HashSet<_> = collect(spec, 1, 64).into_iter().collect();
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn shared_vector_lines_are_shared_across_warps() {
        let spec = TraceSpec::SharedVector {
            vector_lines: 8,
            region_lines: 1 << 20,
            vector_prob: 1.0,
        };
        let a: HashSet<_> = collect(spec, 0, 200).into_iter().collect();
        let b: HashSet<_> = collect(spec, 1, 200).into_iter().collect();
        assert!(!a.is_disjoint(&b), "shared vector must overlap");
        assert!(a.len() <= 8 && b.len() <= 8);
    }

    #[test]
    fn private_ws_bounded_when_not_streaming() {
        let spec = TraceSpec::PrivateWorkingSet {
            ws_lines: 16,
            stream_prob: 0.0,
            reuse_skew: 0.0,
        };
        let unique: HashSet<_> = collect(spec, 2, 1000).into_iter().collect();
        assert!(unique.len() <= 16);
    }

    #[test]
    fn gather_skew_concentrates_accesses() {
        let hot_hits = |skew: f64| {
            let addrs = collect(
                TraceSpec::Gather {
                    footprint_lines: 10_000,
                    skew,
                },
                1,
                5000,
            );
            // Fraction of accesses landing in the first 1% of the footprint.
            addrs.iter().filter(|&&a| a < 100 * LINE_BYTES).count() as f64 / 5000.0
        };
        assert!(hot_hits(2.0) > 3.0 * hot_hits(0.0));
    }

    #[test]
    fn beta_estimates_scale_with_working_set() {
        let small = TraceSpec::PrivateWorkingSet {
            ws_lines: 8,
            stream_prob: 0.0,
            reuse_skew: 0.0,
        };
        let big = TraceSpec::PrivateWorkingSet {
            ws_lines: 256,
            stream_prob: 0.0,
            reuse_skew: 0.0,
        };
        assert!(big.beta_bytes() > small.beta_bytes());
        assert_eq!(small.beta_bytes(), 8.0 * LINE_BYTES as f64);
    }

    #[test]
    fn strided_covers_region_with_coprime_stride() {
        let addrs = collect(
            TraceSpec::Strided {
                stride_lines: 7,
                region_lines: 64,
            },
            0,
            64,
        );
        let unique: HashSet<_> = addrs.into_iter().collect();
        // gcd(7, 64) = 1 so the walk covers every line.
        assert_eq!(unique.len(), 64);
    }
}

//! Locality measurement and Jacob-model fitting.
//!
//! The analytic cache model (Eq. 3 of the paper) needs the workload
//! locality pair `(α, β)`. The paper obtains them by fitting profiled hit
//! rates; here we do the same against traces: run `k` warps' interleaved
//! address streams through a shared fully-associative LRU cache, measure
//! the per-thread hit rate at several `k`, and least-squares fit
//! `h(k) = 1 − (S$/(β·k) + 1)^−(α−1)`.

use crate::trace::TraceSpec;
use crate::LINE_BYTES;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// A shared fully-associative LRU cache over line addresses (measurement
/// tool — the cycle-level simulator has its own set-associative cache).
#[derive(Debug)]
pub struct LruSet {
    capacity: usize,
    stamp: u64,
    by_addr: HashMap<u64, u64>,
    by_stamp: BTreeMap<u64, u64>,
}

impl LruSet {
    /// Create with a capacity in lines.
    pub fn new(capacity_lines: usize) -> Self {
        Self {
            capacity: capacity_lines.max(1),
            stamp: 0,
            by_addr: HashMap::new(),
            by_stamp: BTreeMap::new(),
        }
    }

    /// Access a line address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / LINE_BYTES;
        self.stamp += 1;
        let hit = if let Some(old) = self.by_addr.insert(line, self.stamp) {
            self.by_stamp.remove(&old);
            true
        } else {
            false
        };
        self.by_stamp.insert(self.stamp, line);
        if self.by_addr.len() > self.capacity {
            if let Some((_, victim)) = self.by_stamp.pop_first() {
                self.by_addr.remove(&victim);
            }
        }
        hit
    }

    /// Lines currently resident.
    pub fn len(&self) -> usize {
        self.by_addr.len()
    }

    /// `true` when no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.by_addr.is_empty()
    }
}

/// Measured hit rate with `k` warps sharing a cache of `cache_bytes`.
pub fn measure_hit_rate(spec: &TraceSpec, k: u32, cache_bytes: u64, accesses: usize) -> f64 {
    assert!(k >= 1);
    let gens: Vec<_> = (0..k).map(|w| spec.instantiate(w, 7)).collect();
    measure_hit_rate_streams(gens, cache_bytes, accesses)
}

/// Measured hit rate for arbitrary pre-instantiated streams interleaved
/// round-robin through one shared LRU cache (used to profile recorded
/// algorithm traces as well as synthetic generators).
pub fn measure_hit_rate_streams(
    mut gens: Vec<Box<dyn crate::trace::AddressStream>>,
    cache_bytes: u64,
    accesses: usize,
) -> f64 {
    assert!(!gens.is_empty());
    let k = gens.len();
    let mut cache = LruSet::new((cache_bytes / LINE_BYTES) as usize);
    // Warm-up pass to populate the cache.
    let warm = accesses / 4;
    let mut hits = 0usize;
    let mut counted = 0usize;
    for i in 0..(accesses + warm) {
        let g = &mut gens[i % k];
        let hit = cache.access(g.next_addr());
        if i >= warm {
            counted += 1;
            if hit {
                hits += 1;
            }
        }
    }
    hits as f64 / counted as f64
}

/// Measure the full hit-rate-vs-k curve.
pub fn measure_hit_curve(
    spec: &TraceSpec,
    ks: &[u32],
    cache_bytes: u64,
    accesses: usize,
) -> Vec<(f64, f64)> {
    ks.iter()
        .map(|&k| (k as f64, measure_hit_rate(spec, k, cache_bytes, accesses)))
        .collect()
}

/// Result of fitting the Jacob model to measured hit rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JacobFit {
    /// Fitted locality exponent `α`.
    pub alpha: f64,
    /// Fitted per-thread working-set scale `β` (bytes).
    pub beta: f64,
    /// Root-mean-square error of the fit.
    pub rmse: f64,
}

/// Predicted hit rate of the Jacob model.
pub fn jacob_hit_rate(s_cache: f64, k: f64, alpha: f64, beta: f64) -> f64 {
    if k <= 0.0 {
        return 1.0;
    }
    1.0 - (s_cache / (beta * k) + 1.0).powf(-(alpha - 1.0))
}

/// Grid search over α ∈ (1, 8.1] and a log-spaced β range, followed by a
/// coordinate-refinement pass — the minimiser shared by [`fit_jacob`] and
/// [`fit_jacob_multi`]. The grid is generated rather than indexed, so the
/// routine is panic-free; when every grid point scores NaN/∞ the seed point
/// is returned with an infinite error instead of refining garbage.
fn minimise_jacob_sse(sse: impl Fn(f64, f64) -> f64) -> (f64, f64, f64) {
    let alpha_at = |i: i32| 1.02 + i as f64 * 0.12;
    let beta_at = |i: i32| LINE_BYTES as f64 * 0.25 * 1.25f64.powi(i);
    let mut best = (alpha_at(0), beta_at(0), f64::INFINITY);
    for i in 0..60 {
        for j in 0..60 {
            let (a, b) = (alpha_at(i), beta_at(j));
            let e = sse(a, b);
            if e < best.2 {
                best = (a, b, e);
            }
        }
    }

    // Coordinate refinement around the grid optimum.
    let (mut a, mut b, mut e) = best;
    if !e.is_finite() {
        return (a, b, e);
    }
    for _ in 0..40 {
        let mut improved = false;
        for (da, db) in [
            (1.03, 1.0),
            (1.0 / 1.03, 1.0),
            (1.0, 1.05),
            (1.0, 1.0 / 1.05),
        ] {
            let (na, nb) = ((a * da).max(1.001), b * db);
            let ne = sse(na, nb);
            if ne < e {
                a = na;
                b = nb;
                e = ne;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    (a, b, e)
}

/// Least-squares fit of `(α, β)` to `(k, hit-rate)` samples for a cache of
/// `s_cache` bytes. Grid search over a log-spaced β range and α ∈ (1, 8],
/// followed by one coordinate-refinement pass.
pub fn fit_jacob(samples: &[(f64, f64)], s_cache: f64) -> JacobFit {
    assert!(!samples.is_empty(), "need at least one sample");
    let (alpha, beta, e) = minimise_jacob_sse(|alpha, beta| {
        samples
            .iter()
            .map(|&(k, h)| {
                let p = jacob_hit_rate(s_cache, k, alpha, beta);
                (p - h) * (p - h)
            })
            .sum::<f64>()
    });
    JacobFit {
        alpha,
        beta,
        rmse: (e / samples.len() as f64).sqrt(),
    }
}

/// Convenience: measure a trace's hit curve on a cache and fit `(α, β)`.
pub fn fit_trace(spec: &TraceSpec, cache_bytes: u64) -> JacobFit {
    let ks = [1, 2, 4, 6, 8, 12, 16, 24, 32, 48];
    let curve = measure_hit_curve(spec, &ks, cache_bytes, 20_000);
    fit_jacob(&curve, cache_bytes as f64)
}

/// Least-squares fit of one `(α, β)` pair against samples taken at
/// *several* cache capacities — `(S$, k, h)` triples. Locality is a
/// workload property, so a single pair must explain every capacity.
pub fn fit_jacob_multi(samples: &[(f64, f64, f64)]) -> JacobFit {
    assert!(!samples.is_empty(), "need at least one sample");
    let (alpha, beta, e) = minimise_jacob_sse(|alpha, beta| {
        samples
            .iter()
            .map(|&(s, k, h)| {
                let p = jacob_hit_rate(s, k, alpha, beta);
                (p - h) * (p - h)
            })
            .sum::<f64>()
    });
    JacobFit {
        alpha,
        beta,
        rmse: (e / samples.len() as f64).sqrt(),
    }
}

/// Measure a trace at several reference capacities and fit one `(α, β)`
/// pair — the workload's locality signature, independent of any specific
/// cache it later runs against.
pub fn fit_trace_capacities(spec: &TraceSpec, capacities: &[u64]) -> JacobFit {
    assert!(!capacities.is_empty());
    let ks = [1u32, 2, 4, 6, 8, 12, 16, 24, 32, 48];
    let mut samples = Vec::new();
    for &cap in capacities {
        for &(k, h) in &measure_hit_curve(spec, &ks, cap, 20_000) {
            samples.push((cap as f64, k, h));
        }
    }
    fit_jacob_multi(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_basic_hit_miss() {
        let mut c = LruSet::new(2);
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(c.access(0));
        assert!(!c.access(256)); // evicts line 128 (LRU)
        assert!(c.access(0));
        assert!(!c.access(128));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_capacity_never_exceeded() {
        let mut c = LruSet::new(8);
        for i in 0..100u64 {
            c.access(i * 128);
            assert!(c.len() <= 8);
        }
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let spec = TraceSpec::PrivateWorkingSet {
            ws_lines: 8,
            stream_prob: 0.0,
            reuse_skew: 0.0,
        };
        // One warp, cache easily holds 8 lines.
        let h = measure_hit_rate(&spec, 1, 64 * LINE_BYTES, 4000);
        assert!(h > 0.95, "h = {h}");
    }

    #[test]
    fn hit_rate_decreases_with_sharers() {
        let spec = TraceSpec::PrivateWorkingSet {
            ws_lines: 64,
            stream_prob: 0.0,
            reuse_skew: 0.0,
        };
        let cache = 128 * LINE_BYTES; // holds 2 warps' sets
        let h2 = measure_hit_rate(&spec, 2, cache, 30_000);
        let h16 = measure_hit_rate(&spec, 16, cache, 30_000);
        assert!(h2 > h16 + 0.2, "h2 = {h2}, h16 = {h16}");
    }

    #[test]
    fn streaming_has_negligible_hit_rate() {
        let spec = TraceSpec::Stream {
            region_lines: 1 << 20,
        };
        let h = measure_hit_rate(&spec, 4, 256 * LINE_BYTES, 10_000);
        assert!(h < 0.05, "h = {h}");
    }

    #[test]
    fn jacob_form_recovers_itself() {
        // Generate synthetic samples from known (alpha, beta) and verify
        // the fitter recovers hit rates (parameters may trade off, so
        // compare curves, not raw parameters).
        let (alpha, beta, s) = (3.0, 2048.0, 16384.0);
        let samples: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&k| (k, jacob_hit_rate(s, k, alpha, beta)))
            .collect();
        let fit = fit_jacob(&samples, s);
        assert!(fit.rmse < 0.01, "rmse = {}", fit.rmse);
        for &(k, h) in &samples {
            let p = jacob_hit_rate(s, k, fit.alpha, fit.beta);
            assert!((p - h).abs() < 0.03, "k={k}: {p} vs {h}");
        }
    }

    #[test]
    fn fit_trace_on_private_ws_is_cache_sensitive() {
        let spec = TraceSpec::PrivateWorkingSet {
            ws_lines: 16,
            stream_prob: 0.1,
            reuse_skew: 0.0,
        };
        let fit = fit_trace(&spec, 16 * 1024);
        // Strong locality: alpha well above the cache-insensitive regime.
        assert!(fit.alpha > 1.3, "alpha = {}", fit.alpha);
        assert!(fit.rmse < 0.15, "rmse = {}", fit.rmse);
    }

    #[test]
    fn multi_capacity_fit_recovers_synthetic_parameters() {
        let (alpha, beta) = (3.0, 2048.0);
        let mut samples = Vec::new();
        for s in [8192.0, 16384.0, 49152.0] {
            for k in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
                samples.push((s, k, jacob_hit_rate(s, k, alpha, beta)));
            }
        }
        let fit = fit_jacob_multi(&samples);
        assert!(fit.rmse < 0.01, "rmse = {}", fit.rmse);
        for &(s, k, h) in &samples {
            let p = jacob_hit_rate(s, k, fit.alpha, fit.beta);
            assert!((p - h).abs() < 0.03);
        }
    }

    #[test]
    fn fit_trace_capacities_is_single_signature() {
        let spec = TraceSpec::PrivateWorkingSet {
            ws_lines: 16,
            stream_prob: 0.1,
            reuse_skew: 0.0,
        };
        let fit = fit_trace_capacities(&spec, &[16 * 1024, 48 * 1024]);
        assert!(fit.alpha > 1.0 && fit.beta > 0.0);
        assert!(fit.rmse < 0.2, "rmse = {}", fit.rmse);
    }

    #[test]
    fn jacob_hit_rate_bounds() {
        assert_eq!(jacob_hit_rate(1024.0, 0.0, 2.0, 128.0), 1.0);
        for k in 1..100 {
            let h = jacob_hit_rate(1024.0, k as f64, 2.0, 128.0);
            assert!((0.0..=1.0).contains(&h));
        }
    }
}

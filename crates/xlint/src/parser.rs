//! Item-level parser: functions, `use` resolution and call sites.
//!
//! Sits on top of [`crate::lexer`] and extracts just enough structure
//! for whole-workspace analysis: every `fn` item (with its enclosing
//! `impl` type and module path), every `use` declaration (including
//! `as` renames and `{…}` groups), and every call or qualified path
//! reference inside each function body. [`crate::graph`] links the
//! per-file results into a cross-crate call graph.
//!
//! Like the lexer, the parser is total: token sequences it does not
//! understand are skipped, so a syntactically creative file degrades to
//! weaker analysis rather than an error.

use crate::lexer::{lex_full, Comment, Token, TokenKind};

/// A control directive parsed from a `// xlint: …` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `// xlint: allow(lint-id, reason)` — suppress findings of
    /// `lint` on the directive's target line. An empty `reason` is
    /// itself a finding (`allow-missing-reason`).
    Allow {
        /// Lint identifier being suppressed.
        lint: String,
        /// Justification (required; empty is a finding).
        reason: String,
    },
    /// `// xlint: determinism-root` — the next `fn` item is a root of
    /// the determinism dataflow lints: everything it transitively calls
    /// must be free of nondeterminism and lock acquisition.
    DeterminismRoot,
}

/// A directive plus where it applies.
#[derive(Debug, Clone)]
pub struct PlacedDirective {
    /// The parsed directive.
    pub directive: Directive,
    /// Line of the comment itself.
    pub line: u32,
    /// Line the directive governs: its own line for trailing comments,
    /// the next code line for own-line comments.
    pub target_line: u32,
}

/// One `use` binding: local `name` resolves to `path` (absolute-ish
/// segments as written, e.g. `["xmodel_core", "sweep", "run"]`).
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Local name introduced in this file.
    pub name: String,
    /// Path segments the name expands to.
    pub path: Vec<String>,
}

/// A call or qualified-path reference inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallSite {
    /// `foo(…)` or `a::b::foo(…)` — segments as written.
    Path {
        /// Path segments, last one is the callee name.
        segments: Vec<String>,
        /// 1-based line of the last segment.
        line: u32,
    },
    /// `recv.method(…)` — receiver type unknown.
    Method {
        /// Method name.
        name: String,
        /// 1-based line of the method name.
        line: u32,
    },
    /// A qualified path used as a value (`Instant::now` passed as a
    /// closure), not directly called.
    Ref {
        /// Path segments.
        segments: Vec<String>,
        /// 1-based line of the last segment.
        line: u32,
    },
}

impl CallSite {
    /// The source line of the site.
    pub fn line(&self) -> u32 {
        match self {
            CallSite::Path { line, .. }
            | CallSite::Method { line, .. }
            | CallSite::Ref { line, .. } => *line,
        }
    }
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, when the fn is a method (`Type::name`).
    pub self_ty: Option<String>,
    /// Module path within the file (`mod a { mod b { … } }` → `["a","b"]`).
    pub modules: Vec<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Last line of the body.
    pub end_line: u32,
    /// True when the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// True when a `determinism-root` directive targets this fn.
    pub is_root: bool,
    /// Calls and path references in the body.
    pub calls: Vec<CallSite>,
    /// Lines where `HashMap`/`HashSet` identifiers appear in the body
    /// (used by the hash-iteration heuristic).
    pub hash_container_lines: Vec<u32>,
}

/// Parse result for one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// `crates/<name>/…` → `<name>`.
    pub crate_name: Option<String>,
    /// Module path derived from the file location under `src/`
    /// (`src/a/b.rs` → `["a","b"]`, `src/lib.rs` → `[]`).
    pub file_modules: Vec<String>,
    /// `use` bindings visible in this file.
    pub uses: Vec<UseDecl>,
    /// Function items.
    pub fns: Vec<FnItem>,
    /// All placed directives (allow + roots) in this file.
    pub directives: Vec<PlacedDirective>,
}

/// Parse `xlint: …` directives out of captured comments; `tokens` are
/// used to resolve each own-line comment to the next code line.
pub fn parse_directives(comments: &[Comment], tokens: &[Token]) -> Vec<PlacedDirective> {
    let mut out = Vec::new();
    for c in comments {
        let Some(rest) = c.text.strip_prefix("xlint:") else {
            continue;
        };
        let rest = rest.trim();
        let directive = if rest == "determinism-root" {
            Directive::DeterminismRoot
        } else if let Some(body) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        {
            let (lint, reason) = match body.split_once(',') {
                Some((l, r)) => (l.trim(), r.trim()),
                None => (body.trim(), ""),
            };
            Directive::Allow {
                lint: lint.to_string(),
                reason: reason.to_string(),
            }
        } else {
            // Unknown directive shapes are surfaced by the
            // `allow-missing-reason` lint rather than ignored.
            Directive::Allow {
                lint: String::new(),
                reason: rest.to_string(),
            }
        };
        let target_line = if c.trailing {
            c.line
        } else {
            tokens
                .iter()
                .find(|t| t.line > c.line)
                .map(|t| t.line)
                .unwrap_or(c.line)
        };
        out.push(PlacedDirective {
            directive,
            line: c.line,
            target_line,
        });
    }
    out
}

/// `crates/<name>/src/...` → module path from the file location.
fn file_module_path(rel: &str) -> (Option<String>, Vec<String>) {
    let Some(rest) = rel.strip_prefix("crates/") else {
        return (None, Vec::new());
    };
    let Some((krate, tail)) = rest.split_once('/') else {
        return (None, Vec::new());
    };
    let Some(under_src) = tail.strip_prefix("src/") else {
        return (Some(krate.to_string()), Vec::new());
    };
    let mut mods: Vec<String> = under_src
        .trim_end_matches(".rs")
        .split('/')
        .map(str::to_string)
        .collect();
    match mods.last().map(String::as_str) {
        Some("lib") | Some("main") if mods.len() == 1 => {
            mods.pop();
        }
        Some("mod") => {
            mods.pop();
        }
        _ => {}
    }
    if mods.first().map(String::as_str) == Some("bin") {
        mods.clear();
    }
    (Some(krate.to_string()), mods)
}

/// Rust keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "as", "move", "ref",
    "where", "else",
];

/// Parse one file into items. `test_regions` are the `#[cfg(test)]`
/// line ranges computed by the caller (shared with the classic lints).
pub fn parse_file(rel: &str, text: &str, test_regions: &[(u32, u32)]) -> ParsedFile {
    let lexed = lex_full(text);
    let tokens = &lexed.tokens;
    let directives = parse_directives(&lexed.comments, tokens);
    let (crate_name, file_modules) = file_module_path(rel);

    let mut parsed = ParsedFile {
        rel: rel.to_string(),
        crate_name,
        file_modules,
        uses: Vec::new(),
        fns: Vec::new(),
        directives,
    };

    // Lines annotated as determinism roots (own-line or trailing).
    let root_lines: Vec<u32> = parsed
        .directives
        .iter()
        .filter(|d| d.directive == Directive::DeterminismRoot)
        .map(|d| d.target_line)
        .collect();

    // Stack of (kind, name, depth-at-open). Kind: 'm' = mod, 'i' = impl.
    let mut scope: Vec<(char, String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            while scope.last().map(|s| s.2 > depth).unwrap_or(false) {
                scope.pop();
            }
            i += 1;
            continue;
        }
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "use" => {
                let (decls, next) = parse_use(tokens, i + 1);
                parsed.uses.extend(decls);
                i = next;
            }
            "mod" => {
                // `mod name {` opens an inline module; `mod name;` is a
                // file reference handled by path mapping.
                if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    if tokens.get(i + 2).map(|n| n.is_punct('{')).unwrap_or(false) {
                        scope.push(('m', name.text.clone(), depth + 1));
                    }
                }
                i += 1;
            }
            "impl" => {
                if let Some((ty, open)) = parse_impl_header(tokens, i) {
                    scope.push(('i', ty, depth + 1));
                    i = open;
                } else {
                    i += 1;
                }
            }
            "fn" => {
                if let Some((item, next)) = parse_fn(tokens, i, &scope, test_regions, &root_lines) {
                    parsed.fns.push(item);
                    i = next;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    parsed
}

/// Parse a `use …;` item starting after the `use` keyword. Returns the
/// bindings plus the index just past the terminating `;`.
fn parse_use(tokens: &[Token], mut i: usize) -> (Vec<UseDecl>, usize) {
    // Collect the raw token texts up to `;`, then parse the tree
    // textually — simpler than a token-tree walk and just as robust for
    // the `a::b::{c, d as e}` shapes that occur in practice.
    let mut text = String::new();
    while let Some(t) = tokens.get(i) {
        if t.is_punct(';') {
            i += 1;
            break;
        }
        match t.kind {
            TokenKind::Ident | TokenKind::Num => {
                text.push_str(&t.text);
                text.push(' ');
            }
            TokenKind::Punct => text.push_str(&t.text),
            _ => {}
        }
        i += 1;
    }
    let mut decls = Vec::new();
    expand_use_tree(&text, &[], &mut decls);
    (decls, i)
}

/// Recursively expand a use-tree string (`a::b::{c, d as e}`).
fn expand_use_tree(tree: &str, prefix: &[String], out: &mut Vec<UseDecl>) {
    let tree = tree.trim();
    if let Some(open) = tree.find('{') {
        let head = &tree[..open];
        let Some(body) = tree[open + 1..].strip_suffix('}').map(str::trim) else {
            return;
        };
        let mut prefix = prefix.to_vec();
        for seg in head.split("::").map(str::trim).filter(|s| !s.is_empty()) {
            prefix.push(seg.to_string());
        }
        // Split the body on top-level commas.
        let mut depth = 0usize;
        let mut start = 0usize;
        for (idx, c) in body.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    expand_use_tree(&body[start..idx], &prefix, out);
                    start = idx + 1;
                }
                _ => {}
            }
        }
        expand_use_tree(&body[start..], &prefix, out);
        return;
    }
    // Leaf: `a::b::c`, optionally `… as name`, or `…::*`.
    let (path_text, rename) = match tree.split_once(" as ") {
        Some((p, r)) => (p.trim(), Some(r.trim())),
        None => (tree, None),
    };
    let mut path: Vec<String> = prefix.to_vec();
    for seg in path_text
        .split("::")
        .map(str::trim)
        .filter(|s| !s.is_empty())
    {
        path.push(seg.to_string());
    }
    let Some(last) = path.last().cloned() else {
        return;
    };
    if last == "*" {
        return; // glob imports are not resolved
    }
    let name = rename.map(str::to_string).unwrap_or(last);
    out.push(UseDecl { name, path });
}

/// Parse an `impl` header at `tokens[i]` (`impl`). Returns the
/// self-type name and the index of the opening `{`.
fn parse_impl_header(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    let mut angle = 0usize;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut saw_where = false;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('{') && angle == 0 {
            let ty = after_for.or(last_ident)?;
            return Some((ty, j));
        }
        if t.is_punct(';') {
            return None;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = angle.saturating_sub(1);
        } else if angle == 0 && t.kind == TokenKind::Ident && !saw_where {
            if t.text == "for" {
                saw_for = true;
            } else if t.text == "where" {
                saw_where = true;
            } else {
                if saw_for && after_for.is_none() {
                    after_for = Some(t.text.clone());
                }
                last_ident = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Parse a `fn` item at `tokens[i]` (`fn`). Returns the item and the
/// index just past the body's closing brace (or past the `;` for
/// body-less trait declarations, in which case no item is returned).
fn parse_fn(
    tokens: &[Token],
    i: usize,
    scope: &[(char, String, usize)],
    test_regions: &[(u32, u32)],
    root_lines: &[u32],
) -> Option<(FnItem, usize)> {
    let name_tok = tokens.get(i + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    // Find the body opening `{`, skipping the signature: parens and
    // angle brackets nest; a `;` first means a trait method without a
    // body (skip the item).
    let mut j = i + 2;
    let mut paren = 0usize;
    loop {
        let t = tokens.get(j)?;
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren = paren.saturating_sub(1);
        } else if t.is_punct(';') && paren == 0 {
            return None;
        } else if t.is_punct('{') && paren == 0 {
            break;
        }
        j += 1;
    }
    let body_open = j;
    // Brace-match the body.
    let mut depth = 0usize;
    let mut end = body_open;
    while let Some(t) = tokens.get(end) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        end += 1;
    }
    let body = tokens.get(body_open..=end.min(tokens.len().saturating_sub(1)))?;
    let line = tokens[i].line;
    let end_line = tokens.get(end).map(|t| t.line).unwrap_or(line);

    // A determinism-root directive targets the first line of the item,
    // which may be an attribute or doc line above the `fn` keyword —
    // accept any target line between the directive and the fn name.
    let is_root = root_lines
        .iter()
        .any(|&l| l >= line.saturating_sub(3) && l <= name_tok.line);

    let (calls, mut hash_container_lines) = extract_calls(body);
    // The signature also betrays hash containers (`m: &HashMap<..>`), so
    // a root that only *receives* one still gets iteration checks.
    for t in tokens.get(i..body_open).unwrap_or(&[]) {
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            hash_container_lines.push(t.line);
        }
    }
    let self_ty = scope.iter().rev().find(|s| s.0 == 'i').map(|s| s.1.clone());
    let modules = scope
        .iter()
        .filter(|s| s.0 == 'm')
        .map(|s| s.1.clone())
        .collect();
    Some((
        FnItem {
            name: name_tok.text.clone(),
            self_ty,
            modules,
            line,
            end_line,
            in_test: test_regions.iter().any(|&(a, b)| line >= a && line <= b),
            is_root,
            calls,
            hash_container_lines,
        },
        end + 1,
    ))
}

/// Extract call sites and qualified path references from a body slice.
fn extract_calls(body: &[Token]) -> (Vec<CallSite>, Vec<u32>) {
    let mut calls = Vec::new();
    let mut hash_lines = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            hash_lines.push(t.line);
        }
        // Method call: `.name(` — but `1.0.max(` style handled by lexer.
        let prev_dot = i > 0 && body[i - 1].is_punct('.');
        if prev_dot {
            if body.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false) {
                calls.push(CallSite::Method {
                    name: t.text.clone(),
                    line: t.line,
                });
            }
            i += 1;
            continue;
        }
        // Path chain: ident (:: ident)*.
        let prev_colons = i >= 2 && body[i - 1].is_punct(':') && body[i - 2].is_punct(':');
        if prev_colons {
            i += 1; // interior of a chain already consumed below
            continue;
        }
        let mut segments = vec![t.text.clone()];
        let mut j = i;
        while body.get(j + 1).map(|n| n.is_punct(':')).unwrap_or(false)
            && body.get(j + 2).map(|n| n.is_punct(':')).unwrap_or(false)
            && body
                .get(j + 3)
                .map(|n| n.kind == TokenKind::Ident)
                .unwrap_or(false)
        {
            segments.push(body[j + 3].text.clone());
            j += 3;
        }
        let last_line = body[j].line;
        let next = body.get(j + 1);
        let is_macro = next.map(|n| n.is_punct('!')).unwrap_or(false);
        let is_call = next.map(|n| n.is_punct('(')).unwrap_or(false);
        if segments.len() == 1 {
            let only = segments.first().map(String::as_str).unwrap_or_default();
            if is_call && !is_macro && !NON_CALL_KEYWORDS.contains(&only) {
                calls.push(CallSite::Path {
                    segments,
                    line: last_line,
                });
            }
        } else if !is_macro {
            if is_call {
                calls.push(CallSite::Path {
                    segments,
                    line: last_line,
                });
            } else {
                calls.push(CallSite::Ref {
                    segments,
                    line: last_line,
                });
            }
        }
        i = j + 1;
    }
    (calls, hash_lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(rel: &str, src: &str) -> ParsedFile {
        let tokens = crate::lexer::lex(src);
        let regions = crate::lints::cfg_test_regions(&tokens);
        parse_file(rel, src, &regions)
    }

    #[test]
    fn fn_items_with_impl_and_module_context() {
        let src = "pub fn free() { helper(); }\n\
                   impl Widget { fn method(&self) { self.other(); } }\n\
                   mod inner { pub fn nested() {} }\n\
                   impl Tr for Gadget { fn t(&self) {} }\n";
        let p = parse("crates/demo/src/lib.rs", src);
        let names: Vec<_> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_ty.as_deref(), f.modules.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, vec![]),
                ("method", Some("Widget"), vec![]),
                ("nested", None, vec!["inner".to_string()]),
                ("t", Some("Gadget"), vec![]),
            ]
        );
        assert_eq!(
            p.fns[0].calls,
            vec![CallSite::Path {
                segments: vec!["helper".to_string()],
                line: 1
            }]
        );
        assert_eq!(
            p.fns[1].calls,
            vec![CallSite::Method {
                name: "other".to_string(),
                line: 2
            }]
        );
    }

    #[test]
    fn use_groups_and_renames_expand() {
        let src = "use xmodel_core::sweep::{run, map as pmap};\nuse a::b::c;\nuse d::*;\n";
        let p = parse("crates/demo/src/lib.rs", src);
        let got: Vec<_> = p
            .uses
            .iter()
            .map(|u| (u.name.as_str(), u.path.join("::")))
            .collect();
        assert_eq!(
            got,
            vec![
                ("run", "xmodel_core::sweep::run".to_string()),
                ("pmap", "xmodel_core::sweep::map".to_string()),
                ("c", "a::b::c".to_string()),
            ]
        );
    }

    #[test]
    fn qualified_refs_and_calls_are_distinguished() {
        let src = "fn f() { let t = flag.then(Instant::now); std::env::var(\"X\"); }\n";
        let p = parse("crates/demo/src/lib.rs", src);
        let calls = &p.fns[0].calls;
        assert!(calls.contains(&CallSite::Ref {
            segments: vec!["Instant".to_string(), "now".to_string()],
            line: 1
        }));
        assert!(calls.contains(&CallSite::Path {
            segments: vec!["std".to_string(), "env".to_string(), "var".to_string()],
            line: 1
        }));
        assert!(calls.contains(&CallSite::Method {
            name: "then".to_string(),
            line: 1
        }));
    }

    #[test]
    fn macros_are_not_calls() {
        let src = "fn f() { println!(\"x\"); vec![1]; xmodel_obs::span!(NAME); }\n";
        let p = parse("crates/demo/src/lib.rs", src);
        assert!(
            p.fns[0]
                .calls
                .iter()
                .all(|c| !matches!(c, CallSite::Path { segments, .. } if segments.last().map(String::as_str) == Some("println") || segments.last().map(String::as_str) == Some("span"))),
            "{:?}",
            p.fns[0].calls
        );
    }

    #[test]
    fn directives_resolve_target_lines() {
        let src = "fn f() {\n    // xlint: allow(lock-in-result-path, ordered collection)\n    done.lock();\n    other(); // xlint: allow(no-panic-in-lib, trailing)\n}\n// xlint: determinism-root\nfn g() {}\n";
        let p = parse("crates/demo/src/lib.rs", src);
        let allows: Vec<_> = p
            .directives
            .iter()
            .filter_map(|d| match &d.directive {
                Directive::Allow { lint, .. } => Some((lint.as_str(), d.target_line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            allows,
            vec![("lock-in-result-path", 3), ("no-panic-in-lib", 4)]
        );
        assert!(p.fns.iter().any(|f| f.name == "g" && f.is_root));
        assert!(p.fns.iter().any(|f| f.name == "f" && !f.is_root));
    }

    #[test]
    fn file_module_paths() {
        assert_eq!(
            file_module_path("crates/core/src/sweep.rs"),
            (Some("core".to_string()), vec!["sweep".to_string()])
        );
        assert_eq!(
            file_module_path("crates/core/src/lib.rs"),
            (Some("core".to_string()), vec![])
        );
        assert_eq!(
            file_module_path("crates/obs/src/a/mod.rs"),
            (Some("obs".to_string()), vec!["a".to_string()])
        );
        assert_eq!(
            file_module_path("crates/cli/src/bin/tool.rs"),
            (Some("cli".to_string()), vec![])
        );
        assert_eq!(file_module_path("tests/x.rs"), (None, vec![]));
    }

    #[test]
    fn hash_container_lines_are_collected() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for k in m.keys() {} }\n";
        let p = parse("crates/demo/src/lib.rs", src);
        assert!(!p.fns[0].hash_container_lines.is_empty());
        assert!(p.fns[0].calls.contains(&CallSite::Method {
            name: "keys".to_string(),
            line: 1
        }));
    }
}

//! Allowlist baseline: known findings committed to the repository.
//!
//! The baseline is a line-oriented text file (tab-separated
//! `lint-id TAB path TAB trimmed-source-line`) so diffs review cleanly.
//! Keys deliberately omit line numbers: editing code *above* a baselined
//! site must not resurface it. Matching is multiset semantics — if a file
//! gains a second identical offending line, the extra one is new.

use std::collections::HashMap;

use crate::lints::Finding;

/// Header written at the top of generated baseline files.
pub const HEADER: &str = "# xlint baseline — regenerate with `cargo run -p xlint -- --write-baseline`\n# format: lint-id<TAB>path<TAB>trimmed source line\n";

/// A parsed baseline: multiset of suppression keys.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    counts: HashMap<String, usize>,
}

impl Baseline {
    /// Parse baseline file contents. Blank lines and `#` comments are
    /// ignored; malformed lines are ignored rather than fatal so a
    /// hand-edited baseline cannot brick CI.
    pub fn parse(text: &str) -> Baseline {
        let mut counts = HashMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.split('\t').count() >= 2 {
                *counts.entry(line.to_string()).or_insert(0) += 1;
            }
        }
        Baseline { counts }
    }

    /// Number of suppression entries (with multiplicity).
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// True when the baseline holds no entries.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Split findings into `(new, suppressed)` by consuming baseline
    /// entries in order.
    pub fn partition<'f>(&self, findings: &'f [Finding]) -> (Vec<&'f Finding>, Vec<&'f Finding>) {
        let (fresh, suppressed, _) = self.partition_full(findings);
        (fresh, suppressed)
    }

    /// Like [`Baseline::partition`], additionally returning the *stale*
    /// baseline keys — entries that matched no current finding (with
    /// multiplicity). A non-empty stale set means the code they
    /// suppressed has since been fixed and the baseline should be pruned
    /// (`--prune-baseline`); CI rejects staleness via `--deny-stale`.
    pub fn partition_full<'f>(
        &self,
        findings: &'f [Finding],
    ) -> (Vec<&'f Finding>, Vec<&'f Finding>, Vec<String>) {
        let mut remaining = self.counts.clone();
        let mut fresh = Vec::new();
        let mut suppressed = Vec::new();
        for f in findings {
            match remaining.get_mut(&f.baseline_key()) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    suppressed.push(f);
                }
                _ => fresh.push(f),
            }
        }
        let mut stale: Vec<String> = Vec::new();
        for (key, n) in &remaining {
            for _ in 0..*n {
                stale.push(key.clone());
            }
        }
        stale.sort();
        (fresh, suppressed, stale)
    }

    /// Render findings as baseline file contents (sorted, with header).
    pub fn render(findings: &[Finding]) -> String {
        let mut keys: Vec<String> = findings.iter().map(Finding::baseline_key).collect();
        keys.sort();
        let mut out = String::from(HEADER);
        for key in keys {
            out.push_str(&key);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Severity;

    fn finding(lint: &'static str, path: &str, text: &str) -> Finding {
        Finding {
            lint,
            path: path.to_string(),
            line: 1,
            severity: Severity::Warning,
            message: String::new(),
            text: text.to_string(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn multiset_matching() {
        let a = finding("no-panic-in-lib", "crates/core/src/x.rs", "v.unwrap();");
        let findings = vec![a.clone(), a.clone()];
        let base = Baseline::parse(&Baseline::render(&findings[..1]));
        let (fresh, suppressed) = base.partition(&findings);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let base = Baseline::parse("# hi\n\nno-panic-in-lib\tp.rs\tx.unwrap();\n");
        assert_eq!(base.len(), 1);
        assert!(!base.is_empty());
    }

    #[test]
    fn stale_entries_are_reported_with_multiplicity() {
        let a = finding("no-panic-in-lib", "crates/core/src/x.rs", "v.unwrap();");
        let gone = finding("no-panic-in-lib", "crates/core/src/y.rs", "w.unwrap();");
        let base = Baseline::parse(&Baseline::render(&[a.clone(), gone.clone(), gone.clone()]));
        let (fresh, suppressed, stale) = base.partition_full(std::slice::from_ref(&a));
        assert!(fresh.is_empty());
        assert_eq!(suppressed.len(), 1);
        assert_eq!(stale, vec![gone.baseline_key(), gone.baseline_key()]);
    }

    #[test]
    fn line_number_independence() {
        let mut f = finding("no-panic-in-lib", "crates/core/src/x.rs", "v.unwrap();");
        let base = Baseline::parse(&Baseline::render(std::slice::from_ref(&f)));
        f.line = 999;
        let (fresh, suppressed) = base.partition(std::slice::from_ref(&f));
        assert!(fresh.is_empty());
        assert_eq!(suppressed.len(), 1);
    }
}

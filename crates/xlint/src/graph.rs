//! Workspace symbol table and cross-crate call graph.
//!
//! Built from the per-file [`crate::parser::ParsedFile`] results:
//! every non-test `fn` becomes a symbol; call sites are resolved
//! through the file's `use` bindings (including `as` renames), `crate`
//! / `self` prefixes and the `xmodel_<crate>` naming convention of the
//! workspace. Method calls (`recv.m(…)`, receiver type unknown) are
//! linked *conservatively by name* to every workspace method called
//! `m`, except for names on a common-std denylist (`push`, `iter`, …)
//! that would connect everything to everything.
//!
//! The graph is intentionally an over-approximation for reachability
//! (extra edges can only add findings, which the allow-directive makes
//! auditable) and an under-approximation at the denylist (a workspace
//! method named `get` will not create edges) — both choices are pinned
//! by tests.

use std::collections::BTreeMap;

use crate::parser::{CallSite, ParsedFile};

/// Index of a symbol in [`CallGraph::symbols`].
pub type SymbolId = usize;

/// One function known to the workspace.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Owning crate directory name (`crates/<name>`), empty for files
    /// outside `crates/`.
    pub crate_name: String,
    /// Module path (file location + inline `mod`s).
    pub modules: Vec<String>,
    /// `impl` type for methods.
    pub self_ty: Option<String>,
    /// Function name.
    pub name: String,
    /// File the symbol lives in (workspace-relative path).
    pub path: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Index of the defining file in the input slice.
    pub file: usize,
    /// Index of the fn item within the file.
    pub item: usize,
    /// True when annotated `// xlint: determinism-root`.
    pub is_root: bool,
}

impl Symbol {
    /// Human-readable `crate::module::Type::name` display path.
    pub fn display(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if !self.crate_name.is_empty() {
            parts.push(&self.crate_name);
        }
        for m in &self.modules {
            parts.push(m);
        }
        if let Some(ty) = &self.self_ty {
            parts.push(ty);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// Method names too generic to resolve by name alone: linking them
/// would glue std-container plumbing into every dataflow path.
const COMMON_METHODS: [&str; 58] = [
    "new",
    "default",
    "clone",
    "fmt",
    "from",
    "into",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "contains",
    "as_str",
    "as_ref",
    "as_mut",
    "to_string",
    "to_owned",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "clear",
    "extend",
    "last",
    "first",
    "min",
    "max",
    "abs",
    "floor",
    "ceil",
    "exp",
    "ln",
    "sqrt",
    "powi",
    "powf",
    "then",
    "map",
    "and_then",
    "unwrap_or",
    "ok",
    "err",
    "take",
    "write",
    "read",
    "lock",
    "flush",
    "join",
    "spawn",
    "sort",
    "finish",
];

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All non-test function symbols.
    pub symbols: Vec<Symbol>,
    /// Outgoing call edges per symbol (deduplicated, sorted).
    pub edges: Vec<Vec<SymbolId>>,
    by_name: BTreeMap<String, Vec<SymbolId>>,
    crate_idents: BTreeMap<String, String>,
}

impl CallGraph {
    /// Build the graph from parsed files. `files[i]` must correspond to
    /// the same index used in the returned symbols' `file` field.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut g = CallGraph::default();
        // Crate idents: `crates/core` is imported as `xmodel_core` (the
        // workspace package-name convention) or occasionally by its bare
        // directory name; register both spellings.
        for f in files {
            if let Some(c) = &f.crate_name {
                g.crate_idents.insert(c.replace('-', "_"), c.clone());
                g.crate_idents
                    .insert(format!("xmodel_{}", c.replace('-', "_")), c.clone());
            }
        }
        for (fi, f) in files.iter().enumerate() {
            let crate_name = f.crate_name.clone().unwrap_or_default();
            for (ii, item) in f.fns.iter().enumerate() {
                if item.in_test {
                    continue;
                }
                let mut modules = f.file_modules.clone();
                modules.extend(item.modules.iter().cloned());
                g.symbols.push(Symbol {
                    crate_name: crate_name.clone(),
                    modules,
                    self_ty: item.self_ty.clone(),
                    name: item.name.clone(),
                    path: f.rel.clone(),
                    line: item.line,
                    file: fi,
                    item: ii,
                    is_root: item.is_root,
                });
            }
        }
        for (id, s) in g.symbols.iter().enumerate() {
            g.by_name.entry(s.name.clone()).or_default().push(id);
        }
        // Resolve edges.
        let mut edges: Vec<Vec<SymbolId>> = vec![Vec::new(); g.symbols.len()];
        for (id, s) in g.symbols.iter().enumerate() {
            let file = &files[s.file];
            let item = &file.fns[s.item];
            for call in &item.calls {
                match call {
                    CallSite::Path { segments, .. } | CallSite::Ref { segments, .. } => {
                        edges[id].extend(g.resolve_path(file, s, segments));
                    }
                    CallSite::Method { name, .. } => {
                        edges[id].extend(g.resolve_method(name));
                    }
                }
            }
            edges[id].sort_unstable();
            edges[id].dedup();
        }
        g.edges = edges;
        g
    }

    /// Resolve a method call by name across the workspace (see module
    /// docs for the conservative-by-name rationale).
    pub fn resolve_method(&self, name: &str) -> Vec<SymbolId> {
        if COMMON_METHODS.contains(&name) {
            return Vec::new();
        }
        self.by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| self.symbols[id].self_ty.is_some())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Resolve a (possibly qualified) path call from `from` in `file`.
    pub fn resolve_path(
        &self,
        file: &ParsedFile,
        from: &Symbol,
        segments: &[String],
    ) -> Vec<SymbolId> {
        let Some(last) = segments.last() else {
            return Vec::new();
        };
        if segments.len() == 1 {
            // Bare call: prefer same file, then `use` bindings (which
            // may bind a name with no same-spelling symbol, e.g.
            // `use xmodel_alpha::helper as h;`), then same crate.
            let candidates = self.by_name.get(last.as_str());
            let same_file: Vec<SymbolId> = candidates
                .into_iter()
                .flatten()
                .copied()
                .filter(|&id| {
                    self.symbols[id].path == from.path && self.symbols[id].self_ty.is_none()
                })
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            if let Some(u) = file.uses.iter().find(|u| &u.name == last) {
                return self.resolve_absolute(&u.path, from);
            }
            return candidates
                .into_iter()
                .flatten()
                .copied()
                .filter(|&id| {
                    self.symbols[id].crate_name == from.crate_name
                        && self.symbols[id].self_ty.is_none()
                })
                .collect();
        }
        if !self.by_name.contains_key(last.as_str()) {
            return Vec::new();
        }
        // Expand the head segment through the file's `use` bindings.
        let mut full: Vec<String> = Vec::new();
        let head = segments.first().map(String::as_str).unwrap_or_default();
        if let Some(u) = file.uses.iter().find(|u| u.name == head) {
            full.extend(u.path.iter().cloned());
            full.extend(segments[1..].iter().cloned());
        } else {
            full.extend(segments.iter().cloned());
        }
        self.resolve_absolute(&full, from)
    }

    /// Resolve an absolute-ish path (`xmodel_core::sweep::run`,
    /// `crate::solver::solve_with`, `Type::method`, `self::helper`).
    fn resolve_absolute(&self, segments: &[String], from: &Symbol) -> Vec<SymbolId> {
        let Some(last) = segments.last() else {
            return Vec::new();
        };
        let candidates = match self.by_name.get(last.as_str()) {
            Some(c) => c,
            None => return Vec::new(),
        };
        let head = segments.first().map(String::as_str).unwrap_or_default();
        let (crate_filter, rest): (Option<&str>, &[String]) = if head == "crate" || head == "self" {
            (Some(from.crate_name.as_str()), &segments[1..])
        } else if head == "std" {
            return Vec::new();
        } else if let Some(c) = self.crate_idents.get(head) {
            (Some(c.as_str()), &segments[1..])
        } else {
            (None, segments)
        };
        let qual: Option<&str> = if rest.len() >= 2 {
            Some(rest[rest.len() - 2].as_str())
        } else {
            None
        };
        let matched: Vec<SymbolId> = candidates
            .iter()
            .copied()
            .filter(|&id| {
                let s = &self.symbols[id];
                if let Some(cf) = crate_filter {
                    if s.crate_name != cf {
                        return false;
                    }
                }
                match qual {
                    // The penultimate segment must name either the
                    // method's impl type or the enclosing module.
                    Some(q) => {
                        s.self_ty.as_deref() == Some(q)
                            || s.modules.last().map(String::as_str) == Some(q)
                            || self.crate_idents.contains_key(q)
                                && s.self_ty.is_none()
                                && s.modules.is_empty()
                    }
                    None => true,
                }
            })
            .collect();
        if matched.is_empty() && crate_filter.is_none() {
            // `Type::assoc(…)` with the type in scope via `use`: fall
            // back to matching the qual as an impl type anywhere.
            if let Some(q) = qual {
                return candidates
                    .iter()
                    .copied()
                    .filter(|&id| self.symbols[id].self_ty.as_deref() == Some(q))
                    .collect();
            }
        }
        matched
    }

    /// Breadth-first reachability from every annotated determinism
    /// root. Returns, for each reachable symbol, the id of the symbol
    /// it was first discovered from (roots map to themselves), so a
    /// witness chain can be reconstructed with [`CallGraph::chain`].
    pub fn reachable_from_roots(&self) -> BTreeMap<SymbolId, SymbolId> {
        let mut pred: BTreeMap<SymbolId, SymbolId> = BTreeMap::new();
        let mut queue: Vec<SymbolId> = Vec::new();
        for (id, s) in self.symbols.iter().enumerate() {
            if s.is_root {
                pred.insert(id, id);
                queue.push(id);
            }
        }
        let mut qi = 0usize;
        while qi < queue.len() {
            let cur = queue[qi];
            qi += 1;
            for &next in &self.edges[cur] {
                if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(next) {
                    e.insert(cur);
                    queue.push(next);
                }
            }
        }
        pred
    }

    /// Reconstruct the root → … → `id` witness chain from a
    /// predecessor map produced by [`CallGraph::reachable_from_roots`].
    pub fn chain(&self, pred: &BTreeMap<SymbolId, SymbolId>, id: SymbolId) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = id;
        loop {
            chain.push(self.symbols[cur].display());
            let Some(&p) = pred.get(&cur) else {
                break;
            };
            if p == cur {
                break;
            }
            cur = p;
        }
        chain.reverse();
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn parsed(rel: &str, src: &str) -> ParsedFile {
        let tokens = crate::lexer::lex(src);
        let regions = crate::lints::cfg_test_regions(&tokens);
        parse_file(rel, src, &regions)
    }

    #[test]
    fn cross_crate_call_resolves_through_use_rename() {
        let a = parsed(
            "crates/alpha/src/lib.rs",
            "pub fn helper() { deep(); }\nfn deep() {}\n",
        );
        let b = parsed(
            "crates/beta/src/lib.rs",
            "use xmodel_alpha::helper as h;\n// xlint: determinism-root\npub fn entry() { h(); }\n",
        );
        let g = CallGraph::build(&[a, b]);
        let pred = g.reachable_from_roots();
        let deep = g
            .symbols
            .iter()
            .position(|s| s.name == "deep")
            .expect("deep symbol");
        assert!(pred.contains_key(&deep), "{pred:?} {:?}", g.edges);
        let chain = g.chain(&pred, deep);
        assert_eq!(chain, ["beta::entry", "alpha::helper", "alpha::deep"]);
    }

    #[test]
    fn common_method_names_do_not_create_edges() {
        let a = parsed(
            "crates/alpha/src/lib.rs",
            "impl W { pub fn push(&mut self) { std::process::exit(1); } }\n// xlint: determinism-root\npub fn entry(v: &mut Vec<u32>) { v.push(3); }\n",
        );
        let g = CallGraph::build(&[a]);
        let pred = g.reachable_from_roots();
        let push = g.symbols.iter().position(|s| s.name == "push").unwrap();
        assert!(!pred.contains_key(&push));
    }

    #[test]
    fn distinctive_method_names_link_conservatively() {
        let a = parsed(
            "crates/alpha/src/lib.rs",
            "impl Table { pub fn tabulate(&self) {} }\n// xlint: determinism-root\npub fn entry(t: &Table) { t.tabulate(); }\n",
        );
        let g = CallGraph::build(&[a]);
        let pred = g.reachable_from_roots();
        let m = g.symbols.iter().position(|s| s.name == "tabulate").unwrap();
        assert!(pred.contains_key(&m));
    }

    #[test]
    fn crate_prefixed_paths_stay_in_crate() {
        let a = parsed(
            "crates/alpha/src/lib.rs",
            "pub mod solver { pub fn solve_with() {} }\n",
        );
        let b = parsed(
            "crates/alpha/src/run.rs",
            "// xlint: determinism-root\npub fn go() { crate::solver::solve_with(); }\n",
        );
        let c = parsed(
            "crates/gamma/src/lib.rs",
            "pub mod solver { pub fn solve_with() {} }\n",
        );
        let g = CallGraph::build(&[a, b, c]);
        let pred = g.reachable_from_roots();
        let alpha = g
            .symbols
            .iter()
            .position(|s| s.name == "solve_with" && s.crate_name == "alpha")
            .unwrap();
        let gamma = g
            .symbols
            .iter()
            .position(|s| s.name == "solve_with" && s.crate_name == "gamma")
            .unwrap();
        assert!(pred.contains_key(&alpha));
        assert!(!pred.contains_key(&gamma));
    }
}

//! # xlint — workspace-local static analysis for the X-model repo
//!
//! A dependency-free lint pass that enforces repo invariants the stock
//! toolchain cannot express:
//!
//! * [`no-panic-in-lib`](lints) — library code must not contain panicking
//!   constructs (`unwrap`, `expect`, `panic!`, integer-literal indexing);
//! * [`span-name-registry`](lints) — observability span/metric names must
//!   come from the `xmodel_obs::names` registry, not inline literals;
//! * [`schema-version-once`](lints) — each `xmodel-*/N` schema tag is
//!   defined exactly once;
//! * [`quantity-api`](lints) — the model-equation modules take quantity
//!   types (`Threads`, `ReqPerCycle`, …), not bare `f64`, for dimensioned
//!   parameters.
//!
//! Known findings live in a committed allowlist (`xlint.baseline`);
//! anything not in the baseline fails the run, so violations are caught
//! at introduction time. Run with `cargo run -p xlint` from the workspace
//! root, or via `scripts/ci.sh`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod lints;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use baseline::Baseline;
pub use lints::{analyze_files, Finding, Severity, SourceFile};

/// Schema tag for the JSON report format.
pub const REPORT_SCHEMA: &str = "xmodel-xlint/1";

/// Directory names never descended into during the workspace walk.
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".claude", "node_modules"];

/// Collect every `.rs` file under `root`, returning workspace-relative
/// paths with forward slashes, sorted for deterministic output.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_rs(root, &mut paths)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile { rel, text });
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walk the workspace at `root` and run every lint.
pub fn analyze(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(analyze_files(&workspace_files(root)?))
}

/// Render findings as a human-readable report, one line each.
pub fn render_human(findings: &[&Finding], suppressed: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}: {}\n    {}\n",
            f.path,
            f.line,
            f.severity.as_str(),
            f.lint,
            f.message,
            f.text
        ));
    }
    out.push_str(&format!(
        "xlint: {} new finding(s), {} baselined\n",
        findings.len(),
        suppressed
    ));
    out
}

/// Render findings as a JSON report (`xmodel-xlint/1`).
pub fn render_json(findings: &[&Finding], suppressed: usize) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"");
    out.push_str(REPORT_SCHEMA);
    out.push_str("\",\"new\":");
    out.push_str(&findings.len().to_string());
    out.push_str(",\"baselined\":");
    out.push_str(&suppressed.to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"lint\":");
        json_string(&mut out, f.lint);
        out.push_str(",\"path\":");
        json_string(&mut out, &f.path);
        out.push_str(",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"severity\":");
        json_string(&mut out, f.severity.as_str());
        out.push_str(",\"message\":");
        json_string(&mut out, &f.message);
        out.push_str(",\"text\":");
        json_string(&mut out, &f.text);
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_escapes_and_counts() {
        let f = Finding {
            lint: "no-panic-in-lib",
            path: "crates/core/src/x.rs".to_string(),
            line: 3,
            severity: Severity::Error,
            message: "a \"quoted\" message".to_string(),
            text: "panic!(\"boom\");".to_string(),
        };
        let json = render_json(&[&f], 2);
        assert!(json.contains("\"schema\":\"xmodel-xlint/1\""));
        assert!(json.contains("\"new\":1"));
        assert!(json.contains("\"baselined\":2"));
        assert!(json.contains("a \\\"quoted\\\" message"));
    }
}

//! # xlint — workspace-local static analysis for the X-model repo
//!
//! A dependency-free lint pass that enforces repo invariants the stock
//! toolchain cannot express. Per-file token lints:
//!
//! * [`no-panic-in-lib`](lints) — library code must not contain panicking
//!   constructs (`unwrap`, `expect`, `panic!`, integer-literal indexing);
//! * [`span-name-registry`](lints) — observability span/metric names must
//!   come from the `xmodel_obs::names` registry, not inline literals;
//! * [`schema-version-once`](lints) — each `xmodel-*/N` schema tag is
//!   defined exactly once;
//! * [`quantity-api`](lints) — the model-equation modules take quantity
//!   types (`Threads`, `ReqPerCycle`, …), not bare `f64`, for dimensioned
//!   parameters.
//!
//! Whole-workspace dataflow lints over the [`graph`] call graph (built by
//! the [`parser`] item-level pass):
//!
//! * [`nondeterminism-in-result-path`](dataflow) — no wall-clock, RNG,
//!   env, thread-identity or hash-iteration sources reachable from a
//!   `// xlint: determinism-root` function;
//! * [`lock-in-result-path`](dataflow) — no `Mutex`/`RwLock`
//!   acquisition reachable from a determinism root;
//! * [`metric-docs-sync`](dataflow) — `obs::names` and the DESIGN.md
//!   metric inventory must agree exactly.
//!
//! Sanctioned sites are suppressed inline with
//! `// xlint: allow(lint-id, reason)` (an empty reason is the
//! `allow-missing-reason` finding); everything else not in the committed
//! allowlist (`xlint.baseline`) fails the run, so violations are caught
//! at introduction time. Run with `cargo run -p xlint` from the
//! workspace root, or via `scripts/ci.sh`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod dataflow;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod parser;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use baseline::Baseline;
pub use lints::{analyze_files, analyze_files_full, Analysis, Finding, Severity, SourceFile};

/// Schema tag for the JSON report format (v2 adds `allowed`, `stale`
/// and per-finding `chain` witness arrays).
pub const REPORT_SCHEMA: &str = "xmodel-xlint/2";

/// Directory names never descended into during the workspace walk.
/// `target/` and the vendored `compat/` stubs are skipped explicitly so
/// self-check time does not grow with build artifacts or vendored code.
const SKIP_DIRS: [&str; 5] = ["target", "compat", ".git", ".claude", "node_modules"];

/// Collect every `.rs` file under `root` — plus `DESIGN.md` at the root
/// when present (the `metric-docs-sync` lint reads it) — returning
/// workspace-relative paths with forward slashes, sorted for
/// deterministic output.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_rs(root, &mut paths)?;
    let design = root.join("DESIGN.md");
    if design.is_file() {
        paths.push(design);
    }
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile { rel, text });
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walk the workspace at `root` and run every lint.
pub fn analyze(root: &Path) -> io::Result<Analysis> {
    Ok(analyze_files_full(&workspace_files(root)?))
}

/// Render findings as a human-readable report: one line each, plus the
/// witness chain (indented) for dataflow findings.
pub fn render_human(findings: &[&Finding], suppressed: usize, allowed: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}: {}\n    {}\n",
            f.path,
            f.line,
            f.severity.as_str(),
            f.lint,
            f.message,
            f.text
        ));
        if !f.chain.is_empty() {
            out.push_str(&format!("    via {}\n", f.chain.join(" → ")));
        }
    }
    out.push_str(&format!(
        "xlint: {} new finding(s), {} baselined, {} allowed inline\n",
        findings.len(),
        suppressed,
        allowed
    ));
    out
}

/// Render findings as a JSON report (`xmodel-xlint/2`).
pub fn render_json(
    findings: &[&Finding],
    suppressed: usize,
    allowed: usize,
    stale: &[String],
) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"");
    out.push_str(REPORT_SCHEMA);
    out.push_str("\",\"new\":");
    out.push_str(&findings.len().to_string());
    out.push_str(",\"baselined\":");
    out.push_str(&suppressed.to_string());
    out.push_str(",\"allowed\":");
    out.push_str(&allowed.to_string());
    out.push_str(",\"stale\":");
    out.push_str(&stale.len().to_string());
    out.push_str(",\"stale_entries\":[");
    for (i, key) in stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(&mut out, key);
    }
    out.push_str("],\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"lint\":");
        json_string(&mut out, f.lint);
        out.push_str(",\"path\":");
        json_string(&mut out, &f.path);
        out.push_str(",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"severity\":");
        json_string(&mut out, f.severity.as_str());
        out.push_str(",\"message\":");
        json_string(&mut out, &f.message);
        out.push_str(",\"text\":");
        json_string(&mut out, &f.text);
        out.push_str(",\"chain\":[");
        for (j, link) in f.chain.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json_string(&mut out, link);
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_escapes_and_counts() {
        let f = Finding {
            lint: "no-panic-in-lib",
            path: "crates/core/src/x.rs".to_string(),
            line: 3,
            severity: Severity::Error,
            message: "a \"quoted\" message".to_string(),
            text: "panic!(\"boom\");".to_string(),
            chain: vec!["core::sweep::run".to_string(), "core::x::f".to_string()],
        };
        let json = render_json(&[&f], 2, 1, &["stale\tkey\there".to_string()]);
        assert!(json.contains("\"schema\":\"xmodel-xlint/2\""));
        assert!(json.contains("\"new\":1"));
        assert!(json.contains("\"baselined\":2"));
        assert!(json.contains("\"allowed\":1"));
        assert!(json.contains("\"stale\":1"));
        assert!(json.contains("stale\\tkey\\there"));
        assert!(json.contains("a \\\"quoted\\\" message"));
        assert!(json.contains("\"chain\":[\"core::sweep::run\",\"core::x::f\"]"));
    }

    #[test]
    fn human_report_prints_witness_chain() {
        let f = Finding {
            lint: "nondeterminism-in-result-path",
            path: "crates/core/src/x.rs".to_string(),
            line: 9,
            severity: Severity::Error,
            message: "wall-clock read".to_string(),
            text: "Instant::now();".to_string(),
            chain: vec!["core::sweep::run".to_string(), "core::x::f".to_string()],
        };
        let human = render_human(&[&f], 0, 0);
        assert!(
            human.contains("via core::sweep::run → core::x::f"),
            "{human}"
        );
    }

    #[test]
    fn walk_skips_target_compat_and_hidden_dirs() {
        let tmp = std::env::temp_dir().join(format!("xlint-walk-{}", std::process::id()));
        let mk = |rel: &str, text: &str| {
            let p = tmp.join(rel);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(p, text).unwrap();
        };
        mk("crates/a/src/lib.rs", "pub fn f() {}\n");
        mk("crates/a/tests/t.rs", "fn t() {}\n");
        mk("target/debug/build/gen.rs", "fn skipped() {}\n");
        mk("compat/serde/src/lib.rs", "fn skipped() {}\n");
        mk(".git/hooks/x.rs", "fn skipped() {}\n");
        mk("DESIGN.md", "docs\n");
        let walked: Vec<String> = workspace_files(&tmp)
            .unwrap()
            .into_iter()
            .map(|f| f.rel)
            .collect();
        std::fs::remove_dir_all(&tmp).ok();
        assert_eq!(
            walked,
            ["DESIGN.md", "crates/a/src/lib.rs", "crates/a/tests/t.rs"],
            "walked set changed: {walked:?}"
        );
    }
}

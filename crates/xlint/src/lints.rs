//! The workspace lints: token-stream pattern matches plus the
//! call-graph dataflow passes from [`crate::dataflow`].
//!
//! | id | scope | catches |
//! |---|---|---|
//! | `no-panic-in-lib` | `crates/*/src/**` library code | `.unwrap()`, `.expect(`, `panic!`/`unreachable!`/`todo!`/`unimplemented!`, integer-literal indexing |
//! | `span-name-registry` | all workspace crates | string literals passed to `span!` / metric helpers instead of `xmodel_obs::names` constants |
//! | `schema-version-once` | all non-test sources | a `xmodel-<name>/<version>` schema literal defined more than once |
//! | `quantity-api` | the Eq. (1)–(6) modules in `crates/core` | `pub fn` parameters named like model dimensions but typed bare `f64` |
//! | `nondeterminism-in-result-path` | call graph from determinism roots | wall-clock, RNG, env, thread-id, hash-iteration sources (with witness chain) |
//! | `lock-in-result-path` | call graph from determinism roots | `Mutex`/`RwLock` acquisitions (with witness chain) |
//! | `metric-docs-sync` | `obs::names` + DESIGN.md | registry names and the doc inventory drifting apart |
//! | `allow-missing-reason` | all directives | `// xlint: allow(..)` with an empty reason or unknown lint id |
//!
//! Test code is exempt everywhere: files under `tests/`, `benches/`,
//! `examples/` or `fixtures/` directories, and `#[cfg(test)]` regions
//! inside library files (found by brace matching on the token stream).
//!
//! Findings can be suppressed inline with
//! `// xlint: allow(lint-id, reason)` on the offending line or the line
//! above it; the suppression happens before the committed baseline is
//! consulted, and an allow without a reason is itself a finding.

use crate::dataflow;
use crate::graph::CallGraph;
use crate::lexer::{lex, Token, TokenKind};
use crate::parser::{parse_file, Directive, ParsedFile};

/// How serious a finding is. Both levels currently fail CI when new;
/// the distinction is informational (warnings are candidates for
/// baseline growth, errors should be fixed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Should be fixed before merging.
    Error,
    /// Tolerable when baselined with justification.
    Warning,
}

impl Severity {
    /// Stable lowercase name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One diagnostic produced by a lint.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable lint identifier (e.g. `no-panic-in-lib`).
    pub lint: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Severity level.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Trimmed text of the offending source line (baseline key).
    pub text: String,
    /// Call-chain witness for dataflow findings
    /// (`root → … → offending function`); empty for per-file lints.
    pub chain: Vec<String>,
}

impl Finding {
    /// The baseline identity of this finding: line-number independent so
    /// unrelated edits above a baselined site do not resurface it.
    pub fn baseline_key(&self) -> String {
        format!("{}\t{}\t{}", self.lint, self.path, self.text)
    }
}

/// A source file presented to the lints.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Full file contents.
    pub text: String,
}

/// Paths whose findings are always suppressed: test code, fixtures and
/// vendored compatibility stubs.
fn is_exempt_path(rel: &str) -> bool {
    rel.starts_with("compat/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.contains("/fixtures/")
}

/// `crates/<name>/src/...` → `Some(name)`.
fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

/// Library (non-binary) code under `crates/*/src`.
fn is_lib_code(rel: &str) -> bool {
    crate_of(rel).is_some()
        && !rel.contains("/src/bin/")
        && !rel.ends_with("/src/main.rs")
        && !is_exempt_path(rel)
}

/// Line ranges covered by `#[cfg(test)]` items, found by scanning the
/// token stream for the attribute and brace-matching the following item.
pub(crate) fn cfg_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let is_attr = tokens.get(i).map(|t| t.is_punct('#')).unwrap_or(false)
            && tokens.get(i + 1).map(|t| t.is_punct('[')).unwrap_or(false)
            && tokens
                .get(i + 2)
                .map(|t| t.is_ident("cfg"))
                .unwrap_or(false)
            && tokens.get(i + 3).map(|t| t.is_punct('(')).unwrap_or(false)
            && tokens
                .get(i + 4)
                .map(|t| t.is_ident("test"))
                .unwrap_or(false)
            && tokens.get(i + 5).map(|t| t.is_punct(')')).unwrap_or(false)
            && tokens.get(i + 6).map(|t| t.is_punct(']')).unwrap_or(false);
        if !is_attr {
            i += 1;
            continue;
        }
        let start_line = tokens.get(i).map(|t| t.line).unwrap_or(1);
        // Find the end of the annotated item: either a brace-matched block
        // (`mod tests { … }`, `fn t() { … }`) or a `;` (`use` item).
        let mut j = i + 7;
        let mut depth = 0usize;
        let mut end_line = start_line;
        while let Some(t) = tokens.get(j) {
            end_line = t.line;
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                break;
            }
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

fn in_regions(line: u32, regions: &[(u32, u32)]) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

fn line_text(lines: &[&str], line: u32) -> String {
    lines
        .get(line.saturating_sub(1) as usize)
        .map(|s| s.trim().to_string())
        .unwrap_or_default()
}

/// Does `s` look like a schema tag: `xmodel-<name>/<digits>`?
fn is_schema_literal(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("xmodel-") else {
        return false;
    };
    let Some((name, version)) = rest.split_once('/') else {
        return false;
    };
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !version.is_empty()
        && version.chars().all(|c| c.is_ascii_digit())
}

/// Every lint id the allow directive may name.
pub const LINT_IDS: [&str; 8] = [
    "no-panic-in-lib",
    "span-name-registry",
    "schema-version-once",
    "quantity-api",
    "nondeterminism-in-result-path",
    "lock-in-result-path",
    "metric-docs-sync",
    "allow-missing-reason",
];

/// The complete result of an analysis run: findings that survived
/// inline `allow` suppression, plus the suppressed ones (for reporting).
#[derive(Debug, Default)]
pub struct Analysis {
    /// Findings not suppressed by an inline allow directive, sorted by
    /// path, line, then lint id.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an inline `// xlint: allow(..)`.
    pub allowed: Vec<Finding>,
}

/// Run every lint over the given files and return the surviving
/// findings (see [`analyze_files_full`] for the allow-suppressed set).
pub fn analyze_files(files: &[SourceFile]) -> Vec<Finding> {
    analyze_files_full(files).findings
}

/// Run every lint over the given files: the per-file token lints, the
/// directive checks, and the whole-workspace dataflow lints.
pub fn analyze_files_full(files: &[SourceFile]) -> Analysis {
    let mut findings = Vec::new();
    // (schema literal, path, line, trimmed text) across the whole workspace.
    let mut schema_sites: Vec<(String, String, u32, String)> = Vec::new();
    let mut parsed: Vec<ParsedFile> = Vec::new();
    let mut names_rs: Option<(String, String)> = None;
    let mut design_md: Option<(String, String)> = None;

    for file in files {
        if file.rel == "DESIGN.md" || file.rel.ends_with("/DESIGN.md") {
            design_md = Some((file.rel.clone(), file.text.clone()));
            continue;
        }
        if !file.rel.ends_with(".rs") || is_exempt_path(&file.rel) {
            continue;
        }
        if file.rel.ends_with("obs/src/names.rs") {
            names_rs = Some((file.rel.clone(), file.text.clone()));
        }
        let tokens = lex(&file.text);
        let lines: Vec<&str> = file.text.lines().collect();
        let test_regions = cfg_test_regions(&tokens);
        let live = |t: &Token| -> bool { !in_regions(t.line, &test_regions) };

        if is_lib_code(&file.rel) {
            no_panic_in_lib(file, &tokens, &lines, &live, &mut findings);
        }
        if crate_of(&file.rel).is_some() {
            span_name_registry(file, &tokens, &lines, &live, &mut findings);
        }
        if quantity_api_applies(&file.rel) {
            quantity_api(file, &tokens, &lines, &live, &mut findings);
        }
        for t in tokens.iter().filter(|t| t.kind == TokenKind::Str) {
            if live(t) && is_schema_literal(&t.text) {
                schema_sites.push((
                    t.text.clone(),
                    file.rel.clone(),
                    t.line,
                    line_text(&lines, t.line),
                ));
            }
        }

        let pf = parse_file(&file.rel, &file.text, &test_regions);
        allow_directive_lint(&pf, &lines, &mut findings);
        parsed.push(pf);
    }

    schema_version_once(&schema_sites, &mut findings);

    // Whole-workspace dataflow lints over the symbol graph.
    let graph = CallGraph::build(&parsed);
    let mut dataflow_findings = Vec::new();
    dataflow::result_path_lints(&parsed, &graph, &mut dataflow_findings);
    // Fill the offending source line (the baseline / suppression key).
    for f in &mut dataflow_findings {
        if let Some(file) = files.iter().find(|s| s.rel == f.path) {
            let lines: Vec<&str> = file.text.lines().collect();
            f.text = line_text(&lines, f.line);
        }
    }
    findings.append(&mut dataflow_findings);
    dataflow::metric_docs_sync(names_rs.as_ref(), design_md.as_ref(), &mut findings);

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.lint).cmp(&(b.path.as_str(), b.line, b.lint)));
    findings.dedup_by(|a, b| {
        a.lint == b.lint && a.path == b.path && a.line == b.line && a.message == b.message
    });

    // Inline allow suppression, applied before the baseline.
    let mut analysis = Analysis::default();
    for f in findings {
        let allowed = parsed.iter().filter(|p| p.rel == f.path).any(|p| {
            p.directives.iter().any(|d| match &d.directive {
                Directive::Allow { lint, reason } => {
                    lint == f.lint && !reason.is_empty() && d.target_line == f.line
                }
                _ => false,
            })
        });
        if allowed {
            analysis.allowed.push(f);
        } else {
            analysis.findings.push(f);
        }
    }
    analysis
}

/// `allow-missing-reason`: every allow directive needs a known lint id
/// and a non-empty justification.
fn allow_directive_lint(pf: &ParsedFile, lines: &[&str], out: &mut Vec<Finding>) {
    for d in &pf.directives {
        let Directive::Allow { lint, reason } = &d.directive else {
            continue;
        };
        let message = if lint.is_empty() {
            "unrecognized `// xlint:` directive; expected `allow(lint-id, reason)` or \
             `determinism-root`"
                .to_string()
        } else if !LINT_IDS.contains(&lint.as_str()) {
            format!("allow-directive names unknown lint `{lint}`")
        } else if reason.is_empty() {
            format!(
                "allow-directive for `{lint}` has no reason; write \
                 `// xlint: allow({lint}, why this site is sanctioned)`"
            )
        } else {
            continue;
        };
        out.push(Finding {
            lint: "allow-missing-reason",
            path: pf.rel.clone(),
            line: d.line,
            severity: Severity::Error,
            message,
            text: line_text(lines, d.line),
            chain: Vec::new(),
        });
    }
}

/// `no-panic-in-lib`: panicking constructs in non-test library code.
fn no_panic_in_lib(
    file: &SourceFile,
    tokens: &[Token],
    lines: &[&str],
    live: &dyn Fn(&Token) -> bool,
    out: &mut Vec<Finding>,
) {
    const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    let mut push = |line: u32, severity: Severity, message: String| {
        out.push(Finding {
            lint: "no-panic-in-lib",
            path: file.rel.clone(),
            line,
            severity,
            message,
            text: line_text(lines, line),
            chain: Vec::new(),
        });
    };
    for (i, t) in tokens.iter().enumerate() {
        if !live(t) {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let next_is_bang = tokens.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false);
                if next_is_bang && PANIC_MACROS.contains(&t.text.as_str()) {
                    push(
                        t.line,
                        Severity::Error,
                        format!(
                            "`{}!` in library code; return a Result or restructure",
                            t.text
                        ),
                    );
                }
                let after_dot =
                    i > 0 && tokens.get(i - 1).map(|p| p.is_punct('.')).unwrap_or(false);
                if after_dot && t.text == "unwrap" {
                    let is_call = tokens.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                        && tokens.get(i + 2).map(|n| n.is_punct(')')).unwrap_or(false);
                    if is_call {
                        push(
                            t.line,
                            Severity::Warning,
                            "`.unwrap()` in library code; use `?`, a default, or `expect` \
                             with an invariant message (then baseline it)"
                                .to_string(),
                        );
                    }
                }
                if after_dot && t.text == "expect" {
                    let is_call = tokens.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
                    if is_call {
                        push(
                            t.line,
                            Severity::Warning,
                            "`.expect(..)` in library code; acceptable only for documented \
                             invariants (baseline it) — otherwise return an error"
                                .to_string(),
                        );
                    }
                }
            }
            TokenKind::Num => {
                // `foo[0]` / `)[1]` / `][2]`: integer-literal indexing.
                let is_int = t.text.chars().all(|c| c.is_ascii_digit());
                let bracketed = tokens
                    .get(i.wrapping_sub(1))
                    .map(|p| p.is_punct('['))
                    .unwrap_or(false)
                    && tokens.get(i + 1).map(|n| n.is_punct(']')).unwrap_or(false);
                let indexes_expr = i >= 2
                    && tokens
                        .get(i - 2)
                        .map(|p| {
                            p.kind == TokenKind::Ident && !p.is_ident("mut")
                                || p.is_punct(')')
                                || p.is_punct(']')
                        })
                        .unwrap_or(false);
                if is_int && bracketed && indexes_expr && i >= 1 {
                    push(
                        t.line,
                        Severity::Warning,
                        format!(
                            "integer-literal index `[{}]` may panic; prefer `.get({})` or \
                             `.first()`/`.last()`",
                            t.text, t.text
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// `span-name-registry`: span/metric names must come from `xmodel_obs::names`.
fn span_name_registry(
    file: &SourceFile,
    tokens: &[Token],
    lines: &[&str],
    live: &dyn Fn(&Token) -> bool,
    out: &mut Vec<Finding>,
) {
    const METRIC_FNS: [&str; 3] = ["counter_add", "gauge_set", "histogram_observe"];
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !live(t) {
            continue;
        }
        let (callee, lit_at) = if t.text == "span"
            && tokens.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false)
            && tokens.get(i + 2).map(|n| n.is_punct('(')).unwrap_or(false)
        {
            ("span!", i + 3)
        } else if METRIC_FNS.contains(&t.text.as_str())
            && tokens.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        {
            ("metric call", i + 2)
        } else {
            continue;
        };
        if let Some(lit) = tokens.get(lit_at).filter(|l| l.kind == TokenKind::Str) {
            out.push(Finding {
                lint: "span-name-registry",
                path: file.rel.clone(),
                line: lit.line,
                severity: Severity::Error,
                message: format!(
                    "{callee} uses inline name \"{}\"; add a constant to \
                     `xmodel_obs::names` and reference it",
                    lit.text
                ),
                text: line_text(lines, lit.line),
                chain: Vec::new(),
            });
        }
    }
}

/// `schema-version-once`: each schema tag must have exactly one definition.
fn schema_version_once(sites: &[(String, String, u32, String)], out: &mut Vec<Finding>) {
    let mut tags: Vec<&str> = sites.iter().map(|(tag, ..)| tag.as_str()).collect();
    tags.sort_unstable();
    tags.dedup();
    for tag in tags {
        let mut occurrences: Vec<_> = sites.iter().filter(|(t, ..)| t == tag).collect();
        occurrences.sort_by(|a, b| (&a.1, a.2).cmp(&(&b.1, b.2)));
        // The first occurrence (in path order) is the definition; any
        // further literal is a duplicate that can drift.
        for (tag, path, line, text) in occurrences.iter().skip(1) {
            out.push(Finding {
                lint: "schema-version-once",
                path: path.clone(),
                line: *line,
                severity: Severity::Error,
                message: format!(
                    "schema literal \"{tag}\" duplicated; reference the single \
                     exported SCHEMA constant instead"
                ),
                text: text.clone(),
                chain: Vec::new(),
            });
        }
    }
}

/// Files whose public APIs must use quantity types for model dimensions.
fn quantity_api_applies(rel: &str) -> bool {
    const FILES: [&str; 6] = [
        "crates/core/src/ms.rs",
        "crates/core/src/cs.rs",
        "crates/core/src/cache.rs",
        "crates/core/src/transit.rs",
        "crates/core/src/solver.rs",
        "crates/core/src/balance.rs",
    ];
    FILES.contains(&rel)
}

/// `quantity-api`: dimension-named `pub fn` parameters typed as bare `f64`.
fn quantity_api(
    file: &SourceFile,
    tokens: &[Token],
    lines: &[&str],
    live: &dyn Fn(&Token) -> bool,
    out: &mut Vec<Finding>,
) {
    const DIM_PARAMS: [&str; 6] = ["k", "x", "n", "z", "k_max", "x_max"];
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        // `pub fn` only: restricted visibility (`pub(crate)` etc.) is not
        // public API and may keep f64 internals.
        let is_pub_fn =
            t.is_ident("pub") && tokens.get(i + 1).map(|n| n.is_ident("fn")).unwrap_or(false);
        if !is_pub_fn || !live(t) {
            i += 1;
            continue;
        }
        let j = i + 1;
        // Find the parameter list opening paren (skipping generics).
        let mut k = j + 1;
        while k < tokens.len() {
            match tokens.get(k) {
                Some(t) if t.is_punct('(') => break,
                Some(t) if t.is_punct('{') || t.is_punct(';') => break,
                Some(_) => k += 1,
                None => break,
            }
        }
        if !tokens.get(k).map(|t| t.is_punct('(')).unwrap_or(false) {
            i = k;
            continue;
        }
        // Walk the signature parens at depth 1 looking for `name : f64`.
        let mut depth = 0usize;
        let mut p = k;
        while let Some(tok) = tokens.get(p) {
            if tok.is_punct('(') {
                depth += 1;
            } else if tok.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1
                && tok.kind == TokenKind::Ident
                && DIM_PARAMS.contains(&tok.text.as_str())
                && tokens.get(p + 1).map(|n| n.is_punct(':')).unwrap_or(false)
                && tokens
                    .get(p + 2)
                    .map(|n| n.is_ident("f64"))
                    .unwrap_or(false)
            {
                out.push(Finding {
                    lint: "quantity-api",
                    path: file.rel.clone(),
                    line: tok.line,
                    severity: Severity::Error,
                    message: format!(
                        "public parameter `{}: f64` in a model-equation module; use the \
                         matching quantity type from `xmodel_core::units`",
                        tok.text
                    ),
                    text: line_text(lines, tok.line),
                    chain: Vec::new(),
                });
            }
            p += 1;
        }
        i = p + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, text: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            text: text.to_string(),
        }
    }

    #[test]
    fn cfg_test_region_covers_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn b() {}\n";
        let toks = lex(src);
        let regions = cfg_test_regions(&toks);
        assert_eq!(regions.len(), 1);
        assert!(in_regions(4, &regions));
        assert!(!in_regions(1, &regions));
        assert!(!in_regions(6, &regions));
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n  fn t() { Some(1).unwrap(); }\n}\n";
        let findings = analyze_files(&[file("crates/core/src/demo.rs", src)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn schema_literal_matcher() {
        assert!(is_schema_literal("xmodel-trace/1"));
        assert!(is_schema_literal("xmodel-bench/12"));
        assert!(!is_schema_literal("xmodel-trace"));
        assert!(!is_schema_literal("xmodel-Trace/1"));
        assert!(!is_schema_literal("trace/1"));
        assert!(!is_schema_literal("xmodel-trace/v1"));
    }

    #[test]
    fn binary_and_test_paths_are_exempt_from_no_panic() {
        let src = "pub fn f() { Some(1).unwrap(); }\n";
        for rel in [
            "crates/cli/src/main.rs",
            "crates/bench/src/bin/tool.rs",
            "crates/core/tests/t.rs",
            "compat/serde/src/lib.rs",
        ] {
            let findings = analyze_files(&[file(rel, src)]);
            assert!(
                !findings.iter().any(|f| f.lint == "no-panic-in-lib"),
                "{rel} should be exempt: {findings:?}"
            );
        }
    }
}

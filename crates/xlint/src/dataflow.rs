//! The call-graph dataflow lints.
//!
//! | id | invariant |
//! |---|---|
//! | `nondeterminism-in-result-path` | functions transitively reachable from a `// xlint: determinism-root` fn must not read wall-clock time, seed RNGs from the environment, iterate hash containers, read thread identity / core counts, or read environment variables |
//! | `lock-in-result-path` | no `Mutex`/`RwLock` acquisition reachable from a determinism root |
//! | `metric-docs-sync` | every `obs::names` span/metric constant appears in the DESIGN.md metric-inventory table and vice versa |
//!
//! The first two walk the [`crate::graph::CallGraph`] breadth-first
//! from the annotated roots and attach a **witness chain**
//! (`root → … → offender`) to every finding, so a CI failure already
//! names the path that lets the nondeterminism reach result bytes.
//! Sanctioned sites — tracing-gated timing, side-channel tallies,
//! watchdog clocks — carry an inline `// xlint: allow(lint-id, reason)`
//! and are suppressed before the baseline is even consulted.
//!
//! Calls into the `obs` crate are deliberately not traversed: the
//! observability layer is a by-design side channel whose gating is
//! enforced end-to-end by the byte-identity smokes in `scripts/ci.sh`,
//! and traversing it would force an allow on every tracing-gated tally.

use crate::graph::CallGraph;
use crate::lints::{Finding, Severity};
use crate::parser::{CallSite, ParsedFile};

/// Crates never descended into by the dataflow traversal (observability
/// side channel; see module docs).
pub const SANCTIONED_CRATES: [&str; 1] = ["obs"];

/// Hash-container methods whose iteration order is nondeterministic.
const HASH_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Classify a path call/reference as a nondeterminism source.
/// Returns the human-readable source description.
fn nondet_source(segments: &[String]) -> Option<&'static str> {
    let n = segments.len();
    let last = segments.last()?.as_str();
    let penult = (n >= 2).then(|| segments[n - 2].as_str());
    match (penult, last) {
        (Some("Instant"), "now") | (Some("SystemTime"), "now") => Some("wall-clock read"),
        (Some("thread"), "current") => Some("thread-identity read"),
        (_, "available_parallelism") => Some("core-count read"),
        (_, "thread_rng") | (_, "from_entropy") | (_, "from_os_rng") => {
            Some("environment-seeded RNG")
        }
        (Some("rand"), "random") => Some("environment-seeded RNG"),
        (Some("env"), "var")
        | (Some("env"), "vars")
        | (Some("env"), "var_os")
        | (Some("env"), "vars_os") => Some("environment read"),
        _ => None,
    }
}

/// Run `nondeterminism-in-result-path` and `lock-in-result-path` over
/// the graph, pushing findings (with witness chains) into `out`.
pub fn result_path_lints(files: &[ParsedFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    let pred = graph.reachable_from_roots();
    for (&id, _) in pred.iter() {
        let sym = &graph.symbols[id];
        if SANCTIONED_CRATES.contains(&sym.crate_name.as_str()) {
            continue;
        }
        let file = &files[sym.file];
        let item = &file.fns[sym.item];
        let chain = graph.chain(&pred, id);
        let mut push = |lint: &'static str, line: u32, message: String| {
            out.push(Finding {
                lint,
                path: sym.path.clone(),
                line,
                severity: Severity::Error,
                message,
                text: String::new(), // caller fills from source text
                chain: chain.clone(),
            });
        };
        // `.read()`/`.write()` are only lock acquisitions when the
        // function actually touches an RwLock; bare `.lock()` always is.
        let mentions_rwlock = item.calls.iter().any(|c| match c {
            CallSite::Path { segments, .. } | CallSite::Ref { segments, .. } => {
                segments.iter().any(|s| s == "RwLock")
            }
            CallSite::Method { .. } => false,
        });
        let has_hash_container = !item.hash_container_lines.is_empty();
        for call in &item.calls {
            match call {
                CallSite::Path { segments, line } | CallSite::Ref { segments, line } => {
                    if let Some(kind) = nondet_source(segments) {
                        push(
                            "nondeterminism-in-result-path",
                            *line,
                            format!(
                                "{kind} (`{}`) in a function reachable from a determinism \
                                 root; result bytes must not depend on it — restructure, or \
                                 annotate the sanctioned site with \
                                 `// xlint: allow(nondeterminism-in-result-path, reason)`",
                                segments.join("::")
                            ),
                        );
                    }
                }
                CallSite::Method { name, line } => {
                    let is_lock = name == "lock"
                        || name == "try_lock"
                        || (mentions_rwlock
                            && matches!(
                                name.as_str(),
                                "read" | "write" | "try_read" | "try_write"
                            ));
                    if is_lock {
                        push(
                            "lock-in-result-path",
                            *line,
                            format!(
                                "`.{name}()` acquisition in a function reachable from a \
                                 determinism root; locks on the result path risk \
                                 scheduling-dependent output — keep tallies in a side \
                                 channel, or annotate with \
                                 `// xlint: allow(lock-in-result-path, reason)`"
                            ),
                        );
                    }
                    if has_hash_container && HASH_ITER_METHODS.contains(&name.as_str()) {
                        push(
                            "nondeterminism-in-result-path",
                            *line,
                            format!(
                                "`.{name}()` in a function that uses HashMap/HashSet and is \
                                 reachable from a determinism root; hash iteration order is \
                                 nondeterministic — use BTreeMap/Vec or sort before emission"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Extract registered names from the `obs::names` source: string
/// literals shaped like `subsystem.noun` (lowercase, dot-separated,
/// no spaces). Help strings contain spaces and are skipped.
pub fn registry_names(names_rs: &str) -> Vec<(String, u32)> {
    let tokens = crate::lexer::lex(names_rs);
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != crate::lexer::TokenKind::Str {
            continue;
        }
        let s = &t.text;
        if s.contains('.')
            && !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
        {
            out.push((s.clone(), t.line));
        }
    }
    out.sort();
    out.dedup_by(|a, b| a.0 == b.0);
    out
}

/// Markers delimiting the canonical metric-inventory table in DESIGN.md.
pub const INVENTORY_BEGIN: &str = "<!-- xlint:metric-inventory:begin -->";
/// Closing marker; see [`INVENTORY_BEGIN`].
pub const INVENTORY_END: &str = "<!-- xlint:metric-inventory:end -->";

/// Extract documented names from the DESIGN.md inventory block:
/// backtick-quoted tokens, with `{a,b,c}` brace groups expanded
/// (`fastpath.cache_{hits,misses}` → two names).
pub fn documented_names(design_md: &str) -> Option<Vec<(String, u32)>> {
    let mut out = Vec::new();
    let mut inside = false;
    let mut seen_begin = false;
    for (i, line) in design_md.lines().enumerate() {
        let ln = (i + 1) as u32;
        if line.contains(INVENTORY_BEGIN) {
            inside = true;
            seen_begin = true;
            continue;
        }
        if line.contains(INVENTORY_END) {
            inside = false;
            continue;
        }
        if !inside {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let tail = &rest[open + 1..];
            let Some(close) = tail.find('`') else {
                break;
            };
            let token = &tail[..close];
            for name in expand_braces(token) {
                if name.contains('.')
                    && name.chars().all(|c| {
                        c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'
                    })
                {
                    out.push((name, ln));
                }
            }
            rest = &tail[close + 1..];
        }
    }
    if !seen_begin {
        return None;
    }
    out.sort();
    out.dedup_by(|a, b| a.0 == b.0);
    Some(out)
}

/// Expand one level of `{a,b,c}` alternation in a name token.
fn expand_braces(token: &str) -> Vec<String> {
    let Some(open) = token.find('{') else {
        return vec![token.to_string()];
    };
    let Some(close) = token[open..].find('}').map(|c| c + open) else {
        return vec![token.to_string()];
    };
    let head = &token[..open];
    let tail = &token[close + 1..];
    token[open + 1..close]
        .split(',')
        .flat_map(|alt| expand_braces(&format!("{head}{}{tail}", alt.trim())))
        .collect()
}

/// `metric-docs-sync`: the names registry and the DESIGN.md inventory
/// must agree exactly.
pub fn metric_docs_sync(
    names_rs: Option<&(String, String)>, // (rel, text)
    design_md: Option<&(String, String)>,
    out: &mut Vec<Finding>,
) {
    let (Some((names_rel, names_text)), Some((design_rel, design_text))) = (names_rs, design_md)
    else {
        return; // nothing to check without both sides
    };
    let registry = registry_names(names_text);
    let Some(documented) = documented_names(design_text) else {
        out.push(Finding {
            lint: "metric-docs-sync",
            path: design_rel.clone(),
            line: 1,
            severity: Severity::Error,
            message: format!(
                "missing `{INVENTORY_BEGIN}` / `{INVENTORY_END}` markers around the metric \
                 inventory table"
            ),
            text: String::new(),
            chain: Vec::new(),
        });
        return;
    };
    for (name, line) in &registry {
        if !documented.iter().any(|(d, _)| d == name) {
            out.push(Finding {
                lint: "metric-docs-sync",
                path: names_rel.clone(),
                line: *line,
                severity: Severity::Error,
                message: format!(
                    "registered name `{name}` is missing from the DESIGN.md metric \
                     inventory table"
                ),
                text: name.clone(),
                chain: Vec::new(),
            });
        }
    }
    for (name, line) in &documented {
        if !registry.iter().any(|(r, _)| r == name) {
            out.push(Finding {
                lint: "metric-docs-sync",
                path: design_rel.clone(),
                line: *line,
                severity: Severity::Error,
                message: format!("documented name `{name}` is not registered in `obs::names`"),
                text: name.clone(),
                chain: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nondet_sources_classify() {
        let seg = |s: &str| s.split("::").map(str::to_string).collect::<Vec<_>>();
        assert_eq!(nondet_source(&seg("Instant::now")), Some("wall-clock read"));
        assert_eq!(
            nondet_source(&seg("std::time::Instant::now")),
            Some("wall-clock read")
        );
        assert_eq!(
            nondet_source(&seg("std::env::var")),
            Some("environment read")
        );
        assert_eq!(
            nondet_source(&seg("std::thread::available_parallelism")),
            Some("core-count read")
        );
        assert_eq!(
            nondet_source(&seg("thread_rng")),
            Some("environment-seeded RNG")
        );
        assert_eq!(nondet_source(&seg("Instant::elapsed")), None);
        assert_eq!(nondet_source(&seg("solver::solve_with")), None);
    }

    #[test]
    fn brace_expansion() {
        assert_eq!(
            expand_braces("fastpath.cache_{hits,misses,stale}"),
            [
                "fastpath.cache_hits",
                "fastpath.cache_misses",
                "fastpath.cache_stale"
            ]
        );
        assert_eq!(expand_braces("sweep.items"), ["sweep.items"]);
        assert_eq!(
            expand_braces("degrade.{exact,grid_scan}_us"),
            ["degrade.exact_us", "degrade.grid_scan_us"]
        );
    }

    #[test]
    fn docs_sync_catches_both_directions() {
        let names = (
            "crates/obs/src/names.rs".to_string(),
            "pub const A: &str = \"a.one\";\npub const B: &str = \"b.two\";\n".to_string(),
        );
        let docs = (
            "DESIGN.md".to_string(),
            format!("{INVENTORY_BEGIN}\n| `a.one`, `c.three` |\n{INVENTORY_END}\n"),
        );
        let mut out = Vec::new();
        metric_docs_sync(Some(&names), Some(&docs), &mut out);
        let msgs: Vec<_> = out.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(out.len(), 2, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`b.two`")));
        assert!(msgs.iter().any(|m| m.contains("`c.three`")));
    }

    #[test]
    fn docs_sync_clean_when_reconciled() {
        let names = (
            "crates/obs/src/names.rs".to_string(),
            "pub const A: &str = \"a.one\"; pub const B: &str = \"b.two\";".to_string(),
        );
        let docs = (
            "DESIGN.md".to_string(),
            format!("{INVENTORY_BEGIN}\n| `a.one` | x |\n| `b.two` | y |\n{INVENTORY_END}\n"),
        );
        let mut out = Vec::new();
        metric_docs_sync(Some(&names), Some(&docs), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}

//! xlint CLI.
//!
//! ```text
//! cargo run -p xlint [-- OPTIONS]
//!
//!   --root PATH       workspace root (default: auto-detect from cwd)
//!   --baseline PATH   baseline file (default: <root>/xlint.baseline)
//!   --format FMT      `human` (default) or `json`
//!   --write-baseline  rewrite the baseline from current findings, exit 0
//!   --prune-baseline  drop stale baseline entries in place, exit 0
//!   --deny-stale      treat stale baseline entries as a failure (exit 2)
//! ```
//!
//! Exit codes: `0` clean (all findings baselined or inline-allowed),
//! `1` new findings, `2` usage/I/O error or stale baseline under
//! `--deny-stale`.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xlint::{analyze, render_human, render_json, Baseline};

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    format: Format,
    write_baseline: bool,
    prune_baseline: bool,
    deny_stale: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline: None,
        format: Format::Human,
        write_baseline: false,
        prune_baseline: false,
        deny_stale: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a path")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a path")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("human") => opts.format = Format::Human,
                Some("json") => opts.format = Format::Json,
                _ => return Err("--format must be `human` or `json`".to_string()),
            },
            "--write-baseline" => opts.write_baseline = true,
            "--prune-baseline" => opts.prune_baseline = true,
            "--deny-stale" => opts.deny_stale = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if opts.write_baseline && opts.prune_baseline {
        return Err("--write-baseline and --prune-baseline are mutually exclusive".to_string());
    }
    Ok(opts)
}

/// Walk upward from `start` until a directory containing a workspace
/// `Cargo.toml` is found.
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

const USAGE: &str = "usage: xlint [--root PATH] [--baseline PATH] [--format human|json] \
                     [--write-baseline | --prune-baseline] [--deny-stale]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("xlint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = match opts
        .root
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd)))
    {
        Some(r) => r,
        None => {
            eprintln!("xlint: could not locate a workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };

    let analysis = match analyze(&root) {
        Ok(a) => a,
        Err(err) => {
            eprintln!("xlint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts.baseline.unwrap_or_else(|| root.join("xlint.baseline"));

    if opts.write_baseline {
        // Inline-allowed findings never enter the baseline: their
        // suppression lives next to the code, with a reason.
        let contents = Baseline::render(&analysis.findings);
        if let Err(err) = std::fs::write(&baseline_path, contents) {
            eprintln!("xlint: failed to write {}: {err}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "xlint: wrote {} entry(ies) to {}",
            analysis.findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text),
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(err) => {
            eprintln!("xlint: failed to read {}: {err}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let (fresh, suppressed, stale) = baseline.partition_full(&analysis.findings);

    if opts.prune_baseline {
        let kept: Vec<_> = suppressed.iter().map(|f| (*f).clone()).collect();
        let contents = Baseline::render(&kept);
        if let Err(err) = std::fs::write(&baseline_path, contents) {
            eprintln!("xlint: failed to write {}: {err}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "xlint: pruned {} stale entry(ies), kept {} in {}",
            stale.len(),
            kept.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let report = match opts.format {
        Format::Human => render_human(&fresh, suppressed.len(), analysis.allowed.len()),
        Format::Json => render_json(&fresh, suppressed.len(), analysis.allowed.len(), &stale),
    };
    print!("{report}");

    if opts.deny_stale && !stale.is_empty() {
        eprintln!(
            "xlint: baseline has {} stale entry(ies); run `cargo run -p xlint -- --prune-baseline`:",
            stale.len()
        );
        for key in &stale {
            eprintln!("  {}", key.replace('\t', "  "));
        }
        return ExitCode::from(2);
    }

    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

//! xlint CLI.
//!
//! ```text
//! cargo run -p xlint [-- OPTIONS]
//!
//!   --root PATH       workspace root (default: auto-detect from cwd)
//!   --baseline PATH   baseline file (default: <root>/xlint.baseline)
//!   --format FMT      `human` (default) or `json`
//!   --write-baseline  rewrite the baseline from current findings, exit 0
//! ```
//!
//! Exit codes: `0` clean (all findings baselined), `1` new findings,
//! `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xlint::{analyze, render_human, render_json, Baseline};

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    format: Format,
    write_baseline: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline: None,
        format: Format::Human,
        write_baseline: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a path")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a path")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("human") => opts.format = Format::Human,
                Some("json") => opts.format = Format::Json,
                _ => return Err("--format must be `human` or `json`".to_string()),
            },
            "--write-baseline" => opts.write_baseline = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Walk upward from `start` until a directory containing a workspace
/// `Cargo.toml` is found.
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

const USAGE: &str =
    "usage: xlint [--root PATH] [--baseline PATH] [--format human|json] [--write-baseline]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("xlint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = match opts
        .root
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd)))
    {
        Some(r) => r,
        None => {
            eprintln!("xlint: could not locate a workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };

    let findings = match analyze(&root) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("xlint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts.baseline.unwrap_or_else(|| root.join("xlint.baseline"));

    if opts.write_baseline {
        let contents = Baseline::render(&findings);
        if let Err(err) = std::fs::write(&baseline_path, contents) {
            eprintln!("xlint: failed to write {}: {err}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "xlint: wrote {} entry(ies) to {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text),
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(err) => {
            eprintln!("xlint: failed to read {}: {err}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let (fresh, suppressed) = baseline.partition(&findings);
    let report = match opts.format {
        Format::Human => render_human(&fresh, suppressed.len()),
        Format::Json => render_json(&fresh, suppressed.len()),
    };
    print!("{report}");

    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

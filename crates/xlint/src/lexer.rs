//! A minimal Rust lexer: just enough token structure for the lint pass.
//!
//! Comments (line, doc, nested block) are excluded from the token
//! stream; line comments are additionally captured on the side (see
//! [`lex_full`]) so `// xlint: …` control directives can be parsed
//! without strings or code being able to fake them. String and char
//! literals become single tokens carrying their unquoted content;
//! identifiers, numbers and lifetimes are single tokens; every other
//! byte is a one-character punctuation token. This is deliberately not a
//! full Rust lexer — it only has to be faithful enough that token-level
//! pattern matching (`.unwrap()`, `span!("...")`, `pub fn f(k: f64)`)
//! cannot be fooled by comments or string contents.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// String literal (`"…"`, `r"…"`, `r#"…"#`, `b"…"`); `text` holds the
    /// raw content between the quotes, escapes unprocessed.
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
    /// Single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text (content only, for string/char literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Is this a punctuation token equal to `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }

    /// Is this an identifier equal to `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// One `//` line comment, captured for directive parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text after the `//` (or `///`, `//!`) marker, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when source tokens precede the comment on the same line
    /// (a trailing comment annotates its own line, not the next one).
    pub trailing: bool,
}

/// Token stream plus the captured line comments.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex `src` into tokens, discarding comments and whitespace.
///
/// The lexer is total: any byte sequence produces a token stream (unknown
/// bytes are skipped), so a syntactically broken file degrades to weaker
/// linting rather than an error.
pub fn lex(src: &str) -> Vec<Token> {
    lex_full(src).tokens
}

/// [`lex`], additionally capturing `//` line comments so directive
/// comments (`// xlint: allow(...)`) can be recognised.
pub fn lex_full(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut tokens: Vec<Token> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = src.get(start..i).unwrap_or_default();
                let text = text.trim_start_matches('/').trim_start_matches('!').trim();
                let trailing = tokens.last().map(|t| t.line == line).unwrap_or(false);
                comments.push(Comment {
                    text: text.to_string(),
                    line,
                    trailing,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if starts_raw_string(bytes, i) => {
                let start_line = line;
                let (content, next, newlines) = scan_raw_string(src, i);
                line += newlines;
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: content,
                    line: start_line,
                });
                i = next;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let start_line = line;
                let (content, next, newlines) = scan_string(src, i + 1);
                line += newlines;
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: content,
                    line: start_line,
                });
                i = next;
            }
            b'"' => {
                let start_line = line;
                let (content, next, newlines) = scan_string(src, i);
                line += newlines;
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: content,
                    line: start_line,
                });
                i = next;
            }
            b'\'' => {
                // Lifetime or char literal.
                let after = bytes.get(i + 1).copied();
                let closing = bytes.get(i + 2).copied();
                if after.map(is_ident_start).unwrap_or(false) && closing != Some(b'\'') {
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && is_ident_continue(bytes[j]) {
                        j += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: src.get(start..j).unwrap_or_default().to_string(),
                        line,
                    });
                    i = j;
                } else {
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        if bytes[j] == b'\\' {
                            j += 2;
                        } else {
                            j += 1;
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Char,
                        text: src.get(start..j).unwrap_or_default().to_string(),
                        line,
                    });
                    i = (j + 1).min(bytes.len());
                }
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src.get(start..i).unwrap_or_default().to_string(),
                    line,
                });
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (is_ident_continue(bytes[i]) || bytes[i] == b'.') {
                    // A second '.' (range `0..n`) ends the number.
                    if bytes[i] == b'.'
                        && src.get(start..i).map(|s| s.contains('.')).unwrap_or(false)
                    {
                        break;
                    }
                    // `.` followed by an identifier is a method call on a
                    // literal (`1.max(x)`), not a fraction.
                    if bytes[i] == b'.'
                        && bytes
                            .get(i + 1)
                            .map(|&c| is_ident_start(c) || c == b'.')
                            .unwrap_or(true)
                    {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Num,
                    text: src.get(start..i).unwrap_or_default().to_string(),
                    line,
                });
            }
            _ if b.is_ascii() => {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
                i += 1;
            }
            _ => i += 1, // non-ASCII outside strings/comments: skip
        }
    }
    Lexed { tokens, comments }
}

fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    // r"  r#"  br"  br#"
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn scan_raw_string(src: &str, start: usize) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    let mut j = start;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let content_start = j;
    let mut newlines = 0u32;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
        }
        if bytes[j] == b'"' {
            let close = j + 1;
            let mut h = 0usize;
            while h < hashes && bytes.get(close + h) == Some(&b'#') {
                h += 1;
            }
            if h == hashes {
                let content = src.get(content_start..j).unwrap_or_default().to_string();
                return (content, close + hashes, newlines);
            }
        }
        j += 1;
    }
    (
        src.get(content_start..).unwrap_or_default().to_string(),
        bytes.len(),
        newlines,
    )
}

fn scan_string(src: &str, quote: usize) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    let start = quote + 1;
    let mut j = start;
    let mut newlines = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'"' => {
                let content = src.get(start..j).unwrap_or_default().to_string();
                return (content, j + 1, newlines);
            }
            _ => j += 1,
        }
    }
    (
        src.get(start..).unwrap_or_default().to_string(),
        bytes.len(),
        newlines,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let toks = lex("// .unwrap()\n/* panic!( */ let s = \".expect(\"; n");
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "n"]);
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec![".expect("]);
    }

    #[test]
    fn raw_strings_and_lines() {
        let toks = lex("let a = r#\"x \" y\"#;\nlet b = 2;");
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(s.text, "x \" y");
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'z'; let nl = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 2);
    }

    #[test]
    fn line_comments_are_captured_with_trailing_flag() {
        let lexed = lex_full("let a = 1; // xlint: allow(x, y)\n// own line\n/// doc\nlet b;\n");
        let texts: Vec<_> = lexed
            .comments
            .iter()
            .map(|c| (c.text.as_str(), c.line, c.trailing))
            .collect();
        assert_eq!(
            texts,
            vec![
                ("xlint: allow(x, y)", 1, true),
                ("own line", 2, false),
                ("doc", 3, false),
            ]
        );
        // A string containing the marker is NOT a comment.
        let lexed = lex_full("let s = \"// xlint: allow(a, b)\";");
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn numeric_method_calls_split_correctly() {
        let toks = lex("let v = 0.5.max(1e-9); a[0]");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert!(nums.contains(&"0.5"));
        assert!(nums.contains(&"0"));
        assert!(toks.iter().any(|t| t.is_ident("max")));
    }
}

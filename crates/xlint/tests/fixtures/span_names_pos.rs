// Positive fixture for `span-name-registry`: inline string names passed
// to span!/metric helpers in an instrumented crate (4 findings).

pub fn traced(value: f64) {
    let _span = xmodel_obs::span!("inline.span.name");
    xmodel_obs::metrics::counter_add("inline.counter", 1);
    xmodel_obs::metrics::gauge_set("inline.gauge", value);
    xmodel_obs::metrics::histogram_observe("inline.histogram", &[1.0, 2.0], value);
}

// Positive fixture for `span-name-registry`: inline string names passed
// to span!/metric helpers in an instrumented crate (3 findings).

pub fn traced(value: f64) {
    let _span = xmodel_obs::span!("inline.span.name");
    xmodel_obs::metrics::counter_add("inline.counter", 1);
    xmodel_obs::metrics::gauge_set("inline.gauge", value);
}

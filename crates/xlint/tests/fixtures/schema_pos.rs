// Positive fixture for `schema-version-once`: the schema tag is written
// out twice, so the second literal can silently drift (1 finding).

pub const SCHEMA: &str = "xmodel-demo/1";

pub fn emit() -> String {
    format!("{{\"schema\":\"{}\"}}", "xmodel-demo/1")
}

// Negative fixture for `span-name-registry`: every observability name
// comes from the `xmodel_obs::names` registry (0 findings), including
// the simulator probe layer and residual comparison names.

pub fn traced(n: u64, value: f64) {
    let _span = xmodel_obs::span!(xmodel_obs::names::span::SOLVER_SOLVE);
    xmodel_obs::metrics::counter_add(xmodel_obs::names::metric::SOLVER_SOLVES, n);

    let _chip = xmodel_obs::span!(xmodel_obs::names::span::SIM_CHIP);
    let _cmp = xmodel_obs::span!(xmodel_obs::names::span::RESIDUAL_COMPARE);
    xmodel_obs::metrics::counter_add(xmodel_obs::names::metric::SIM_PROBE_FRAMES, n);
    xmodel_obs::metrics::histogram_observe(
        xmodel_obs::names::metric::SIM_DRAM_INFLIGHT,
        &xmodel_obs::simtrace::QUEUE_DEPTH_EDGES,
        value,
    );
    xmodel_obs::metrics::counter_add(xmodel_obs::names::metric::RESIDUAL_EXCEEDANCES, n);
}

// Negative fixture for `span-name-registry`: every observability name
// comes from the `xmodel_obs::names` registry (0 findings).

pub fn traced(n: u64) {
    let _span = xmodel_obs::span!(xmodel_obs::names::span::SOLVER_SOLVE);
    xmodel_obs::metrics::counter_add(xmodel_obs::names::metric::SOLVER_SOLVES, n);
}

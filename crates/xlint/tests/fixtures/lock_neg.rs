//! Negative fixture: the same lock acquisition as `lock_pos.rs`,
//! sanctioned with a reasoned inline allow.

use std::sync::Mutex;

// xlint: determinism-root
pub fn collect(results: &Mutex<Vec<u64>>) -> usize {
    // xlint: allow(lock-in-result-path, fixture: drop-box lock whose order cannot leak into the output)
    match results.lock() {
        Ok(v) => v.len(),
        Err(_) => 0,
    }
}

//! Fixture for the `allow-missing-reason` lint: an allow with no
//! reason, and an allow naming a lint that does not exist.

pub fn reasonless() -> u64 {
    // xlint: allow(no-panic-in-lib)
    Some(1u64).unwrap()
}

pub fn unknown_lint() -> u64 {
    // xlint: allow(made-up-lint, this lint id does not exist)
    2
}

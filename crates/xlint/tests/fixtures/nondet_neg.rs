//! Negative fixture: the same reachable wall-clock read as
//! `nondet_pos.rs`, sanctioned with a reasoned inline allow.

// xlint: determinism-root
pub fn assemble() -> Vec<u64> {
    helper()
}

fn helper() -> Vec<u64> {
    deep()
}

fn deep() -> Vec<u64> {
    // xlint: allow(nondeterminism-in-result-path, fixture: sanctioned timer that never reaches the output)
    let t0 = std::time::Instant::now();
    let _ = t0;
    vec![42]
}

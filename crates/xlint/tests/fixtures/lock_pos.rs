//! Positive fixture: a Mutex acquisition inside result assembly
//! reachable from a determinism root must be flagged.

use std::sync::Mutex;

// xlint: determinism-root
pub fn collect(results: &Mutex<Vec<u64>>) -> usize {
    match results.lock() {
        Ok(v) => v.len(),
        Err(_) => 0,
    }
}

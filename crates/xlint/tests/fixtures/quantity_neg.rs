// Negative fixture for `quantity-api`: public APIs take quantity types;
// bare f64 stays on private and crate-internal helpers (0 findings).

use xmodel_core::units::{ReqPerCycle, Threads};

pub fn f(k: Threads) -> ReqPerCycle {
    ReqPerCycle(scan(k.get()))
}

fn scan(k: f64) -> f64 {
    k
}

pub(crate) fn internal(k: f64) -> f64 {
    k
}

//! Registry fixture for `metric-docs-sync`: `demo.cells` is registered
//! here but missing from the fixture DESIGN.md inventory.

/// Metric names.
pub mod metric {
    /// Counter documented in the fixture DESIGN.md.
    pub const DEMO_RUNS: &str = "demo.runs";
    /// Counter deliberately missing from the fixture DESIGN.md.
    pub const DEMO_CELLS: &str = "demo.cells";
}

//! Deliberately nondeterministic fixture workspace for the dataflow
//! lints: a wall-clock read two calls deep from the sweep root, and a
//! Mutex acquisition in the result-assembly path. `scripts/ci.sh` and
//! the integration tests assert both are caught with full witness
//! chains.

use std::sync::Mutex;

// xlint: determinism-root
pub fn sweep(items: &[u64]) -> Vec<u64> {
    let out = Mutex::new(Vec::new());
    for &it in items {
        stamp(&out, it);
    }
    match out.into_inner() {
        Ok(v) => v,
        Err(_) => Vec::new(),
    }
}

fn stamp(out: &Mutex<Vec<u64>>, it: u64) {
    let jitter = clock();
    if let Ok(mut v) = out.lock() {
        v.push(it ^ jitter);
    }
}

fn clock() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}

//! Fixture for a well-formed allow: lint id plus a non-empty reason
//! suppresses the finding without touching the baseline.

pub fn sanctioned() -> u64 {
    // xlint: allow(no-panic-in-lib, fixture: value is a compile-time Some)
    Some(1u64).unwrap()
}

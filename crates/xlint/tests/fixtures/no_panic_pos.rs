// Positive fixture for `no-panic-in-lib`: linted as library code, every
// construct below must be flagged (4 findings).

pub fn risky(v: &[f64]) -> f64 {
    let first = v[0];
    let parsed: f64 = "1.0".parse().unwrap();
    let tail = v.last().copied().expect("nonempty");
    if first < 0.0 {
        panic!("negative input");
    }
    first + parsed + tail
}

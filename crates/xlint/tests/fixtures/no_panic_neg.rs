// Negative fixture for `no-panic-in-lib`: fallible handling in library
// code, panicking constructs confined to `#[cfg(test)]` (0 findings).
// Comments and strings mentioning .unwrap() or panic!("x") do not count.

pub fn careful(v: &[f64]) -> Option<f64> {
    let first = v.first()?;
    let msg = "calling .unwrap() here would be flagged";
    Some(*first + msg.len() as f64 * 0.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v = [1.0f64];
        assert_eq!(v.first().copied().unwrap(), v[0]);
        Some(2.0).expect("test code is exempt");
    }
}

// Positive fixture for `quantity-api`: dimension-named public parameters
// typed bare f64 in a model-equation module (2 findings: `k`, `k_max`).

pub fn f(k: f64) -> f64 {
    k
}

pub fn features(k_max: f64, plateau: f64) -> f64 {
    k_max.min(plateau)
}

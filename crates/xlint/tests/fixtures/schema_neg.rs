// Negative fixture for `schema-version-once`: one definition, every
// other use references the constant (0 findings).

pub const SCHEMA: &str = "xmodel-demo/1";

pub fn emit() -> String {
    format!("{{\"schema\":\"{SCHEMA}\"}}")
}

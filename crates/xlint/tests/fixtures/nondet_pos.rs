//! Positive fixture: a wall-clock read two calls deep from a
//! determinism root must be flagged with a full witness chain.

// xlint: determinism-root
pub fn assemble() -> Vec<u64> {
    helper()
}

fn helper() -> Vec<u64> {
    deep()
}

fn deep() -> Vec<u64> {
    let t0 = std::time::Instant::now();
    vec![t0.elapsed().as_nanos() as u64]
}

//! Fixture-driven lint tests plus the live-workspace self-check.
//!
//! Each lint has a positive fixture (must be caught), a negative fixture
//! (must stay silent), and a baseline-suppression check. Fixtures live
//! under `tests/fixtures/` — a path the lints themselves exempt, so the
//! deliberately offending code never pollutes a real workspace run.

use std::path::Path;

use xlint::{analyze_files, Baseline, Finding, SourceFile};

fn run(rel: &str, src: &str) -> Vec<Finding> {
    analyze_files(&[SourceFile {
        rel: rel.to_string(),
        text: src.to_string(),
    }])
}

fn lints_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.lint).collect()
}

#[test]
fn no_panic_positive() {
    let findings = run(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/no_panic_pos.rs"),
    );
    let ids = lints_of(&findings);
    assert_eq!(ids.len(), 4, "{findings:#?}");
    assert!(ids.iter().all(|&l| l == "no-panic-in-lib"));
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("index")));
    assert!(messages.iter().any(|m| m.contains("unwrap")));
    assert!(messages.iter().any(|m| m.contains("expect")));
    assert!(messages.iter().any(|m| m.contains("panic!")));
}

#[test]
fn no_panic_negative() {
    let findings = run(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/no_panic_neg.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn no_panic_baseline_suppression() {
    let findings = run(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/no_panic_pos.rs"),
    );
    assert!(!findings.is_empty());
    let baseline = Baseline::parse(&Baseline::render(&findings));
    let (fresh, suppressed) = baseline.partition(&findings);
    assert!(
        fresh.is_empty(),
        "baselined findings resurfaced: {fresh:#?}"
    );
    assert_eq!(suppressed.len(), findings.len());
}

#[test]
fn span_names_positive() {
    let findings = run(
        "crates/sim/src/demo.rs",
        include_str!("fixtures/span_names_pos.rs"),
    );
    assert_eq!(
        lints_of(&findings),
        ["span-name-registry"; 4],
        "{findings:#?}"
    );
}

#[test]
fn span_names_negative() {
    let findings = run(
        "crates/sim/src/demo.rs",
        include_str!("fixtures/span_names_neg.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn span_names_cover_every_workspace_crate() {
    // The lint fires in any `crates/*` source, not just the originally
    // instrumented core/sim/profile/cli set — new instrumentation in
    // e.g. viz or bench must register its names too.
    let findings = run(
        "crates/viz/src/demo.rs",
        include_str!("fixtures/span_names_pos.rs"),
    );
    assert_eq!(
        lints_of(&findings),
        ["span-name-registry"; 4],
        "{findings:#?}"
    );
    // Non-crate paths (scripts, top-level tests) stay exempt.
    let findings = run("tests/demo.rs", include_str!("fixtures/span_names_pos.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn schema_positive() {
    let findings = run(
        "crates/demo/src/report.rs",
        include_str!("fixtures/schema_pos.rs"),
    );
    assert_eq!(
        lints_of(&findings),
        ["schema-version-once"],
        "{findings:#?}"
    );
    assert!(findings.iter().all(|f| f.message.contains("xmodel-demo/1")));
}

#[test]
fn schema_negative() {
    let findings = run(
        "crates/demo/src/report.rs",
        include_str!("fixtures/schema_neg.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn schema_duplicates_across_files() {
    let one = SourceFile {
        rel: "crates/a/src/lib.rs".to_string(),
        text: "pub const SCHEMA: &str = \"xmodel-demo/2\";\n".to_string(),
    };
    let two = SourceFile {
        rel: "crates/b/src/lib.rs".to_string(),
        text: "pub const SCHEMA: &str = \"xmodel-demo/2\";\n".to_string(),
    };
    let findings = analyze_files(&[one, two]);
    assert_eq!(
        lints_of(&findings),
        ["schema-version-once"],
        "{findings:#?}"
    );
    // The later path (in sort order) is the duplicate.
    assert_eq!(
        findings.first().map(|f| f.path.as_str()),
        Some("crates/b/src/lib.rs")
    );
}

#[test]
fn quantity_positive() {
    let findings = run(
        "crates/core/src/ms.rs",
        include_str!("fixtures/quantity_pos.rs"),
    );
    assert_eq!(lints_of(&findings), ["quantity-api"; 2], "{findings:#?}");
    let params: Vec<&str> = findings
        .iter()
        .filter_map(|f| f.message.split('`').nth(1))
        .collect();
    assert_eq!(params, ["k: f64", "k_max: f64"]);
}

#[test]
fn quantity_negative() {
    let findings = run(
        "crates/core/src/ms.rs",
        include_str!("fixtures/quantity_neg.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn quantity_lint_scoped_to_equation_modules() {
    // The same bare-f64 signatures outside the Eq. (1)–(6) modules are
    // not quantity-api findings (only the panic-free rule sees the file).
    let findings = run(
        "crates/core/src/report.rs",
        include_str!("fixtures/quantity_pos.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn nondet_two_deep_is_caught_with_witness_chain() {
    let findings = run(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/nondet_pos.rs"),
    );
    let nondet: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.lint == "nondeterminism-in-result-path")
        .collect();
    assert_eq!(nondet.len(), 1, "{findings:#?}");
    let f = nondet.first().expect("one finding");
    assert!(f.message.contains("wall-clock"), "{f:#?}");
    assert_eq!(f.chain, ["demo::assemble", "demo::helper", "demo::deep"]);
}

#[test]
fn nondet_allow_directive_suppresses() {
    let analysis = xlint::analyze_files_full(&[SourceFile {
        rel: "crates/demo/src/lib.rs".to_string(),
        text: include_str!("fixtures/nondet_neg.rs").to_string(),
    }]);
    assert!(analysis.findings.is_empty(), "{:#?}", analysis.findings);
    assert_eq!(
        analysis
            .allowed
            .iter()
            .filter(|f| f.lint == "nondeterminism-in-result-path")
            .count(),
        1,
        "{:#?}",
        analysis.allowed
    );
}

#[test]
fn lock_in_result_path_is_caught() {
    let findings = run(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/lock_pos.rs"),
    );
    let locks: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.lint == "lock-in-result-path")
        .collect();
    assert_eq!(locks.len(), 1, "{findings:#?}");
    assert_eq!(locks.first().expect("one finding").chain, ["demo::collect"]);
}

#[test]
fn lock_allow_directive_suppresses() {
    let analysis = xlint::analyze_files_full(&[SourceFile {
        rel: "crates/demo/src/lib.rs".to_string(),
        text: include_str!("fixtures/lock_neg.rs").to_string(),
    }]);
    assert!(analysis.findings.is_empty(), "{:#?}", analysis.findings);
    assert_eq!(
        analysis
            .allowed
            .iter()
            .filter(|f| f.lint == "lock-in-result-path")
            .count(),
        1
    );
}

#[test]
fn hash_iteration_in_result_path_is_caught() {
    let src = "use std::collections::HashMap;\n\
               // xlint: determinism-root\n\
               pub fn assemble(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                   m.values().copied().collect()\n\
               }\n";
    let findings = run("crates/demo/src/lib.rs", src);
    assert!(
        findings
            .iter()
            .any(|f| f.lint == "nondeterminism-in-result-path"
                && f.message.contains("hash iteration order")),
        "{findings:#?}"
    );
}

#[test]
fn allow_without_reason_or_with_unknown_lint_is_flagged() {
    let findings = run(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/allow_bad.rs"),
    );
    let bad: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.lint == "allow-missing-reason")
        .collect();
    assert_eq!(bad.len(), 2, "{findings:#?}");
    assert!(bad.iter().any(|f| f.message.contains("reason")));
    assert!(bad.iter().any(|f| f.message.contains("made-up-lint")));
    // The reasonless allow does NOT suppress its target finding.
    assert!(
        findings.iter().any(|f| f.lint == "no-panic-in-lib"),
        "{findings:#?}"
    );
}

#[test]
fn allow_with_reason_suppresses_any_lint() {
    let analysis = xlint::analyze_files_full(&[SourceFile {
        rel: "crates/demo/src/lib.rs".to_string(),
        text: include_str!("fixtures/allow_good.rs").to_string(),
    }]);
    assert!(analysis.findings.is_empty(), "{:#?}", analysis.findings);
    assert_eq!(
        analysis
            .allowed
            .iter()
            .filter(|f| f.lint == "no-panic-in-lib")
            .count(),
        1
    );
}

/// End-to-end walk of the deliberately broken fixture workspace: both
/// dataflow lints fire with full witness chains, and the fixture
/// DESIGN.md inventory mismatches both ways.
#[test]
fn badws_fixture_tree_reports_all_dataflow_lints() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/badws");
    let analysis = xlint::analyze(&root).expect("fixture walk succeeds");
    let lint_ids: Vec<&str> = analysis.findings.iter().map(|f| f.lint).collect();
    assert!(
        lint_ids.contains(&"nondeterminism-in-result-path"),
        "{:#?}",
        analysis.findings
    );
    assert!(lint_ids.contains(&"lock-in-result-path"));
    assert_eq!(
        lint_ids
            .iter()
            .filter(|&&l| l == "metric-docs-sync")
            .count(),
        2,
        "one undocumented + one unregistered: {:#?}",
        analysis.findings
    );
    let nondet = analysis
        .findings
        .iter()
        .find(|f| f.lint == "nondeterminism-in-result-path")
        .expect("nondet finding");
    assert_eq!(nondet.chain, ["demo::sweep", "demo::stamp", "demo::clock"]);
    let lock = analysis
        .findings
        .iter()
        .find(|f| f.lint == "lock-in-result-path")
        .expect("lock finding");
    assert_eq!(lock.chain, ["demo::sweep", "demo::stamp"]);
}

/// The tentpole acceptance check: the workspace as committed must report
/// zero non-baselined findings. This is the same invariant `scripts/ci.sh`
/// enforces, kept here so plain `cargo test` catches regressions too.
#[test]
fn live_workspace_is_clean_against_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = xlint::analyze(&root).expect("workspace walk succeeds");
    assert!(
        !analysis.findings.is_empty(),
        "the walk found no findings at all — wrong root?"
    );
    let baseline_text = std::fs::read_to_string(root.join("xlint.baseline"))
        .expect("committed xlint.baseline exists at the workspace root");
    let baseline = Baseline::parse(&baseline_text);
    let (fresh, suppressed, stale) = baseline.partition_full(&analysis.findings);
    assert!(
        !suppressed.is_empty(),
        "baseline matched nothing — stale format?"
    );
    assert!(
        fresh.is_empty(),
        "new lint findings not in xlint.baseline:\n{}",
        fresh
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.path, f.line, f.lint, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        stale.is_empty(),
        "stale xlint.baseline entries (code fixed, baseline not pruned):\n{}",
        stale.join("\n")
    );
}

/// The determinism dataflow lints must report nothing un-sanctioned on
/// the live workspace: every wall-clock / lock / RNG site reachable from
/// a determinism root carries an inline `xlint: allow` with a reason.
#[test]
fn live_workspace_has_no_unsanctioned_nondeterminism() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = xlint::analyze(&root).expect("workspace walk succeeds");
    let dataflow: Vec<&Finding> = analysis
        .findings
        .iter()
        .filter(|f| f.lint == "nondeterminism-in-result-path" || f.lint == "lock-in-result-path")
        .collect();
    assert!(
        dataflow.is_empty(),
        "unsanctioned nondeterminism/locks in the result path:\n{}",
        dataflow
            .iter()
            .map(|f| format!(
                "  {}:{} [{}] {}\n    via {}",
                f.path,
                f.line,
                f.lint,
                f.message,
                f.chain.join(" → ")
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The roots themselves must have been discovered, or the lint is
    // vacuously green.
    assert!(
        analysis
            .allowed
            .iter()
            .any(|f| f.lint == "nondeterminism-in-result-path"),
        "no inline-allowed nondeterminism findings — roots not wired up?"
    );
}

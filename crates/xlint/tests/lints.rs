//! Fixture-driven lint tests plus the live-workspace self-check.
//!
//! Each lint has a positive fixture (must be caught), a negative fixture
//! (must stay silent), and a baseline-suppression check. Fixtures live
//! under `tests/fixtures/` — a path the lints themselves exempt, so the
//! deliberately offending code never pollutes a real workspace run.

use std::path::Path;

use xlint::{analyze_files, Baseline, Finding, SourceFile};

fn run(rel: &str, src: &str) -> Vec<Finding> {
    analyze_files(&[SourceFile {
        rel: rel.to_string(),
        text: src.to_string(),
    }])
}

fn lints_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.lint).collect()
}

#[test]
fn no_panic_positive() {
    let findings = run(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/no_panic_pos.rs"),
    );
    let ids = lints_of(&findings);
    assert_eq!(ids.len(), 4, "{findings:#?}");
    assert!(ids.iter().all(|&l| l == "no-panic-in-lib"));
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("index")));
    assert!(messages.iter().any(|m| m.contains("unwrap")));
    assert!(messages.iter().any(|m| m.contains("expect")));
    assert!(messages.iter().any(|m| m.contains("panic!")));
}

#[test]
fn no_panic_negative() {
    let findings = run(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/no_panic_neg.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn no_panic_baseline_suppression() {
    let findings = run(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/no_panic_pos.rs"),
    );
    assert!(!findings.is_empty());
    let baseline = Baseline::parse(&Baseline::render(&findings));
    let (fresh, suppressed) = baseline.partition(&findings);
    assert!(
        fresh.is_empty(),
        "baselined findings resurfaced: {fresh:#?}"
    );
    assert_eq!(suppressed.len(), findings.len());
}

#[test]
fn span_names_positive() {
    let findings = run(
        "crates/sim/src/demo.rs",
        include_str!("fixtures/span_names_pos.rs"),
    );
    assert_eq!(
        lints_of(&findings),
        ["span-name-registry"; 4],
        "{findings:#?}"
    );
}

#[test]
fn span_names_negative() {
    let findings = run(
        "crates/sim/src/demo.rs",
        include_str!("fixtures/span_names_neg.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn span_names_cover_every_workspace_crate() {
    // The lint fires in any `crates/*` source, not just the originally
    // instrumented core/sim/profile/cli set — new instrumentation in
    // e.g. viz or bench must register its names too.
    let findings = run(
        "crates/viz/src/demo.rs",
        include_str!("fixtures/span_names_pos.rs"),
    );
    assert_eq!(
        lints_of(&findings),
        ["span-name-registry"; 4],
        "{findings:#?}"
    );
    // Non-crate paths (scripts, top-level tests) stay exempt.
    let findings = run("tests/demo.rs", include_str!("fixtures/span_names_pos.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn schema_positive() {
    let findings = run(
        "crates/demo/src/report.rs",
        include_str!("fixtures/schema_pos.rs"),
    );
    assert_eq!(
        lints_of(&findings),
        ["schema-version-once"],
        "{findings:#?}"
    );
    assert!(findings.iter().all(|f| f.message.contains("xmodel-demo/1")));
}

#[test]
fn schema_negative() {
    let findings = run(
        "crates/demo/src/report.rs",
        include_str!("fixtures/schema_neg.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn schema_duplicates_across_files() {
    let one = SourceFile {
        rel: "crates/a/src/lib.rs".to_string(),
        text: "pub const SCHEMA: &str = \"xmodel-demo/2\";\n".to_string(),
    };
    let two = SourceFile {
        rel: "crates/b/src/lib.rs".to_string(),
        text: "pub const SCHEMA: &str = \"xmodel-demo/2\";\n".to_string(),
    };
    let findings = analyze_files(&[one, two]);
    assert_eq!(
        lints_of(&findings),
        ["schema-version-once"],
        "{findings:#?}"
    );
    // The later path (in sort order) is the duplicate.
    assert_eq!(
        findings.first().map(|f| f.path.as_str()),
        Some("crates/b/src/lib.rs")
    );
}

#[test]
fn quantity_positive() {
    let findings = run(
        "crates/core/src/ms.rs",
        include_str!("fixtures/quantity_pos.rs"),
    );
    assert_eq!(lints_of(&findings), ["quantity-api"; 2], "{findings:#?}");
    let params: Vec<&str> = findings
        .iter()
        .filter_map(|f| f.message.split('`').nth(1))
        .collect();
    assert_eq!(params, ["k: f64", "k_max: f64"]);
}

#[test]
fn quantity_negative() {
    let findings = run(
        "crates/core/src/ms.rs",
        include_str!("fixtures/quantity_neg.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn quantity_lint_scoped_to_equation_modules() {
    // The same bare-f64 signatures outside the Eq. (1)–(6) modules are
    // not quantity-api findings (only the panic-free rule sees the file).
    let findings = run(
        "crates/core/src/report.rs",
        include_str!("fixtures/quantity_pos.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

/// The tentpole acceptance check: the workspace as committed must report
/// zero non-baselined findings. This is the same invariant `scripts/ci.sh`
/// enforces, kept here so plain `cargo test` catches regressions too.
#[test]
fn live_workspace_is_clean_against_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = xlint::analyze(&root).expect("workspace walk succeeds");
    assert!(
        !findings.is_empty(),
        "the walk found no findings at all — wrong root?"
    );
    let baseline_text = std::fs::read_to_string(root.join("xlint.baseline"))
        .expect("committed xlint.baseline exists at the workspace root");
    let baseline = Baseline::parse(&baseline_text);
    let (fresh, suppressed) = baseline.partition(&findings);
    assert!(
        !suppressed.is_empty(),
        "baseline matched nothing — stale format?"
    );
    assert!(
        fresh.is_empty(),
        "new lint findings not in xlint.baseline:\n{}",
        fresh
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.path, f.line, f.lint, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! GPU preset → simulator configuration.

use xmodel_core::presets::{GpuSpec, Precision};
use xmodel_sim::SimConfig;

/// Build a per-SM simulator configuration for a GPU at a precision.
///
/// * DRAM bandwidth: the SM's share of the *sustained* chip bandwidth
///   (Table II δ column), expressed in bytes/cycle of 128-byte sim lines —
///   for double precision each model request is two lines, so the line
///   rate is the same but the caller interprets bytes at 256 B/request.
/// * DRAM latency: the preset's derived `L` minus the L1 hit latency the
///   request path adds (floor 100 cycles).
/// * Lanes/issue/LSU widths follow Table II (`SP/32`, dispatch units,
///   `LDS/16` half-warp ports).
///
/// The L1 is *not* configured here — callers enable it per experiment
/// (Kepler global loads skip L1 by default; the Fermi case study turns it
/// on at 16 or 48 KiB).
pub fn sim_config_for(spec: &GpuSpec, precision: Precision) -> SimConfig {
    let params = spec.machine_params(precision);
    // Requests/cycle × 128-byte sim lines.
    let line_bytes_per_cycle = params.r * 128.0;
    let dram_latency = (params.l - 60.0).max(100.0) as u64;
    SimConfig::builder()
        .lanes(params.m)
        .issue_width(spec.dispatch as u32)
        .lsu((spec.lds_per_sm as u32 / 16).max(1))
        .dram(dram_latency, line_bytes_per_cycle)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kepler_sp_config() {
        let spec = GpuSpec::kepler_k40();
        let cfg = sim_config_for(&spec, Precision::Single);
        assert_eq!(cfg.lanes, 6.0);
        assert_eq!(cfg.issue_width, 8);
        assert_eq!(cfg.lsu_per_cycle, 2);
        // R ≈ 0.107 req/cyc → ≈ 13.7 line-bytes/cycle.
        assert!((cfg.dram.bytes_per_cycle - 13.7).abs() < 0.2);
        assert!(cfg.l1.is_none());
    }

    #[test]
    fn fermi_has_narrow_lsu() {
        let cfg = sim_config_for(&GpuSpec::fermi_gtx570(), Precision::Single);
        assert_eq!(cfg.lsu_per_cycle, 1);
        assert_eq!(cfg.lanes, 1.0);
    }

    #[test]
    fn dp_keeps_line_rate_but_fewer_lanes() {
        let spec = GpuSpec::kepler_k40();
        let sp = sim_config_for(&spec, Precision::Single);
        let dp = sim_config_for(&spec, Precision::Double);
        assert!(dp.lanes < sp.lanes);
        // Sustained DP bandwidth (200 GB/s) exceeds SP's (180): line rate
        // at 256 B per request is lower than SP's at 128 B.
        assert!(dp.dram.bytes_per_cycle < sp.dram.bytes_per_cycle);
    }

    #[test]
    fn latency_floor_applies() {
        for spec in GpuSpec::all() {
            for p in [Precision::Single, Precision::Double] {
                let cfg = sim_config_for(&spec, p);
                assert!(cfg.dram.latency >= 100);
            }
        }
    }
}

//! Assemble a complete X-model for one workload on one architecture.
//!
//! This is the §IV pipeline end-to-end: machine parameters from the
//! Table II presets (equivalently, from stream/peak profiling), workload
//! parameters `E`/`Z` from static analysis of the kernel IR, `n` from the
//! occupancy calculation, and — when an L1 is modelled — locality `(α, β)`
//! fitted from the workload's trace.

use xmodel_core::cache::CacheParams;
use xmodel_core::params::WorkloadParams;
use xmodel_core::presets::{GpuGeneration, GpuSpec, Precision};
use xmodel_core::XModel;
use xmodel_isa::{ArchLimits, Occupancy};
use xmodel_workloads::locality::fit_trace_capacities;
use xmodel_workloads::Workload;

/// Architecture residency limits for a GPU spec (for the occupancy step).
pub fn arch_limits(spec: &GpuSpec, l1_bytes: u64) -> ArchLimits {
    match spec.generation {
        GpuGeneration::Fermi => {
            // Fermi splits a 64 KiB array between L1 and shared memory.
            ArchLimits::fermi(64 * 1024 - l1_bytes as u32)
        }
        GpuGeneration::Kepler => ArchLimits::kepler(),
        GpuGeneration::Maxwell => ArchLimits::maxwell(),
    }
}

/// Precision a workload needs (from its FP64 usage).
pub fn workload_precision(w: &Workload) -> Precision {
    if w.kernel.analyze().uses_fp64 {
        Precision::Double
    } else {
        Precision::Single
    }
}

/// Build the X-model for `workload` on `spec`.
///
/// `l1_bytes = 0` produces the basic (cache-less) model — also the right
/// choice for Kepler where global loads skip L1.
pub fn assemble_model(spec: &GpuSpec, workload: &Workload, l1_bytes: u64) -> XModel {
    let _span = xmodel_obs::span!(xmodel_obs::names::span::PROFILE_ASSEMBLE);
    let precision = workload_precision(workload);
    let mut machine = spec.machine_params(precision);
    // Uncoalesced access splits each request into `coalesce` transactions:
    // the effective sustainable request rate shrinks accordingly, while the
    // unloaded latency stays the DRAM round trip.
    machine.r /= workload.coalesce;

    let analysis = workload.kernel.analyze();
    let occ = Occupancy::compute(&workload.kernel, &arch_limits(spec, l1_bytes));
    let n = occ.warps.min(spec.max_warps as u32) as f64;
    let wp = WorkloadParams::new(analysis.intensity, analysis.ilp, n);
    xmodel_obs::event!(
        "profile.model",
        workload = workload.name,
        gpu = spec.name,
        n = n,
        z = analysis.intensity,
        e = analysis.ilp,
        l1_bytes = l1_bytes,
    );

    if l1_bytes == 0 {
        XModel::new(machine, wp)
    } else {
        // Locality is a workload signature: fit one (alpha, beta) pair
        // across reference capacities, then apply it to this cache size.
        let fit = fit_trace_capacities(&workload.trace, &[8 * 1024, 16 * 1024, 48 * 1024]);
        xmodel_obs::event!(
            "profile.locality_fit",
            workload = workload.name,
            alpha = fit.alpha,
            beta = fit.beta,
        );
        match CacheParams::try_new(
            l1_bytes as f64,
            (machine.l * 0.05).min(30.0), // L1 pipeline is ~30 cycles
            fit.alpha.max(1.01 + 1e-6),
            fit.beta,
        ) {
            Ok(cache) => XModel::with_cache(machine, wp, cache),
            // A degenerate locality fit (e.g. β ≤ 0 from a pathological
            // trace) degrades to the cache-less model instead of
            // panicking mid-pipeline.
            Err(e) => {
                xmodel_obs::event!(
                    "profile.cache_fit_invalid",
                    workload = workload.name,
                    error = e.to_string(),
                );
                XModel::new(machine, wp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmodel_workloads::WorkloadId;

    #[test]
    fn cacheless_model_for_kepler() {
        let spec = GpuSpec::kepler_k40();
        let w = Workload::get(WorkloadId::Nn);
        let m = assemble_model(&spec, &w, 0);
        assert!(m.cache.is_none());
        assert_eq!(m.workload.n, 64.0);
        assert!(m.workload.e >= 1.0 && m.workload.z > 2.0);
        // SP workload on Kepler: M = 6.
        assert_eq!(m.machine.m, 6.0);
    }

    #[test]
    fn dp_workload_selects_dp_machine() {
        let spec = GpuSpec::kepler_k40();
        let w = Workload::get(WorkloadId::Hpccg);
        let m = assemble_model(&spec, &w, 0);
        // DP lanes on K40 = 2.
        assert_eq!(m.machine.m, 2.0);
    }

    #[test]
    fn cached_model_for_fermi_gesummv() {
        let spec = GpuSpec::fermi_gtx570();
        let w = Workload::get(WorkloadId::Gesummv);
        let m = assemble_model(&spec, &w, 16 * 1024);
        let c = m.cache.expect("cache expected");
        assert_eq!(c.s_cache, 16.0 * 1024.0);
        assert!(c.alpha > 1.0 && c.beta > 0.0);
        // gesummv launches 48 warps on Fermi (§VI).
        assert_eq!(m.workload.n, 48.0);
    }

    #[test]
    fn occupancy_respects_smem_limits() {
        let spec = GpuSpec::kepler_k40();
        let w = Workload::get(WorkloadId::Nw);
        let m = assemble_model(&spec, &w, 0);
        assert!(
            m.workload.n < 64.0,
            "nw is smem-limited, n = {}",
            m.workload.n
        );
    }

    #[test]
    fn every_workload_assembles_on_every_gpu() {
        for spec in GpuSpec::all() {
            for w in Workload::suite() {
                let m = assemble_model(&spec, &w, 0);
                assert!(m.workload.n >= 1.0, "{} on {}", w.name, spec.name);
                let eq = m.solve();
                assert!(
                    eq.operating_point().is_some(),
                    "{} on {} has no operating point",
                    w.name,
                    spec.name
                );
            }
        }
    }
}

//! Stream-benchmark profiling of the MS curve (`R`, `L`, `δ`).

use serde::{Deserialize, Serialize};
use xmodel_core::params::MachineParams;
use xmodel_sim::{simulate, SimConfig, SimWorkload};
use xmodel_workloads::microbench::{stream_kernel, stream_trace};

/// Result of a stream sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamProfile {
    /// `(warps, requests/cycle)` trace of the sweep.
    pub curve: Vec<(u32, f64)>,
    /// Extracted sustained throughput `R` (requests/cycle).
    pub r: f64,
    /// Extracted effective latency `L` (cycles), from the initial slope.
    pub l: f64,
    /// Extracted MS transition point `δ` (warps): first warp count
    /// reaching 95% of `R`.
    pub delta: f64,
}

/// Sweep the stream kernel over `1..=max_warps` on a simulator
/// configuration and extract `(R, L, δ)` — the §IV profiling step.
pub fn profile_stream(cfg: &SimConfig, max_warps: u32, step: u32) -> StreamProfile {
    assert!(max_warps >= 2 && step >= 1);
    let analysis = stream_kernel(false).analyze();
    let mut curve = Vec::new();
    let mut warps = 1;
    while warps <= max_warps {
        let wl = SimWorkload {
            trace: stream_trace(),
            ops_per_request: analysis.intensity,
            ilp: analysis.ilp,
            warps,
        };
        let stats = simulate(cfg, &wl, 8_000, 30_000);
        curve.push((warps, stats.ms_throughput()));
        warps += step;
    }

    let r = curve.iter().map(|&(_, t)| t).fold(0.0, f64::max);
    // Slope from the first sample: one warp's round-trip throughput is
    // 1/(L + Z/E) ≈ 1/L for a memory-dominated kernel. The loop above
    // always records at least the one-warp sample, so the fallback is
    // unreachable; it keeps the routine panic-free.
    let (w0, t0) = curve.first().copied().unwrap_or((1, 0.0));
    let l = if t0 > 0.0 {
        w0 as f64 / t0
    } else {
        f64::INFINITY
    };
    let delta = curve
        .iter()
        .find(|&&(_, t)| t >= 0.95 * r)
        .map(|&(w, _)| w as f64)
        .unwrap_or(max_warps as f64);
    StreamProfile { curve, r, l, delta }
}

impl StreamProfile {
    /// Assemble machine parameters given an independently profiled lane
    /// count `M` (see [`crate::peak::profile_lanes`]).
    pub fn machine_params(&self, m: f64) -> MachineParams {
        MachineParams::new(m, self.r, self.l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::sim_config_for;
    use xmodel_core::presets::{GpuSpec, Precision};

    #[test]
    fn stream_profile_recovers_kepler_table2_row() {
        let spec = GpuSpec::kepler_k40();
        let cfg = sim_config_for(&spec, Precision::Single);
        let p = profile_stream(&cfg, 64, 4);
        let expect = spec.machine_params(Precision::Single);
        // R within 10% of the sustained Table II value.
        assert!(
            (p.r - expect.r).abs() < 0.1 * expect.r,
            "R = {} vs table {}",
            p.r,
            expect.r
        );
        // Saturation point in the right neighbourhood (Table II: 64 warps
        // saturate; accept the 45..=64 band since the sweep is discrete).
        assert!((45.0..=64.0).contains(&p.delta), "delta = {}", p.delta);
        // Monotone non-decreasing up to saturation (roofline shape).
        for w in p.curve.windows(2) {
            if (w[1].0 as f64) < p.delta {
                assert!(w[1].1 >= w[0].1 * 0.97, "dip at {:?}", w[1]);
            }
        }
    }

    #[test]
    fn latency_estimate_is_plausible() {
        let cfg = sim_config_for(&GpuSpec::kepler_k40(), Precision::Single);
        let p = profile_stream(&cfg, 16, 4);
        // Configured DRAM latency is ~538; the measured per-request
        // latency adds transfer and queueing.
        assert!((400.0..900.0).contains(&p.l), "L = {}", p.l);
    }
}

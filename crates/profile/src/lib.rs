//! # xmodel-profile — profiling harness on the simulator
//!
//! §IV of the paper builds *architectural* X-graphs by profiling each GPU
//! once: a Stream-style benchmark recovers the MS curve (`R`, `L`, δ), a
//! Volkov-style microbenchmark recovers the lane count `M`, and the
//! cache-bypassing technique of [13] recovers trace-points of `f(k)` for a
//! concrete application. This crate reproduces that methodology against
//! the `xmodel-sim` substrate:
//!
//! * [`arch`] — turn a [`xmodel_core::presets::GpuSpec`] into a simulator
//!   configuration (per-SM DRAM share, lane count, issue widths);
//! * [`stream`] — sweep warp counts with the stream kernel to profile
//!   `f(k)` and extract `R`, `L`, `δ`;
//! * [`peak`] — saturate CS with register-only FMA kernels to profile `M`;
//! * [`bypass`] — vary the number of cache-eligible warps to trace
//!   `f(k)` points for a cached workload (the Fig. 12 yellow dots);
//! * [`fitting`] — assemble a complete [`xmodel_core::XModel`] for one
//!   workload on one architecture from profiled + statically-analysed
//!   parameters;
//! * [`validate`] — the §V experiment: model prediction vs simulator
//!   measurement for every workload, with the paper's accuracy metric.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arch;
pub mod bypass;
pub mod calibrate;
pub mod fitting;
pub mod peak;
pub mod stream;
pub mod validate;

pub use arch::sim_config_for;
pub use fitting::assemble_model;
pub use validate::{validate_suite, AppValidation, ValidationReport};

/// Glob import of the common types.
pub mod prelude {
    pub use crate::arch::sim_config_for;
    pub use crate::bypass::bypass_trace_points;
    pub use crate::calibrate::{calibrate_private_ws, Calibration};
    pub use crate::fitting::assemble_model;
    pub use crate::peak::profile_lanes;
    pub use crate::stream::{profile_stream, StreamProfile};
    pub use crate::validate::{validate_suite, AppValidation, ValidationReport};
}

//! Trace calibration: fit a synthetic generator to a recorded trace.
//!
//! The `concrete_traces` ablation shows where the statistical generators
//! diverge from the real algorithms. This module closes that loop: grid
//! search the [`TraceSpec::PrivateWorkingSet`] knobs so the synthetic
//! hit-rate-vs-sharers curve matches the recorded one, measured on the
//! same shared-LRU reference cache.

use serde::{Deserialize, Serialize};
use xmodel_workloads::concrete::RecordedTraces;
use xmodel_workloads::locality::measure_hit_rate_streams;
use xmodel_workloads::TraceSpec;

/// Warp counts sampled when comparing hit curves.
const KS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Result of a calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// The best-fitting synthetic spec.
    pub spec: TraceSpec,
    /// RMS distance between the hit curves after calibration.
    pub rms: f64,
    /// The recorded trace's hit curve `(k, h)`.
    pub target_curve: Vec<(f64, f64)>,
}

/// Hit curve of a recorded trace across sharer counts.
pub fn recorded_hit_curve(
    traces: &RecordedTraces,
    cache_bytes: u64,
    accesses: usize,
) -> Vec<(f64, f64)> {
    KS.iter()
        .map(|&k| {
            let streams = traces.streams(k);
            (
                k as f64,
                measure_hit_rate_streams(streams, cache_bytes, accesses),
            )
        })
        .collect()
}

/// Hit curve of a synthetic spec across sharer counts.
pub fn synthetic_hit_curve(spec: &TraceSpec, cache_bytes: u64, accesses: usize) -> Vec<(f64, f64)> {
    KS.iter()
        .map(|&k| {
            let streams = (0..k).map(|w| spec.instantiate(w, 7)).collect();
            (
                k as f64,
                measure_hit_rate_streams(streams, cache_bytes, accesses),
            )
        })
        .collect()
}

/// RMS distance between two curves sampled at the same points.
pub fn curve_rms(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    assert_eq!(a.len(), b.len());
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(&(_, ha), &(_, hb))| (ha - hb) * (ha - hb))
        .sum();
    (sum / a.len() as f64).sqrt()
}

/// Fit a [`TraceSpec::PrivateWorkingSet`] to a recorded trace by grid
/// search over working-set size, stream probability and reuse skew.
pub fn calibrate_private_ws(
    traces: &RecordedTraces,
    cache_bytes: u64,
    accesses: usize,
) -> Calibration {
    let _span = xmodel_obs::span!(xmodel_obs::names::span::PROFILE_CALIBRATE);
    let target = recorded_hit_curve(traces, cache_bytes, accesses);
    let mut best: Option<(TraceSpec, f64)> = None;
    for &ws in &[4u64, 8, 16, 24, 32, 48, 64, 96, 128] {
        for &stream in &[0.0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7] {
            for &skew in &[0.0, 0.8, 1.5, 2.5] {
                let spec = TraceSpec::PrivateWorkingSet {
                    ws_lines: ws,
                    stream_prob: stream,
                    reuse_skew: skew,
                };
                let curve = synthetic_hit_curve(&spec, cache_bytes, accesses / 2);
                let rms = curve_rms(&target, &curve);
                let improved = best.as_ref().map(|&(_, b)| rms < b).unwrap_or(true);
                xmodel_obs::event!(
                    "calibrate.eval",
                    ws_lines = ws,
                    stream_prob = stream,
                    reuse_skew = skew,
                    rms = rms,
                    improved = improved,
                );
                if improved {
                    best = Some((spec, rms));
                }
            }
        }
    }
    // The grid is statically non-empty, so `best` is always set; degrade
    // to the first grid point rather than panic inside a library call.
    let (spec, rms) = best.unwrap_or_else(|| {
        xmodel_obs::event!("calibrate.empty_grid");
        xmodel_obs::metrics::counter_add(xmodel_obs::names::metric::PROFILE_CALIBRATE_SKIPPED, 1);
        (
            TraceSpec::PrivateWorkingSet {
                ws_lines: 4,
                stream_prob: 0.0,
                reuse_skew: 0.0,
            },
            f64::INFINITY,
        )
    });
    Calibration {
        spec,
        rms,
        target_curve: target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmodel_workloads::concrete;

    #[test]
    fn curve_rms_basics() {
        let a = vec![(1.0, 0.5), (2.0, 0.7)];
        let b = vec![(1.0, 0.5), (2.0, 0.7)];
        assert_eq!(curve_rms(&a, &b), 0.0);
        let c = vec![(1.0, 0.4), (2.0, 0.8)];
        assert!((curve_rms(&a, &c) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn calibration_beats_the_default_spmv_spec() {
        let traces = concrete::spmv_csr(4096, 8, 32, 7);
        let cache = 16 * 1024;
        let cal = calibrate_private_ws(&traces, cache, 8_000);
        // The default suite spec for spmv (a weak gather) fits worse than
        // the calibrated private-working-set spec.
        let default_spec =
            xmodel_workloads::Workload::get(xmodel_workloads::WorkloadId::Spmv).trace;
        let default_curve = synthetic_hit_curve(&default_spec, cache, 8_000);
        let default_rms = curve_rms(&cal.target_curve, &default_curve);
        assert!(
            cal.rms < default_rms,
            "calibrated {} vs default {}",
            cal.rms,
            default_rms
        );
        assert!(cal.rms < 0.25, "calibrated rms {}", cal.rms);
    }

    #[test]
    fn stencil_reuse_is_inter_warp() {
        // A genuinely instructive recorded-trace property: a single warp
        // strides rows far apart (no private reuse at transaction
        // granularity), while neighbouring warps share each other's halo
        // rows — so the stencil's hit rate *rises* with sharers, the
        // opposite of the private-working-set assumption behind Eq. (3).
        // A large grid so the single-warp measurement does not wrap its
        // recorded trace (wrapping would manufacture artificial reuse).
        let traces = concrete::stencil5(1024, 256, 32);
        let curve = recorded_hit_curve(&traces, 16 * 1024, 800);
        let h1 = curve.first().unwrap().1;
        let h32 = curve.last().unwrap().1;
        // A lone warp only hits on the halo ping-pong at line boundaries
        // (~1/3 of transactions); neighbours sharing rows push it higher.
        assert!(h1 < 0.45, "single-warp stencil hit rate {h1}");
        assert!(h32 > h1 + 0.1, "sharers must raise reuse: {h1} -> {h32}");
        for &(_, h) in &curve {
            assert!((0.0..=1.0).contains(&h));
        }
    }
}

//! Trace calibration: fit a synthetic generator to a recorded trace.
//!
//! The `concrete_traces` ablation shows where the statistical generators
//! diverge from the real algorithms. This module closes that loop: grid
//! search the [`TraceSpec::PrivateWorkingSet`] knobs so the synthetic
//! hit-rate-vs-sharers curve matches the recorded one, measured on the
//! same shared-LRU reference cache.

use serde::{Deserialize, Serialize};
use std::time::Duration;
use xmodel_core::ModelError;
use xmodel_workloads::concrete::RecordedTraces;
use xmodel_workloads::locality::measure_hit_rate_streams;
use xmodel_workloads::TraceSpec;

/// Warp counts sampled when comparing hit curves.
const KS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Robustness knobs for calibration measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrateOptions {
    /// Attempts per measurement before it is abandoned (≥ 1).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per retry (exponential
    /// backoff, capped at 64× the base). Zero disables sleeping — the
    /// right setting for deterministic in-process measurements.
    pub backoff: Duration,
}

impl Default for CalibrateOptions {
    fn default() -> Self {
        CalibrateOptions {
            attempts: 3,
            backoff: Duration::ZERO,
        }
    }
}

/// Run `measure` up to `opts.attempts` times with exponential backoff,
/// returning the first value it accepts (`Some`). Retries are counted on
/// the `profile.calibrate.retries` metric and traced; `None` means every
/// attempt was rejected.
pub fn retry_with_backoff<T>(
    opts: &CalibrateOptions,
    mut measure: impl FnMut(u32) -> Option<T>,
) -> Option<T> {
    let attempts = opts.attempts.max(1);
    for attempt in 0..attempts {
        if attempt > 0 {
            xmodel_obs::metrics::counter_add(
                xmodel_obs::names::metric::PROFILE_CALIBRATE_RETRIES,
                1,
            );
            xmodel_obs::event!("calibrate.retry", attempt = attempt);
            let factor = 1u32 << attempt.min(6);
            let pause = opts.backoff * factor;
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
        if let Some(v) = measure(attempt) {
            return Some(v);
        }
    }
    None
}

/// A hit rate is plausible iff it is a finite probability.
fn plausible_hit_rate(h: f64) -> bool {
    h.is_finite() && (0.0..=1.0).contains(&h)
}

/// Drop curve points whose hit rate is non-finite or outside `[0, 1]`
/// (outlier rejection for torn measurements). Returns the survivors and
/// how many points were rejected.
pub fn reject_outliers(curve: &[(f64, f64)]) -> (Vec<(f64, f64)>, usize) {
    let kept: Vec<(f64, f64)> = curve
        .iter()
        .copied()
        .filter(|&(_, h)| plausible_hit_rate(h))
        .collect();
    let rejected = curve.len() - kept.len();
    (kept, rejected)
}

/// Result of a calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// The best-fitting synthetic spec.
    pub spec: TraceSpec,
    /// RMS distance between the hit curves after calibration.
    pub rms: f64,
    /// The recorded trace's hit curve `(k, h)`.
    pub target_curve: Vec<(f64, f64)>,
}

/// Hit curve of a recorded trace across sharer counts.
pub fn recorded_hit_curve(
    traces: &RecordedTraces,
    cache_bytes: u64,
    accesses: usize,
) -> Vec<(f64, f64)> {
    KS.iter()
        .map(|&k| {
            let streams = traces.streams(k);
            (
                k as f64,
                measure_hit_rate_streams(streams, cache_bytes, accesses),
            )
        })
        .collect()
}

/// Hit curve of a synthetic spec across sharer counts.
pub fn synthetic_hit_curve(spec: &TraceSpec, cache_bytes: u64, accesses: usize) -> Vec<(f64, f64)> {
    KS.iter()
        .map(|&k| {
            let streams = (0..k).map(|w| spec.instantiate(w, 7)).collect();
            (
                k as f64,
                measure_hit_rate_streams(streams, cache_bytes, accesses),
            )
        })
        .collect()
}

/// RMS distance between two curves sampled at the same points.
pub fn curve_rms(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    assert_eq!(a.len(), b.len());
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(&(_, ha), &(_, hb))| (ha - hb) * (ha - hb))
        .sum();
    (sum / a.len() as f64).sqrt()
}

/// [`recorded_hit_curve`] with bounded retry per measurement: each point
/// is re-measured (with backoff) until it is a finite probability;
/// a point that never yields one is a typed
/// [`ModelError::NoConvergence`] rather than a silent NaN in the curve.
pub fn recorded_hit_curve_checked(
    traces: &RecordedTraces,
    cache_bytes: u64,
    accesses: usize,
    opts: &CalibrateOptions,
) -> xmodel_core::Result<Vec<(f64, f64)>> {
    KS.iter()
        .map(|&k| {
            retry_with_backoff(opts, |_| {
                let h = measure_hit_rate_streams(traces.streams(k), cache_bytes, accesses);
                plausible_hit_rate(h).then_some((k as f64, h))
            })
            .ok_or(ModelError::NoConvergence {
                routine: "calibrate",
            })
        })
        .collect()
}

/// Fallible calibration: like [`calibrate_private_ws`] but with
/// measurement retry, outlier rejection of implausible grid evaluations,
/// and a typed error when nothing usable remains.
pub fn try_calibrate_private_ws(
    traces: &RecordedTraces,
    cache_bytes: u64,
    accesses: usize,
    opts: &CalibrateOptions,
) -> xmodel_core::Result<Calibration> {
    let _span = xmodel_obs::span!(xmodel_obs::names::span::PROFILE_CALIBRATE);
    let target = recorded_hit_curve_checked(traces, cache_bytes, accesses, opts)?;
    let mut best: Option<(TraceSpec, f64)> = None;
    for &ws in &[4u64, 8, 16, 24, 32, 48, 64, 96, 128] {
        for &stream in &[0.0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7] {
            for &skew in &[0.0, 0.8, 1.5, 2.5] {
                let spec = TraceSpec::PrivateWorkingSet {
                    ws_lines: ws,
                    stream_prob: stream,
                    reuse_skew: skew,
                };
                let curve = synthetic_hit_curve(&spec, cache_bytes, accesses / 2);
                // Outlier rejection: a grid point whose synthetic curve
                // lost samples to implausible measurements is compared on
                // the surviving points only; one with no survivors (or a
                // non-finite rms) is skipped and counted.
                let (kept, rejected) = reject_outliers(&curve);
                let target_kept: Vec<(f64, f64)> = target
                    .iter()
                    .copied()
                    .filter(|(k, _)| kept.iter().any(|(kk, _)| kk == k))
                    .collect();
                let rms = if kept.is_empty() {
                    f64::NAN
                } else {
                    curve_rms(&target_kept, &kept)
                };
                if !rms.is_finite() {
                    xmodel_obs::metrics::counter_add(
                        xmodel_obs::names::metric::PROFILE_CALIBRATE_SKIPPED,
                        1,
                    );
                    xmodel_obs::event!(
                        "calibrate.skipped",
                        ws_lines = ws,
                        stream_prob = stream,
                        reuse_skew = skew,
                        rejected = rejected as u64,
                    );
                    continue;
                }
                let improved = best.as_ref().map(|&(_, b)| rms < b).unwrap_or(true);
                xmodel_obs::event!(
                    "calibrate.eval",
                    ws_lines = ws,
                    stream_prob = stream,
                    reuse_skew = skew,
                    rms = rms,
                    improved = improved,
                );
                if improved {
                    best = Some((spec, rms));
                }
            }
        }
    }
    let (spec, rms) = best.ok_or(ModelError::NoConvergence {
        routine: "calibrate",
    })?;
    Ok(Calibration {
        spec,
        rms,
        target_curve: target,
    })
}

/// Fit a [`TraceSpec::PrivateWorkingSet`] to a recorded trace by grid
/// search over working-set size, stream probability and reuse skew.
///
/// Infallible facade over [`try_calibrate_private_ws`] with default
/// retry options: when calibration fails outright it degrades to the
/// first grid point with an infinite rms (recorded on the
/// `profile.calibrate.skipped` metric) rather than panicking.
pub fn calibrate_private_ws(
    traces: &RecordedTraces,
    cache_bytes: u64,
    accesses: usize,
) -> Calibration {
    try_calibrate_private_ws(traces, cache_bytes, accesses, &CalibrateOptions::default())
        .unwrap_or_else(|_| {
            xmodel_obs::event!("calibrate.empty_grid");
            xmodel_obs::metrics::counter_add(
                xmodel_obs::names::metric::PROFILE_CALIBRATE_SKIPPED,
                1,
            );
            Calibration {
                spec: TraceSpec::PrivateWorkingSet {
                    ws_lines: 4,
                    stream_prob: 0.0,
                    reuse_skew: 0.0,
                },
                rms: f64::INFINITY,
                target_curve: recorded_hit_curve(traces, cache_bytes, accesses),
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmodel_workloads::concrete;

    #[test]
    fn retry_is_bounded_and_returns_first_accepted() {
        let opts = CalibrateOptions {
            attempts: 3,
            backoff: Duration::ZERO,
        };
        let mut calls = 0;
        let got = retry_with_backoff(&opts, |attempt| {
            calls += 1;
            (attempt == 2).then_some(attempt)
        });
        assert_eq!(got, Some(2));
        assert_eq!(calls, 3);

        let mut calls = 0;
        let got: Option<u32> = retry_with_backoff(&opts, |_| {
            calls += 1;
            None
        });
        assert_eq!(got, None);
        assert_eq!(calls, 3, "exhausted budget must stop");
    }

    #[test]
    fn outlier_rejection_drops_implausible_points() {
        let curve = vec![
            (1.0, 0.5),
            (2.0, f64::NAN),
            (4.0, 1.5),
            (8.0, -0.1),
            (16.0, 0.9),
            (32.0, f64::INFINITY),
        ];
        let (kept, rejected) = reject_outliers(&curve);
        assert_eq!(kept, vec![(1.0, 0.5), (16.0, 0.9)]);
        assert_eq!(rejected, 4);
    }

    #[test]
    fn try_calibrate_agrees_with_infallible_facade() {
        let traces = concrete::spmv_csr(1024, 8, 8, 7);
        let a = calibrate_private_ws(&traces, 8 * 1024, 2_000);
        let b = try_calibrate_private_ws(&traces, 8 * 1024, 2_000, &CalibrateOptions::default())
            .unwrap();
        assert_eq!(a, b);
        assert!(b.rms.is_finite());
    }

    #[test]
    fn curve_rms_basics() {
        let a = vec![(1.0, 0.5), (2.0, 0.7)];
        let b = vec![(1.0, 0.5), (2.0, 0.7)];
        assert_eq!(curve_rms(&a, &b), 0.0);
        let c = vec![(1.0, 0.4), (2.0, 0.8)];
        assert!((curve_rms(&a, &c) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn calibration_beats_the_default_spmv_spec() {
        let traces = concrete::spmv_csr(4096, 8, 32, 7);
        let cache = 16 * 1024;
        let cal = calibrate_private_ws(&traces, cache, 8_000);
        // The default suite spec for spmv (a weak gather) fits worse than
        // the calibrated private-working-set spec.
        let default_spec =
            xmodel_workloads::Workload::get(xmodel_workloads::WorkloadId::Spmv).trace;
        let default_curve = synthetic_hit_curve(&default_spec, cache, 8_000);
        let default_rms = curve_rms(&cal.target_curve, &default_curve);
        assert!(
            cal.rms < default_rms,
            "calibrated {} vs default {}",
            cal.rms,
            default_rms
        );
        assert!(cal.rms < 0.25, "calibrated rms {}", cal.rms);
    }

    #[test]
    fn stencil_reuse_is_inter_warp() {
        // A genuinely instructive recorded-trace property: a single warp
        // strides rows far apart (no private reuse at transaction
        // granularity), while neighbouring warps share each other's halo
        // rows — so the stencil's hit rate *rises* with sharers, the
        // opposite of the private-working-set assumption behind Eq. (3).
        // A large grid so the single-warp measurement does not wrap its
        // recorded trace (wrapping would manufacture artificial reuse).
        let traces = concrete::stencil5(1024, 256, 32);
        let curve = recorded_hit_curve(&traces, 16 * 1024, 800);
        let h1 = curve.first().unwrap().1;
        let h32 = curve.last().unwrap().1;
        // A lone warp only hits on the halo ping-pong at line boundaries
        // (~1/3 of transactions); neighbours sharing rows push it higher.
        assert!(h1 < 0.45, "single-warp stencil hit rate {h1}");
        assert!(h32 > h1 + 0.1, "sharers must raise reuse: {h1} -> {h32}");
        for &(_, h) in &curve {
            assert!((0.0..=1.0).contains(&h));
        }
    }
}

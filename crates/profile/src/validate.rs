//! The §V validation experiment: model prediction vs simulator
//! measurement for the 12-workload suite.
//!
//! Mirrors Fig. 11: for each application the model predicts the MS and CS
//! throughput at the flow-balance intersection; the simulator measures
//! them; PCT/RCT columns and the paper's accuracy metric
//! (`mean(1 − |PCT − RCT|/RCT)`) summarise the comparison. Following the
//! paper's Kepler setup, global loads do not use L1 (f(k) is "mostly
//! linear"), so the basic model faces the cache-less simulator.

use crate::arch::sim_config_for;
use crate::fitting::{assemble_model, workload_precision};
use serde::{Deserialize, Serialize};
use xmodel_core::presets::GpuSpec;
use xmodel_sim::{simulate, SimWorkload};
use xmodel_workloads::Workload;

/// Validation record for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppValidation {
    /// Application name.
    pub name: String,
    /// Predicted CS throughput (warp-ops/cycle) — the paper's PCT.
    pub predicted_cs: f64,
    /// Measured CS throughput — the paper's RCT.
    pub measured_cs: f64,
    /// Predicted MS throughput (requests/cycle).
    pub predicted_ms: f64,
    /// Measured MS throughput.
    pub measured_ms: f64,
    /// Predicted spatial state `k` (warps in MS).
    pub predicted_k: f64,
    /// Measured mean `k`.
    pub measured_k: f64,
    /// Occupancy `n` used for both.
    pub n: f64,
    /// Degradation provenance when the operating point came from a rung
    /// below the exact solver (`"grid-scan"` / `"baseline-estimate"`);
    /// `None` for an exact solve. See [`xmodel_core::degrade`].
    pub degraded: Option<String>,
}

impl AppValidation {
    /// Per-app accuracy on CS throughput: `1 − |PCT − RCT|/RCT`,
    /// clamped at 0.
    pub fn accuracy(&self) -> f64 {
        if self.measured_cs <= 0.0 {
            return 0.0;
        }
        (1.0 - (self.predicted_cs - self.measured_cs).abs() / self.measured_cs).max(0.0)
    }
}

/// Full suite validation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Per-application records, in suite order.
    pub apps: Vec<AppValidation>,
}

impl ValidationReport {
    /// Mean CS-throughput prediction accuracy (the paper reports 84.1%).
    pub fn mean_accuracy(&self) -> f64 {
        if self.apps.is_empty() {
            return 0.0;
        }
        self.apps.iter().map(AppValidation::accuracy).sum::<f64>() / self.apps.len() as f64
    }

    /// The worst-predicted application.
    pub fn worst(&self) -> Option<&AppValidation> {
        self.apps
            .iter()
            .min_by(|a, b| a.accuracy().total_cmp(&b.accuracy()))
    }
}

/// Validate one workload on a GPU.
///
/// The operating point is resolved through the degradation ladder
/// ([`xmodel_core::degrade`]), so a workload whose curves defeat exact
/// bracketing still validates — with [`AppValidation::degraded`] recording
/// the provenance — instead of aborting the suite.
pub fn validate_one(spec: &GpuSpec, workload: &Workload) -> xmodel_core::Result<AppValidation> {
    let model = assemble_model(spec, workload, 0);
    let resolved = model.resolve_operating_point()?;
    let op = resolved.point;

    let precision = workload_precision(workload);
    let mut cfg = sim_config_for(spec, precision);
    cfg.request_bytes = 128.0 * workload.coalesce;
    let wl = SimWorkload {
        trace: workload.trace,
        ops_per_request: model.workload.z,
        ilp: model.workload.e,
        warps: model.workload.n as u32,
    };
    let stats = simulate(&cfg, &wl, 15_000, 60_000);

    Ok(AppValidation {
        name: workload.name.to_string(),
        predicted_cs: op.cs_throughput,
        measured_cs: stats.cs_throughput(),
        predicted_ms: op.ms_throughput,
        measured_ms: stats.ms_throughput(),
        predicted_k: op.k,
        measured_k: stats.avg_k(),
        n: model.workload.n,
        degraded: resolved
            .degradation
            .is_degraded()
            .then(|| resolved.degradation.as_str().to_string()),
    })
}

/// Run the full §V validation suite on a GPU (the paper uses the K40).
/// Applications are validated on worker threads (one simulator instance
/// each) via a crossbeam scope, preserving suite order in the report.
pub fn validate_suite(spec: &GpuSpec) -> xmodel_core::Result<ValidationReport> {
    let suite = Workload::suite();
    let mut slots: Vec<Option<xmodel_core::Result<AppValidation>>> = vec![None; suite.len()];
    let scoped = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in &suite {
            let spec = &*spec;
            handles.push(scope.spawn(move |_| validate_one(spec, w)));
        }
        for (slot, h) in slots.iter_mut().zip(handles) {
            // A panicked worker is reported as a typed error rather than
            // re-panicking the whole suite.
            *slot = Some(
                h.join()
                    .unwrap_or(Err(xmodel_core::ModelError::NoConvergence {
                        routine: "validate",
                    })),
            );
        }
    });
    if scoped.is_err() {
        return Err(xmodel_core::ModelError::NoConvergence {
            routine: "validate",
        });
    }
    let mut apps = Vec::with_capacity(slots.len());
    for slot in slots {
        apps.push(slot.unwrap_or(Err(xmodel_core::ModelError::NoConvergence {
            routine: "validate",
        }))?);
    }
    Ok(ValidationReport { apps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmodel_workloads::WorkloadId;

    #[test]
    fn single_app_prediction_is_in_the_ballpark() {
        let spec = GpuSpec::kepler_k40();
        let v = validate_one(&spec, &Workload::get(WorkloadId::Nn)).unwrap();
        assert!(v.measured_cs > 0.0 && v.predicted_cs > 0.0);
        assert!(v.accuracy() > 0.6, "accuracy = {} ({v:?})", v.accuracy());
        assert_eq!(v.degraded, None, "healthy workload must solve exactly");
    }

    #[test]
    fn suite_accuracy_matches_paper_band() {
        // The paper reports 84.1% mean accuracy with three extracted
        // parameters. Our simulator has extra second-order effects the
        // model ignores, so accept ≥ 70% while recording the real value in
        // EXPERIMENTS.md.
        let spec = GpuSpec::kepler_k40();
        let rep = validate_suite(&spec).unwrap();
        assert_eq!(rep.apps.len(), 12);
        let acc = rep.mean_accuracy();
        assert!(
            acc > 0.70,
            "mean accuracy = {acc:.3}; worst = {:?}",
            rep.worst()
        );
    }

    #[test]
    fn spatial_state_prediction_correlates() {
        // The model's core claim: it predicts the thread distribution.
        // Memory-bound gesummv parks nearly all warps in MS; the
        // compute-heavy leukocyte keeps a markedly larger CS share — in
        // both the model and the simulator (GPU-scale latencies keep k
        // high in absolute terms even for compute-bound kernels).
        let spec = GpuSpec::kepler_k40();
        let v = validate_one(&spec, &Workload::get(WorkloadId::Gesummv)).unwrap();
        assert!(v.predicted_k > 0.8 * v.n, "model says MS-heavy");
        assert!(v.measured_k > 0.8 * v.n, "sim agrees");
        let c = validate_one(&spec, &Workload::get(WorkloadId::Leukocyte)).unwrap();
        assert!(
            c.predicted_k / c.n < v.predicted_k / v.n - 0.1,
            "model: leukocyte less MS-heavy ({} vs {})",
            c.predicted_k / c.n,
            v.predicted_k / v.n
        );
        assert!(
            c.measured_k / c.n < v.measured_k / v.n - 0.1,
            "sim: leukocyte less MS-heavy ({} vs {})",
            c.measured_k / c.n,
            v.measured_k / v.n
        );
    }
}

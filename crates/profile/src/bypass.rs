//! Bypass trace-point profiling of `f(k)` for a cached workload.
//!
//! Figs. 12–13 obtain isolated trace-points of the cache-integrated
//! `f(k)` by the bypassing technique of [13]: let only `j` warps use the
//! L1 (the rest bypass) and record MS throughput; sweeping `j` traces the
//! curve the analytic Eq. (5) predicts.

use xmodel_sim::{simulate, SimConfig, SimWorkload};

/// Measure `(j, requests/cycle)` trace-points with `j` cache-eligible
/// warps, `j` sweeping `1..=workload.warps` in `step`s.
pub fn bypass_trace_points(cfg: &SimConfig, workload: &SimWorkload, step: u32) -> Vec<(u32, f64)> {
    assert!(cfg.l1.is_some(), "bypass profiling needs an L1");
    assert!(step >= 1);
    let n = workload.warps;
    let mut out = Vec::new();
    let mut j = 1;
    while j <= n {
        let frac = 1.0 - j as f64 / n as f64;
        let mut c = *cfg;
        c.bypass_fraction = frac;
        let stats = simulate(&c, workload, 10_000, 30_000);
        out.push((j, stats.ms_throughput()));
        j += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmodel_sim::SimConfig;
    use xmodel_workloads::TraceSpec;

    fn thrash_cfg() -> SimConfig {
        SimConfig::builder()
            .lanes(4.0)
            .lsu(2)
            .dram(500, 4.0)
            // Bypassed requests land in a roomy L2 with several times the
            // DRAM bandwidth — the mechanism that makes bypassing pay.
            .l2(512 * 1024, 150, 16.0)
            .l1(16 * 1024, 20, 16)
            .build()
    }

    fn reuse_workload(warps: u32) -> SimWorkload {
        SimWorkload {
            trace: TraceSpec::PrivateWorkingSet {
                ws_lines: 24,
                stream_prob: 0.05,
                reuse_skew: 0.0,
            },
            ops_per_request: 6.0,
            ilp: 1.0,
            warps,
        }
    }

    #[test]
    fn trace_points_cover_the_sweep() {
        let pts = bypass_trace_points(&thrash_cfg(), &reuse_workload(24), 4);
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().all(|&(_, t)| t > 0.0));
    }

    #[test]
    fn restricting_cache_sharers_beats_full_thrash() {
        // With 48 warps thrashing a 128-line cache, some intermediate j
        // (few warps keeping their working sets resident) must outperform
        // j = n (everyone thrashing) — the §VI bypassing claim.
        let pts = bypass_trace_points(&thrash_cfg(), &reuse_workload(48), 4);
        let full = pts.last().unwrap().1;
        let best = pts.iter().map(|&(_, t)| t).fold(0.0, f64::max);
        assert!(
            best > 1.1 * full,
            "best {best} should beat full-cache {full}"
        );
    }

    #[test]
    #[should_panic(expected = "needs an L1")]
    fn rejects_configs_without_l1() {
        let cfg = SimConfig::builder().build();
        let _ = bypass_trace_points(&cfg, &reuse_workload(8), 1);
    }
}

//! Peak-operations profiling of the lane count `M` (Volkov-style).

use xmodel_sim::{simulate, SimConfig, SimWorkload};
use xmodel_workloads::microbench::peak_ops_kernel;
use xmodel_workloads::TraceSpec;

/// Profile the CS lane count by saturating it with register-only FMA
/// warps at maximum pairing. Returns the sustained warp-ops/cycle.
pub fn profile_lanes(cfg: &SimConfig, warps: u32) -> f64 {
    let analysis = peak_ops_kernel(2.0).analyze();
    let wl = SimWorkload {
        trace: TraceSpec::Stream { region_lines: 64 },
        ops_per_request: f64::INFINITY,
        ilp: analysis.ilp,
        warps,
    };
    simulate(cfg, &wl, 2_000, 10_000).cs_throughput()
}

/// Profile CS throughput as a function of warp count for a fixed ILP —
/// the `g(x)` sweep behind the Fig. 10 curve family.
pub fn profile_gx(cfg: &SimConfig, ilp: f64, max_warps: u32, step: u32) -> Vec<(u32, f64)> {
    assert!(max_warps >= 1 && step >= 1);
    let mut out = Vec::new();
    let mut w = 1;
    while w <= max_warps {
        let wl = SimWorkload {
            trace: TraceSpec::Stream { region_lines: 64 },
            ops_per_request: f64::INFINITY,
            ilp,
            warps: w,
        };
        out.push((w, simulate(cfg, &wl, 2_000, 8_000).cs_throughput()));
        w += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::sim_config_for;
    use xmodel_core::presets::{GpuSpec, Precision};

    #[test]
    fn recovers_kepler_lane_count() {
        let cfg = sim_config_for(&GpuSpec::kepler_k40(), Precision::Single);
        let m = profile_lanes(&cfg, 32);
        assert!((m - 6.0).abs() < 0.1, "M = {m}");
    }

    #[test]
    fn recovers_fermi_lane_count() {
        let cfg = sim_config_for(&GpuSpec::fermi_gtx570(), Precision::Single);
        let m = profile_lanes(&cfg, 32);
        assert!((m - 1.0).abs() < 0.05, "M = {m}");
    }

    #[test]
    fn gx_sweep_is_roofline_with_ilp_slope() {
        let cfg = sim_config_for(&GpuSpec::kepler_k40(), Precision::Single);
        let g1 = profile_gx(&cfg, 1.0, 16, 1);
        let g2 = profile_gx(&cfg, 2.0, 16, 1);
        // Slope region: ILP 2 doubles single-warp throughput.
        assert!((g1[0].1 - 1.0).abs() < 0.05);
        assert!((g2[0].1 - 2.0).abs() < 0.05);
        // Both saturate at M = 6.
        assert!((g1.last().unwrap().1 - 6.0).abs() < 0.2);
        assert!((g2.last().unwrap().1 - 6.0).abs() < 0.2);
        // E = 2 saturates with fewer warps (pi = M/E).
        let sat = |g: &[(u32, f64)]| g.iter().find(|&&(_, t)| t >= 5.8).map(|&(w, _)| w).unwrap();
        assert!(sat(&g2) < sat(&g1));
    }
}

//! Property tests: random kernels survive the disassemble/parse round
//! trip and the analyser never panics.

use proptest::prelude::*;
use xmodel_isa::disasm;
use xmodel_isa::{BasicBlock, Instruction, Kernel, Opcode};

fn any_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(Opcode::all().to_vec())
}

fn any_block() -> impl Strategy<Value = BasicBlock> {
    (
        prop::collection::vec((any_opcode(), any::<bool>()), 1..24),
        0.0f64..10_000.0,
    )
        .prop_map(|(ops, weight)| {
            let insts = ops
                .into_iter()
                .enumerate()
                .map(|(i, (op, dual))| Instruction {
                    opcode: op,
                    // The first instruction of a block can never pair.
                    dual_issue: dual && i > 0,
                })
                .collect();
            BasicBlock { insts, weight }
        })
}

fn any_kernel() -> impl Strategy<Value = Kernel> {
    (
        "[a-z][a-z0-9_]{0,12}",
        1u32..1025,
        1u32..256,
        0u32..49152,
        prop::collection::vec(any_block(), 1..6),
    )
        .prop_map(|(name, tpb, regs, smem, blocks)| Kernel {
            name,
            threads_per_block: tpb,
            regs_per_thread: regs,
            smem_per_block: smem,
            blocks,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn disassembly_round_trips(kernel in any_kernel()) {
        let text = disasm::disassemble(&kernel);
        let back = disasm::parse(&text).unwrap();
        prop_assert_eq!(back, kernel);
    }

    #[test]
    fn analysis_never_panics_and_stays_in_domain(kernel in any_kernel()) {
        let a = kernel.analyze();
        prop_assert!(a.ilp >= 1.0);
        prop_assert!(a.intensity >= 1.0 || a.intensity.is_infinite());
        prop_assert!(a.mem_fraction >= 0.0 && a.mem_fraction <= 1.0);
        prop_assert!(a.flops >= 0.0);
    }

    #[test]
    fn occupancy_never_exceeds_slots(kernel in any_kernel()) {
        use xmodel_isa::{ArchLimits, Occupancy};
        for arch in [ArchLimits::fermi(48 * 1024), ArchLimits::kepler(), ArchLimits::maxwell()] {
            let occ = Occupancy::compute(&kernel, &arch);
            prop_assert!(occ.warps <= arch.max_warps + kernel.warps_per_block());
        }
    }
}

//! Dataflow (CFG-style) ILP analysis — the alternative extraction method.
//!
//! §V: *"Regarding ILP or E, we use a new approach that is different from
//! the existing one based on CFG analysis for a general machine [12]"*.
//! This module implements that existing approach so the two can be
//! compared: instructions carry register operands, dependence chains are
//! built per basic block, and the ILP degree is the ratio of instruction
//! count to critical-path length.
//!
//! It also closes the loop in the other direction:
//! [`DfKernel::schedule`] runs a width-limited list scheduler over the
//! dependence graph and *synthesizes* the Kepler-style dual-issue bits,
//! producing an ordinary [`Kernel`] whose scheduling-information analysis
//! recovers (the width-capped part of) the dataflow ILP — which is exactly
//! what the hardware/compiler pipeline does to real kernels.

use crate::inst::{Instruction, Opcode};
use crate::kernel::{BasicBlock, Kernel};
use serde::{Deserialize, Serialize};

/// Register identifier.
pub type Reg = u16;

/// One instruction with explicit register operands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DfInst {
    /// The operation.
    pub opcode: Opcode,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Source registers.
    pub srcs: Vec<Reg>,
}

impl DfInst {
    /// Construct an instruction writing `dst` from `srcs`.
    pub fn new(opcode: Opcode, dst: impl Into<Option<Reg>>, srcs: &[Reg]) -> Self {
        Self {
            opcode,
            dst: dst.into(),
            srcs: srcs.to_vec(),
        }
    }
}

/// A basic block with operand information and a trip-count weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DfBlock {
    /// Instructions in program order.
    pub insts: Vec<DfInst>,
    /// Average executions per thread.
    pub weight: f64,
}

impl DfBlock {
    /// Length of the longest true-dependence (read-after-write) chain,
    /// in instructions. Empty blocks have zero.
    pub fn critical_path(&self) -> usize {
        let mut reg_depth: std::collections::HashMap<Reg, usize> = std::collections::HashMap::new();
        let mut longest = 0usize;
        for inst in &self.insts {
            let dep = inst
                .srcs
                .iter()
                .filter_map(|r| reg_depth.get(r).copied())
                .max()
                .unwrap_or(0);
            let depth = dep + 1;
            longest = longest.max(depth);
            if let Some(d) = inst.dst {
                reg_depth.insert(d, depth);
            }
        }
        longest
    }

    /// Dataflow ILP of the block: instructions / critical path.
    pub fn ilp(&self) -> f64 {
        let cp = self.critical_path();
        if cp == 0 {
            return 1.0;
        }
        self.insts.len() as f64 / cp as f64
    }
}

/// A kernel in dataflow representation.
///
/// ## Example
///
/// ```
/// use xmodel_isa::dataflow::{DfBlock, DfInst, DfKernel};
/// use xmodel_isa::Opcode::FFMA;
///
/// // Two independent accumulator chains: dataflow ILP 2.
/// let k = DfKernel {
///     name: "twin".into(),
///     threads_per_block: 256,
///     regs_per_thread: 16,
///     smem_per_block: 0,
///     blocks: vec![DfBlock {
///         insts: vec![
///             DfInst::new(FFMA, 1, &[1, 10]),
///             DfInst::new(FFMA, 2, &[2, 11]),
///             DfInst::new(FFMA, 1, &[1, 12]),
///             DfInst::new(FFMA, 2, &[2, 13]),
///         ],
///         weight: 100.0,
///     }],
/// };
/// assert_eq!(k.ilp(), 2.0);
/// // List-scheduling at width 2 synthesizes the Kepler dual-issue bits.
/// assert!((k.schedule(2).analyze().ilp - 2.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DfKernel {
    /// Kernel name.
    pub name: String,
    /// Threads per block at launch.
    pub threads_per_block: u32,
    /// Registers per thread (for occupancy).
    pub regs_per_thread: u32,
    /// Shared memory per block in bytes.
    pub smem_per_block: u32,
    /// Weighted blocks.
    pub blocks: Vec<DfBlock>,
}

impl DfKernel {
    /// Trip-count-weighted dataflow ILP over all blocks — the CFG-style
    /// `E` of [12], *not* capped by any issue width.
    pub fn ilp(&self) -> f64 {
        let mut insts = 0.0;
        let mut path = 0.0;
        for b in &self.blocks {
            if b.insts.is_empty() || b.weight == 0.0 {
                continue;
            }
            insts += b.weight * b.insts.len() as f64;
            path += b.weight * b.critical_path() as f64;
        }
        if path == 0.0 {
            1.0
        } else {
            insts / path
        }
    }

    /// Estimate the register footprint per thread from operand liveness:
    /// the maximum number of simultaneously-live values across all blocks
    /// (a value is live from its definition to its last use), plus a
    /// fixed overhead for addresses and predicates. This feeds the
    /// occupancy calculation when a kernel is authored in dataflow form
    /// and no compiler-reported register count exists.
    pub fn estimate_registers(&self, overhead: u32) -> u32 {
        let mut peak = 0usize;
        for b in &self.blocks {
            // Last use index of each register within the block.
            let mut last_use: std::collections::HashMap<Reg, usize> =
                std::collections::HashMap::new();
            for (i, inst) in b.insts.iter().enumerate() {
                for &r in &inst.srcs {
                    last_use.insert(r, i);
                }
                if let Some(d) = inst.dst {
                    // A definition is live at least at its own index.
                    last_use.entry(d).or_insert(i);
                }
            }
            // Definition index of each register (first write).
            let mut def_at: std::collections::HashMap<Reg, usize> =
                std::collections::HashMap::new();
            for (i, inst) in b.insts.iter().enumerate() {
                if let Some(d) = inst.dst {
                    def_at.entry(d).or_insert(i);
                }
                for &r in &inst.srcs {
                    // Sources never defined in the block are live-in.
                    def_at.entry(r).or_insert(0);
                }
            }
            // Sweep: count live ranges covering each instruction index.
            let mut live_at = vec![0usize; b.insts.len().max(1)];
            for (&r, &d) in &def_at {
                let end = last_use.get(&r).copied().unwrap_or(d);
                for slot in live_at.iter_mut().take(end + 1).skip(d) {
                    *slot += 1;
                }
            }
            peak = peak.max(live_at.into_iter().max().unwrap_or(0));
        }
        peak as u32 + overhead
    }

    /// List-schedule every block at the given issue `width` and emit an
    /// ordinary [`Kernel`] with synthesized dual-issue flags: instructions
    /// co-scheduled into one cycle are flagged as pairing with their
    /// predecessor, exactly like the Kepler control words.
    ///
    /// Scheduling is greedy in program order: an instruction is ready when
    /// all its sources were produced in earlier cycles (same-cycle
    /// forwarding is not allowed, matching in-order dual issue).
    pub fn schedule(&self, width: usize) -> Kernel {
        assert!(width >= 1);
        let blocks = self
            .blocks
            .iter()
            .map(|b| BasicBlock {
                insts: schedule_block(b, width),
                weight: b.weight,
            })
            .collect();
        Kernel {
            name: self.name.clone(),
            threads_per_block: self.threads_per_block,
            regs_per_thread: self.regs_per_thread,
            smem_per_block: self.smem_per_block,
            blocks,
        }
    }
}

fn schedule_block(block: &DfBlock, width: usize) -> Vec<Instruction> {
    let n = block.insts.len();
    let mut ready_cycle = vec![0usize; n]; // earliest cycle each inst may issue
    let mut reg_avail: std::collections::HashMap<Reg, usize> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(n);
    let mut cycle = 0usize;
    let mut issued_this_cycle = 0usize;

    // Compute dependence-based earliest cycles first (program order keeps
    // this a single pass), then issue greedily in order.
    for (i, inst) in block.insts.iter().enumerate() {
        let dep_cycle = inst
            .srcs
            .iter()
            .filter_map(|r| reg_avail.get(r).copied())
            .max()
            .unwrap_or(0);
        ready_cycle[i] = dep_cycle;
        // In-order issue: never earlier than the previous instruction's
        // cycle.
        if i > 0 {
            ready_cycle[i] = ready_cycle[i].max(ready_cycle[i - 1]);
        }
        if let Some(d) = inst.dst {
            reg_avail.insert(d, ready_cycle[i] + 1);
        }
    }

    for (i, inst) in block.insts.iter().enumerate() {
        let want = ready_cycle[i];
        let same_cycle = want <= cycle && issued_this_cycle < width && i > 0;
        if i == 0 {
            cycle = want;
            issued_this_cycle = 1;
            out.push(Instruction::solo(inst.opcode));
        } else if same_cycle {
            issued_this_cycle += 1;
            out.push(Instruction::paired(inst.opcode));
        } else {
            cycle = want.max(cycle + 1);
            issued_this_cycle = 1;
            out.push(Instruction::solo(inst.opcode));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Opcode::*;

    fn block(insts: Vec<DfInst>) -> DfBlock {
        DfBlock { insts, weight: 1.0 }
    }

    #[test]
    fn serial_chain_has_unit_ilp() {
        // r1 = r0; r2 = r1; r3 = r2 — fully dependent.
        let b = block(vec![
            DfInst::new(FFMA, 1, &[0]),
            DfInst::new(FFMA, 2, &[1]),
            DfInst::new(FFMA, 3, &[2]),
        ]);
        assert_eq!(b.critical_path(), 3);
        assert!((b.ilp() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_instructions_have_full_ilp() {
        let b = block(vec![
            DfInst::new(FFMA, 1, &[0]),
            DfInst::new(FFMA, 2, &[0]),
            DfInst::new(FFMA, 3, &[0]),
            DfInst::new(FFMA, 4, &[0]),
        ]);
        assert_eq!(b.critical_path(), 1);
        assert_eq!(b.ilp(), 4.0);
    }

    #[test]
    fn twin_chains_have_ilp_two() {
        // The gesummv pattern: two independent accumulator chains.
        let b = block(vec![
            DfInst::new(FFMA, 1, &[1, 10]),
            DfInst::new(FFMA, 2, &[2, 11]),
            DfInst::new(FFMA, 1, &[1, 12]),
            DfInst::new(FFMA, 2, &[2, 13]),
        ]);
        assert_eq!(b.critical_path(), 2);
        assert_eq!(b.ilp(), 2.0);
    }

    #[test]
    fn diamond_dependence() {
        // a; b(a); c(a); d(b, c): path a->b->d = 3.
        let b = block(vec![
            DfInst::new(FFMA, 1, &[0]),
            DfInst::new(FFMA, 2, &[1]),
            DfInst::new(FFMA, 3, &[1]),
            DfInst::new(FADD, 4, &[2, 3]),
        ]);
        assert_eq!(b.critical_path(), 3);
    }

    #[test]
    fn empty_block_is_neutral() {
        let b = block(vec![]);
        assert_eq!(b.critical_path(), 0);
        assert_eq!(b.ilp(), 1.0);
    }

    fn twin_chain_kernel() -> DfKernel {
        DfKernel {
            name: "twin".into(),
            threads_per_block: 256,
            regs_per_thread: 16,
            smem_per_block: 0,
            blocks: vec![DfBlock {
                insts: vec![
                    DfInst::new(LDG, 10, &[5]),
                    DfInst::new(LDG, 11, &[6]),
                    DfInst::new(FFMA, 1, &[1, 10]),
                    DfInst::new(FFMA, 2, &[2, 11]),
                    DfInst::new(FFMA, 1, &[1, 10]),
                    DfInst::new(FFMA, 2, &[2, 11]),
                ],
                weight: 100.0,
            }],
        }
    }

    #[test]
    fn kernel_ilp_weights_blocks() {
        let k = twin_chain_kernel();
        // Critical path: LDG(10) -> FFMA -> FFMA = 3; 6 insts / 3.
        assert!((k.ilp() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_synthesizes_dual_issue_bits() {
        let k = twin_chain_kernel().schedule(2);
        let analysis = k.analyze();
        // The scheduling-bits analysis on the synthesized kernel recovers
        // the width-capped dataflow ILP.
        assert!(
            (analysis.ilp - 2.0).abs() < 0.01,
            "scheduled E = {}",
            analysis.ilp
        );
    }

    #[test]
    fn schedule_width_one_serializes() {
        let k = twin_chain_kernel().schedule(1);
        assert!(k.blocks[0].insts.iter().all(|i| !i.dual_issue));
        assert!((k.analyze().ilp - 1.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_respects_dependences() {
        // A serial chain must never be paired even at width 8.
        let dfk = DfKernel {
            name: "serial".into(),
            threads_per_block: 32,
            regs_per_thread: 8,
            smem_per_block: 0,
            blocks: vec![DfBlock {
                insts: vec![
                    DfInst::new(FFMA, 1, &[0]),
                    DfInst::new(FFMA, 2, &[1]),
                    DfInst::new(FFMA, 3, &[2]),
                ],
                weight: 1.0,
            }],
        };
        let k = dfk.schedule(8);
        assert!(k.blocks[0].insts.iter().all(|i| !i.dual_issue));
    }

    #[test]
    fn width_capped_vs_uncapped_ilp() {
        // Four independent streams: dataflow ILP 4, but the paper's
        // scheduling-bits method (pairing width 2) reports at most 2 —
        // the §V "always less than or equal to two" remark, reproduced.
        let dfk = DfKernel {
            name: "wide".into(),
            threads_per_block: 32,
            regs_per_thread: 8,
            smem_per_block: 0,
            blocks: vec![DfBlock {
                insts: (0..8)
                    .map(|i| DfInst::new(FFMA, 1 + i as Reg, &[0]))
                    .collect(),
                weight: 1.0,
            }],
        };
        assert_eq!(dfk.ilp(), 8.0);
        let capped = dfk.schedule(2).analyze().ilp;
        assert!((capped - 2.0).abs() < 0.01, "capped = {capped}");
    }

    #[test]
    fn register_estimate_counts_live_values() {
        // r10, r11 live-in; r1, r2 accumulate: peak 4 live + overhead.
        let k = twin_chain_kernel();
        let est = k.estimate_registers(4);
        assert!(est >= 4 + 4, "estimate {est}");
        assert!(est <= 10, "estimate {est} too fat");
    }

    #[test]
    fn serial_chain_needs_few_registers() {
        let dfk = DfKernel {
            name: "serial".into(),
            threads_per_block: 32,
            regs_per_thread: 8,
            smem_per_block: 0,
            blocks: vec![DfBlock {
                insts: (0..16)
                    .map(|i| DfInst::new(FFMA, (i + 1) as Reg, &[i as Reg]))
                    .collect(),
                weight: 1.0,
            }],
        };
        // Each value dies immediately: at most 2 live at once.
        assert!(dfk.estimate_registers(0) <= 3);
    }

    #[test]
    fn wide_independent_values_need_many_registers() {
        // 8 values all consumed at the end: all 8 live simultaneously.
        let mut insts: Vec<DfInst> = (0..8)
            .map(|i| DfInst::new(FFMA, (10 + i) as Reg, &[0]))
            .collect();
        insts.push(DfInst::new(FADD, 30, &[10, 11, 12, 13, 14, 15, 16, 17]));
        let dfk = DfKernel {
            name: "wide".into(),
            threads_per_block: 32,
            regs_per_thread: 8,
            smem_per_block: 0,
            blocks: vec![DfBlock { insts, weight: 1.0 }],
        };
        assert!(dfk.estimate_registers(0) >= 8);
    }

    #[test]
    fn scheduled_kernel_round_trips_through_text() {
        let k = twin_chain_kernel().schedule(2);
        let text = crate::disasm::disassemble(&k);
        assert_eq!(crate::disasm::parse(&text).unwrap(), k);
    }
}

//! Kernels as weighted basic blocks, with a fluent builder.

use crate::analysis::StaticAnalysis;
use crate::inst::{Instruction, Opcode};
use serde::{Deserialize, Serialize};

/// A basic block: straight-line instructions plus the average number of
/// times the block executes per thread (its loop trip count weight).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Straight-line instruction sequence.
    pub insts: Vec<Instruction>,
    /// Average executions per thread (≥ 0; loop bodies get their trip
    /// count, straight-line code gets 1).
    pub weight: f64,
}

impl BasicBlock {
    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` when the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Dynamic instruction count contributed by this block.
    pub fn dynamic_insts(&self) -> f64 {
        self.weight * self.insts.len() as f64
    }
}

/// A kernel: named, with resource footprints and weighted basic blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Threads per thread-block at launch.
    pub threads_per_block: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Shared memory per thread-block, bytes.
    pub smem_per_block: u32,
    /// Weighted basic blocks.
    pub blocks: Vec<BasicBlock>,
}

impl Kernel {
    /// Start building a kernel.
    pub fn builder(name: impl Into<String>, threads_per_block: u32) -> KernelBuilder {
        KernelBuilder {
            kernel: Kernel {
                name: name.into(),
                threads_per_block,
                regs_per_thread: 32,
                smem_per_block: 0,
                blocks: Vec::new(),
            },
        }
    }

    /// Run the static analysis (E, Z, instruction mix).
    pub fn analyze(&self) -> StaticAnalysis {
        StaticAnalysis::of(self)
    }

    /// Total dynamic instructions per thread.
    pub fn dynamic_insts(&self) -> f64 {
        self.blocks.iter().map(BasicBlock::dynamic_insts).sum()
    }

    /// Dynamic count of instructions satisfying a predicate.
    pub fn dynamic_count(&self, pred: impl Fn(Opcode) -> bool) -> f64 {
        self.blocks
            .iter()
            .map(|b| b.weight * b.insts.iter().filter(|i| pred(i.opcode)).count() as f64)
            .sum()
    }

    /// Warps per thread-block (rounded up).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block.div_ceil(32)
    }
}

/// Fluent kernel builder.
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    kernel: Kernel,
}

impl KernelBuilder {
    /// Set registers per thread.
    #[must_use]
    pub fn registers(mut self, regs: u32) -> Self {
        self.kernel.regs_per_thread = regs;
        self
    }

    /// Set shared memory per block in bytes.
    #[must_use]
    pub fn shared_memory(mut self, bytes: u32) -> Self {
        self.kernel.smem_per_block = bytes;
        self
    }

    /// Append a basic block with the given weight, filled by the closure.
    #[must_use]
    pub fn block(mut self, weight: f64, fill: impl FnOnce(BlockBuilder) -> BlockBuilder) -> Self {
        assert!(weight >= 0.0, "block weight must be non-negative");
        let bb = fill(BlockBuilder { insts: Vec::new() });
        self.kernel.blocks.push(BasicBlock {
            insts: bb.insts,
            weight,
        });
        self
    }

    /// Finish, validating the kernel is non-trivial.
    pub fn build(self) -> Kernel {
        assert!(
            !self.kernel.blocks.is_empty(),
            "kernel needs at least one block"
        );
        assert!(self.kernel.threads_per_block > 0);
        self.kernel
    }
}

/// Fluent basic-block filler.
#[derive(Debug, Clone)]
pub struct BlockBuilder {
    insts: Vec<Instruction>,
}

impl BlockBuilder {
    /// Append a solo-issued instruction.
    #[must_use]
    pub fn inst(mut self, op: Opcode) -> Self {
        self.insts.push(Instruction::solo(op));
        self
    }

    /// Append an instruction dual-issued with its predecessor.
    #[must_use]
    pub fn dual(mut self, op: Opcode) -> Self {
        assert!(
            !self.insts.is_empty(),
            "dual-issue needs a preceding instruction"
        );
        self.insts.push(Instruction::paired(op));
        self
    }

    /// Append `count` solo copies of an opcode.
    #[must_use]
    pub fn repeat(mut self, op: Opcode, count: usize) -> Self {
        self.insts
            .extend(std::iter::repeat_n(Instruction::solo(op), count));
        self
    }

    /// Append `count` dual-issue *pairs* of `(a, b)` — `2·count`
    /// instructions forming `count` issue groups of width 2.
    #[must_use]
    pub fn repeat_pairs(mut self, a: Opcode, b: Opcode, count: usize) -> Self {
        for _ in 0..count {
            self.insts.push(Instruction::solo(a));
            self.insts.push(Instruction::paired(b));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Opcode::*;

    fn sample() -> Kernel {
        Kernel::builder("k", 256)
            .registers(24)
            .shared_memory(4096)
            .block(1.0, |b| b.inst(MOV).inst(IMAD))
            .block(100.0, |b| b.inst(LDG).dual(FFMA).inst(STG).inst(BRA))
            .build()
    }

    #[test]
    fn builder_sets_resources() {
        let k = sample();
        assert_eq!(k.regs_per_thread, 24);
        assert_eq!(k.smem_per_block, 4096);
        assert_eq!(k.threads_per_block, 256);
        assert_eq!(k.blocks.len(), 2);
    }

    #[test]
    fn dynamic_counts_are_weighted() {
        let k = sample();
        assert_eq!(k.dynamic_insts(), 2.0 + 400.0);
        assert_eq!(k.dynamic_count(|o| o.is_offchip_mem()), 200.0);
        assert_eq!(k.dynamic_count(|o| o == FFMA), 100.0);
    }

    #[test]
    fn warps_per_block_rounds_up() {
        assert_eq!(sample().warps_per_block(), 8);
        let k = Kernel::builder("odd", 96)
            .block(1.0, |b| b.inst(EXIT))
            .build();
        assert_eq!(k.warps_per_block(), 3);
        let k = Kernel::builder("tiny", 33)
            .block(1.0, |b| b.inst(EXIT))
            .build();
        assert_eq!(k.warps_per_block(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_kernel_rejected() {
        let _ = Kernel::builder("e", 32).build();
    }

    #[test]
    #[should_panic(expected = "preceding instruction")]
    fn leading_dual_rejected() {
        let _ = Kernel::builder("d", 32)
            .block(1.0, |b| b.dual(FFMA))
            .build();
    }

    #[test]
    fn repeat_helpers() {
        let k = Kernel::builder("r", 32)
            .block(1.0, |b| b.repeat(FFMA, 3).repeat_pairs(FFMA, FADD, 2))
            .build();
        assert_eq!(k.blocks[0].len(), 7);
        assert!(k.blocks[0].insts[4].dual_issue);
        assert!(!k.blocks[0].insts[3].dual_issue);
    }

    #[test]
    fn block_len_and_empty() {
        let b = BasicBlock {
            insts: vec![],
            weight: 1.0,
        };
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.dynamic_insts(), 0.0);
    }
}
